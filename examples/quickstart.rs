//! Quickstart: one database, one TDE, one tuner.
//!
//! Runs a TPCC-like workload whose sorts overflow the default `work_mem`,
//! shows the TDE raising memory throttles, asks the BO tuner for a
//! recommendation trained on the captured samples, applies it with a
//! reload signal, and shows throughput recovering toward the offered load.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use autodbaas::prelude::*;
use autodbaas::tuner::{normalize_config, Sample, SampleQuality};
use rand::rngs::StdRng;

fn main() {
    // --- Provision a PostgreSQL-flavored service ------------------------
    let workload = AdulteratedWorkload::new(tpcc(2.0), 0.3); // TPCC + heavy sorts
    let mut db = SimDatabase::new(
        DbFlavor::Postgres,
        InstanceType::M4XLarge,
        DiskKind::Ssd,
        workload.base().catalog().clone(),
        42,
    );
    let profile = db.profile().clone();
    let mut tde = Tde::new(&profile, TdeConfig::default(), 7);
    let mut rng = StdRng::seed_from_u64(1);

    println!("== AutoDBaaS quickstart ==");
    println!(
        "instance {} / flavor {} / db size {:.1} GB",
        db.instance().name(),
        db.flavor(),
        db.catalog().total_bytes() as f64 / 1e9
    );

    // --- Phase 1: drive traffic at vendor defaults ----------------------
    let mut repo = WorkloadRepository::new();
    let wid = repo.register("quickstart-live", false);
    let mut throttles_before = 0usize;
    for minute in 0..5 {
        let before = db.metrics_snapshot();
        for _ in 0..60 {
            let q = workload.next_query(&mut rng);
            let _ = db.submit(&q, 60);
            db.tick(1_000);
        }
        let report = tde.run(&mut db, Some(&repo));
        throttles_before += report.throttles.len();
        let delta = db.metrics_snapshot().delta(&before);
        let qps = delta[autodbaas::simdb::MetricId::QueriesExecuted.index()] / 60.0;
        println!(
            "minute {minute}: {:>6.0} qps, {} throttle(s){}",
            qps,
            report.throttles.len(),
            if report.tuning_request {
                "  -> tuning request"
            } else {
                ""
            }
        );
        // Capture the TDE-certified sample for the tuner.
        if report.tuning_request {
            repo.add_sample(
                wid,
                Sample {
                    config: normalize_config(&profile, db.knobs().as_vec()),
                    metrics: delta,
                    objective: qps,
                    quality: SampleQuality::High,
                },
            );
        }
    }

    // --- Phase 2: one BO recommendation ---------------------------------
    // Seed a few exploratory samples so the GP has gradient to work with.
    let mut scratch_rng = StdRng::seed_from_u64(9);
    for i in 0..24 {
        use rand::Rng;
        let unit: Vec<f64> = (0..profile.len()).map(|_| scratch_rng.gen()).collect();
        let raw = autodbaas::tuner::denormalize_config(&profile, &unit);
        let mut scratch = SimDatabase::new(
            DbFlavor::Postgres,
            InstanceType::M4XLarge,
            DiskKind::Ssd,
            workload.base().catalog().clone(),
            100 + i,
        );
        for (k, (kid, spec)) in profile.iter().enumerate() {
            if !spec.restart_required {
                scratch.set_knob_direct(kid, raw[k]);
            }
        }
        let before = scratch.metrics_snapshot();
        for _ in 0..30 {
            let q = workload.next_query(&mut scratch_rng);
            let _ = scratch.submit(&q, 60);
            scratch.tick(1_000);
        }
        let delta = scratch.metrics_snapshot().delta(&before);
        let qps = delta[autodbaas::simdb::MetricId::QueriesExecuted.index()] / 30.0;
        repo.add_sample(
            wid,
            Sample {
                config: normalize_config(&profile, scratch.knobs().as_vec()),
                metrics: delta,
                objective: qps,
                quality: SampleQuality::High,
            },
        );
    }
    let mut tuner = BoTuner::new(BoConfig::default(), 3);
    let rec = tuner.recommend(&repo, wid).expect("repo has samples");
    println!(
        "\nBO recommendation trained on {} samples (modelled GPR cost {:.1} s)",
        rec.train_samples,
        rec.modeled_train_cost_ms / 1000.0
    );

    // --- Phase 3: apply via reload and watch throttles stop -------------
    let raw = autodbaas::tuner::denormalize_config(&profile, &rec.config);
    let changes: Vec<ConfigChange> = profile
        .iter()
        .zip(&raw)
        .filter(|((_, spec), _)| !spec.restart_required)
        .map(|((kid, _), &value)| ConfigChange { knob: kid, value })
        .collect();
    let report = db.apply_config(&changes, ApplyMode::Reload);
    println!(
        "applied {} knobs via reload signal ({} staged for the maintenance window)",
        report.applied.len(),
        report.deferred.len()
    );
    println!(
        "work_mem is now {:.0} MiB (was 4 MiB default)",
        db.knobs().get_named(&profile, "work_mem") / (1024.0 * 1024.0)
    );

    let mut throttles_after = 0usize;
    let mut qps_after = 0.0;
    for _ in 0..5 {
        let before = db.metrics_snapshot();
        for _ in 0..60 {
            let q = workload.next_query(&mut rng);
            let _ = db.submit(&q, 60);
            db.tick(1_000);
        }
        let report = tde.run(&mut db, Some(&repo));
        throttles_after += report.throttles.len();
        qps_after += db.metrics_snapshot().delta(&before)
            [autodbaas::simdb::MetricId::QueriesExecuted.index()]
            / 60.0;
    }
    println!(
        "\nthrottles in 5 minutes: before tuning = {throttles_before}, after = {throttles_after}"
    );
    println!(
        "mean throughput after tuning: {:.0} qps (demand 60 qps)",
        qps_after / 5.0
    );
    let counts = tde.throttle_counts();
    println!(
        "cumulative throttles by class: memory={} background-writer={} async/planner={}",
        counts[0], counts[1], counts[2]
    );
}
