//! A full day on the production trace: the whole stack in one run.
//!
//! One PostgreSQL service runs the synthetic 33-day customer workload
//! (Fig. 8's diurnal curve). The TDE runs every 5 minutes; a drift
//! detector watches the template distribution; a learned (future-work)
//! detector shadows the rule engine; at the end the day's operational
//! report prints — the view a PaaS operator would get.
//!
//! ```sh
//! cargo run --release --example production_day
//! ```

use autodbaas::prelude::*;
use autodbaas::tde::{
    DriftConfig, DriftDetector, DriftVerdict, LearnedDetector, TdeConfig, TemplateStore,
};
use autodbaas::telemetry::{MILLIS_PER_HOUR, MILLIS_PER_MIN};
use rand::rngs::StdRng;

fn main() {
    let wl = production();
    let mut db = SimDatabase::new(
        DbFlavor::Postgres,
        InstanceType::M4XLarge,
        DiskKind::Ssd,
        wl.catalog().clone(),
        42,
    );
    let profile = db.profile().clone();
    // PaaS provisioning: buffer at 25% of RAM.
    let buffer = db.planner().roles().buffer_pool;
    db.set_knob_direct(buffer, InstanceType::M4XLarge.mem_bytes() * 0.25);

    let mut tde = Tde::new(&profile, TdeConfig::default(), 7);
    let mut drift = DriftDetector::new(DriftConfig::default());
    let mut store = TemplateStore::new();
    let mut learned = LearnedDetector::new(&profile, 9);
    let mut rng: StdRng = SeedableRng::seed_from_u64(1);

    println!("== One production day (m4.xlarge, PostgreSQL profile) ==");
    println!(
        "{:<6} {:>8} {:>10} {:>9} {:>7} {:>14}",
        "hour", "qps", "throttles", "drift", "agree", "disk lat (ms)"
    );

    let window_ms = 5 * MILLIS_PER_MIN;
    let mut hourly_qps = Vec::new();
    let mut total_requests = 0u64;
    for hour in 0..24u64 {
        let hour_start_snap = db.metrics_snapshot();
        let mut drift_events = 0;
        let mut throttles = 0;
        for _ in 0..12 {
            // 12 five-minute windows per hour.
            let win_snap = db.metrics_snapshot();
            let win_start = db.now();
            while db.now() < win_start + window_ms {
                let rate = wl.default_arrival().rate_at(db.now());
                for _ in 0..12 {
                    let q = wl.next_query(&mut rng);
                    drift.ingest(&mut store, &q);
                    let _ = db.submit(&q, ((rate / 12.0) as u64).max(1));
                }
                db.tick(1_000);
            }
            let report = tde.run(&mut db, None);
            throttles += report.throttles.len();
            if report.tuning_request {
                total_requests += 1;
            }
            let delta = db.metrics_snapshot().delta(&win_snap);
            learned.observe(db.knobs(), &delta, &report);
            if matches!(drift.close_window(), DriftVerdict::Changed(_)) {
                drift_events += 1;
            }
        }
        let delta = db.metrics_snapshot().delta(&hour_start_snap);
        let qps = delta[autodbaas::simdb::MetricId::QueriesExecuted.index()] / 3_600.0;
        hourly_qps.push(qps);
        println!(
            "{:<6} {:>8.0} {:>10} {:>9} {:>7.2} {:>14.2}",
            format!("{hour:02}:00"),
            qps,
            throttles,
            drift_events,
            learned.recent_agreement(),
            db.disks().data().current_latency_ms(),
        );
    }

    let peak_hour = hourly_qps
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(h, _)| h)
        .unwrap_or(0);
    println!("\n--- end-of-day report ---");
    println!("peak hour: {peak_hour}:00 (expected inside the 8-11 AM surge)");
    println!("tuning requests sent: {total_requests} (vs 288 under 5-min polling)");
    println!(
        "throttles by class: memory={} bgwriter={} async={}",
        tde.throttle_counts()[0],
        tde.throttle_counts()[1],
        tde.throttle_counts()[2]
    );
    println!(
        "learned-TDE shadow agreement: {:.0}% over {} windows",
        learned.agreement() * 100.0,
        learned.observations()
    );
    println!(
        "WAL segments recycled: {}, checkpoints: {}",
        db.bg().wal().recycled_segments(),
        db.bg().checkpoints_done()
    );
    let _ = MILLIS_PER_HOUR; // explicit unit imports document the scale
}
