//! Non-tunable knobs and the maintenance window (§4).
//!
//! `shared_buffers` cannot change without a restart, so the pipeline is:
//! the TDE gauges the working set and stages the finding; reloadable
//! recommendations flow normally (staging any restart-bound knob values);
//! at the scheduled downtime the orchestrator restarts the service with the
//! §4 buffer rule applied and persists the config so redeployments keep it.
//!
//! ```sh
//! cargo run --release --example maintenance_window
//! ```

use autodbaas::ctrlplane::{
    plan_buffer_update, MaintenanceSchedule, ServiceOrchestrator, ServiceSpec,
};
use autodbaas::prelude::*;
use autodbaas::tde::TdeConfig;
use autodbaas::telemetry::{MILLIS_PER_HOUR, MILLIS_PER_MIN};
use rand::rngs::StdRng;

const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
const MIB: f64 = 1024.0 * 1024.0;

fn main() {
    let wl = tpcc(3.0);
    let mut orch = ServiceOrchestrator::new();
    let (service, mut rs) = orch.provision(ServiceSpec {
        flavor: DbFlavor::Postgres,
        instance: InstanceType::M4XLarge,
        disk: DiskKind::Ssd,
        catalog: wl.catalog().clone(),
        n_slaves: 1,
        seed: 21,
    });
    let profile = rs.master().profile().clone();
    let shared = profile.lookup("shared_buffers").unwrap();
    let mut tde = Tde::new(&profile, TdeConfig::default(), 9);
    let mut rng = StdRng::seed_from_u64(4);

    let schedule = MaintenanceSchedule {
        every_ms: 24 * MILLIS_PER_HOUR,
        duration_ms: 30 * MILLIS_PER_MIN,
        first_at: MILLIS_PER_HOUR, // first window one hour in
    };

    println!("== Maintenance window: tuning shared_buffers (§4) ==");
    println!(
        "initial shared_buffers: {:.0} MiB (vendor default)",
        rs.master().knobs().get(shared) / MIB
    );

    // --- One hour of traffic; the TDE gauges the working set ------------
    let mut last_ws = 0u64;
    for minute in 0..60u64 {
        for _ in 0..60 {
            // A dozen distinct statements per second keeps the touched-page
            // gauge honest (one batched shape would understate it).
            for _ in 0..12 {
                let q = wl.next_query(&mut rng);
                let _ = rs.master_mut().submit(&q, 10);
            }
            rs.tick(1_000);
        }
        let report = tde.run(rs.master_mut(), None);
        for f in &report.buffer_findings {
            last_ws = f.working_set_bytes;
            if minute % 15 == 0 {
                println!(
                    "minute {minute:>2}: working set {:.0} MiB > buffer {:.0} MiB (staged for downtime)",
                    f.working_set_bytes as f64 / MIB,
                    f.buffer_bytes as f64 / MIB
                );
            }
        }
    }

    // --- The scheduled window opens --------------------------------------
    let now = rs.master().now();
    assert!(schedule.in_window(now), "one hour in, the window is open");
    println!(
        "\nscheduled downtime window open at t={:.1} h",
        now as f64 / MILLIS_PER_HOUR as f64
    );

    let upper_limit = InstanceType::M4XLarge.db_mem_cap() * 0.5; // buffer's share of the pool
    let history: Vec<f64> = vec![]; // no recommendation history yet
    let current = rs.master().knobs().get(shared);
    let new_value =
        plan_buffer_update(current, last_ws as f64, upper_limit, &history, 0).unwrap_or(current);
    println!(
        "§4 buffer rule: working set {:.0} MiB, cap {:.1} GiB -> new shared_buffers {:.0} MiB",
        last_ws as f64 / MIB,
        upper_limit / GIB,
        new_value / MIB
    );

    // Restart-class apply during the window; persist afterwards.
    let report = rs
        .apply(
            &[ConfigChange {
                knob: shared,
                value: new_value,
            }],
            ApplyMode::Restart,
        )
        .expect("maintenance apply");
    println!(
        "restart applied ({} ms downtime), buffer now {:.0} MiB",
        report.downtime_ms,
        rs.master().knobs().get(shared) / MIB
    );
    orch.persist_config(service, rs.master().knobs().clone());

    // --- Redeploy later: the tuned config survives ----------------------
    let redeployed = orch.redeploy(service).expect("service exists");
    println!(
        "after redeployment, shared_buffers is still {:.0} MiB (persisted)",
        redeployed.master().knobs().get(shared) / MIB
    );
}
