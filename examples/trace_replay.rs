//! Trace capture → export → import → replay.
//!
//! The paper's evaluation replays a captured customer trace; this example
//! shows the same workflow with this library: record an hour of the
//! synthetic production workload, export it to CSV bytes, re-import it,
//! and replay it twice against fresh databases with different
//! configurations — identical traffic, so the throughput difference is
//! purely the knobs.
//!
//! ```sh
//! cargo run --release --example trace_replay
//! ```

use autodbaas::prelude::*;
use autodbaas::simdb::MetricId;
use autodbaas::workload::Trace;

fn replay_against(db: &mut SimDatabase, trace: &Trace) -> f64 {
    let mut cursor = trace.replay();
    let start = db.metrics_snapshot();
    let mut now = 0u64;
    let end = trace.events().last().map(|e| e.at + 1_000).unwrap_or(0);
    while now < end {
        now += 1_000;
        for event in cursor.due(now) {
            let _ = db.submit(&event.query, event.count);
        }
        db.tick(1_000);
    }
    let delta = db.metrics_snapshot().delta(&start);
    delta[MetricId::QueriesExecuted.index()] / (end as f64 / 1000.0).max(1.0)
}

fn main() {
    // --- Record one surge hour of the production trace -------------------
    let wl = AdulteratedWorkload::new(tpcc(1.0), 0.3);
    let trace = Trace::record(
        &wl,
        &ArrivalProcess::Constant(120.0),
        20 * 60 * 1_000, // 20 minutes
        1_000,
        16,
        42,
    );
    println!(
        "recorded {} events / {} queries",
        trace.len(),
        trace.total_queries()
    );

    // --- Export and re-import --------------------------------------------
    let bytes = trace.to_bytes();
    println!("exported {} bytes of CSV", bytes.len());
    let imported = Trace::from_bytes(&bytes).expect("roundtrip");
    assert_eq!(imported, trace);
    println!("re-imported losslessly");

    // --- Replay against default vs tuned knobs ---------------------------
    let mk = || {
        SimDatabase::new(
            DbFlavor::Postgres,
            InstanceType::M4XLarge,
            DiskKind::Ssd,
            wl.base().catalog().clone(),
            7,
        )
    };
    let mut default_db = mk();
    let default_qps = replay_against(&mut default_db, &imported);

    let mut tuned_db = mk();
    let profile = tuned_db.profile().clone();
    for name in ["work_mem", "maintenance_work_mem", "temp_buffers"] {
        let id = profile.lookup(name).unwrap();
        tuned_db.set_knob_direct(id, profile.spec(id).max.min(1.5e9));
    }
    let tuned_qps = replay_against(&mut tuned_db, &imported);

    println!("\nidentical replayed traffic, different knobs:");
    println!("  default knobs: {default_qps:.0} qps completed");
    println!("  tuned knobs:   {tuned_qps:.0} qps completed");
    assert!(tuned_qps > default_qps, "tuning must pay on the same trace");
    println!("\nthe trace pins the workload; only the configuration differs.");
}
