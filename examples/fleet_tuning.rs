//! Fleet tuning: event-driven (TDE) vs. periodic tuning requests.
//!
//! A miniature of the paper's Fig. 9 experiment: the same mixed fleet is
//! run three times — tuning requests driven by the TDE, by a 5-minute
//! period, and by a 10-minute period — and the total request volume plus
//! tuner backlog is compared. The TDE fleet asks only when a database
//! actually needs tuning, which is what lets one tuner deployment serve
//! many more databases.
//!
//! ```sh
//! cargo run --release --example fleet_tuning
//! ```

use autodbaas::cloudsim::{FleetConfig, FleetSim, ManagedDatabase};
use autodbaas::prelude::*;
use autodbaas::tde::TdeConfig;
use autodbaas::telemetry::MILLIS_PER_MIN;

const FLEET: usize = 12;
const HOURS: u64 = 2;

fn build_fleet(policy: TuningPolicy, seed: u64) -> FleetSim {
    let mut sim = FleetSim::new(
        FleetConfig {
            tde_period_ms: MILLIS_PER_MIN,
            gate_samples_with_tde: true,
            seed,
            ..FleetConfig::default()
        },
        4, // tuner instances
    );
    let plans = [
        InstanceType::T2Small,
        InstanceType::T2Medium,
        InstanceType::M4Large,
        InstanceType::T2Large,
        InstanceType::M4XLarge,
    ];
    for i in 0..FLEET {
        // A mix of healthy and struggling databases: every third database
        // runs an adulterated workload that genuinely needs tuning.
        let needs_tuning = i % 3 == 0;
        let base = tpcc(1.0);
        let catalog = base.catalog().clone();
        let workload: Box<dyn QuerySource + Send> = if needs_tuning {
            Box::new(AdulteratedWorkload::new(base, 0.4))
        } else {
            Box::new(base)
        };
        let node = ManagedDatabase::new(
            DbFlavor::Postgres,
            plans[i % plans.len()],
            DiskKind::Ssd,
            catalog,
            workload,
            ArrivalProcess::Constant(200.0),
            policy,
            autodbaas::tuner::WorkloadId(0), // reassigned by add_node
            TdeConfig::default(),
            seed ^ (i as u64 * 31),
        );
        sim.add_node(node, &format!("db-{i}"));
    }
    sim
}

fn main() {
    println!("== Fleet tuning: {FLEET} databases, {HOURS} h, 4 tuner instances ==\n");
    println!(
        "{:<22} {:>14} {:>16} {:>18}",
        "policy", "tuning reqs", "reqs/db/hour", "tuner backlog (s)"
    );
    for (name, policy) in [
        ("TDE-driven", TuningPolicy::TdeDriven),
        ("periodic 5 min", TuningPolicy::Periodic(5 * MILLIS_PER_MIN)),
        (
            "periodic 10 min",
            TuningPolicy::Periodic(10 * MILLIS_PER_MIN),
        ),
    ] {
        let mut sim = build_fleet(policy, 7);
        // Bootstrap the BO tuner offline, as the paper does (§5), so its
        // first recommendations are already useful.
        sim.seed_offline_training(&tpcc(1.0), DbFlavor::Postgres, 20);
        sim.seed_offline_training(&autodbaas::workload::chbench(1.0), DbFlavor::Postgres, 20);
        sim.run_for(HOURS * 60 * MILLIS_PER_MIN);
        let reqs = sim.director.total_requests();
        let per_db_hour = reqs as f64 / FLEET as f64 / HOURS as f64;
        let backlog_s = sim.director.backlog_ms(sim.now()) / 1000.0;
        println!("{name:<22} {reqs:>14} {per_db_hour:>16.2} {backlog_s:>18.1}");
    }
    println!("\nLower is better on every column: the TDE fleet only asks when a");
    println!("database is actually throttling, so the same tuner deployment can");
    println!("serve far more databases before its queue builds up.");
}
