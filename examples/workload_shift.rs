//! Workload-shift detection (the Fig. 14 / Table 1 scenario, miniature).
//!
//! One PostgreSQL instance has several datasets loaded. The executing
//! workload switches (YCSB → TPCC → TPCH), and the TDE's throttle signals
//! show how quickly — and through which knob classes — it notices each
//! change without any explicit notification.
//!
//! ```sh
//! cargo run --release --example workload_shift
//! ```

use autodbaas::prelude::*;
use autodbaas::simdb::Catalog;
use autodbaas::tde::TdeConfig;
use rand::rngs::StdRng;

fn main() {
    // Load all three datasets into one catalog, rebasing table ids.
    let mut ycsb_wl = ycsb(2.0);
    let mut tpcc_wl = tpcc(2.0);
    let mut tpch_wl = autodbaas::workload::tpch(2.0);
    let mut catalog = Catalog::new();
    let mut offset = 0u32;
    for wl in [&mut ycsb_wl, &mut tpcc_wl, &mut tpch_wl] {
        wl.rebase_tables(offset);
        for t in wl.catalog().clone().iter() {
            catalog.add_table(
                format!("{}_{}", wl.name(), t.name),
                t.rows,
                t.row_bytes,
                t.indexes,
            );
        }
        offset += wl.catalog().len() as u32;
    }

    let mut db = SimDatabase::new(
        DbFlavor::Postgres,
        InstanceType::M4XLarge,
        DiskKind::Ssd,
        catalog,
        11,
    );
    let mut tde = Tde::new(&db.profile().clone(), TdeConfig::default(), 5);
    let mut rng = StdRng::seed_from_u64(2);

    println!("== Workload-shift detection ==");
    println!(
        "{:<8} {:<10} {:>7} {:>7} {:>7}  detected classes",
        "minute", "workload", "mem", "bgwr", "async"
    );

    let phases: [(&str, &MixWorkload, u64, u64); 3] = [
        ("ycsb", &ycsb_wl, 300, 6),
        ("tpcc", &tpcc_wl, 200, 6),
        ("tpch", &tpch_wl, 4, 6),
    ];
    let mut minute = 0u64;
    for (name, wl, rate, minutes) in phases {
        // The TDE is NOT told about the switch; detection is organic.
        for _ in 0..minutes {
            let before = tde.throttle_counts();
            for _ in 0..60 {
                let q = wl.next_query(&mut rng);
                let _ = db.submit(&q, rate.max(1));
                db.tick(1_000);
            }
            let report = tde.run(&mut db, None);
            let after = tde.throttle_counts();
            let classes: Vec<String> = report
                .throttles
                .iter()
                .map(|t| t.class.to_string())
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect();
            println!(
                "{:<8} {:<10} {:>7} {:>7} {:>7}  {}",
                minute,
                name,
                after[0] - before[0],
                after[1] - before[1],
                after[2] - before[2],
                if classes.is_empty() {
                    "-".to_string()
                } else {
                    classes.join(", ")
                }
            );
            minute += 1;
        }
    }
    println!("\nYCSB (point reads/updates, no sorts) runs clean; the switch to");
    println!("TPCH (100 MB-class sorts/joins) lights up the memory class within");
    println!("one observation window — the Fig. 14 effect.");
}
