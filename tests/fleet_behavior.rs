//! Fleet-level integration: the §5 behaviours the figure harnesses measure,
//! asserted at small scale so they run in CI time.

use autodbaas::cloudsim::{FleetConfig, FleetSim, ManagedDatabase};
use autodbaas::prelude::*;
use autodbaas::tde::TdeConfig;
use autodbaas::telemetry::MILLIS_PER_MIN;
use autodbaas::tuner::WorkloadId;

fn node(policy: TuningPolicy, adulterated: bool, seed: u64) -> ManagedDatabase {
    let base = tpcc(0.5);
    let catalog = base.catalog().clone();
    let workload: Box<dyn QuerySource + Send> = if adulterated {
        Box::new(AdulteratedWorkload::new(base, 0.4))
    } else {
        Box::new(base)
    };
    ManagedDatabase::new(
        DbFlavor::Postgres,
        InstanceType::M4Large,
        DiskKind::Ssd,
        catalog,
        workload,
        ArrivalProcess::Constant(150.0),
        policy,
        WorkloadId(0),
        TdeConfig::default(),
        seed,
    )
}

fn fleet(policy: TuningPolicy, gate: bool, seed: u64) -> FleetSim {
    let mut sim = FleetSim::new(
        FleetConfig {
            gate_samples_with_tde: gate,
            seed,
            ..FleetConfig::default()
        },
        3,
    );
    sim.seed_offline_training(&tpcc(0.5), DbFlavor::Postgres, 10);
    for i in 0..6 {
        sim.add_node(
            node(policy, i % 3 == 0, seed ^ (i * 101) as u64),
            &format!("db-{i}"),
        );
    }
    sim
}

#[test]
fn tde_policy_undercuts_periodic_polling() {
    // Two hours: the first is tuning burn-in (TDE requests legitimately
    // spike while databases are untuned), the second is steady state.
    let mut tde_sim = fleet(TuningPolicy::TdeDriven, true, 42);
    tde_sim.run_for(120 * MILLIS_PER_MIN);
    let tde_reqs = tde_sim.director.total_requests();

    let mut periodic_sim = fleet(TuningPolicy::Periodic(5 * MILLIS_PER_MIN), true, 42);
    periodic_sim.run_for(120 * MILLIS_PER_MIN);
    let periodic_reqs = periodic_sim.director.total_requests();

    assert!(
        tde_reqs < periodic_reqs,
        "TDE-driven ({tde_reqs}) must undercut 5-min periodic ({periodic_reqs})"
    );
    // And the TDE fleet's tuner queue stays shorter.
    assert!(
        tde_sim.director.backlog_ms(tde_sim.now())
            <= periodic_sim.director.backlog_ms(periodic_sim.now())
    );
}

#[test]
fn gated_sampling_keeps_repository_clean() {
    let mut gated = fleet(TuningPolicy::TdeDriven, true, 7);
    gated.run_for(45 * MILLIS_PER_MIN);
    let mut ungated = fleet(TuningPolicy::Periodic(5 * MILLIS_PER_MIN), false, 7);
    ungated.run_for(45 * MILLIS_PER_MIN);

    // Ungated capture records every window; gated only throttle windows.
    let gated_live: usize = gated
        .repo
        .iter()
        .filter(|w| !w.offline)
        .map(|w| w.samples.len())
        .sum();
    let ungated_live: usize = ungated
        .repo
        .iter()
        .filter(|w| !w.offline)
        .map(|w| w.samples.len())
        .sum();
    assert!(
        gated_live < ungated_live,
        "gating must reduce sample volume ({gated_live} vs {ungated_live})"
    );
    // And everything the gate admits is certified high quality.
    for w in gated.repo.iter().filter(|w| !w.offline) {
        for s in &w.samples {
            assert_eq!(s.quality, autodbaas::tuner::SampleQuality::High);
        }
    }
}

#[test]
fn recommendations_move_struggling_databases_forward() {
    let mut sim = fleet(TuningPolicy::TdeDriven, true, 21);
    // Capture the struggling node's default throughput first.
    sim.run_for(10 * MILLIS_PER_MIN);
    let early = sim.nodes[0].prev_objective;
    sim.run_for(80 * MILLIS_PER_MIN);
    let late = sim.nodes[0].prev_objective;
    // The adulterated node 0 should at least hold its ground (and usually
    // improve) once recommendations land.
    assert!(
        late >= early * 0.8,
        "tuning must not regress the struggling node ({early:.0} -> {late:.0} qps)"
    );
    assert!(
        sim.nodes[0].prev_action.is_some(),
        "a recommendation should have been applied"
    );
}

#[test]
fn fleet_simulation_is_deterministic_under_seed() {
    let run = |seed| {
        let mut sim = fleet(TuningPolicy::TdeDriven, true, seed);
        sim.run_for(20 * MILLIS_PER_MIN);
        (
            sim.director.total_requests(),
            sim.nodes
                .iter()
                .map(|n| n.queries_submitted)
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(5), run(5));
    assert_ne!(run(5).1, run(6).1, "different seeds must differ");
}
