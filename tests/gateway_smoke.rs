//! End-to-end gateway smoke test over a real loopback socket.
//!
//! A miniature of what `autodbaas-loadgen` does at scale: start the
//! gateway in-process, drive the full tenant lifecycle (register → push
//! metrics windows → fetch a recommendation → ack) from several
//! concurrent connections, and check the three edge behaviours the
//! service boundary exists for — TDE suppression of unthrottled windows,
//! token-bucket `Busy` shedding for an over-quota tenant, and graceful
//! drain.

use autodbaas_gateway::{
    serve, AdmissionConfig, GatewayClient, GatewayState, Request, Response, RouterConfig,
    ServerConfig, WallClock, WireDecision,
};
use std::sync::Arc;
use std::time::Duration;

fn start(admission: AdmissionConfig, workers: usize) -> autodbaas_gateway::GatewayHandle {
    let state = GatewayState::new(RouterConfig {
        admission,
        ..RouterConfig::default()
    });
    serve(
        "127.0.0.1:0",
        state,
        ServerConfig {
            workers,
            ..ServerConfig::default()
        },
        Arc::new(WallClock::new()),
    )
    .expect("bind loopback")
}

fn connect(handle: &autodbaas_gateway::GatewayHandle) -> GatewayClient {
    let mut c = GatewayClient::connect(handle.addr()).expect("connect");
    c.set_timeout(Duration::from_secs(10)).expect("timeout");
    c
}

fn register(client: &mut GatewayClient, seed: u64) -> u64 {
    match client.call(&Request::RegisterService {
        flavor: 0,
        instance: 4, // M4XLarge
        disk: 0,
        n_slaves: 1,
        seed,
    }) {
        Ok(Response::Registered { tenant }) => tenant,
        other => panic!("register failed: {other:?}"),
    }
}

#[test]
fn full_tenant_lifecycle_across_concurrent_connections() {
    let handle = start(AdmissionConfig::default(), 4);
    let addr_handle = &handle;

    std::thread::scope(|s| {
        for worker in 0..4u64 {
            s.spawn(move || {
                let mut client = connect(addr_handle);
                let tenant = register(&mut client, 1000 + worker);

                // Throttled windows with a spiky class mix: the TDE must
                // forward the first and eventually a recommendation lands.
                let mut forwarded = 0u32;
                for w in 0..6u64 {
                    let at = w * 3_600_000;
                    match client
                        .call(&Request::PushMetricsWindow {
                            tenant,
                            window_start: at,
                            window_ms: 3_600_000,
                            class_counts: [900 + w * 50, 40, 10, 5, 1, 0],
                            throttled: true,
                            knob_at_cap: false,
                        })
                        .expect("push window")
                    {
                        Response::Classified {
                            decision,
                            submitted,
                            ..
                        } => {
                            if submitted {
                                forwarded += 1;
                                assert_eq!(decision, WireDecision::Forward);
                            }
                        }
                        other => panic!("expected Classified, got {other:?}"),
                    }
                }
                assert!(forwarded >= 1, "no throttled window was ever forwarded");

                // An unthrottled window must never submit a tuning request.
                match client
                    .call(&Request::PushMetricsWindow {
                        tenant,
                        window_start: 7 * 3_600_000,
                        window_ms: 3_600_000,
                        class_counts: [800, 50, 10, 5, 1, 0],
                        throttled: false,
                        knob_at_cap: false,
                    })
                    .expect("push calm window")
                {
                    Response::Classified { submitted, .. } => {
                        assert!(!submitted, "unthrottled window reached the tuner fleet");
                    }
                    other => panic!("expected Classified, got {other:?}"),
                }

                // Far enough in the future, the recommendation is ready.
                match client
                    .call(&Request::FetchRecommendation {
                        tenant,
                        now: u64::MAX,
                    })
                    .expect("fetch")
                {
                    Response::Recommendation {
                        ready, unit_config, ..
                    } => {
                        assert!(ready, "forwarded request produced no recommendation");
                        assert!(!unit_config.is_empty());
                        assert!(unit_config.iter().all(|v| (0.0..1.0).contains(v)));
                    }
                    other => panic!("expected Recommendation, got {other:?}"),
                }

                match client
                    .call(&Request::ApplyAck {
                        tenant,
                        at: 8 * 3_600_000,
                        ok: true,
                    })
                    .expect("ack")
                {
                    Response::ApplyRecorded => {}
                    other => panic!("expected ApplyRecorded, got {other:?}"),
                }
            });
        }
    });

    let state = handle.shutdown();
    let s = state.lock();
    let (served, _busy, errors) = s.counters();
    assert!(served >= 4 * 9, "served only {served} requests");
    assert_eq!(errors, 0, "protocol errors on a clean run");
    let (greq, _gbusy, gin, gout) = s.meter().gateway_totals();
    assert!(greq >= 4 * 8, "tenant-billed requests missing: {greq}");
    assert!(gin > 0 && gout > 0, "byte counters did not accumulate");
}

#[test]
fn over_quota_tenant_is_shed_with_busy() {
    // 2 tokens of burst refilled at 1/s: the third rapid-fire request of
    // any tenant must get `Busy` with a retry hint, and the gateway must
    // keep serving other tenants.
    let handle = start(
        AdmissionConfig {
            burst: 2.0,
            rate_per_sec: 1.0,
        },
        2,
    );
    let mut greedy = connect(&handle);
    let tenant = register(&mut greedy, 7);

    let mut busy_seen = 0u32;
    for _ in 0..8 {
        match greedy
            .call(&Request::FetchRecommendation { tenant, now: 0 })
            .expect("call")
        {
            Response::Busy { retry_after_ms } => {
                assert!(retry_after_ms > 0, "Busy must carry a retry hint");
                busy_seen += 1;
            }
            Response::Recommendation { .. } => {}
            other => panic!("unexpected reply: {other:?}"),
        }
    }
    assert!(
        busy_seen >= 5,
        "bucket of 2 should shed most of 8 rapid calls"
    );

    // A different tenant's bucket is untouched.
    let mut polite = connect(&handle);
    let other = register(&mut polite, 8);
    match polite
        .call(&Request::FetchRecommendation {
            tenant: other,
            now: 0,
        })
        .expect("call")
    {
        Response::Recommendation { .. } => {}
        other => panic!("politeness not rewarded: {other:?}"),
    }

    let state = handle.shutdown();
    let s = state.lock();
    let (_, busy, _) = s.counters();
    assert!(
        u64::from(busy_seen) <= busy,
        "router busy counter undercounts"
    );
    let (_, gbusy, _, _) = s.meter().gateway_totals();
    assert!(
        gbusy >= u64::from(busy_seen),
        "Busy replies were not billed"
    );
}

#[test]
fn drain_finishes_in_flight_work_then_refuses() {
    let handle = start(AdmissionConfig::default(), 2);
    let addr = handle.addr();
    let mut client = connect(&handle);
    assert_eq!(
        client.call(&Request::Health).expect("health"),
        Response::Healthy { draining: false }
    );
    let state = handle.shutdown();
    assert!(state.lock().draining, "drain flag not set");
    // Post-drain connections either fail to connect or get no service.
    if let Ok(mut late) = GatewayClient::connect(addr) {
        let _ = late.set_timeout(Duration::from_millis(500));
        assert!(
            late.call(&Request::Health).is_err(),
            "gateway served a request after drain"
        );
    }
}
