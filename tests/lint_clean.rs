//! Tier-1 gate: the workspace's own sources must pass detlint.
//!
//! Any determinism or robustness regression (wall-clock reads in the
//! simulation, hash-order iteration feeding results, runtime unwraps in the
//! control plane, …) fails this test with the same diagnostics the CLI
//! prints, so `cargo test -q` alone is enough to catch it.

use std::path::Path;

#[test]
fn workspace_is_detlint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = autodbaas_lint::run_workspace(root, None)
        .unwrap_or_else(|e| panic!("detlint failed to run: {e}"));
    assert!(
        report.files_scanned > 0,
        "detlint scanned no files — workspace walk is broken"
    );
    assert!(
        report.is_clean(),
        "detlint found active violations:\n{}",
        autodbaas_lint::render_human(&report)
    );
}

#[test]
fn baseline_has_no_stale_entries() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = autodbaas_lint::run_workspace(root, None)
        .unwrap_or_else(|e| panic!("detlint failed to run: {e}"));
    assert!(
        report.stale_baseline.is_empty(),
        "lint_baseline.toml entries no longer match any finding (fixed code \
         must shed its baseline entry): {:?}",
        report.stale_baseline
    );
}
