//! Tier-1 gate: the workspace's own sources must pass detlint.
//!
//! Any determinism or robustness regression (wall-clock reads in the
//! simulation, hash-order iteration feeding results, runtime unwraps in the
//! control plane, …) fails this test with the same diagnostics the CLI
//! prints, so `cargo test -q` alone is enough to catch it.
//!
//! The second half pins the interprocedural rules (R003/R004/S002/D006)
//! against known-bad fixtures in `crates/lint/tests/fixtures/` — each rule
//! must fire on its fixture (proving the gate above is not clean merely
//! because an analysis went blind) and the fixtures' clean counterparts
//! must stay silent.

use autodbaas_lint::{lint_sources, Disposition, SourceFile};
use std::path::Path;

#[test]
fn workspace_is_detlint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = autodbaas_lint::run_workspace(root, None)
        .unwrap_or_else(|e| panic!("detlint failed to run: {e}"));
    assert!(
        report.files_scanned > 0,
        "detlint scanned no files — workspace walk is broken"
    );
    assert!(
        report.is_clean(),
        "detlint found active violations:\n{}",
        autodbaas_lint::render_human(&report)
    );
}

#[test]
fn baseline_has_no_stale_entries() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = autodbaas_lint::run_workspace(root, None)
        .unwrap_or_else(|e| panic!("detlint failed to run: {e}"));
    assert!(
        report.stale_baseline.is_empty(),
        "lint_baseline.toml entries no longer match any finding (fixed code \
         must shed its baseline entry): {:?}",
        report.stale_baseline
    );
}

/// Lint a synthetic workspace of fixture files and return the active
/// findings for one rule.
fn fixture_findings(rule: &str, files: &[(&str, &str)]) -> Vec<autodbaas_lint::rules::Finding> {
    let sources: Vec<SourceFile> = files
        .iter()
        .map(|(path, src)| SourceFile {
            path: path.to_string(),
            crate_name: autodbaas_lint::crate_of(path).to_string(),
            src: src.to_string(),
        })
        .collect();
    lint_sources(&sources)
        .diagnostics
        .into_iter()
        .filter(|d| d.disposition == Disposition::Active && d.finding.rule == rule)
        .map(|d| d.finding)
        .collect()
}

#[test]
fn r003_fixture_reports_the_full_cross_crate_chain() {
    let findings = fixture_findings(
        "R003",
        &[
            (
                "crates/ctrlplane/src/fixture_entry.rs",
                include_str!("../crates/lint/tests/fixtures/r003_entry.rs"),
            ),
            (
                "crates/simdb/src/lib.rs",
                include_str!("../crates/lint/tests/fixtures/r003_apply.rs"),
            ),
        ],
    );
    assert_eq!(
        findings.len(),
        1,
        "exactly the one seeded panic: {findings:#?}"
    );
    let f = &findings[0];
    assert!(f.snippet.contains("pending.unwrap()"), "{f:#?}");
    let chain: Vec<&str> = f.chain.iter().map(|h| h.function.as_str()).collect();
    assert_eq!(
        chain,
        [
            "ctrlplane::fixture_entry::reconcile_fixture",
            "ctrlplane::fixture_entry::plan_step",
            "simdb::apply_knobs",
        ],
        "chain must run entry -> private hop -> cross-crate panic"
    );
    assert!(f.message.contains("reconcile_fixture"), "{}", f.message);
}

#[test]
fn r003_fixture_treats_backend_tick_impls_as_entry_points() {
    let findings = fixture_findings(
        "R003",
        &[(
            "crates/simdb/src/backend/fixture_adapter.rs",
            include_str!("../crates/lint/tests/fixtures/r003_backend.rs"),
        )],
    );
    assert_eq!(
        findings.len(),
        1,
        "the trait tick impl must root exactly one chain: {findings:#?}"
    );
    let f = &findings[0];
    assert!(f.snippet.contains("pending.unwrap()"), "{f:#?}");
    let chain: Vec<&str> = f.chain.iter().map(|h| h.function.as_str()).collect();
    assert_eq!(
        chain,
        [
            "simdb::backend::fixture_adapter::FixtureEngine::tick",
            "simdb::backend::fixture_adapter::advance_clock",
        ],
        "chain must be rooted at the Backend trait impl, not the inherent helper"
    );
    assert!(f.message.contains("tick"), "{}", f.message);
}

#[test]
fn r004_fixture_reports_panic_blocking_and_double_lock() {
    let findings = fixture_findings(
        "R004",
        &[(
            "crates/cloudsim/src/fixture_locks.rs",
            include_str!("../crates/lint/tests/fixtures/r004_locks.rs"),
        )],
    );
    assert_eq!(
        findings.len(),
        3,
        "panic + blocking + re-lock: {findings:#?}"
    );
    let messages: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
    assert!(messages.iter().any(|m| m.contains("panic")), "{messages:?}");
    assert!(messages.iter().any(|m| m.contains("block")), "{messages:?}");
    assert!(
        messages.iter().any(|m| m.contains("re-locks")),
        "{messages:?}"
    );
    // `drops_before_blocking` also calls `recv()` after an explicit
    // `drop(guard)` — a fourth finding there would fail the count above.
}

#[test]
fn s002_fixture_flags_only_the_undocumented_block() {
    let findings = fixture_findings(
        "S002",
        &[(
            "crates/cloudsim/src/fixture_unsafe.rs",
            include_str!("../crates/lint/tests/fixtures/s002_unsafe.rs"),
        )],
    );
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert!(
        findings[0].snippet.contains("unsafe"),
        "finding must anchor on the undocumented block: {findings:#?}"
    );
}

#[test]
fn d006_fixture_traces_wall_clock_into_the_event_log() {
    let findings = fixture_findings(
        "D006",
        &[(
            "crates/cloudsim/src/fixture_taint.rs",
            include_str!("../crates/lint/tests/fixtures/d006_taint.rs"),
        )],
    );
    assert_eq!(findings.len(), 1, "{findings:#?}");
    let f = &findings[0];
    assert!(f.snippet.contains("emit"), "{f:#?}");
    let chain: Vec<&str> = f.chain.iter().map(|h| h.function.as_str()).collect();
    assert_eq!(
        chain,
        [
            "cloudsim::fixture_taint::TaintFixture::flush",
            "cloudsim::fixture_taint::stamp_ms",
        ],
        "chain must run sink fn -> source fn"
    );
    assert!(f.message.contains("wall-clock"), "{}", f.message);
}
