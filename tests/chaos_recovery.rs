//! Chaos-recovery integration tests: the self-healing control plane under
//! deterministic fault injection.
//!
//! Each test pins one recovery path with an explicit [`FaultPlan`] schedule
//! (so the failure lands at a known tick) and asserts the control plane
//! drives the service back to health: lost responses time out into
//! backoff-retries, tuner outages end in stale-response drops rather than
//! double-applies, VM crashes fail over (HA) or restart (single node),
//! lag-refused applies park and land later, and regressions roll back to
//! the pre-apply config. A final smoke runs the standard fault plan twice
//! and requires the event logs to match bit-for-bit — chaos here is
//! replayable, so any failure these tests ever find is debuggable.

use autodbaas::cloudsim::{
    FaultEvent, FaultKind, FaultPlan, FleetConfig, FleetSim, ManagedDatabase, RollbackGuard,
    RollbackPolicy,
};
use autodbaas::prelude::*;
use autodbaas::telemetry::MILLIS_PER_MIN;
use autodbaas::tuner::WorkloadId;

/// A fleet tuned for fast, deterministic chaos tests: 1 s ticks, 1-minute
/// TDE windows, and a request timeout tight enough that a single lost
/// response is detected within the run.
fn chaos_config(seed: u64) -> FleetConfig {
    FleetConfig {
        tick_ms: 1_000,
        tde_period_ms: MILLIS_PER_MIN,
        tuner: TunerKind::Rl, // fixed 50 ms service time: request timing is exact
        seed,
        request_timeout_ms: 30_000,
        retry_base_ms: 5_000,
        ..FleetConfig::default()
    }
}

fn managed_node(seed: u64, policy: TuningPolicy, qps: f64) -> ManagedDatabase {
    let wl = tpcc(1.0);
    let catalog = wl.catalog().clone();
    ManagedDatabase::new(
        DbFlavor::Postgres,
        InstanceType::M4Large,
        DiskKind::Ssd,
        catalog,
        Box::new(wl),
        ArrivalProcess::Constant(qps),
        policy,
        WorkloadId(0),
        TdeConfig::default(),
        seed,
    )
}

/// Regression test for the stuck-flag hazard: before the in-flight
/// deadline existed, a recommendation lost in transit left the old
/// `pending_request` flag set forever and the node never tuned again. Now
/// the deadline expires the request, backoff schedules a retry, and the
/// retried request completes.
#[test]
fn lost_response_times_out_retries_and_recovers() {
    let mut sim = FleetSim::new(chaos_config(11), 4);
    sim.add_node(
        managed_node(11, TuningPolicy::Periodic(2 * MILLIS_PER_MIN), 200.0),
        "db-0",
    );
    // The periodic policy submits at t=120 s; the response is promised
    // ~50 ms later and would be delivered at t=121 s — where this fault
    // intercepts it.
    sim.enable_chaos(FaultPlan::new(vec![FaultEvent {
        at: 121_000,
        node: 0,
        kind: FaultKind::RequestLoss,
    }]));
    sim.run_for(5 * MILLIS_PER_MIN);

    assert_eq!(sim.events.count("fault.request_loss"), 1);
    assert_eq!(
        sim.events.count("request.timeout"),
        1,
        "the lost response must expire via the deadline"
    );
    assert_eq!(
        sim.events.count("request.retry"),
        1,
        "the expired request must be retried"
    );
    assert_eq!(sim.events.count("request.stale_dropped"), 0);
    assert!(
        sim.events.count("apply.ok") >= 1,
        "the retried request must complete and apply: events {:?}",
        sim.events.events()
    );
    assert!(
        sim.wedged_nodes().is_empty(),
        "a lost response must never wedge the control loop"
    );
}

/// A tuner-service outage holds responses while nodes time out and retry;
/// when the service returns, the late responses for already-retried
/// requests must be dropped as stale (never double-applied) and the loop
/// must end healthy.
#[test]
fn tuner_outage_drops_stale_responses_without_wedging() {
    let mut sim = FleetSim::new(chaos_config(23), 4);
    sim.add_node(
        managed_node(23, TuningPolicy::Periodic(2 * MILLIS_PER_MIN), 200.0),
        "db-0",
    );
    // Outage lands right after the t=120 s request is submitted and lasts
    // 2 minutes: the node times out and retries into the dead service
    // several times before it returns.
    sim.enable_chaos(FaultPlan::new(vec![FaultEvent {
        at: 121_000,
        node: 0,
        kind: FaultKind::TunerOutage {
            duration_ms: 2 * MILLIS_PER_MIN,
        },
    }]));
    sim.run_for(6 * MILLIS_PER_MIN);

    assert_eq!(sim.events.count("fault.tuner_outage"), 1);
    assert!(
        sim.events.count("request.timeout") >= 2,
        "requests into the outage must keep timing out: events {:?}",
        sim.events.events()
    );
    assert!(
        sim.events.count("request.stale_dropped") >= 1,
        "held responses for retried requests must be dropped as stale"
    );
    assert!(sim.wedged_nodes().is_empty());
}

/// VM crash, both service shapes at once: the HA service fails over to
/// its most-caught-up slave (and the demoted master rejoins after WAL
/// recovery), the single-node service restarts through crash recovery.
#[test]
fn vm_crash_fails_over_with_ha_and_restarts_without() {
    let mut sim = FleetSim::new(chaos_config(37), 4);
    sim.add_node(managed_node(37, TuningPolicy::TdeDriven, 200.0), "solo");
    sim.add_node(
        managed_node(38, TuningPolicy::TdeDriven, 200.0).with_slaves(2),
        "ha",
    );
    sim.enable_chaos(FaultPlan::new(vec![
        FaultEvent {
            at: 30_000,
            node: 0,
            kind: FaultKind::VmCrash,
        },
        FaultEvent {
            at: 30_000,
            node: 1,
            kind: FaultKind::VmCrash,
        },
    ]));
    sim.run_for(3 * MILLIS_PER_MIN);

    assert_eq!(sim.events.count("fault.vm_crash"), 2);
    assert_eq!(
        sim.events.count("recover.failover"),
        1,
        "the HA service must promote a slave"
    );
    assert_eq!(
        sim.events.count("recover.rejoined"),
        1,
        "the demoted master must rejoin as a replica"
    );
    assert_eq!(
        sim.events.count("recover.restarted"),
        1,
        "the single node must come back through crash recovery"
    );
    assert!(!sim.nodes[0].db().is_down());
    assert!(!sim.nodes[1].db().is_down());
    // Failover is instantaneous for the HA service, so only the solo
    // node's recovery window costs availability.
    assert!((sim.nodes[1].availability() - 1.0).abs() < 1e-12);
    assert!(sim.nodes[0].availability() < 1.0);
    assert!(sim.availability() > 0.9, "{}", sim.availability());
    assert!(sim.wedged_nodes().is_empty());
    assert!(sim.drifted_nodes().is_empty());
}

/// A replica-lag spike makes the HA guard refuse the apply; the
/// recommendation parks for a backoff-retry and lands once the replica
/// catches up — it is not thrown away and it does not wedge the loop.
#[test]
fn lagging_replica_defers_apply_until_caught_up() {
    let mut cfg = chaos_config(53);
    cfg.max_apply_lag_bytes = 1; // any visible lag refuses the apply
    let mut sim = FleetSim::new(cfg, 4);
    sim.add_node(
        managed_node(53, TuningPolicy::Periodic(2 * MILLIS_PER_MIN), 250.0).with_slaves(1),
        "ha",
    );
    // Pause replay just before the t=120 s recommendation arrives: WAL
    // accumulates on the paused slave, the lag guard refuses the apply.
    sim.enable_chaos(FaultPlan::new(vec![FaultEvent {
        at: 110_000,
        node: 0,
        kind: FaultKind::ReplicaLagSpike { pause_ms: 60_000 },
    }]));
    sim.run_for(6 * MILLIS_PER_MIN);

    assert_eq!(sim.events.count("fault.replica_lag_spike"), 1);
    assert!(
        sim.events.count("apply.lag_deferred") >= 1,
        "the lag guard must park the apply: events {:?}",
        sim.events.events()
    );
    assert!(
        sim.events.count("apply.ok") >= 1,
        "the parked apply must land after the replica catches up"
    );
    assert!(sim.wedged_nodes().is_empty());
    assert!(sim.drifted_nodes().is_empty());
}

/// The safe-tuning guard: a config whose observation windows regress the
/// objective beyond the policy threshold is rolled back to the pre-apply
/// config (and re-persisted); a config that holds its baseline is accepted
/// after the configured number of clean windows.
#[test]
fn rollback_guard_restores_pre_apply_config_and_accepts_clean_ones() {
    let mut cfg = chaos_config(71);
    cfg.apply_recommendations = false; // only the guard moves knobs here
    cfg.rollback = Some(RollbackPolicy {
        regression_frac: 0.25,
        observe_windows: 3,
    });
    let mut sim = FleetSim::new(cfg, 4);
    sim.add_node(managed_node(71, TuningPolicy::TdeDriven, 200.0), "db-0");
    sim.run_for(2 * MILLIS_PER_MIN + 5_000);

    // Simulate a freshly applied bad recommendation: the live config moved
    // away from `original` and the window baseline is far above anything
    // this workload can produce, so the next window is a clear regression.
    let profile = sim.nodes[0].db().profile().clone();
    let wm = profile.lookup("work_mem").unwrap();
    let original = sim.nodes[0].db().knobs().clone();
    sim.nodes[0]
        .db_mut()
        .set_knob_direct(wm, original.get(wm) * 4.0);
    sim.nodes[0].guard = Some(RollbackGuard {
        baseline: 1e9,
        revert_to: original.clone(),
        windows_left: 3,
    });
    sim.run_for(MILLIS_PER_MIN);

    assert_eq!(
        sim.events.count("tune.rollback"),
        1,
        "the regressed window must trigger a rollback"
    );
    assert!(
        (sim.nodes[0].db().knobs().get(wm) - original.get(wm)).abs() < 1e-9,
        "rollback must restore the pre-apply config"
    );
    assert!(sim.nodes[0].guard.is_none());
    assert!(
        sim.drifted_nodes().is_empty(),
        "the rolled-back config must be the persisted config of record"
    );

    // Acceptance path: a guard whose baseline any window clears is
    // disarmed after its clean observation windows, with no rollback.
    sim.nodes[0].guard = Some(RollbackGuard {
        baseline: 0.0,
        revert_to: original,
        windows_left: 2,
    });
    sim.run_for(3 * MILLIS_PER_MIN + 5_000);
    assert_eq!(sim.events.count("tune.rollback"), 1, "no second rollback");
    assert!(
        sim.nodes[0].guard.is_none(),
        "a clean config must be accepted and the guard disarmed"
    );
}

/// Fast chaos smoke over the standard fault plan: the fleet must absorb
/// the full rotation and end with every service serving, no drift and no
/// wedged loop — and the run must be bit-for-bit reproducible (same seed,
/// same plan, same event-log fingerprint) while a different plan perturbs
/// the log. The full-size version of this run is the Fig. 16 harness.
#[test]
fn standard_fault_plan_is_survivable_and_replayable() {
    let run = |seed: u64, plan: FaultPlan| -> FleetSim {
        let mut sim = FleetSim::new(chaos_config(seed), 4);
        sim.add_node(
            managed_node(seed, TuningPolicy::Periodic(2 * MILLIS_PER_MIN), 150.0),
            "solo",
        );
        sim.add_node(
            managed_node(
                seed ^ 0x9e37,
                TuningPolicy::Periodic(2 * MILLIS_PER_MIN),
                150.0,
            )
            .with_slaves(1),
            "ha",
        );
        sim.enable_chaos(plan);
        sim.run_for(8 * MILLIS_PER_MIN);
        // Quiet-down: covers the watcher timeout and every pending retry.
        sim.run_for(4 * MILLIS_PER_MIN);
        sim
    };

    let plan = FaultPlan::standard(2, 8 * MILLIS_PER_MIN);
    let a = run(5, plan.clone());
    let b = run(5, plan);
    let c = run(5, FaultPlan::generate(99, 2, 8 * MILLIS_PER_MIN, 12));

    assert!(a.events.count_prefix("fault.") > 0);
    assert!(
        a.wedged_nodes().is_empty() && a.drifted_nodes().is_empty(),
        "standard plan: wedged {:?} drifted {:?}",
        a.wedged_nodes(),
        a.drifted_nodes()
    );
    assert!(a.availability() > 0.9, "{}", a.availability());
    assert_eq!(
        a.events.fingerprint(),
        b.events.fingerprint(),
        "same seed + same plan must replay bit-for-bit"
    );
    assert_ne!(
        a.events.fingerprint(),
        c.events.fingerprint(),
        "a different plan must perturb the event log"
    );
    assert!(
        c.wedged_nodes().is_empty() && c.drifted_nodes().is_empty(),
        "seeded random plan: wedged {:?} drifted {:?}",
        c.wedged_nodes(),
        c.drifted_nodes()
    );
}
