//! Integration tests for the extension features: the adaptive observation
//! period and the hybrid tuner, run against real simulated databases.

use autodbaas::prelude::*;
use autodbaas::simdb::MetricId;
use autodbaas::tde::{AdaptivePeriod, Tde, TdeConfig};
use autodbaas::tuner::{
    normalize_config, HybridBackend, HybridConfig, HybridTuner, Sample, SampleQuality,
    WorkloadRepository,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn drive(db: &mut SimDatabase, wl: &dyn QuerySource, rng: &mut StdRng, secs: u64, rate: u64) {
    for _ in 0..secs {
        for _ in 0..8 {
            let q = wl.next_query(rng);
            let _ = db.submit(&q, (rate / 8).max(1));
        }
        db.tick(1_000);
    }
}

/// The adaptive period backs off on a healthy database and tightens the
/// moment a demanding workload arrives — fewer TDE runs for the same
/// detection latency.
#[test]
fn adaptive_period_backs_off_then_reacts() {
    let healthy = tpcc(0.5);
    let demanding = AdulteratedWorkload::new(tpcc(0.5), 0.5);
    let mut db = SimDatabase::new(
        DbFlavor::Postgres,
        InstanceType::M4XLarge,
        DiskKind::Ssd,
        healthy.catalog().clone(),
        1,
    );
    let mut tde = Tde::new(&db.profile().clone(), TdeConfig::default(), 2);
    let mut period = AdaptivePeriod::new(60_000, 480_000);
    let mut rng = StdRng::seed_from_u64(3);

    // 40 minutes of healthy traffic: the period must stretch and the run
    // count stay far below the fixed-cadence equivalent (40 runs).
    let mut runs_healthy = 0;
    for _ in 0..40 {
        drive(&mut db, &healthy, &mut rng, 60, 200);
        if period.due(db.now()) {
            let r = tde.run(&mut db, None);
            period.record(db.now(), r.tuning_request);
            runs_healthy += 1;
        }
    }
    assert!(
        runs_healthy < 20,
        "healthy traffic should stretch the period ({runs_healthy} runs in 40 min)"
    );
    assert!(period.current_ms() > 120_000);

    // The demanding workload arrives: the next due run throttles and the
    // period collapses back toward the floor.
    let mut tightened = false;
    for _ in 0..16 {
        drive(&mut db, &demanding, &mut rng, 60, 200);
        if period.due(db.now()) {
            let r = tde.run(&mut db, None);
            period.record(db.now(), r.tuning_request);
            if period.current_ms() <= 120_000 {
                tightened = true;
                break;
            }
        }
    }
    assert!(tightened, "throttles must tighten the cadence");
}

/// The hybrid tuner hands a freshly hooked database to the RL agent and
/// promotes it to the BO pipeline once TDE-certified samples accumulate.
#[test]
fn hybrid_tuner_promotes_from_rl_to_bo_as_samples_accumulate() {
    let wl = AdulteratedWorkload::new(tpcc(0.5), 0.4);
    let profile = KnobProfile::postgres();
    let mut db = SimDatabase::new(
        DbFlavor::Postgres,
        InstanceType::M4Large,
        DiskKind::Ssd,
        wl.base().catalog().clone(),
        4,
    );
    let mut tde = Tde::new(&profile, TdeConfig::default(), 5);
    let mut repo = WorkloadRepository::new();
    let wid = repo.register("live", false);
    let cfg = HybridConfig {
        bo_takeover_samples: 4,
        ..HybridConfig::default()
    };
    let mut tuner = HybridTuner::new(MetricId::ALL.len(), profile.len(), cfg, 6);
    let mut rng = StdRng::seed_from_u64(7);

    let mut backends = Vec::new();
    let mut snap = db.metrics_snapshot();
    for _ in 0..14 {
        drive(&mut db, &wl, &mut rng, 60, 150);
        let now_snap = db.metrics_snapshot();
        let delta = now_snap.delta(&snap);
        snap = now_snap;
        let report = tde.run(&mut db, None);
        if report.tuning_request {
            // Capture the certified sample, then ask the hybrid.
            let qps = delta[MetricId::QueriesExecuted.index()] / 60.0;
            repo.add_sample(
                wid,
                Sample {
                    config: normalize_config(&profile, db.knobs().as_vec()),
                    metrics: delta.clone(),
                    objective: qps,
                    quality: SampleQuality::High,
                },
            );
            let state: Vec<f64> = delta.iter().map(|&x| (1.0 + x.abs()).ln() / 20.0).collect();
            let focus: Vec<usize> = report.throttles.iter().map(|t| t.knob.0 as usize).collect();
            let (config, backend) = tuner.recommend(&repo, wid, &state, &focus);
            backends.push(backend);
            // Apply it so subsequent samples vary.
            let raw = autodbaas::tuner::denormalize_config(&profile, &config);
            for (i, (kid, spec)) in profile.iter().enumerate() {
                if !spec.restart_required {
                    db.set_knob_direct(kid, raw[i]);
                }
            }
        }
    }
    assert!(
        backends.len() >= 4,
        "the demanding workload must keep asking ({backends:?})"
    );
    assert_eq!(backends[0], HybridBackend::Rl, "cold start is served by RL");
    assert!(
        backends.contains(&HybridBackend::Bo),
        "accumulated samples must promote to BO ({backends:?})"
    );
}
