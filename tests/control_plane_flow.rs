//! Control-plane integration: the §4 apply pipeline end-to-end —
//! orchestrator provisioning, DFA adapter apply, slave-first ordering with
//! fault injection, reconciliation, and the maintenance-window flow for
//! restart-bound knobs.

use autodbaas::ctrlplane::{
    plan_buffer_update, DataFederationAgent, MaintenanceSchedule, ReconcileOutcome, Reconciler,
    ServiceOrchestrator, ServiceSpec,
};
use autodbaas::prelude::*;
use autodbaas::simdb::Catalog;

const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

fn spec(flavor: DbFlavor) -> ServiceSpec {
    ServiceSpec {
        flavor,
        instance: InstanceType::M4XLarge,
        disk: DiskKind::Ssd,
        catalog: Catalog::synthetic(8, 500_000_000, 150, 2),
        n_slaves: 2,
        seed: 77,
    }
}

#[test]
fn recommendation_applies_to_whole_service_and_persists() {
    let mut orch = ServiceOrchestrator::new();
    let (id, mut rs) = orch.provision(spec(DbFlavor::Postgres));
    let dfa = DataFederationAgent::new();
    let profile = rs.master().profile().clone();

    // A mid-range recommendation for every knob.
    let unit = vec![0.5; profile.len()];
    let (creds, report) = dfa
        .apply_recommendation(&orch, id, &mut rs, &unit, false)
        .expect("apply ok");
    assert!(creds.user.starts_with("admin-"));
    assert!(!report.applied.is_empty());

    // Success: the director would now persist.
    orch.persist_config(id, rs.master().knobs().clone());

    // All nodes agree.
    let wm = profile.lookup("work_mem").unwrap();
    let master_v = rs.master().knobs().get(wm);
    for s in rs.slaves() {
        assert_eq!(s.knobs().get(wm), master_v);
    }

    // A redeploy (security patch) keeps the tuned value.
    let redeployed = orch.redeploy(id).unwrap();
    assert_eq!(redeployed.master().knobs().get(wm), master_v);
}

#[test]
fn slave_crash_rejects_recommendation_and_reconciler_restores_consistency() {
    let mut orch = ServiceOrchestrator::new();
    let (id, mut rs) = orch.provision(spec(DbFlavor::Postgres));
    let dfa = DataFederationAgent::new();
    let profile = rs.master().profile().clone();
    let wm = profile.lookup("work_mem").unwrap();
    let persisted_value = orch.persisted_config(id).unwrap().get(wm);

    // The next apply crashes slave 1 — the recommendation must be rejected
    // and the master untouched.
    rs.inject_slave_crash(1);
    let unit = vec![0.9; profile.len()];
    assert!(dfa
        .apply_recommendation(&orch, id, &mut rs, &unit, false)
        .is_err());
    assert_eq!(rs.master().knobs().get(wm), persisted_value);

    // Slave 0 applied before the crash → drift. The reconciler (watcher
    // timeout 5 s) pulls everyone back to the persisted config.
    let mut rec = Reconciler::new(id, 5_000);
    // Simulate the drift the half-applied change left on slave 0 by
    // re-checking over time; drift on slaves only is healed through a full
    // apply once the master deviates too. Force master drift to trigger:
    rs.master_mut().set_knob_direct(wm, persisted_value * 3.0);
    assert!(matches!(
        rec.check(&orch, &mut rs, 1_000),
        ReconcileOutcome::DriftObserved { .. }
    ));
    assert_eq!(
        rec.check(&orch, &mut rs, 7_000),
        ReconcileOutcome::Reconciled
    );
    assert_eq!(rs.master().knobs().get(wm), persisted_value);
    for s in rs.slaves() {
        assert_eq!(s.knobs().get(wm), persisted_value);
    }
}

#[test]
fn restart_bound_knob_flows_through_maintenance_window() {
    let mut orch = ServiceOrchestrator::new();
    let (id, mut rs) = orch.provision(spec(DbFlavor::Postgres));
    let profile = rs.master().profile().clone();
    let shared = profile.lookup("shared_buffers").unwrap();
    let dfa = DataFederationAgent::new();

    // Outside the window: the DFA must not restart, so the buffer change is
    // staged (deferred), not applied.
    let mut unit = autodbaas::tuner::normalize_config(&profile, rs.master().knobs().as_vec());
    let spec_sb = profile.spec(shared);
    unit[shared.0 as usize] = (2.0 * GIB - spec_sb.min) / (spec_sb.max - spec_sb.min);
    let before = rs.master().knobs().get(shared);
    let (_, report) = dfa
        .apply_recommendation(&orch, id, &mut rs, &unit, false)
        .unwrap();
    assert!(report.deferred.contains(&shared));
    assert_eq!(
        rs.master().knobs().get(shared),
        before,
        "no live change outside the window"
    );

    // Window opens: the §4 buffer rule computes the value, the apply runs
    // restart-class, staged values land.
    let schedule = MaintenanceSchedule {
        every_ms: 86_400_000,
        duration_ms: 1_800_000,
        first_at: 0,
    };
    assert!(schedule.in_window(rs.master().now()));
    let target = plan_buffer_update(before, 3.0 * GIB, 6.0 * GIB, &[], 0).unwrap_or(before);
    let report = rs
        .apply(
            &[ConfigChange {
                knob: shared,
                value: target,
            }],
            ApplyMode::Restart,
        )
        .expect("maintenance apply");
    assert!(report.downtime_ms > 0);
    assert!((rs.master().knobs().get(shared) - target).abs() < 1.0);
    orch.persist_config(id, rs.master().knobs().clone());
    assert!((orch.persisted_config(id).unwrap().get(shared) - target).abs() < 1.0);
}

#[test]
fn mysql_services_flow_through_the_same_control_plane() {
    let mut orch = ServiceOrchestrator::new();
    let (id, mut rs) = orch.provision(spec(DbFlavor::MySql));
    let dfa = DataFederationAgent::new();
    let profile = rs.master().profile().clone();
    let unit = vec![0.4; profile.len()];
    let (_, report) = dfa
        .apply_recommendation(&orch, id, &mut rs, &unit, false)
        .unwrap();
    assert!(!report.applied.is_empty());
    let sort_buf = profile.lookup("sort_buffer_size").unwrap();
    let spec_sb = profile.spec(sort_buf);
    let expected = spec_sb.min + 0.4 * (spec_sb.max - spec_sb.min);
    assert!((rs.master().knobs().get(sort_buf) - expected).abs() < 1.0);
}

#[test]
fn director_load_balances_and_the_request_log_feeds_fig9() {
    use autodbaas::ctrlplane::{ConfigDirector, ServiceId, TunerKind};
    let mut d = ConfigDirector::new(&[TunerKind::Bo; 3]);
    // Twelve requests of 60 s each over three tuners: makespan 4 minutes.
    let mut latest_ready = 0;
    for i in 0..12 {
        let a = d.submit_request(ServiceId(i), 0, 60_000.0);
        latest_ready = latest_ready.max(a.ready_at);
    }
    assert_eq!(latest_ready, 240_000);
    assert_eq!(d.total_requests(), 12);
    let per_min = d.requests_per_minute(0, 60_000);
    assert_eq!(per_min.len(), 1);
    assert_eq!(per_min[0], 12.0);
}
