//! Regression pins for the simulator's calibrated physics — the causal
//! links every figure depends on. If one of these breaks, some figure's
//! shape will silently degrade, so they are asserted here as integration
//! tests.

use autodbaas::prelude::*;
use autodbaas::simdb::{MetricId, QueryKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

const GIB: u64 = 1024 * 1024 * 1024;

fn drive_mix(db: &mut SimDatabase, wl: &dyn QuerySource, rng: &mut StdRng, secs: u64, rate: u64) {
    for _ in 0..secs {
        for _ in 0..16 {
            let q = wl.next_query(rng);
            let _ = db.submit(&q, (rate / 16).max(1));
        }
        db.tick(1_000);
    }
}

fn hit_ratio(db: &SimDatabase) -> f64 {
    let h = db.metrics().get(MetricId::BlksHit);
    let r = db.metrics().get(MetricId::BlksRead);
    if h + r == 0.0 {
        1.0
    } else {
        h / (h + r)
    }
}

/// Locality drives buffer hit ratios: TPCC (hot recent orders) must cache
/// far better than Wikipedia (long-tail reads) at the same buffer size.
#[test]
fn locality_separates_workload_hit_ratios() {
    let mk = |wl: &MixWorkload, rate: u64, seed: u64| {
        let mut db = SimDatabase::new(
            DbFlavor::Postgres,
            InstanceType::M4Large,
            DiskKind::Ssd,
            wl.catalog().clone(),
            seed,
        );
        let buffer = db.planner().roles().buffer_pool;
        db.set_knob_direct(buffer, 2.0 * GIB as f64);
        let mut rng = StdRng::seed_from_u64(seed ^ 5);
        drive_mix(&mut db, wl, &mut rng, 15 * 60, rate);
        hit_ratio(&db)
    };
    let tpcc_ratio = mk(&tpcc(26.0), 1_600, 1);
    let wiki_ratio = mk(&wikipedia(12.0), 800, 2);
    assert!(
        tpcc_ratio > wiki_ratio + 0.15,
        "tpcc {tpcc_ratio:.2} must cache far better than wikipedia {wiki_ratio:.2}"
    );
}

/// The capacity model: offered load beyond the instance's service capacity
/// is shed, and a spilling configuration sheds more than a tuned one.
#[test]
fn saturation_sheds_load_and_tuning_restores_it() {
    let wl = AdulteratedWorkload::new(tpcc(1.0), 0.4);
    let run = |tuned: bool| {
        let mut db = SimDatabase::new(
            DbFlavor::Postgres,
            InstanceType::M4Large,
            DiskKind::Ssd,
            wl.base().catalog().clone(),
            3,
        );
        if tuned {
            let p = db.profile().clone();
            for name in ["work_mem", "maintenance_work_mem", "temp_buffers"] {
                let id = p.lookup(name).unwrap();
                db.set_knob_direct(id, p.spec(id).max.min(1.5 * GIB as f64));
            }
        }
        let mut rng = StdRng::seed_from_u64(4);
        drive_mix(&mut db, &wl, &mut rng, 120, 200);
        (
            db.metrics().get(MetricId::QueriesExecuted),
            db.metrics().get(MetricId::QueriesDropped),
        )
    };
    let (exec_default, dropped_default) = run(false);
    let (exec_tuned, dropped_tuned) = run(true);
    assert!(dropped_default > 0.0, "defaults must shed under spill load");
    assert!(
        exec_tuned > exec_default,
        "tuning must raise completed volume"
    );
    assert!(dropped_tuned < dropped_default);
}

/// WAL-volume checkpoint trigger: shrinking `max_wal_size` forces more
/// frequent checkpoints under the same write load.
#[test]
fn wal_trigger_controls_checkpoint_cadence() {
    let wl = tpcc(1.0);
    let run = |max_wal_gb: f64| {
        let mut db = SimDatabase::new(
            DbFlavor::Postgres,
            InstanceType::M4XLarge,
            DiskKind::Ssd,
            wl.catalog().clone(),
            5,
        );
        let p = db.profile().clone();
        db.set_knob_direct(p.lookup("checkpoint_timeout").unwrap(), 3_600_000.0);
        db.set_knob_direct(p.lookup("max_wal_size").unwrap(), max_wal_gb * GIB as f64);
        let mut rng = StdRng::seed_from_u64(6);
        drive_mix(&mut db, &wl, &mut rng, 10 * 60, 2_000);
        db.bg().checkpoints_done()
    };
    let small_wal = run(0.05);
    let big_wal = run(16.0);
    assert!(
        small_wal > big_wal,
        "a tiny WAL trigger must checkpoint more often ({small_wal} vs {big_wal})"
    );
    assert!(
        small_wal >= 2,
        "write load must trip the small trigger repeatedly"
    );
}

/// The split-disk layout isolates WAL/stats from the data disk under real
/// production traffic (the §3.2 attribution workaround end to end).
#[test]
fn split_disks_attribute_checkpoint_writes_cleanly() {
    let wl = production();
    let mut db = SimDatabase::new(
        DbFlavor::Postgres,
        InstanceType::M4XLarge,
        DiskKind::Ssd,
        wl.catalog().clone(),
        7,
    );
    db.use_split_disks();
    let mut rng = StdRng::seed_from_u64(8);
    drive_mix(&mut db, &wl, &mut rng, 6 * 60, 800);
    use autodbaas::simdb::disk::WriteSource;
    let data = db.disks().data();
    let aux = db.disks().aux().expect("split layout");
    assert_eq!(data.written_by(WriteSource::Wal), 0.0);
    assert!(aux.written_by(WriteSource::Wal) > 0.0);
    assert!(aux.written_by(WriteSource::Stats) > 0.0);
    assert_eq!(aux.written_by(WriteSource::Checkpoint), 0.0);
    // The data disk only carries the §3.2 trio plus backend evictions.
    assert!(
        data.written_by(WriteSource::Checkpoint) + data.written_by(WriteSource::BgWriter) > 0.0
    );
}

/// The planner-knob landscape: prefetch helps multi-page scans and hurts
/// point reads, so the per-workload optimum genuinely differs — the premise
/// of the Fig. 14 async throttles.
#[test]
fn prefetch_optimum_is_workload_dependent() {
    let profile = KnobProfile::postgres();
    let planner = autodbaas::simdb::Planner::new(profile.clone());
    let mut catalog = autodbaas::simdb::Catalog::new();
    catalog.add_table("t", 10_000_000, 600, 2);

    let cost_at = |q: &QueryProfile, eic: f64| {
        let mut knobs = profile.defaults();
        knobs.set_named(&profile, "effective_io_concurrency", eic);
        let plan = planner.plan(q, &knobs, &catalog);
        planner.true_cost(q, &plan, 0.5, &catalog)
    };

    // A multi-page range read: higher eic must be cheaper.
    let mut range = QueryProfile::new(QueryKind::RangeSelect, 0);
    range.rows_examined = 200; // ~15 pages at 600 B rows
    assert!(cost_at(&range, 64.0) < cost_at(&range, 0.0));

    // A point read: higher eic must be more expensive (cache pollution).
    let point = QueryProfile::new(QueryKind::PointSelect, 0);
    assert!(cost_at(&point, 64.0) > cost_at(&point, 0.0));
}

/// MySQL's tiny default sort buffer spills on sorts PostgreSQL absorbs —
/// the real engine difference behind Fig. 11's TPCC memory bars.
#[test]
fn mysql_defaults_spill_where_postgres_does_not() {
    let catalog = autodbaas::simdb::Catalog::synthetic(4, 1_000_000_000, 150, 2);
    let mut q = QueryProfile::new(QueryKind::OrderBy, 0);
    q.rows_examined = 1_000;
    q.sort_bytes = 600 * 1024; // the paper's ~0.5 MB TPCC sorts

    let pg = SimDatabase::new(
        DbFlavor::Postgres,
        InstanceType::M4Large,
        DiskKind::Ssd,
        catalog.clone(),
        9,
    );
    let my = SimDatabase::new(
        DbFlavor::MySql,
        InstanceType::M4Large,
        DiskKind::Ssd,
        catalog,
        9,
    );
    assert!(
        pg.plan(&q).spill.is_none(),
        "4 MiB work_mem absorbs a 600 KiB sort"
    );
    assert!(
        my.plan(&q).spill.is_some(),
        "256 KiB sort_buffer_size spills it"
    );
}

/// Restart applies cold-start the cache; reloads keep it warm.
#[test]
fn restart_cold_starts_the_cache_reload_does_not() {
    let wl = tpcc(1.0);
    let mut db = SimDatabase::new(
        DbFlavor::Postgres,
        InstanceType::M4XLarge,
        DiskKind::Ssd,
        wl.catalog().clone(),
        11,
    );
    let mut rng = StdRng::seed_from_u64(12);
    drive_mix(&mut db, &wl, &mut rng, 5 * 60, 1_000);
    let warm = hit_ratio(&db);
    assert!(warm > 0.3, "cache should be warm ({warm:.2})");

    // Reload: hit ratio keeps improving (monotone counters, so compare the
    // marginal ratio over the next window).
    let snap = db.metrics_snapshot();
    let _ = db.apply_config(&[], ApplyMode::Reload);
    drive_mix(&mut db, &wl, &mut rng, 60, 1_000);
    let d = db.metrics_snapshot().delta(&snap);
    let reload_ratio = d[MetricId::BlksHit.index()]
        / (d[MetricId::BlksHit.index()] + d[MetricId::BlksRead.index()]).max(1.0);

    // Restart: the marginal ratio right after must be markedly colder.
    let _ = db.apply_config(&[], ApplyMode::Restart);
    for _ in 0..10 {
        db.tick(1_000);
    }
    let snap = db.metrics_snapshot();
    drive_mix(&mut db, &wl, &mut rng, 60, 1_000);
    let d = db.metrics_snapshot().delta(&snap);
    let restart_ratio = d[MetricId::BlksHit.index()]
        / (d[MetricId::BlksHit.index()] + d[MetricId::BlksRead.index()]).max(1.0);
    assert!(
        restart_ratio < reload_ratio,
        "restart ({restart_ratio:.2}) must be colder than reload ({reload_ratio:.2})"
    );
}
