//! A narrative operations scenario: everything §2/§4 describe happening to
//! one service over a "day", in order — provision, tune, survive a slave
//! crash, reconcile, hit the maintenance window, redeploy — with the
//! invariants checked at each step. This is the closest thing to the
//! paper's Fig. 1 exercised end to end.

use autodbaas::ctrlplane::{
    plan_buffer_update, ConfigDirector, DataFederationAgent, MaintenanceSchedule,
    RecommendationMeter, ReconcileOutcome, Reconciler, ServiceOrchestrator, ServiceSpec, TunerKind,
};
use autodbaas::prelude::*;
use autodbaas::tde::{Tde, TdeConfig};
use autodbaas::telemetry::MILLIS_PER_HOUR;
use autodbaas::tuner::{normalize_config, BoTuner, Sample, SampleQuality, WorkloadRepository};
use rand::rngs::StdRng;
use rand::SeedableRng;

const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

#[test]
fn a_day_in_the_life_of_a_managed_service() {
    // --- 08:00 — provision -------------------------------------------------
    let workload = AdulteratedWorkload::new(tpcc(1.0), 0.35);
    let mut orch = ServiceOrchestrator::new();
    let (service, mut rs) = orch.provision(ServiceSpec {
        flavor: DbFlavor::Postgres,
        instance: InstanceType::M4XLarge,
        disk: DiskKind::Ssd,
        catalog: workload.base().catalog().clone(),
        n_slaves: 2,
        seed: 2024,
    });
    let profile = rs.master().profile().clone();
    let dfa = DataFederationAgent::new();
    let mut director = ConfigDirector::new(&[TunerKind::Bo; 2]);
    let mut meter = RecommendationMeter::default();
    let mut reconciler = Reconciler::new(service, 30_000);
    let mut tde = Tde::new(&profile, TdeConfig::default(), 1);
    let mut repo = WorkloadRepository::new();
    let wid = repo.register("svc", false);
    let mut tuner = BoTuner::new(
        BoConfig {
            kappa: 0.2,
            ..BoConfig::default()
        },
        3,
    );
    let mut rng: StdRng = SeedableRng::seed_from_u64(4);

    let drive = |rs: &mut autodbaas::ctrlplane::ReplicaSet, rng: &mut StdRng, secs: u64| {
        for _ in 0..secs {
            for _ in 0..8 {
                let q = workload.next_query(rng);
                let _ = rs.master_mut().submit(&q, 20);
            }
            rs.tick(1_000);
        }
    };

    // --- 08:05 — the TDE notices the starved work areas --------------------
    drive(&mut rs, &mut rng, 120);
    let report = tde.run(rs.master_mut(), Some(&repo));
    assert!(
        report.tuning_request,
        "the adulterated workload must throttle"
    );
    let focus: Vec<usize> = report.throttles.iter().map(|t| t.knob.0 as usize).collect();

    // --- 08:06..09:00 — tuning loop with samples flowing through the gate --
    let mut applied_any = false;
    for _ in 0..10 {
        let before = rs.master().metrics_snapshot();
        drive(&mut rs, &mut rng, 60);
        let delta = rs.master().metrics_snapshot().delta(&before);
        let r = tde.run(rs.master_mut(), Some(&repo));
        if r.tuning_request {
            let qps = delta[autodbaas::simdb::MetricId::QueriesExecuted.index()] / 60.0;
            repo.add_sample(
                wid,
                Sample {
                    config: normalize_config(&profile, rs.master().knobs().as_vec()),
                    metrics: delta,
                    objective: qps,
                    quality: SampleQuality::High,
                },
            );
            let service_ms = BoTuner::train_cost_ms(repo.total_samples());
            let assignment = director.submit_request(service, rs.master().now(), service_ms);
            meter.record(service, service_ms);
            assert!(assignment.ready_at >= rs.master().now());
            if let Some(rec) = tuner.recommend_focused(&repo, wid, &focus) {
                let (_, _report) = dfa
                    .apply_recommendation(&orch, service, &mut rs, &rec.config, false)
                    .expect("healthy apply");
                orch.persist_config(service, rs.master().knobs().clone());
                director.record_recommendation(service, rs.master().now(), rec.config);
                applied_any = true;
            }
        }
    }
    assert!(applied_any, "at least one recommendation must land");
    assert!(director.total_requests() >= 1);
    assert!(
        meter.tenant_cost(service) > 0.0,
        "tuning compute is metered"
    );
    // Config is consistent across the service and persisted.
    let wm = profile.lookup("work_mem").unwrap();
    for s in rs.slaves() {
        assert_eq!(s.knobs().get(wm), rs.master().knobs().get(wm));
    }
    assert_eq!(
        orch.persisted_config(service).unwrap().get(wm),
        rs.master().knobs().get(wm)
    );

    // --- 14:00 — a slave crashes during the next apply ---------------------
    rs.inject_slave_crash(1);
    let bad = vec![0.9; profile.len()];
    assert!(dfa
        .apply_recommendation(&orch, service, &mut rs, &bad, false)
        .is_err());
    // The master still matches the persisted config (the rejected
    // recommendation never reached it).
    assert_eq!(
        rs.master().knobs().get(wm),
        orch.persisted_config(service).unwrap().get(wm)
    );

    // --- 14:01 — drift (half-applied slave) is reconciled -------------------
    // Slave 0 did apply before the crash; force the watcher path by also
    // perturbing the master out-of-band, then let the reconciler restore.
    let persisted_wm = orch.persisted_config(service).unwrap().get(wm);
    rs.master_mut().set_knob_direct(wm, persisted_wm * 2.0);
    let now = rs.master().now();
    assert!(matches!(
        reconciler.check(&orch, &mut rs, now),
        ReconcileOutcome::DriftObserved { .. }
    ));
    assert_eq!(
        reconciler.check(&orch, &mut rs, now + 31_000),
        ReconcileOutcome::Reconciled
    );
    assert_eq!(rs.master().knobs().get(wm), persisted_wm);
    for s in rs.slaves() {
        assert_eq!(s.knobs().get(wm), persisted_wm);
    }

    // --- 02:00 next day — maintenance window: the buffer knob moves --------
    let schedule = MaintenanceSchedule {
        every_ms: 24 * MILLIS_PER_HOUR,
        duration_ms: MILLIS_PER_HOUR / 2,
        first_at: 0,
    };
    assert!(schedule.in_window(schedule.next_window(rs.master().now())));
    let shared = profile.lookup("shared_buffers").unwrap();
    let ws = rs.master_mut().working_set_bytes(true) as f64;
    let current = rs.master().knobs().get(shared);
    let target = plan_buffer_update(current, ws, 6.0 * GIB, &[], 0).unwrap_or(current);
    let report = rs
        .apply_with_lag_guard(
            &[ConfigChange {
                knob: shared,
                value: target,
            }],
            ApplyMode::Restart,
            u64::MAX,
        )
        .expect("maintenance apply");
    assert!(report.downtime_ms > 0, "restart-class apply costs downtime");
    orch.persist_config(service, rs.master().knobs().clone());

    // --- 03:00 — security patch forces a redeploy; nothing is lost ---------
    let redeployed = orch.redeploy(service).expect("service exists");
    assert_eq!(
        redeployed.master().knobs().get(shared),
        rs.master().knobs().get(shared),
        "the maintenance-window buffer survives redeployment"
    );
    assert_eq!(
        redeployed.master().knobs().get(wm),
        rs.master().knobs().get(wm),
        "the tuned work_mem survives redeployment"
    );
}
