//! Miniature versions of each figure's protocol, so `cargo test` exercises
//! every experiment path without the full runtimes. The full-size harnesses
//! live in `crates/bench/src/bin/` and assert the same shapes at scale.

use autodbaas::prelude::*;
use autodbaas::simdb::MetricId;
use autodbaas::tde::{ClassHistogram, Tde, TdeConfig};
use autodbaas::telemetry::entropy::normalized_entropy;
use autodbaas::telemetry::MILLIS_PER_MIN;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn drive(db: &mut SimDatabase, wl: &dyn QuerySource, rng: &mut StdRng, secs: u64, rate: u64) {
    for _ in 0..secs {
        for _ in 0..16 {
            let q = wl.next_query(rng);
            let _ = db.submit(&q, (rate / 16).max(1));
        }
        db.tick(1_000);
    }
}

/// Fig. 2: per-benchmark memory demand shape.
#[test]
fn fig02_shape_memory_demands() {
    let mut rng = StdRng::seed_from_u64(1);
    let max_sort = |wl: &dyn QuerySource, rng: &mut StdRng| {
        (0..2_000)
            .map(|_| wl.next_query(rng).total_memory_demand())
            .max()
            .unwrap()
    };
    let tpcc_demand = max_sort(&tpcc(1.0), &mut rng);
    let ycsb_demand = max_sort(&ycsb(1.0), &mut rng);
    let adult_demand = max_sort(&AdulteratedWorkload::new(tpcc(1.0), 0.5), &mut rng);
    assert!(tpcc_demand <= 700 * 1024);
    assert_eq!(ycsb_demand, 0);
    assert!(adult_demand > 100 * 1024 * 1024);
}

/// Figs. 3/4: entropy ordering plain < p=0.5 < p=0.8.
#[test]
fn fig03_04_shape_entropy_ordering() {
    let mut rng = StdRng::seed_from_u64(2);
    let eta = |wl: &dyn QuerySource, rng: &mut StdRng| {
        let mut h = ClassHistogram::new();
        for _ in 0..5_000 {
            h.record(&wl.next_query(rng));
        }
        normalized_entropy(h.counts())
    };
    let plain = eta(&tpcc(1.0), &mut rng);
    let p50 = eta(&AdulteratedWorkload::new(tpcc(1.0), 0.5), &mut rng);
    let p80 = eta(&AdulteratedWorkload::new(tpcc(1.0), 0.8), &mut rng);
    assert!(plain < p50 && p50 < p80, "{plain:.2} < {p50:.2} < {p80:.2}");
}

/// Fig. 5: badly tuned checkpointing shows more latency peaks.
#[test]
fn fig05_shape_checkpoint_peaks() {
    let wl = tpcc(1.0);
    let run = |tuned: bool| {
        let mut db = SimDatabase::new(
            DbFlavor::Postgres,
            InstanceType::M4XLarge,
            DiskKind::Ssd,
            wl.catalog().clone(),
            3,
        );
        let p = db.profile().clone();
        db.set_knob_direct(p.lookup("shared_buffers").unwrap(), 4e9);
        if tuned {
            db.set_knob_direct(p.lookup("checkpoint_timeout").unwrap(), 1_800_000.0);
            db.set_knob_direct(p.lookup("checkpoint_completion_target").unwrap(), 0.9);
            db.set_knob_direct(p.lookup("bgwriter_lru_maxpages").unwrap(), 250.0);
            db.set_knob_direct(p.lookup("max_wal_size").unwrap(), 16e9);
        } else {
            db.set_knob_direct(p.lookup("checkpoint_completion_target").unwrap(), 0.3);
            db.set_knob_direct(p.lookup("bgwriter_lru_maxpages").unwrap(), 20.0);
            db.set_knob_direct(p.lookup("max_wal_size").unwrap(), 1e9);
        }
        let mut rng = StdRng::seed_from_u64(4);
        // Warm 3 minutes, then measure 12 (matching the full harness, with
        // a wider statement mix so the dirty set is realistic).
        for _ in 0..(3 * 60) {
            for _ in 0..48 {
                let q = wl.next_query(&mut rng);
                let _ = db.submit(&q, 3_300 / 48);
            }
            db.tick(1_000);
        }
        let start = db.now();
        for _ in 0..(12 * 60) {
            for _ in 0..48 {
                let q = wl.next_query(&mut rng);
                let _ = db.submit(&q, 3_300 / 48);
            }
            db.tick(1_000);
        }
        db.disks().data().latency_series().mean_since(start)
    };
    let default_mean = run(false);
    let tuned_mean = run(true);
    assert!(
        default_mean > tuned_mean,
        "defaults ({default_mean:.2} ms) must sit above tuned knobs ({tuned_mean:.2} ms)"
    );
}

/// Fig. 9: TDE-driven requests undercut periodic on a healthy single DB.
#[test]
fn fig09_shape_tde_requests_sparser_than_periodic() {
    let wl = tpcc(1.0);
    let mut db = SimDatabase::new(
        DbFlavor::Postgres,
        InstanceType::M4XLarge,
        DiskKind::Ssd,
        wl.catalog().clone(),
        5,
    );
    let mut tde = Tde::new(&db.profile().clone(), TdeConfig::default(), 6);
    let mut rng = StdRng::seed_from_u64(7);
    let mut tde_requests = 0u64;
    let windows = 20;
    for _ in 0..windows {
        drive(&mut db, &wl, &mut rng, 60, 800);
        if tde.run(&mut db, None).tuning_request {
            tde_requests += 1;
        }
    }
    // A healthy TPCC instance barely ever asks; periodic would ask 20 times.
    assert!(
        tde_requests < windows / 2,
        "tde asked {tde_requests}/{windows} windows"
    );
}

/// Fig. 14: a workload switch registers within two observation windows.
#[test]
fn fig14_shape_switch_detected_fast() {
    let mut ycsb_wl = ycsb(1.0);
    let mut tpch_wl = autodbaas::workload::tpch(1.0);
    let mut catalog = autodbaas::simdb::Catalog::new();
    for t in ycsb_wl.catalog().clone().iter() {
        catalog.add_table(t.name.clone(), t.rows, t.row_bytes, t.indexes);
    }
    let offset = catalog.len() as u32;
    for t in tpch_wl.catalog().clone().iter() {
        catalog.add_table(format!("h_{}", t.name), t.rows, t.row_bytes, t.indexes);
    }
    tpch_wl.rebase_tables(offset);
    let _ = &mut ycsb_wl;

    let mut db = SimDatabase::new(
        DbFlavor::Postgres,
        InstanceType::M4XLarge,
        DiskKind::Ssd,
        catalog,
        8,
    );
    let mut tde = Tde::new(&db.profile().clone(), TdeConfig::default(), 9);
    let mut rng = StdRng::seed_from_u64(10);
    for _ in 0..5 {
        drive(&mut db, &ycsb_wl, &mut rng, 60, 1_000);
        let _ = tde.run(&mut db, None);
    }
    // Switch to TPCH; its 100 MB sorts must throttle within two windows.
    let mut detected = false;
    for _ in 0..2 {
        drive(&mut db, &tpch_wl, &mut rng, 60, 16);
        let r = tde.run(&mut db, None);
        detected |= r
            .throttles
            .iter()
            .any(|t| matches!(t.reason, autodbaas::tde::ThrottleReason::MemorySpill(_)));
    }
    assert!(detected, "the TPCH switch must raise memory throttles fast");
}

/// Fig. 12/13 mechanism: the repository gate rejects idle-window junk.
#[test]
fn fig12_shape_gate_admits_only_throttle_windows() {
    use autodbaas::cloudsim::{FleetConfig, FleetSim, ManagedDatabase};
    use autodbaas::tuner::WorkloadId;
    let mk_node = |seed| {
        let wl = tpcc(0.5);
        let catalog = wl.catalog().clone();
        ManagedDatabase::new(
            DbFlavor::Postgres,
            InstanceType::M4Large,
            DiskKind::Ssd,
            catalog,
            Box::new(wl),
            ArrivalProcess::Constant(5.0), // idle-ish: never throttles
            TuningPolicy::TdeDriven,
            WorkloadId(0),
            TdeConfig::default(),
            seed,
        )
    };
    let live_samples = |gate: bool| {
        let mut sim = FleetSim::new(
            FleetConfig {
                gate_samples_with_tde: gate,
                ..FleetConfig::default()
            },
            1,
        );
        sim.add_node(mk_node(1), "idle");
        sim.run_for(30 * MILLIS_PER_MIN);
        sim.repo
            .iter()
            .filter(|w| !w.offline)
            .map(|w| w.samples.len())
            .sum::<usize>()
    };
    let gated = live_samples(true);
    let ungated = live_samples(false);
    // Ungated capture records every window; the gate admits only the few
    // the TDE certified (the MDP's planner probes on this idle instance).
    assert!(
        gated * 2 < ungated,
        "gating must cut sample volume sharply (gated {gated} vs ungated {ungated})"
    );
}

/// The §5 evaluation metric itself: throttle counts are comparable across
/// runs because the engine is deterministic.
#[test]
fn throttle_census_is_deterministic() {
    let run = || {
        let wl = AdulteratedWorkload::new(tpcc(1.0), 0.3);
        let mut db = SimDatabase::new(
            DbFlavor::Postgres,
            InstanceType::M4Large,
            DiskKind::Ssd,
            wl.base().catalog().clone(),
            11,
        );
        let mut tde = Tde::new(&db.profile().clone(), TdeConfig::default(), 12);
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..10 {
            drive(&mut db, &wl, &mut rng, 30, 100);
            let _ = tde.run(&mut db, None);
        }
        (
            tde.throttle_counts(),
            db.metrics().get(MetricId::QueriesExecuted) as u64,
        )
    };
    assert_eq!(run(), run());
}
