//! Property-based tests (proptest) over the core invariants of the
//! reproduction, spanning crates.

use autodbaas::ctrlplane::{Reconciler, ServiceSpec};
use autodbaas::prelude::*;
use autodbaas::simdb::{Catalog, QueryKind};
use autodbaas::tde::{classify, normalize_sql, ClassHistogram, Reservoir, TemplateStore};
use autodbaas::telemetry::entropy::{normalized_entropy, paper_entropy_score, shannon_entropy};
use autodbaas::telemetry::stats::percentile;
use autodbaas::tuner::{denormalize_config, normalize_config};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

proptest! {
    // ---------------- entropy (Eqs. 1–2) ------------------------------

    #[test]
    fn normalized_entropy_stays_in_unit_interval(counts in prop::collection::vec(0u64..10_000, 2..12)) {
        let eta = normalized_entropy(&counts);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&eta), "η = {eta}");
        let score = paper_entropy_score(&counts);
        prop_assert!((-1e-9..=1.0 + 1e-9).contains(&score));
    }

    #[test]
    fn uniform_counts_maximize_entropy(n in 2usize..10, c in 1u64..1000) {
        let uniform = vec![c; n];
        let eta_uniform = normalized_entropy(&uniform);
        prop_assert!((eta_uniform - 1.0).abs() < 1e-9);
        // Any concentration can only lower it.
        let mut skewed = vec![c; n];
        skewed[0] += 10 * c;
        prop_assert!(normalized_entropy(&skewed) <= eta_uniform + 1e-12);
    }

    #[test]
    fn entropy_is_permutation_invariant(mut counts in prop::collection::vec(0u64..1000, 2..8)) {
        let before = shannon_entropy(&counts);
        counts.reverse();
        prop_assert!((shannon_entropy(&counts) - before).abs() < 1e-9);
    }

    // ---------------- config normalisation ----------------------------

    #[test]
    fn config_roundtrip_is_identity_on_unit_box(unit in prop::collection::vec(0.0f64..=1.0, 15)) {
        let profile = KnobProfile::postgres();
        let raw = denormalize_config(&profile, &unit);
        let back = normalize_config(&profile, &raw);
        for (a, b) in unit.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn knob_set_always_respects_bounds(values in prop::collection::vec(-1e20f64..1e20, 15)) {
        let profile = KnobProfile::postgres();
        let set = autodbaas::simdb::KnobSet::from_vec(&profile, &values);
        for (id, spec) in profile.iter() {
            let v = set.get(id);
            prop_assert!(v >= spec.min && v <= spec.max, "{} = {v}", spec.name);
        }
    }

    #[test]
    fn memory_cap_enforcement_always_lands_under_cap(
        values in prop::collection::vec(0.0f64..=1.0, 15),
        instance_idx in 0usize..6,
    ) {
        let profile = KnobProfile::postgres();
        let raw = denormalize_config(&profile, &values);
        let mut set = autodbaas::simdb::KnobSet::from_vec(&profile, &raw);
        let instance = InstanceType::LADDER[instance_idx];
        autodbaas::simdb::instance::enforce_memory_cap(&profile, &mut set, instance);
        prop_assert!(set.memory_budget_used(&profile) <= instance.db_mem_cap() * 1.0001);
    }

    // ---------------- planner invariants -------------------------------

    #[test]
    fn spill_happens_iff_demand_exceeds_grant(
        sort_mib in 0u64..512,
        work_mem_mib in 1u64..512,
    ) {
        let profile = KnobProfile::postgres();
        let mut knobs = profile.defaults();
        knobs.set_named(&profile, "work_mem", (work_mem_mib * 1024 * 1024) as f64);
        let planner = autodbaas::simdb::Planner::new(profile);
        let mut catalog = Catalog::new();
        catalog.add_table("t", 1_000_000, 150, 1);
        let mut q = QueryProfile::new(QueryKind::OrderBy, 0);
        q.rows_examined = 10_000;
        q.sort_bytes = sort_mib * 1024 * 1024;
        let plan = planner.plan(&q, &knobs, &catalog);
        let should_spill = q.sort_bytes > knobs.get_named(planner.profile(), "work_mem") as u64;
        prop_assert_eq!(plan.spill.is_some(), should_spill);
        if plan.spill.is_some() {
            prop_assert!(plan.spill_bytes > 0);
        }
    }

    #[test]
    fn planner_costs_are_finite_and_positive(
        rows in 1u64..10_000_000,
        rnd in 1.0f64..10.0,
    ) {
        let profile = KnobProfile::postgres();
        let mut knobs = profile.defaults();
        knobs.set_named(&profile, "random_page_cost", rnd);
        let planner = autodbaas::simdb::Planner::new(profile);
        let mut catalog = Catalog::new();
        catalog.add_table("t", 10_000_000, 150, 1);
        let mut q = QueryProfile::new(QueryKind::RangeSelect, 0);
        q.rows_examined = rows;
        let plan = planner.plan(&q, &knobs, &catalog);
        prop_assert!(plan.est_cost.is_finite() && plan.est_cost > 0.0);
        let true_cost = planner.true_cost(&q, &plan, 0.5, &catalog);
        prop_assert!(true_cost.is_finite() && true_cost > 0.0);
    }

    // ---------------- TDE primitives -----------------------------------

    #[test]
    fn reservoir_never_exceeds_capacity_and_counts_stream(
        cap in 1usize..64,
        n in 0usize..500,
        seed in 0u64..1000,
    ) {
        let mut r = Reservoir::new(cap);
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..n {
            r.offer(i, &mut rng);
        }
        prop_assert_eq!(r.seen(), n as u64);
        prop_assert_eq!(r.items().len(), n.min(cap));
        // Every retained element came from the stream.
        for &x in r.items() {
            prop_assert!(x < n);
        }
    }

    #[test]
    fn templating_is_literal_invariant(
        lit_a in 0i64..1_000_000,
        lit_b in 0i64..1_000_000,
        kind_idx in 0usize..13,
        table in 0u32..100,
    ) {
        let kind = QueryKind::ALL[kind_idx];
        let mut store = TemplateStore::new();
        let mut q1 = QueryProfile::new(kind, table);
        q1.literals = [lit_a, lit_b % 1000];
        let mut q2 = q1.clone();
        q2.literals = [(lit_a + 17) % 1_000_000, (lit_b + 3) % 1000];
        let a = store.ingest(&q1);
        let b = store.ingest(&q2);
        prop_assert_eq!(a, b, "literals must not split templates");
        prop_assert!(!normalize_sql(&q1.render_sql()).contains(|c: char| c.is_ascii_digit()));
    }

    #[test]
    fn classification_is_total_and_histogram_conserves_counts(
        kinds in prop::collection::vec(0usize..13, 1..200),
    ) {
        let mut h = ClassHistogram::new();
        for &k in &kinds {
            let q = QueryProfile::new(QueryKind::ALL[k], 0);
            let _ = classify(&q); // never panics
            h.record(&q);
        }
        prop_assert_eq!(h.total(), kinds.len() as u64);
    }

    // ---------------- §4 buffer rule ------------------------------------

    #[test]
    fn buffer_update_never_exceeds_upper_limit(
        current in 1e6f64..1e10,
        working_set in 0.0f64..1e11,
        upper in 1e7f64..1e10,
        history in prop::collection::vec(1e6f64..1e10, 0..10),
        hits in 0u32..4,
    ) {
        if let Some(new_value) = autodbaas::ctrlplane::plan_buffer_update(
            current, working_set, upper, &history, hits,
        ) {
            prop_assert!(new_value <= upper * 1.0001, "{new_value} > {upper}");
            prop_assert!(new_value > 0.0);
        }
    }

    // ---------------- §4 reconciler convergence -------------------------

    // For ANY seeded schedule of config faults — direct drift on any node,
    // mid-apply crashes on either side of the slave-first protocol,
    // failovers promoting a drifted replica — the reconciler converges the
    // surviving service back to the persisted config within one watcher
    // timeout of the last fault.
    #[test]
    fn reconciler_converges_after_any_fault_schedule(
        seed in 0u64..500,
        n_faults in 1usize..8,
        n_slaves in 0usize..3,
    ) {
        const TICK: u64 = 5_000;
        const WATCHER: u64 = 30_000;
        let mut orch = ServiceOrchestrator::new();
        let (id, mut rs) = orch.provision(ServiceSpec {
            flavor: DbFlavor::Postgres,
            instance: InstanceType::M4Large,
            disk: DiskKind::Ssd,
            catalog: Catalog::synthetic(3, 100_000_000, 150, 1),
            n_slaves,
            seed,
        });
        let mut rec = Reconciler::new(id, WATCHER);
        let profile = rs.master().profile().clone();
        let wm = profile.lookup("work_mem").unwrap();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc4a05);
        let mut now = 0u64;
        for _ in 0..n_faults {
            for _ in 0..rng.gen_range(0..4usize) {
                now += TICK;
                rs.tick(TICK);
                let _ = rec.check(&orch, &mut rs, now);
            }
            let value = rng.gen_range(8.0f64..256.0) * 1024.0 * 1024.0;
            match rng.gen_range(0..5u32) {
                0 => rs.master_mut().set_knob_direct(wm, value),
                1 => {
                    // Drift one replica (half-applied recommendation).
                    if rs.n_slaves() > 0 {
                        let i = rng.gen_range(0..rs.n_slaves());
                        rs.slave_mut(i).set_knob_direct(wm, value);
                    } else {
                        rs.master_mut().set_knob_direct(wm, value);
                    }
                }
                2 => {
                    // Master crash mid-apply: slaves take the config, the
                    // master (and persistence) never see it.
                    rs.inject_master_crash();
                    let _ = rs.apply(
                        &[ConfigChange { knob: wm, value }],
                        ApplyMode::Reload,
                    );
                }
                3 => {
                    // Slave crash mid-apply rejects the recommendation,
                    // leaving earlier slaves drifted; with no slave to
                    // crash the apply succeeds and must be persisted.
                    if rs.n_slaves() > 0 {
                        rs.inject_slave_crash(rng.gen_range(0..rs.n_slaves()));
                    }
                    if rs
                        .apply(&[ConfigChange { knob: wm, value }], ApplyMode::Reload)
                        .is_ok()
                    {
                        orch.persist_config(id, rs.master().knobs().clone());
                    }
                }
                _ => {
                    let _ = rs.failover();
                }
            }
        }
        // Quiet tail: one watcher timeout (plus the checks around it)
        // after the last fault.
        for _ in 0..(WATCHER / TICK + 2) {
            now += TICK;
            rs.tick(TICK);
            let _ = rec.check(&orch, &mut rs, now);
        }
        let persisted = orch.persisted_config(id).unwrap().clone();
        for (n, node) in std::iter::once(rs.master())
            .chain(rs.slaves().iter())
            .enumerate()
        {
            for (kid, spec) in profile.iter() {
                if !spec.restart_required {
                    let live = node.knobs().get(kid);
                    prop_assert!(
                        (live - persisted.get(kid)).abs() < 1e-9,
                        "node {n} knob {} live {live} vs persisted {}",
                        spec.name,
                        persisted.get(kid)
                    );
                }
            }
        }
    }

    #[test]
    fn percentile_is_monotone_in_p(
        xs in prop::collection::vec(-1e6f64..1e6, 1..50),
        p1 in 0.0f64..100.0,
        p2 in 0.0f64..100.0,
    ) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(percentile(&xs, lo) <= percentile(&xs, hi) + 1e-9);
    }
}

// ---------------- sharded tick engine ---------------------------------

/// One managed database for the fleet-equivalence property below.
fn fleet_node(seed: u64) -> ManagedDatabase {
    let wl = tpcc(0.5);
    let catalog = wl.catalog().clone();
    ManagedDatabase::new(
        DbFlavor::Postgres,
        InstanceType::M4Large,
        DiskKind::Ssd,
        catalog,
        Box::new(wl),
        ArrivalProcess::Constant(300.0),
        TuningPolicy::TdeDriven,
        autodbaas::tuner::WorkloadId(0),
        TdeConfig::default(),
        seed,
    )
}

proptest! {
    // The sharded tick engine must be invisible: for ANY fleet size, ANY
    // shard count (clamping included) and ANY seeded chaos plan, the
    // sharded drive produces the same event-log fingerprint and the same
    // per-node counters as the serial reference engine, bit for bit.
    #[test]
    fn serial_and_sharded_fleets_are_bit_identical(
        n_nodes in 1usize..7,
        shards in 1usize..=16,
        seed in 0u64..500,
        faults in prop::collection::vec(0u64..100_000, 0..6),
    ) {
        use autodbaas::cloudsim::{FaultEvent, FaultKind, FaultPlan};
        use autodbaas::simdb::MetricId;
        const MIN: u64 = 60_000;
        // Decode each raw draw into (injection slot, node, fault kind) —
        // the vendored proptest has no tuple strategies.
        let plan: Vec<FaultEvent> = faults
            .iter()
            .map(|&raw| FaultEvent {
                at: 10_000 + (raw % 5) * 20_000,
                node: (raw / 5) as usize % n_nodes,
                kind: match (raw / 320) % 8 {
                    0 => FaultKind::VmCrash,
                    1 => FaultKind::MasterCrashMidApply,
                    2 => FaultKind::SlaveCrashMidApply,
                    3 => FaultKind::TunerOutage { duration_ms: 30_000 },
                    4 => FaultKind::TelemetryDrop { duration_ms: 30_000 },
                    5 => FaultKind::DiskStall { duration_ms: 20_000, factor: 4.0 },
                    6 => FaultKind::ReplicaLagSpike { pause_ms: 10_000 },
                    _ => FaultKind::RequestLoss,
                },
            })
            .collect();
        let run = |sharded: bool| {
            let mut sim = FleetSim::new(
                FleetConfig {
                    gate_samples_with_tde: false,
                    shards: if sharded { shards } else { 0 },
                    ..FleetConfig::default()
                },
                2,
            );
            sim.set_parallel(sharded);
            for i in 0..n_nodes {
                sim.add_node(fleet_node(seed * 1000 + i as u64), &format!("db-{i}"));
            }
            sim.enable_chaos(FaultPlan::new(plan.clone()));
            sim.run_for(2 * MIN);
            let metrics: Vec<(u64, f64)> = sim
                .nodes
                .iter()
                .map(|n| {
                    (
                        n.queries_submitted,
                        n.db().metrics().get(MetricId::QueriesExecuted),
                    )
                })
                .collect();
            (sim.events.fingerprint(), metrics, sim.drive_stats())
        };
        let serial = run(false);
        let sharded_run = run(true);
        prop_assert_eq!(serial.0, sharded_run.0, "event fingerprints diverged");
        prop_assert_eq!(serial.1, sharded_run.1, "per-node metrics diverged");
        // The sharded engine also meters the drive it performed.
        prop_assert_eq!(sharded_run.2.node_ticks, n_nodes as u64 * 2 * MIN / 1_000);
    }
}

#[test]
fn reservoir_sampling_is_unbiased_at_scale() {
    // Non-proptest statistical check: retention frequency ≈ k/n.
    let k = 16;
    let n = 256;
    let mut hits = vec![0u32; n];
    for seed in 0..2_000u64 {
        let mut r = Reservoir::new(k);
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..n {
            r.offer(i, &mut rng);
        }
        for &i in r.items() {
            hits[i] += 1;
        }
    }
    let expected = 2_000.0 * k as f64 / n as f64; // 125
    for (i, &h) in hits.iter().enumerate() {
        assert!(
            (expected * 0.5..expected * 1.6).contains(&(h as f64)),
            "element {i} retained {h} times (expected ~{expected})"
        );
    }
}
