//! Backend conformance suite — the contract every adapter behind the
//! [`Backend`] trait must honour, run against *all* of them.
//!
//! The TDE, the config director and the fleet engine are generic over the
//! trait; they rely on exactly these behaviours, so each is pinned here
//! for every adapter rather than trusted to hold by analogy with the
//! page-heap engine:
//!
//! * knob writes clamp to the spec bounds (a recommendation outside
//!   `[min, max]` must land at the bound, not explode the engine);
//! * `apply_config` semantics: reloadable knobs land on `Reload`,
//!   restart-bound knobs stage on `Reload` and land on `Restart`;
//! * metrics deltas are monotone for every counter (gauges exempt) — the
//!   tuner's sample windows assume counters never run backwards;
//! * tick replay from a fixed seed is bit-identical — fleet fingerprints
//!   and the bug base depend on it.

use autodbaas::prelude::*;
use autodbaas::simdb::{KnobId, MetricId};

/// Every flavor × adapter pairing the substrate ships.
const FLAVORS: [DbFlavor; 3] = [DbFlavor::Postgres, DbFlavor::MySql, DbFlavor::Lsm];

fn mk(flavor: DbFlavor, seed: u64) -> AnyBackend {
    let catalog = Catalog::synthetic(4, 1_000_000_000, 150, 2);
    AnyBackend::new(flavor, InstanceType::M4Large, DiskKind::Ssd, catalog, seed)
}

/// A write-heavy, sort-heavy driving loop exercising both the foreground
/// and background paths of any engine.
fn drive(db: &mut AnyBackend, secs: u64) {
    let mut write = QueryProfile::new(QueryKind::Insert, 0);
    write.rows_written = 40;
    let mut scan = QueryProfile::new(QueryKind::RangeSelect, 1);
    scan.rows_examined = 30_000;
    for _ in 0..secs {
        let _ = db.submit(&write, 120);
        let _ = db.submit(&scan, 10);
        db.tick(1_000);
    }
}

/// A reloadable knob and a restart-bound knob from the adapter's own
/// profile (every profile must expose both classes).
fn sample_knobs(db: &AnyBackend) -> (KnobId, KnobId) {
    let profile = db.profile();
    let mut reload = None;
    let mut restart = None;
    for (id, spec) in profile.iter() {
        if spec.restart_required {
            restart.get_or_insert(id);
        } else {
            reload.get_or_insert(id);
        }
    }
    (
        reload.expect("profile must have a reloadable knob"),
        restart.expect("profile must have a restart-bound knob"),
    )
}

#[test]
fn knob_writes_clamp_to_spec_bounds() {
    for flavor in FLAVORS {
        let mut db = mk(flavor, 7);
        let (reload, _) = sample_knobs(&db);
        let spec = db.profile().spec(reload).clone();
        db.apply_config(
            &[ConfigChange {
                knob: reload,
                value: spec.max * 16.0,
            }],
            ApplyMode::Reload,
        );
        let v = db.knobs().get(reload);
        assert!(
            v <= spec.max,
            "{flavor}: over-max write must clamp ({v} > {})",
            spec.max
        );
        db.apply_config(
            &[ConfigChange {
                knob: reload,
                value: spec.min - spec.max,
            }],
            ApplyMode::Reload,
        );
        let v = db.knobs().get(reload);
        assert!(
            v >= spec.min,
            "{flavor}: under-min write must clamp ({v} < {})",
            spec.min
        );
    }
}

#[test]
fn reload_stages_restart_bound_knobs_and_restart_lands_them() {
    for flavor in FLAVORS {
        let mut db = mk(flavor, 11);
        let (_, restart) = sample_knobs(&db);
        let spec = db.profile().spec(restart).clone();
        let before = db.knobs().get(restart);
        let target = (before * 2.0).clamp(spec.min, spec.max);
        assert_ne!(before, target, "{flavor}: pick a knob with headroom");

        let report = db.apply_config(
            &[ConfigChange {
                knob: restart,
                value: target,
            }],
            ApplyMode::Reload,
        );
        assert_eq!(
            db.knobs().get(restart),
            before,
            "{flavor}: restart-bound knob must not move on reload"
        );
        assert!(
            db.staged_changes().iter().any(|c| c.knob == restart),
            "{flavor}: reload must stage the restart-bound change"
        );
        assert!(
            report.deferred.contains(&restart),
            "{flavor}: the report must list the deferral"
        );
        assert_eq!(
            report.downtime_ms, 0,
            "{flavor}: reload must not incur hard downtime"
        );

        let report = db.apply_config(&[], ApplyMode::Restart);
        assert!(
            report.downtime_ms > 0,
            "{flavor}: restart mode incurs downtime"
        );
        assert_eq!(
            db.knobs().get(restart),
            target,
            "{flavor}: restart must land the staged change"
        );
        assert!(
            db.staged_changes().is_empty(),
            "{flavor}: staging drains on restart"
        );
    }
}

#[test]
fn counter_metrics_never_run_backwards() {
    for flavor in FLAVORS {
        let mut db = mk(flavor, 23);
        let mut prev = db.metrics_snapshot();
        for chunk in 0..20 {
            drive(&mut db, 5);
            let now = db.metrics_snapshot();
            let delta = now.delta(&prev);
            for id in MetricId::ALL {
                if !id.is_gauge() {
                    assert!(
                        delta[id.index()] >= 0.0,
                        "{flavor}: counter {} went backwards in chunk {chunk} ({})",
                        id.name(),
                        delta[id.index()]
                    );
                }
            }
            prev = now;
        }
    }
}

#[test]
fn tick_replay_from_fixed_seed_is_bit_identical() {
    for flavor in FLAVORS {
        let mut a = mk(flavor, 97);
        let mut b = mk(flavor, 97);
        let mut scan = QueryProfile::new(QueryKind::RangeSelect, 2);
        scan.rows_examined = 50_000;
        let mut write = QueryProfile::new(QueryKind::Update, 3);
        write.rows_written = 25;
        write.rows_examined = 500;
        for i in 0..120 {
            let (ra, rb) = (a.submit(&scan, 20), b.submit(&scan, 20));
            match (ra, rb) {
                (SubmitResult::Done(oa), SubmitResult::Done(ob)) => {
                    assert_eq!(
                        oa.latency_ms.to_bits(),
                        ob.latency_ms.to_bits(),
                        "{flavor}: latency diverged at tick {i}"
                    );
                }
                (SubmitResult::Done(_), _) | (_, SubmitResult::Done(_)) => {
                    panic!("{flavor}: admission diverged at tick {i}")
                }
                _ => {}
            }
            let _ = a.submit(&write, 40);
            let _ = b.submit(&write, 40);
            a.tick(1_000);
            b.tick(1_000);
        }
        assert_eq!(
            a.metrics_snapshot().as_vec(),
            b.metrics_snapshot().as_vec(),
            "{flavor}: metric stores diverged"
        );
        assert_eq!(
            a.wal().insert_lsn(),
            b.wal().insert_lsn(),
            "{flavor}: WAL diverged"
        );
    }
}

#[test]
fn descriptor_scopes_names_per_backend_with_shared_layout() {
    let pg = mk(DbFlavor::Postgres, 1).descriptor();
    let lsm = mk(DbFlavor::Lsm, 1).descriptor();
    assert_eq!(pg.metric_names.len(), lsm.metric_names.len());
    assert_eq!(pg.metric_names.len(), MetricId::ALL.len());
    assert_eq!(pg.kind, BackendKind::PageHeap);
    assert_eq!(lsm.kind, BackendKind::Lsm);
    // Same slot, backend-scoped vocabulary: checkpoints vs compactions.
    let slot = MetricId::CheckpointsTimed.index();
    assert_ne!(pg.metric_names[slot], lsm.metric_names[slot]);
    // The knob profiles genuinely differ.
    assert_ne!(
        pg.knob_profile
            .iter()
            .map(|(_, s)| s.name)
            .collect::<Vec<_>>(),
        lsm.knob_profile
            .iter()
            .map(|(_, s)| s.name)
            .collect::<Vec<_>>()
    );
}
