//! End-to-end tuning loop: database → TDE → tuner → apply → relief.
//!
//! These integration tests exercise the full pipeline across crates, the
//! way the quickstart example does but with assertions.

use autodbaas::prelude::*;
use autodbaas::simdb::MetricId;
use autodbaas::tuner::{normalize_config, Sample, SampleQuality};
use rand::rngs::StdRng;

const MIB: u64 = 1024 * 1024;

fn drive(db: &mut SimDatabase, wl: &dyn QuerySource, rng: &mut StdRng, secs: u64, rate: u64) {
    for _ in 0..secs {
        for _ in 0..8 {
            let q = wl.next_query(rng);
            let _ = db.submit(&q, (rate / 8).max(1));
        }
        db.tick(1_000);
    }
}

#[test]
fn tde_detects_then_tuner_relieves_work_mem_starvation() {
    // A workload whose sorts need ~64 MiB against the 4 MiB default.
    let wl = AdulteratedWorkload::new(tpcc(1.0), 0.5);
    let mut db = SimDatabase::new(
        DbFlavor::Postgres,
        InstanceType::M4XLarge,
        DiskKind::Ssd,
        wl.base().catalog().clone(),
        1,
    );
    let profile = db.profile().clone();
    let mut tde = Tde::new(&profile, autodbaas::tde::TdeConfig::default(), 2);
    let mut rng = rand::SeedableRng::seed_from_u64(3);

    // Phase 1: detect.
    drive(&mut db, &wl, &mut rng, 60, 100);
    let report = tde.run(&mut db, None);
    assert!(
        report.tuning_request,
        "starved work areas must raise a tuning request"
    );
    let memory_throttles: Vec<_> = report
        .throttles
        .iter()
        .filter(|t| t.class == KnobClass::Memory)
        .collect();
    assert!(!memory_throttles.is_empty());

    // Phase 2: a hand-rolled "tuner" fixes the indicted knobs (the BO path
    // is tested in the fleet test below; here we isolate the TDE loop).
    for t in &memory_throttles {
        let spec = profile.spec(t.knob);
        if !spec.restart_required {
            db.set_knob_direct(t.knob, spec.max.min(1024.0 * MIB as f64));
        }
    }

    // Phase 3: relief.
    let before = tde.throttle_counts()[KnobClass::Memory.index()];
    for _ in 0..5 {
        drive(&mut db, &wl, &mut rng, 60, 100);
        let _ = tde.run(&mut db, None);
    }
    let after = tde.throttle_counts()[KnobClass::Memory.index()];
    // Spill-driven throttles must stop (working-set/buffer findings may
    // persist; they are maintenance-window business).
    assert!(
        after - before <= 5,
        "memory throttles should subside after the fix ({} new)",
        after - before
    );
}

#[test]
fn bo_tuner_recommendation_improves_throughput_under_saturation() {
    let wl = AdulteratedWorkload::new(tpcc(1.0), 0.4);
    let profile = KnobProfile::postgres();
    let mut repo = WorkloadRepository::new();
    let wid = repo.register("live", false);
    let mut rng: StdRng = rand::SeedableRng::seed_from_u64(5);

    // Collect exploratory samples (offline style).
    use rand::Rng;
    for i in 0..24 {
        let mut db = SimDatabase::new(
            DbFlavor::Postgres,
            InstanceType::M4XLarge,
            DiskKind::Ssd,
            wl.base().catalog().clone(),
            50 + i,
        );
        let unit: Vec<f64> = (0..profile.len()).map(|_| rng.gen()).collect();
        let raw = autodbaas::tuner::denormalize_config(&profile, &unit);
        for (k, (kid, spec)) in profile.iter().enumerate() {
            if !spec.restart_required {
                db.set_knob_direct(kid, raw[k]);
            }
        }
        let before = db.metrics_snapshot();
        drive(&mut db, &wl, &mut rng, 30, 400);
        let delta = db.metrics_snapshot().delta(&before);
        repo.add_sample(
            wid,
            Sample {
                config: normalize_config(&profile, db.knobs().as_vec()),
                metrics: delta.clone(),
                objective: delta[MetricId::QueriesExecuted.index()] / 30.0,
                quality: SampleQuality::High,
            },
        );
    }

    // Recommend and compare against defaults on a fresh instance.
    let mut tuner = BoTuner::new(
        BoConfig {
            kappa: 0.1,
            ..BoConfig::default()
        },
        9,
    );
    let rec = tuner.recommend(&repo, wid).expect("trained");

    let measure = |unit: Option<&[f64]>| {
        let mut db = SimDatabase::new(
            DbFlavor::Postgres,
            InstanceType::M4XLarge,
            DiskKind::Ssd,
            wl.base().catalog().clone(),
            99,
        );
        if let Some(u) = unit {
            let raw = autodbaas::tuner::denormalize_config(&profile, u);
            for (k, (kid, spec)) in profile.iter().enumerate() {
                if !spec.restart_required {
                    db.set_knob_direct(kid, raw[k]);
                }
            }
        }
        let mut rng: StdRng = rand::SeedableRng::seed_from_u64(7);
        let before = db.metrics_snapshot();
        drive(&mut db, &wl, &mut rng, 60, 400);
        db.metrics_snapshot().delta(&before)[MetricId::QueriesExecuted.index()] / 60.0
    };
    let default_qps = measure(None);
    let tuned_qps = measure(Some(&rec.config));
    assert!(
        tuned_qps > default_qps,
        "recommendation must beat defaults ({tuned_qps:.0} vs {default_qps:.0} qps)"
    );
}

#[test]
fn plan_upgrade_fires_on_undersized_instance_and_points_to_bigger_plan() {
    // t2.small with demands no knob setting can satisfy.
    let wl = AdulteratedWorkload::new(tpcc(1.0), 0.8);
    let mut db = SimDatabase::new(
        DbFlavor::Postgres,
        InstanceType::T2Small,
        DiskKind::Ssd,
        wl.base().catalog().clone(),
        11,
    );
    let profile = db.profile().clone();
    // Pin the memory knobs at cap, as a tuner chasing the spills would.
    for name in ["work_mem", "maintenance_work_mem", "temp_buffers"] {
        let id = profile.lookup(name).unwrap();
        db.set_knob_direct(id, profile.spec(id).max);
    }
    let mut tde = Tde::new(&profile, autodbaas::tde::TdeConfig::default(), 12);
    let mut rng: StdRng = rand::SeedableRng::seed_from_u64(13);
    let mut plan_upgrades = 0;
    let mut suppressed_or_upgraded = 0;
    for _ in 0..20 {
        drive(&mut db, &wl, &mut rng, 30, 100);
        let r = tde.run(&mut db, None);
        if r.plan_upgrade {
            plan_upgrades += 1;
        }
    }
    suppressed_or_upgraded += tde.suppressed() + tde.plan_upgrades();
    assert!(
        plan_upgrades > 0 || suppressed_or_upgraded > 0,
        "the entropy filter must stop asking the tuner for an unfixable instance"
    );
    assert_eq!(
        InstanceType::T2Small.upgrade(),
        Some(InstanceType::T2Medium)
    );
}
