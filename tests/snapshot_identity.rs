//! The snapshot contract (ROADMAP item 5): for any split point `k`, any
//! backend mix, and any shard count, `run(0..T)` and
//! `run(0..k); save; restore; run(k..T)` produce bit-identical fleets —
//! same event-log fingerprint, same serialized state, same counters.

use autodbaas::cloudsim::{
    FaultKind, FaultPlan, FleetConfig, FleetSim, InteractionPlan, ManagedDatabase, PlanAction,
    PlanEvent,
};
use autodbaas::prelude::*;
use autodbaas::tde::TdeConfig;
use autodbaas::telemetry::MILLIS_PER_MIN;
use autodbaas::tuner::WorkloadId;

fn node(flavor: DbFlavor, adulterated: bool, seed: u64) -> ManagedDatabase {
    let base = tpcc(0.4);
    let catalog = base.catalog().clone();
    let workload: Box<dyn QuerySource + Send> = if adulterated {
        Box::new(AdulteratedWorkload::new(base, 0.3))
    } else {
        Box::new(base)
    };
    ManagedDatabase::new(
        flavor,
        InstanceType::M4Large,
        DiskKind::Ssd,
        catalog,
        workload,
        ArrivalProcess::Constant(120.0),
        TuningPolicy::TdeDriven,
        WorkloadId(0),
        TdeConfig::default(),
        seed,
    )
    .with_slaves(if seed.is_multiple_of(2) { 1 } else { 0 })
}

/// A mixed-backend chaos fleet: page-heap and LSM masters side by side,
/// rollback guard armed, standard fault rotation running.
fn fleet(shards: usize, seed: u64) -> FleetSim {
    let mut sim = FleetSim::new(
        FleetConfig {
            seed,
            shards,
            parallel_threshold: 1,
            rollback: Some(Default::default()),
            ..FleetConfig::default()
        },
        2,
    );
    for i in 0..4u64 {
        let flavor = if i % 2 == 0 {
            DbFlavor::Postgres
        } else {
            DbFlavor::Lsm
        };
        sim.add_node(node(flavor, i == 2, seed ^ (i * 131)), &format!("db-{i}"));
    }
    sim.enable_chaos(FaultPlan::standard(4, 30 * MILLIS_PER_MIN));
    if shards > 1 {
        sim.set_parallel(true);
    }
    sim
}

const TOTAL: u64 = 30 * MILLIS_PER_MIN;

/// Drive `sim` from its current time up to absolute fleet time `until`.
fn run_until(sim: &mut FleetSim, until: u64) {
    let now = sim.now();
    assert!(until >= now);
    sim.run_for(until - now);
}

#[test]
fn save_restore_is_bit_identical_to_uninterrupted_run() {
    for shards in 1usize..=8 {
        // Reference: one uninterrupted run.
        let mut reference = fleet(shards, 42);
        run_until(&mut reference, TOTAL);

        // Interrupted: run to k, serialize, restore, continue to T.
        for &k in &[1u64, 7 * MILLIS_PER_MIN, 29 * MILLIS_PER_MIN] {
            let mut first = fleet(shards, 42);
            run_until(&mut first, k);
            let bytes = first.snapshot_bytes();
            drop(first);
            let mut resumed = FleetSim::from_snapshot_bytes(&bytes).expect("restore");
            run_until(&mut resumed, TOTAL);

            assert_eq!(
                reference.events.fingerprint(),
                resumed.events.fingerprint(),
                "event-log fingerprint diverged (shards={shards}, k={k})"
            );
            assert_eq!(
                reference.snapshot_bytes(),
                resumed.snapshot_bytes(),
                "serialized fleet state diverged (shards={shards}, k={k})"
            );
        }
    }
}

#[test]
fn restore_rebuilds_scratch_and_keeps_counters() {
    let mut sim = fleet(1, 7);
    run_until(&mut sim, 10 * MILLIS_PER_MIN);
    let submitted: u64 = sim.nodes.iter().map(|n| n.queries_submitted).sum();
    assert!(submitted > 0);
    let bytes = sim.snapshot_bytes();
    let restored = FleetSim::from_snapshot_bytes(&bytes).expect("restore");
    assert_eq!(restored.now(), sim.now());
    assert_eq!(
        restored
            .nodes
            .iter()
            .map(|n| n.queries_submitted)
            .sum::<u64>(),
        submitted
    );
    assert_eq!(restored.events.fingerprint(), sim.events.fingerprint());
}

#[test]
fn corruption_is_detected_never_garbage() {
    let mut sim = fleet(1, 3);
    run_until(&mut sim, 2 * MILLIS_PER_MIN);
    let bytes = sim.snapshot_bytes();
    // Flip one bit somewhere in the middle of the fleet frame payload.
    let mut corrupt = bytes.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x40;
    assert!(
        FleetSim::from_snapshot_bytes(&corrupt).is_err(),
        "flipped bit must surface as SnapError"
    );
    // Truncation too.
    assert!(FleetSim::from_snapshot_bytes(&bytes[..bytes.len() - 9]).is_err());
}

/// Bursts, knob pushes, maintenance, replica changes and a fault, spread
/// over the run — every [`PlanAction`] payload shape crosses the snapshot.
fn plan() -> InteractionPlan {
    InteractionPlan::new(vec![
        PlanEvent {
            at: 4 * MILLIS_PER_MIN,
            node: 0,
            action: PlanAction::Burst {
                rate_qps: 400.0,
                duration_ms: 3 * MILLIS_PER_MIN,
            },
        },
        PlanEvent {
            at: 9 * MILLIS_PER_MIN,
            node: 1,
            action: PlanAction::KnobPush { value: 0.95 },
        },
        PlanEvent {
            at: 15 * MILLIS_PER_MIN,
            node: 2,
            action: PlanAction::Maintenance,
        },
        PlanEvent {
            at: 18 * MILLIS_PER_MIN,
            node: 3,
            action: PlanAction::AddReplica,
        },
        PlanEvent {
            at: 22 * MILLIS_PER_MIN,
            node: 0,
            action: PlanAction::Fault(FaultKind::DiskStall {
                duration_ms: 2 * MILLIS_PER_MIN,
                factor: 4.0,
            }),
        },
        PlanEvent {
            at: 26 * MILLIS_PER_MIN,
            node: 3,
            action: PlanAction::RemoveReplica,
        },
    ])
}

#[test]
fn interaction_plan_cursor_survives_restore() {
    let mut sim = fleet(1, 11);
    sim.enable_plan(plan());
    let mut reference = fleet(1, 11);
    reference.enable_plan(plan());
    run_until(&mut reference, TOTAL);

    run_until(&mut sim, 13 * MILLIS_PER_MIN);
    let bytes = sim.snapshot_bytes();
    let mut resumed = FleetSim::from_snapshot_bytes(&bytes).expect("restore");
    run_until(&mut resumed, TOTAL);
    assert_eq!(reference.events.fingerprint(), resumed.events.fingerprint());
    assert_eq!(reference.snapshot_bytes(), resumed.snapshot_bytes());
}
