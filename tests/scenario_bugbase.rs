//! Tier-1 regression gate over the scenario bug base.
//!
//! Every `tests/bugbase/*.toml` entry is a shrunk counterexample with a
//! contract: `status = "fixed"` entries must replay clean (a re-failure is
//! a regression), `status = "fails"` entries must still violate their
//! recorded property (a silent pass means the behaviour changed and the
//! entry's status is stale). Either way `ReplayVerdict::ok()` must hold.

use autodbaas_scenario::{explore_seed, load_dir, profile, ReplayVerdict};
use std::path::Path;

fn bugbase_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/bugbase"))
}

#[test]
fn every_bugbase_entry_honors_its_contract() {
    let entries = load_dir(bugbase_dir()).expect("bug base must parse");
    assert!(
        !entries.is_empty(),
        "tests/bugbase must hold at least one entry"
    );
    let mut broken = Vec::new();
    for (path, entry) in &entries {
        let (verdict, out) = entry.replay(false);
        if !verdict.ok() {
            broken.push(format!(
                "{}: {} seed={} property={} status={} -> {:?} (availability={:.4})",
                path.display(),
                entry.profile,
                entry.seed,
                entry.property.name(),
                entry.status.name(),
                verdict,
                out.availability
            ));
        }
    }
    assert!(broken.is_empty(), "contract breaks:\n{}", broken.join("\n"));
}

#[test]
fn bugbase_holds_both_contract_kinds() {
    // The base must document at least one fixed bug (regression guard) and
    // at least one known limitation (expected-fail), so both replay paths
    // stay exercised.
    let entries = load_dir(bugbase_dir()).expect("bug base must parse");
    let fixed = entries
        .iter()
        .filter(|(_, e)| e.status.name() == "fixed")
        .count();
    let fails = entries.len() - fixed;
    assert!(fixed > 0, "need at least one status=fixed entry");
    assert!(fails > 0, "need at least one status=fails entry");
}

#[test]
fn replay_matches_a_fresh_exploration_of_the_same_seed() {
    // A "fixed" entry records the seed that originally found the bug; the
    // full generated plan for that seed must itself explore clean now, and
    // bit-identically across repeated explorations.
    let p = profile("quiet").unwrap();
    let a = explore_seed(p, 1, false);
    let b = explore_seed(p, 1, false);
    assert_eq!(a.plan_fingerprint, b.plan_fingerprint);
    assert_eq!(a.outcome.fingerprint_serial, b.outcome.fingerprint_serial);
    assert!(a.ok(), "quiet seed 1 regressed: {:?}", a.violations);
}

#[test]
fn replay_verdict_ok_covers_exactly_the_two_good_verdicts() {
    assert!(ReplayVerdict::Pass.ok());
    assert!(ReplayVerdict::StillFails.ok());
    assert!(!ReplayVerdict::UnexpectedlyPassed.ok());
    assert!(!ReplayVerdict::Regressed(String::new()).ok());
}
