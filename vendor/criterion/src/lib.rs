//! Offline stand-in for the parts of `criterion` this workspace uses.
//!
//! Implements the `criterion_group!`/`criterion_main!`/`Criterion` bench
//! harness API with a simple but honest measurement loop: warm up for a
//! fixed budget, then take `sample_size` timed batches and report the
//! median per-iteration time. No plots, no statistics beyond min/median/max.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-batch timing budget.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
const WARMUP_BUDGET: Duration = Duration::from_millis(100);

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/param` identifier.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{name}/{param}"),
        }
    }

    /// Identifier carrying only the parameter.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        Self {
            id: param.to_string(),
        }
    }
}

/// Runs one benchmark's iterations.
pub struct Bencher {
    /// Median per-iteration nanoseconds, filled by [`Bencher::iter`].
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
    sample_size: usize,
}

impl Bencher {
    /// Measure `f`: warm up, then time `sample_size` batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup, and calibrate how many iterations fill one batch budget.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP_BUDGET {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let batch = ((MEASURE_BUDGET.as_secs_f64() / self.sample_size as f64 / per_iter) as u64)
            .clamp(1, 1_000_000);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(t.elapsed().as_secs_f64() * 1e9 / batch as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN timings"));
        self.median_ns = samples[samples.len() / 2];
        self.min_ns = samples[0];
        self.max_ns = samples[samples.len() - 1];
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn run_and_report(id: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        median_ns: 0.0,
        min_ns: 0.0,
        max_ns: 0.0,
        sample_size,
    };
    f(&mut b);
    println!(
        "{id:<40} time: [{} {} {}]",
        fmt_ns(b.min_ns),
        fmt_ns(b.median_ns),
        fmt_ns(b.max_ns)
    );
}

/// The bench harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Run one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_and_report(id, self.sample_size, |b| f(b));
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one parameterised benchmark.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.id);
        run_and_report(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Run one named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_and_report(&label, self.sample_size, |b| f(b));
        self
    }

    /// Close the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        c.bench_function("noop_add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(3);
        for &n in &[4u64, 8] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
        }
        group.finish();
    }

    criterion_group!(smoke, trivial_bench);

    #[test]
    fn harness_runs_and_times() {
        smoke();
    }
}
