//! Offline stand-in for the parts of `bytes` this workspace uses: an
//! immutable, cheaply-cloneable byte buffer ([`Bytes`]), a growable builder
//! ([`BytesMut`]), and the [`BufMut`] write trait.

use std::sync::Arc;

/// Immutable shared byte buffer. Clones share the allocation.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Self {
            data: Arc::from(&[][..]),
        }
    }

    /// Wrap a static slice (copied once into the shared allocation; the
    /// upstream crate is zero-copy here, which no caller in this workspace
    /// depends on).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self {
            data: Arc::from(bytes),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self { data: Arc::from(v) }
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

/// Sink for serialised bytes.
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, b: u8) {
        self.put_slice(&[b]);
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_freeze_read_round_trip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_slice(b"hello ");
        buf.put_slice(b"world");
        buf.put_u8(b'!');
        let frozen = buf.freeze();
        assert_eq!(&frozen[..], b"hello world!");
        assert_eq!(frozen.len(), 12);
        assert_eq!(std::str::from_utf8(&frozen).unwrap(), "hello world!");
    }

    #[test]
    fn bytes_equality_and_clone_share() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(Bytes::from_static(b"abc"), Bytes::from(b"abc".to_vec()));
        assert!(Bytes::new().is_empty());
    }
}
