//! Offline stand-in for the parts of `rand` 0.8 this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the API surface it needs: [`RngCore`], [`Rng`] (blanket-implemented
//! for every `RngCore`, including `dyn RngCore`), [`SeedableRng`], and a
//! deterministic [`rngs::StdRng`] built on xoshiro256++ seeded via SplitMix64.
//!
//! The value streams differ from upstream `rand` (which uses ChaCha12 for
//! `StdRng`), but every consumer in this repository relies only on
//! *determinism per seed* and statistical uniformity, never on specific
//! values, so the swap is behaviour-preserving for the simulation.

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from their full domain (`Rng::gen`).
pub trait StandardSample: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Open `lo..hi` / closed `lo..=hi` uniform sampling support (`Rng::gen_range`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_range_inclusive(rng, lo, hi)
    }
}

macro_rules! impl_int_sampling {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_int_sampling!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                lo + (hi - lo) * <$t as StandardSample>::sample_standard(rng)
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                lo + (hi - lo) * <$t as StandardSample>::sample_standard(rng)
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

/// High-level convenience methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    /// Uniform sample over the type's natural domain (`[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanded through SplitMix64 like upstream.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete RNGs.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for rand's `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Expose the raw xoshiro256++ state so snapshot/restore can
        /// persist the exact stream position. The words are the generator
        /// state verbatim; `from_state(state())` is the identity.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator at an exact stream position captured by
        /// [`StdRng::state`]. An all-zero state is nudged exactly like
        /// `from_seed`, so no reachable state is pathological.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                let mut seed = [0u8; 32];
                seed.fill(0);
                return <Self as SeedableRng>::from_seed(seed);
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
    }

    /// Snapshot persistence: the exact stream position round-trips, so a
    /// restored generator continues the identical draw sequence.
    impl autodbaas_snapshot::Snap for StdRng {
        fn encode(&self, w: &mut autodbaas_snapshot::SnapWriter) {
            for word in self.s {
                w.put_u64(word);
            }
        }
        fn decode(
            r: &mut autodbaas_snapshot::SnapReader<'_>,
        ) -> Result<Self, autodbaas_snapshot::SnapError> {
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = r.get_u64()?;
            }
            Ok(Self::from_state(s))
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // A pathological all-zero state would make xoshiro emit zeros
            // forever; nudge it the way the reference implementation suggests.
            if s == [0; 4] {
                s = [
                    0x9e3779b97f4a7c15,
                    0x6a09e667f3bcc909,
                    0xbb67ae8584caa73b,
                    0x3c6ef372fe94f82b,
                ];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(va[0], c.next_u64());
    }

    #[test]
    fn floats_land_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1_000 {
            let x = rng.gen_range(-0.15..0.15);
            assert!((-0.15..0.15).contains(&x));
            let n = rng.gen_range(3usize..9);
            assert!((3..9).contains(&n));
            let m = rng.gen_range(0u64..1);
            assert_eq!(m, 0);
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn works_through_dyn_rng_core() {
        let mut rng = StdRng::seed_from_u64(3);
        let dynamic: &mut dyn RngCore = &mut rng;
        let x: f64 = dynamic.gen();
        assert!((0.0..1.0).contains(&x));
        let n = dynamic.gen_range(0u64..10);
        assert!(n < 10);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
