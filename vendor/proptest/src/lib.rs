//! Offline stand-in for the parts of `proptest` this workspace uses.
//!
//! Provides the [`proptest!`] macro, range/collection strategies, and the
//! `prop_assert*` macros. Each property runs a fixed number of
//! deterministically-generated cases (seeded from the test's name), so runs
//! are reproducible. Failing cases are reported with the panic message but
//! are **not shrunk** — keep generated inputs small enough to eyeball.

pub use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Cases generated per property.
pub const CASES: usize = 256;

/// Deterministic per-test case generator.
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// Seeded from a stable hash of the test name: reruns replay the same
    /// case sequence.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Self {
            rng: StdRng::seed_from_u64(h),
        }
    }

    /// The underlying RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// Generated value type.
    type Value;
    /// Draw one case.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Element-count specification for [`vec`]: an exact size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.rng().gen_range(self.size.lo..self.size.hi)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy};

    /// Namespace mirror of upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Define property tests. Each `fn` becomes a `#[test]` that runs
/// [`CASES`](crate::CASES) deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut __proptest_rng = $crate::TestRng::deterministic(stringify!($name));
                for __proptest_case in 0..$crate::CASES {
                    $(let $p = $crate::Strategy::generate(&($s), &mut __proptest_rng);)+
                    $body
                }
            }
        )+
    };
}

/// Assert inside a property (panics with the formatted message on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 0u64..100, y in -1.0f64..1.0, z in 2usize..5) {
            prop_assert!(x < 100);
            prop_assert!((-1.0..1.0).contains(&y), "y = {y}");
            prop_assert!((2..5).contains(&z));
        }

        #[test]
        fn vec_strategy_obeys_size(v in prop::collection::vec(0u32..10, 2..6), w in prop::collection::vec(0.0f64..=1.0, 3)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert_eq!(w.len(), 3);
            prop_assert!(w.iter().all(|x| (0.0..=1.0).contains(x)));
        }

        #[test]
        fn mut_patterns_work(mut v in prop::collection::vec(0u8..255, 1..4)) {
            v.reverse();
            prop_assert!(!v.is_empty());
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::deterministic("t");
        let mut b = crate::TestRng::deterministic("t");
        let sa: Vec<u64> = (0..4)
            .map(|_| crate::Strategy::generate(&(0u64..1000), &mut a))
            .collect();
        let sb: Vec<u64> = (0..4)
            .map(|_| crate::Strategy::generate(&(0u64..1000), &mut b))
            .collect();
        assert_eq!(sa, sb);
    }
}
