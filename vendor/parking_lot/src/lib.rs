//! Offline stand-in for the parts of `parking_lot` this workspace uses.
//!
//! Wraps the std primitives and recovers from poisoning (parking_lot has no
//! poisoning), so the ergonomics match: `lock()` returns a guard directly.

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutex whose `lock` never returns a poisoning `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A reader-writer lock whose accessors never return a poisoning `Result`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_synchronises_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4_000);
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
