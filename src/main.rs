//! `autodbaas` — scenario runner CLI.
//!
//! ```text
//! autodbaas demo                        one DB: detect -> tune -> relief
//! autodbaas census  [--db pg|mysql]     throttles per knob class per workload
//! autodbaas fleet   [--dbs N] [--hours H] [--policy tde|5min|10min]
//! autodbaas entropy [--prob P]          adulteration entropy curve
//! ```
//!
//! Everything is deterministic; rerunning a command reproduces its output.

use autodbaas::cloudsim::{FleetConfig, FleetSim, ManagedDatabase};
use autodbaas::prelude::*;
use autodbaas::tde::{ClassHistogram, TdeConfig};
use autodbaas::telemetry::entropy::normalized_entropy;
use autodbaas::telemetry::{MILLIS_PER_HOUR, MILLIS_PER_MIN};
use autodbaas_telemetry::outln;
use rand::rngs::StdRng;

fn arg(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Parse a flag's value or exit with a readable error (no panics at the
/// CLI surface).
fn parsed_arg<T: std::str::FromStr>(name: &str, default: T) -> T {
    match arg(name) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("error: {name} expects a number, got '{v}'");
            std::process::exit(2);
        }),
    }
}

fn main() {
    let cmd = std::env::args().nth(1).unwrap_or_else(|| "help".into());
    match cmd.as_str() {
        "demo" => demo(),
        "census" => census(),
        "fleet" => fleet(),
        "entropy" => entropy(),
        _ => {
            eprintln!(
                "usage: autodbaas <demo|census|fleet|entropy> [flags]\n\
                 \n\
                 demo                       one DB: detect -> tune -> relief\n\
                 census  [--db pg|mysql]    throttles per knob class per workload\n\
                 fleet   [--dbs N] [--hours H] [--policy tde|5min|10min]\n\
                 entropy [--prob P]         adulteration entropy curve"
            );
            std::process::exit(2);
        }
    }
}

/// One database: run a starved workload, let the TDE detect, fix the knob,
/// show relief. The quickstart example, condensed.
fn demo() {
    let wl = AdulteratedWorkload::new(tpcc(1.0), 0.4);
    let mut db = SimDatabase::new(
        DbFlavor::Postgres,
        InstanceType::M4XLarge,
        DiskKind::Ssd,
        wl.base().catalog().clone(),
        1,
    );
    let profile = db.profile().clone();
    let mut tde = Tde::new(&profile, TdeConfig::default(), 2);
    let mut rng: StdRng = SeedableRng::seed_from_u64(3);

    outln!("phase 1: vendor defaults");
    for minute in 0..3 {
        for _ in 0..60 {
            let q = wl.next_query(&mut rng);
            let _ = db.submit(&q, 60);
            db.tick(1_000);
        }
        let r = tde.run(&mut db, None);
        outln!("  minute {minute}: {} throttle(s)", r.throttles.len());
        for t in &r.throttles {
            outln!("    -> {} ({:?})", profile.spec(t.knob).name, t.class);
        }
    }
    outln!("phase 2: applying the obvious fix (the tuner's job in production)");
    for name in ["work_mem", "maintenance_work_mem", "temp_buffers"] {
        let id = profile.lookup(name).unwrap();
        db.set_knob_direct(id, profile.spec(id).max.min(1024.0 * 1024.0 * 1024.0));
    }
    let mut after = 0;
    for _ in 0..3 {
        for _ in 0..60 {
            let q = wl.next_query(&mut rng);
            let _ = db.submit(&q, 60);
            db.tick(1_000);
        }
        after += tde.run(&mut db, None).throttles.len();
    }
    outln!("phase 3: {after} throttle(s) in the next 3 minutes — relief.");
}

/// Fig. 10/11 in CLI form.
fn census() {
    let flavor = match arg("--db").as_deref() {
        Some("mysql") => DbFlavor::MySql,
        _ => DbFlavor::Postgres,
    };
    outln!("throttles/window by class on {flavor} (10 windows, no tuning):");
    outln!(
        "{:<14} {:>8} {:>10} {:>8}",
        "workload",
        "memory",
        "bgwriter",
        "async"
    );
    for (name, rate) in [("tpcc", 1_600u64), ("wikipedia", 800), ("ycsb", 2_000)] {
        let wl = autodbaas::workload::by_name(name).unwrap();
        let mut db = SimDatabase::new(
            flavor,
            InstanceType::M4Large,
            DiskKind::Ssd,
            wl.catalog().clone(),
            13,
        );
        let buffer = db.planner().roles().buffer_pool;
        db.set_knob_direct(buffer, InstanceType::M4Large.mem_bytes() * 0.25);
        let mut rng: StdRng = SeedableRng::seed_from_u64(17);
        // Warm.
        for _ in 0..5 * 60 {
            for _ in 0..24 {
                let q = wl.next_query(&mut rng);
                let _ = db.submit(&q, (rate / 24).max(1));
            }
            db.tick(1_000);
        }
        let mut tde = Tde::new(&db.profile().clone(), TdeConfig::default(), 19);
        for _ in 0..10 {
            for _ in 0..60 {
                for _ in 0..24 {
                    let q = wl.next_query(&mut rng);
                    let _ = db.submit(&q, (rate / 24).max(1));
                }
                db.tick(1_000);
            }
            let _ = tde.run(&mut db, None);
        }
        let c = tde.throttle_counts();
        outln!(
            "{:<14} {:>8.2} {:>10.2} {:>8.2}",
            name,
            c[0] as f64 / 10.0,
            c[1] as f64 / 10.0,
            c[2] as f64 / 10.0
        );
    }
}

/// Fig. 9 in CLI form.
fn fleet() {
    let dbs: usize = parsed_arg("--dbs", 12);
    let hours: u64 = parsed_arg("--hours", 2);
    let policy = match arg("--policy").as_deref() {
        Some("5min") => TuningPolicy::Periodic(5 * MILLIS_PER_MIN),
        Some("10min") => TuningPolicy::Periodic(10 * MILLIS_PER_MIN),
        _ => TuningPolicy::TdeDriven,
    };
    // Same observation cadence as the Fig. 9 harness (5-minute windows).
    let mut sim = FleetSim::new(
        FleetConfig {
            seed: 7,
            tde_period_ms: 5 * MILLIS_PER_MIN,
            ..FleetConfig::default()
        },
        4,
    );
    sim.seed_offline_training(&tpcc(1.0), DbFlavor::Postgres, 16);
    for i in 0..dbs {
        let base = tpcc(1.0);
        let catalog = base.catalog().clone();
        let workload: Box<dyn QuerySource + Send> = if i % 3 == 0 {
            Box::new(AdulteratedWorkload::new(base, 0.4))
        } else {
            Box::new(base)
        };
        let node = ManagedDatabase::new(
            DbFlavor::Postgres,
            InstanceType::M4Large,
            DiskKind::Ssd,
            catalog,
            workload,
            ArrivalProcess::Constant(200.0),
            policy,
            autodbaas::tuner::WorkloadId(0),
            TdeConfig::default(),
            7 ^ (i as u64 * 31),
        );
        sim.add_node(node, &format!("db-{i}"));
    }
    sim.run_for(hours * MILLIS_PER_HOUR);
    outln!(
        "{dbs} databases, {hours} h, policy {:?}: {} tuning requests, backlog {:.1} s",
        policy,
        sim.director.total_requests(),
        sim.director.backlog_ms(sim.now()) / 1000.0
    );
}

/// Figs. 3/4 in CLI form.
fn entropy() {
    let p: f64 = parsed_arg("--prob", 0.8);
    if !(0.0..=1.0).contains(&p) {
        eprintln!("error: --prob must be in [0, 1], got {p}");
        std::process::exit(2);
    }
    let plain = tpcc(21.0);
    let adulterated = AdulteratedWorkload::new(tpcc(21.0), p);
    let mut rng: StdRng = SeedableRng::seed_from_u64(23);
    let mut h_plain = ClassHistogram::new();
    let mut h_adult = ClassHistogram::new();
    for _ in 0..20_000 {
        h_plain.record(&plain.next_query(&mut rng));
        h_adult.record(&adulterated.next_query(&mut rng));
    }
    outln!(
        "normalized entropy: plain tpcc = {:.3}, adulterated(p={p}) = {:.3}",
        normalized_entropy(h_plain.counts()),
        normalized_entropy(h_adult.counts())
    );
}
