//! # AutoDBaaS
//!
//! A from-scratch Rust reproduction of *"AutoDBaaS: Autonomous Database as
//! a Service for managing backing services"* (EDBT 2021): a tuning-service
//! architecture for PaaS providers whose central piece, the **Throttling
//! Detection Engine (TDE)**, turns periodic ML-tuner polling into
//! event-driven tuning requests raised only when a database's knobs are
//! demonstrably insufficient for its live SQL workload.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`simdb`] — the simulated relational DBMS substrate (knobs, buffer
//!   pool, planner with spills, background writer/checkpointer, disk
//!   model, metrics, apply semantics);
//! * [`workload`] — TPCC/YCSB/Wikipedia/Twitter/TPCH/CH-bench generators,
//!   the adulterated TPCC of §3.1, and the synthetic 33-day production
//!   trace of §5;
//! * [`tuner`] — OtterTune-style GP/BO and CDBTune-style actor–critic RL
//!   tuners with the shared workload repository;
//! * [`core`](tde) — the TDE: templating, reservoir sampling, per-knob query
//!   classes, the memory/bgwriter/MDP detectors, and entropy filtration;
//! * [`ctrlplane`] — config director, service orchestrator, DFA adapters,
//!   reconciler, and maintenance-window logic;
//! * [`cloudsim`] — the fleet simulator reproducing the §5 topology.
//!
//! ## Quickstart
//!
//! ```
//! use autodbaas::prelude::*;
//!
//! // A PostgreSQL-flavored instance serving a TPCC-like dataset.
//! let wl = autodbaas::workload::tpcc(1.0);
//! let mut db = SimDatabase::new(
//!     DbFlavor::Postgres,
//!     InstanceType::M4Large,
//!     DiskKind::Ssd,
//!     wl.catalog().clone(),
//!     42,
//! );
//! // The TDE plugin watching it.
//! let mut tde = Tde::new(&db.profile().clone(), TdeConfig::default(), 7);
//!
//! // Drive some traffic, then ask the TDE whether tuning is needed.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! for _ in 0..50 {
//!     let q = wl.next_query(&mut rng);
//!     let _ = db.submit(&q, 10);
//!     db.tick(1_000);
//! }
//! let report = tde.run(&mut db, None);
//! println!("throttles: {}", report.throttles.len());
//! ```

pub use autodbaas_cloudsim as cloudsim;
pub use autodbaas_core as tde;
pub use autodbaas_ctrlplane as ctrlplane;
pub use autodbaas_simdb as simdb;
pub use autodbaas_telemetry as telemetry;
pub use autodbaas_tuner as tuner;
pub use autodbaas_workload as workload;

/// The most common imports for application code.
pub mod prelude {
    pub use autodbaas_cloudsim::{FleetConfig, FleetSim, ManagedDatabase};
    pub use autodbaas_core::{
        Tde, TdeConfig, TdeReport, ThrottleReason, ThrottleSignal, TuningPolicy,
    };
    pub use autodbaas_ctrlplane::{
        ConfigDirector, DataFederationAgent, ReplicaSet, ServiceOrchestrator, TunerKind,
    };
    pub use autodbaas_simdb::{
        AnyBackend, ApplyMode, Backend, BackendDescriptor, BackendKind, Catalog, ConfigChange,
        DbFlavor, DiskKind, InstanceType, KnobClass, KnobProfile, LsmDatabase, QueryKind,
        QueryProfile, SimDatabase, SubmitResult,
    };
    pub use autodbaas_tuner::{BoConfig, BoTuner, RlConfig, RlTuner, WorkloadRepository};
    pub use autodbaas_workload::{
        production, tpcc, twitter, wikipedia, ycsb, AdulteratedWorkload, ArrivalProcess,
        MixWorkload, QuerySource,
    };
    pub use rand::SeedableRng;
}
