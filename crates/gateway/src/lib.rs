//! `autodbaas-gateway`: the multi-tenant network front door for the
//! AutoDBaaS tuning fleet.
//!
//! The paper's economics (§1, §4) — one tuner deployment serving hundreds
//! of tenant databases because the TDE suppresses unnecessary
//! recommendation requests — only materialise behind a real service
//! boundary. This crate is that boundary: a zero-external-dependency TCP
//! service built on `std::net` exposing the control plane over a
//! versioned, checksummed binary protocol.
//!
//! Layers, bottom up:
//!
//! * [`frame`] — length-prefixed frames (magic + version + checksum, hard
//!   size cap, reject-not-panic on garbage);
//! * [`proto`] — the request/response messages and their total codec;
//! * [`admission`] — per-tenant token buckets answering `Busy` instead of
//!   queueing;
//! * [`router`] — decoded requests → orchestrator / TDE filtration /
//!   config director / per-tenant metering;
//! * [`server`] — acceptor + fixed worker pool with bounded per-worker
//!   queues and graceful drain;
//! * [`client`] — the blocking client the loadgen and tests drive;
//! * [`clock`] — the crate's single wall-clock boundary.
//!
//! Two binaries ship with the crate: `autodbaas-gateway` (the daemon) and
//! `autodbaas-loadgen` (closed-loop load generator that writes
//! `BENCH_gateway.json`).

pub mod admission;
pub mod client;
pub mod clock;
pub mod frame;
pub mod proto;
pub mod router;
pub mod server;

pub use admission::{Admission, AdmissionConfig, AdmissionControl};
pub use client::{ClientError, GatewayClient};
pub use clock::{Clock, ManualClock, WallClock};
pub use frame::{Decoded, FrameError, HEADER_LEN, MAX_PAYLOAD, PROTOCOL_VERSION};
pub use proto::{ErrorCode, Request, Response, WireDecision, WireError, N_CLASSES};
pub use router::{GatewayState, RouterConfig, ANON_TENANT};
pub use server::{serve, GatewayHandle, ServerConfig};
