//! The TCP server shell: accept loop, fixed worker pool, bounded queues,
//! graceful drain.
//!
//! Concurrency model — deliberately boring:
//!
//! * one **acceptor** thread owns the listener and deals accepted
//!   connections to workers round-robin;
//! * a **fixed pool** of worker threads each owns a bounded queue of
//!   pending connections (`sync_channel(queue_depth)`). A worker serves
//!   one connection at a time, request by request;
//! * when every worker queue is full the acceptor **sheds the
//!   connection**: it writes one `Busy` frame and closes, so overload
//!   surfaces as an explicit signal at the edge instead of an unbounded
//!   backlog;
//! * **shutdown** flips an atomic flag; the acceptor stops accepting,
//!   workers finish the request in flight on each connection, close, and
//!   drain (queued-but-unserved connections get a `ShuttingDown` error
//!   frame). `Health` replies flip to `draining` the moment shutdown
//!   begins so load balancers stop routing here.
//!
//! Per-request backpressure (token buckets) lives in
//! [`GatewayState::admit`]; this module only adds the connection-level
//! bound.

use crate::clock::Clock;
use crate::frame::{self, Decoded, FrameError};
use crate::proto::{ErrorCode, Request, Response};
use crate::router::GatewayState;
use parking_lot::Mutex;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::Duration;

/// Server shell configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (fixed; the pool never grows).
    pub workers: usize,
    /// Pending connections each worker will queue before the acceptor
    /// sheds new ones.
    pub queue_depth: usize,
    /// Socket read timeout — also the shutdown-poll granularity.
    pub read_timeout_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 8,
            queue_depth: 2,
            read_timeout_ms: 25,
        }
    }
}

/// A running gateway; dropping it without [`GatewayHandle::shutdown`]
/// leaves the threads serving until process exit.
pub struct GatewayHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    state: Arc<Mutex<GatewayState>>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl GatewayHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared routing state, for harnesses that want counters after a run.
    pub fn state(&self) -> Arc<Mutex<GatewayState>> {
        Arc::clone(&self.state)
    }

    /// Begin draining: stop accepting, let in-flight requests finish,
    /// then join every thread. Returns the final state.
    pub fn shutdown(self) -> Arc<Mutex<GatewayState>> {
        self.state.lock().draining = true;
        self.shutdown.store(true, Ordering::SeqCst);
        for t in self.threads {
            // A worker that panicked already lost its connections; the
            // join error carries nothing actionable beyond that.
            let _ = t.join();
        }
        self.state
    }
}

/// Bind `addr` and serve `state` with `cfg`. `addr` may use port 0 to let
/// the OS pick (see [`GatewayHandle::addr`]).
pub fn serve(
    addr: &str,
    state: GatewayState,
    cfg: ServerConfig,
    clock: Arc<dyn Clock>,
) -> std::io::Result<GatewayHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let workers = cfg.workers.max(1);
    let queue_depth = cfg.queue_depth.max(1);
    let state = Arc::new(Mutex::new(state));
    let shutdown = Arc::new(AtomicBool::new(false));
    let mut threads = Vec::with_capacity(workers + 1);
    let mut senders: Vec<SyncSender<TcpStream>> = Vec::with_capacity(workers);

    for _ in 0..workers {
        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(queue_depth);
        senders.push(tx);
        let state = Arc::clone(&state);
        let stop = Arc::clone(&shutdown);
        let clock = Arc::clone(&clock);
        let read_timeout = Duration::from_millis(cfg.read_timeout_ms.max(1));
        // detlint-allow: D005 fixed-size worker pool built once at startup, never per request
        threads.push(std::thread::spawn(move || {
            worker_loop(&rx, &state, &stop, clock.as_ref(), read_timeout);
        }));
    }

    {
        let stop = Arc::clone(&shutdown);
        threads.push(std::thread::spawn(move || {
            accept_loop(&listener, &senders, &stop);
        }));
    }

    Ok(GatewayHandle {
        addr: local,
        shutdown,
        state,
        threads,
    })
}

/// Deal connections to workers; shed with a `Busy` frame when every queue
/// is full.
fn accept_loop(listener: &TcpListener, senders: &[SyncSender<TcpStream>], stop: &AtomicBool) {
    let mut next = 0usize;
    loop {
        if stop.load(Ordering::SeqCst) {
            return; // senders drop here; workers drain and exit
        }
        match listener.accept() {
            Ok((conn, _peer)) => {
                let mut pending = Some(conn);
                for i in 0..senders.len() {
                    let idx = (next + i) % senders.len();
                    let Some(stream) = pending.take() else { break };
                    match senders[idx].try_send(stream) {
                        Ok(()) => {
                            next = idx + 1;
                        }
                        Err(TrySendError::Full(back)) | Err(TrySendError::Disconnected(back)) => {
                            pending = Some(back);
                        }
                    }
                }
                if let Some(stream) = pending {
                    // Every queue is at depth: explicit connection-level
                    // shed. Best effort — the client may already be gone.
                    shed_connection(stream);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => {
                // Transient accept errors (per-connection resets) — keep
                // listening rather than killing the gateway.
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

fn shed_connection(mut conn: TcpStream) {
    let payload = Response::Busy {
        retry_after_ms: 100,
    }
    .encode();
    if let Ok(bytes) = frame::encode(&payload) {
        let _ = conn.write_all(&bytes);
    }
}

fn refuse_draining(mut conn: TcpStream) {
    let payload = Response::Error {
        code: ErrorCode::ShuttingDown,
        detail: "gateway is draining".to_string(),
    }
    .encode();
    if let Ok(bytes) = frame::encode(&payload) {
        let _ = conn.write_all(&bytes);
    }
}

/// One worker: serve queued connections until the channel closes.
fn worker_loop(
    rx: &Receiver<TcpStream>,
    state: &Mutex<GatewayState>,
    stop: &AtomicBool,
    clock: &dyn Clock,
    read_timeout: Duration,
) {
    loop {
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(conn) => {
                if stop.load(Ordering::SeqCst) {
                    refuse_draining(conn);
                    continue;
                }
                serve_connection(conn, state, stop, clock, read_timeout);
            }
            Err(RecvTimeoutError::Timeout) => {
                if stop.load(Ordering::SeqCst) {
                    // Acceptor may still hold the sender briefly; only
                    // exit once it has dropped (Disconnected) or on stop
                    // with an empty queue — both land here eventually.
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Serve one connection request-by-request until EOF, protocol error, or
/// drain.
fn serve_connection(
    mut conn: TcpStream,
    state: &Mutex<GatewayState>,
    stop: &AtomicBool,
    clock: &dyn Clock,
    read_timeout: Duration,
) {
    if conn.set_read_timeout(Some(read_timeout)).is_err() {
        return;
    }
    let _ = conn.set_nodelay(true);
    let mut buf: Vec<u8> = Vec::with_capacity(4096);
    let mut chunk = [0u8; 4096];
    loop {
        // Drain complete frames already buffered before reading more.
        loop {
            match frame::decode(&buf) {
                Ok(Decoded::Frame { payload, consumed }) => {
                    buf.drain(..consumed);
                    if !handle_request(&payload, &mut conn, state, clock) {
                        return;
                    }
                    if stop.load(Ordering::SeqCst) {
                        // Drain semantics: the request in flight was
                        // answered; now close.
                        return;
                    }
                }
                Ok(Decoded::NeedMore(_)) => break,
                Err(e) => {
                    reply_frame_error(&mut conn, state, clock, &e);
                    return;
                }
            }
        }
        match conn.read(&mut chunk) {
            Ok(0) => return, // clean EOF
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Decode, admit, route, reply. Returns `false` when the connection must
/// close (write failure).
fn handle_request(
    payload: &[u8],
    conn: &mut TcpStream,
    state: &Mutex<GatewayState>,
    clock: &dyn Clock,
) -> bool {
    let t0_us = clock.now_us();
    let response = match Request::decode(payload) {
        Ok(req) => {
            let now_ms = clock.now_ms();
            let mut s = state.lock();
            match s.admit(&req, now_ms) {
                crate::admission::Admission::Busy { retry_after_ms } => {
                    Response::Busy { retry_after_ms }
                }
                crate::admission::Admission::Admit => {
                    let resp = s.route(&req, now_ms);
                    let out_len = resp.encode().len() as u64;
                    s.meter_bytes(&req, payload.len() as u64, out_len);
                    s.observe_latency_us(clock.now_us().saturating_sub(t0_us));
                    resp
                }
            }
        }
        Err(e) => {
            let mut s = state.lock();
            s.record_error(clock.now_ms());
            Response::Error {
                code: ErrorCode::Malformed,
                detail: e.to_string(),
            }
        }
    };
    write_response(conn, &response)
}

fn reply_frame_error(
    conn: &mut TcpStream,
    state: &Mutex<GatewayState>,
    clock: &dyn Clock,
    e: &FrameError,
) {
    state.lock().record_error(clock.now_ms());
    let _ = write_response(
        conn,
        &Response::Error {
            code: ErrorCode::Malformed,
            detail: e.to_string(),
        },
    );
}

fn write_response(conn: &mut TcpStream, resp: &Response) -> bool {
    let payload = resp.encode();
    match frame::encode(&payload) {
        Ok(bytes) => conn.write_all(&bytes).is_ok(),
        // Unreachable for gateway-built responses (encode caps strings and
        // config vectors far below MAX_PAYLOAD), but stay total anyway.
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::GatewayClient;
    use crate::clock::WallClock;
    use crate::router::RouterConfig;

    fn start(cfg: ServerConfig) -> GatewayHandle {
        serve(
            "127.0.0.1:0",
            GatewayState::new(RouterConfig::default()),
            cfg,
            Arc::new(WallClock::new()),
        )
        .expect("bind loopback")
    }

    #[test]
    fn serves_health_and_stats_over_a_real_socket() {
        let handle = start(ServerConfig::default());
        let mut client = GatewayClient::connect(handle.addr()).expect("connect");
        assert_eq!(
            client.call(&Request::Health).expect("health"),
            Response::Healthy { draining: false }
        );
        match client.call(&Request::Stats).expect("stats") {
            Response::StatsReply { served, .. } => assert!(served >= 1),
            other => panic!("expected stats, got {other:?}"),
        }
        drop(client);
        handle.shutdown();
    }

    #[test]
    fn garbage_bytes_get_a_typed_error_not_a_hang() {
        let handle = start(ServerConfig::default());
        let mut raw = TcpStream::connect(handle.addr()).expect("connect");
        raw.write_all(b"GET / HTTP/1.1\r\n\r\n").expect("write");
        let mut buf = Vec::new();
        raw.set_read_timeout(Some(Duration::from_secs(5))).ok();
        let mut chunk = [0u8; 1024];
        loop {
            match raw.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => {
                    buf.extend_from_slice(&chunk[..n]);
                    if let Ok(Decoded::Frame { .. }) = frame::decode(&buf) {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
        let Ok(Decoded::Frame { payload, .. }) = frame::decode(&buf) else {
            panic!("expected an error frame back, got {} bytes", buf.len());
        };
        match Response::decode(&payload) {
            Ok(Response::Error { code, .. }) => assert_eq!(code, ErrorCode::Malformed),
            other => panic!("expected Error response, got {other:?}"),
        }
        let (_, _, errors) = handle.shutdown().lock().counters();
        assert_eq!(errors, 1);
    }

    #[test]
    fn connection_shed_when_every_queue_is_full() {
        // 1 worker × queue depth 1: the worker serves conn A (held open),
        // conn B waits in the queue, conn C must be shed with Busy.
        let handle = start(ServerConfig {
            workers: 1,
            queue_depth: 1,
            read_timeout_ms: 10,
        });
        let mut a = GatewayClient::connect(handle.addr()).expect("a");
        assert!(a.call(&Request::Health).is_ok(), "worker is now serving A");
        let _b = TcpStream::connect(handle.addr()).expect("b queues");
        std::thread::sleep(Duration::from_millis(50));
        let mut c = GatewayClient::connect(handle.addr()).expect("c connects");
        match c.call(&Request::Health) {
            Ok(Response::Busy { retry_after_ms }) => assert!(retry_after_ms > 0),
            other => panic!("expected connection-level Busy, got {other:?}"),
        }
        drop((a, c));
        handle.shutdown();
    }

    #[test]
    fn shutdown_drains_and_flips_health() {
        let handle = start(ServerConfig::default());
        let addr = handle.addr();
        let mut client = GatewayClient::connect(addr).expect("connect");
        assert!(client.call(&Request::Health).is_ok());
        let state = handle.shutdown();
        assert!(state.lock().draining);
        // New connections are refused or fail outright after drain.
        if let Ok(mut c) = GatewayClient::connect(addr) {
            assert!(c.call(&Request::Health).is_err());
        }
    }
}
