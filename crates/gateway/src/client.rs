//! Blocking gateway client: one request, one reply, in order.
//!
//! Used by the loadgen's closed-loop workers and by tests. The client
//! owns a growable receive buffer and re-frames across short reads, so it
//! works against any TCP segmentation.

use crate::frame::{self, Decoded, FrameError};
use crate::proto::{Request, Response, WireError};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Why a call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server sent bytes that are not a valid frame.
    Frame(FrameError),
    /// The frame payload is not a valid response message.
    Wire(WireError),
    /// The server closed the connection before replying.
    Closed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Frame(e) => write!(f, "frame: {e}"),
            ClientError::Wire(e) => write!(f, "wire: {e}"),
            ClientError::Closed => write!(f, "connection closed mid-call"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connected gateway client.
pub struct GatewayClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl GatewayClient {
    /// Connect to a gateway.
    pub fn connect(addr: SocketAddr) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            buf: Vec::with_capacity(4096),
        })
    }

    /// Bound how long a single reply may take (defaults to unbounded).
    pub fn set_timeout(&mut self, timeout: Duration) -> Result<(), ClientError> {
        self.stream.set_read_timeout(Some(timeout))?;
        Ok(())
    }

    /// Send `req` and block for its reply.
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        let payload = req.encode();
        let bytes = frame::encode(&payload).map_err(ClientError::Frame)?;
        self.stream.write_all(&bytes)?;
        loop {
            match frame::decode(&self.buf).map_err(ClientError::Frame)? {
                Decoded::Frame { payload, consumed } => {
                    self.buf.drain(..consumed);
                    return Response::decode(&payload).map_err(ClientError::Wire);
                }
                Decoded::NeedMore(_) => {
                    let mut chunk = [0u8; 4096];
                    match self.stream.read(&mut chunk)? {
                        0 => return Err(ClientError::Closed),
                        n => self.buf.extend_from_slice(&chunk[..n]),
                    }
                }
            }
        }
    }
}
