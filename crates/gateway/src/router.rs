//! Request router: decoded wire requests → control-plane actions.
//!
//! This is where the service boundary meets the reproduction's existing
//! control plane: registration provisions through
//! [`ServiceOrchestrator`], metrics windows run the TDE entropy
//! filtration ([`EntropyFilter`]) before anything reaches the
//! [`ConfigDirector`], and every admitted request is billed to its tenant
//! through [`RecommendationMeter`]. The router is deliberately *pure with
//! respect to time*: `now_ms` is always a parameter, so the whole routing
//! layer replays deterministically under test while the server shell owns
//! the single wall-clock read.

use crate::admission::{Admission, AdmissionConfig, AdmissionControl};
use crate::proto::{ErrorCode, Request, Response, WireDecision, N_CLASSES};
use autodbaas_core::{ClassHistogram, EntropyFilter, FilterConfig, FilterDecision, QueryClass};
use autodbaas_ctrlplane::{
    ConfigDirector, RecommendationMeter, ServiceId, ServiceOrchestrator, ServiceSpec, TunerKind,
};
use autodbaas_simdb::{Catalog, DbFlavor, DiskKind, InstanceType};
use autodbaas_telemetry::{EventLog, P2Quantile};
use std::collections::BTreeMap;

/// Bucket key for requests that do not carry a tenant id yet
/// (RegisterService, Health, Stats).
pub const ANON_TENANT: u64 = u64::MAX;

/// Tuning parameters of the routing layer.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Admission policy shared by all tenants.
    pub admission: AdmissionConfig,
    /// Tuner fleet the embedded director load-balances across.
    pub tuners: Vec<TunerKind>,
    /// Modelled GPR busy-time per BO recommendation, ms (the paper's
    /// ~110 s on m4.xlarge).
    pub bo_service_time_ms: f64,
    /// Dimensionality of synthesized unit-config vectors.
    pub rec_dim: usize,
    /// Entropy-filtration config applied per tenant.
    pub filter: FilterConfig,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            admission: AdmissionConfig::default(),
            tuners: vec![TunerKind::Bo; 4],
            bo_service_time_ms: 110_000.0,
            rec_dim: 8,
            filter: FilterConfig::default(),
        }
    }
}

/// Per-tenant routing state.
#[derive(Debug)]
struct TenantState {
    service: ServiceId,
    filter: EntropyFilter,
    /// Recommendations synthesized for this tenant so far (seeds the
    /// deterministic unit-config generator).
    recs: u64,
    /// Seed captured at registration; differentiates tenants' configs.
    seed: u64,
}

/// Everything the worker pool shares, guarded by one mutex in the server.
#[derive(Debug)]
pub struct GatewayState {
    cfg: RouterConfig,
    orchestrator: ServiceOrchestrator,
    director: ConfigDirector,
    meter: RecommendationMeter,
    admission: AdmissionControl,
    tenants: BTreeMap<u64, TenantState>,
    /// Access log: one event per admitted request, plus shed/error marks.
    pub access_log: EventLog,
    /// Request latency quantiles, µs (fed by the server shell).
    p50_us: P2Quantile,
    p99_us: P2Quantile,
    served: u64,
    busy: u64,
    errors: u64,
    /// Set by the server when shutdown begins; Health replies flip to
    /// `draining` so load balancers stop sending new work.
    pub draining: bool,
}

impl GatewayState {
    /// Fresh state with `cfg`.
    pub fn new(cfg: RouterConfig) -> Self {
        // The wire format and the TDE must agree on the class table; this
        // is a compile-time-constant comparison, not a runtime hazard.
        debug_assert_eq!(N_CLASSES, QueryClass::ALL.len());
        let tuners = if cfg.tuners.is_empty() {
            vec![TunerKind::Bo]
        } else {
            cfg.tuners.clone()
        };
        Self {
            admission: AdmissionControl::new(cfg.admission),
            orchestrator: ServiceOrchestrator::new(),
            director: ConfigDirector::new(&tuners),
            meter: RecommendationMeter::default(),
            tenants: BTreeMap::new(),
            access_log: EventLog::new(),
            p50_us: P2Quantile::new(0.5),
            p99_us: P2Quantile::new(0.99),
            served: 0,
            busy: 0,
            errors: 0,
            draining: false,
            cfg,
        }
    }

    /// The per-tenant meter (request/byte counters + recommendation cost).
    pub fn meter(&self) -> &RecommendationMeter {
        &self.meter
    }

    /// The embedded config director.
    pub fn director(&self) -> &ConfigDirector {
        &self.director
    }

    /// `(served, busy, errors)` so far.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.served, self.busy, self.errors)
    }

    /// Admission check for a request at `now_ms`. `Busy` outcomes are
    /// billed to the tenant and counted here.
    pub fn admit(&mut self, req: &Request, now_ms: u64) -> Admission {
        let key = req.tenant().unwrap_or(ANON_TENANT);
        let verdict = self.admission.check(key, now_ms);
        if let Admission::Busy { .. } = verdict {
            self.busy += 1;
            self.access_log.emit(now_ms, "gw.busy", key);
            if req.tenant().is_some() {
                self.meter.record_gateway_busy(ServiceId(key));
            }
        }
        verdict
    }

    /// Count one undecodable/failed request (the server replies `Error`).
    pub fn record_error(&mut self, now_ms: u64) {
        self.errors += 1;
        self.access_log.emit(now_ms, "gw.error", ANON_TENANT);
    }

    /// Feed one served request's latency into the stats quantiles.
    pub fn observe_latency_us(&mut self, us: u64) {
        self.p50_us.observe(us as f64);
        self.p99_us.observe(us as f64);
    }

    /// Bill an admitted request's wire bytes to its tenant.
    pub fn meter_bytes(&mut self, req: &Request, bytes_in: u64, bytes_out: u64) {
        if let Some(t) = req.tenant() {
            if self.tenants.contains_key(&t) {
                self.meter.record_gateway(ServiceId(t), bytes_in, bytes_out);
            }
        }
    }

    /// Route one admitted request. Infallible by construction: every
    /// failure path is a typed `Error` *response*, so a worker thread can
    /// never be killed by request content.
    pub fn route(&mut self, req: &Request, now_ms: u64) -> Response {
        self.served += 1;
        self.access_log
            .emit(now_ms, req.kind(), req.tenant().unwrap_or(ANON_TENANT));
        match req {
            Request::RegisterService {
                flavor,
                instance,
                disk,
                n_slaves,
                seed,
            } => self.register(*flavor, *instance, *disk, *n_slaves, *seed),
            Request::PushMetricsWindow {
                tenant,
                window_start,
                class_counts,
                throttled,
                knob_at_cap,
                ..
            } => self.push_metrics(
                *tenant,
                *window_start,
                class_counts,
                *throttled,
                *knob_at_cap,
            ),
            Request::ThrottleSignal {
                tenant,
                at,
                knob_class,
                service_time_ms,
            } => self.throttle(*tenant, *at, *knob_class, *service_time_ms),
            Request::FetchRecommendation { tenant, now } => self.fetch(*tenant, *now),
            Request::ApplyAck { tenant, at, ok } => self.apply_ack(*tenant, *at, *ok),
            Request::Health => Response::Healthy {
                draining: self.draining,
            },
            Request::Stats => Response::StatsReply {
                served: self.served,
                busy: self.busy,
                errors: self.errors,
                active_tenants: self.tenants.len() as u64,
                p50_us: self.p50_us.estimate().max(0.0) as u64,
                p99_us: self.p99_us.estimate().max(0.0) as u64,
            },
        }
    }

    fn register(
        &mut self,
        flavor: u8,
        instance: u8,
        disk: u8,
        n_slaves: u8,
        seed: u64,
    ) -> Response {
        let Some(flavor) = decode_flavor(flavor) else {
            return bad_request("flavor code not in 0..=1");
        };
        let Some(instance) = decode_instance(instance) else {
            return bad_request("instance code not in 0..=5");
        };
        let Some(disk) = decode_disk(disk) else {
            return bad_request("disk code not in 0..=1");
        };
        let spec = ServiceSpec {
            flavor,
            instance,
            disk,
            // Small synthetic dataset: the gateway provisions the managed
            // service's control record; tenants run the actual database.
            catalog: Catalog::synthetic(4, 50_000_000, 150, 1),
            n_slaves: n_slaves as usize,
            seed,
        };
        let (service, _rs) = self.orchestrator.provision(spec);
        self.tenants.insert(
            service.0,
            TenantState {
                service,
                filter: EntropyFilter::new(self.cfg.filter),
                recs: 0,
                seed,
            },
        );
        Response::Registered { tenant: service.0 }
    }

    fn push_metrics(
        &mut self,
        tenant: u64,
        window_start: u64,
        class_counts: &[u64; N_CLASSES],
        throttled: bool,
        knob_at_cap: bool,
    ) -> Response {
        let Some(state) = self.tenants.get_mut(&tenant) else {
            return unknown_tenant(tenant);
        };
        let hist = ClassHistogram::from_counts(class_counts);
        let decision = state.filter.observe(throttled, knob_at_cap, &hist);
        // Only a throttled window that survives filtration becomes a
        // tuning request — this is the §3.1 suppression that lets one
        // tuner deployment serve hundreds of tenants.
        let submitted = throttled && decision == FilterDecision::Forward;
        let mut ready_at = 0;
        if submitted {
            ready_at = self.submit_recommendation(tenant, window_start);
        }
        Response::Classified {
            decision: match decision {
                FilterDecision::Forward => WireDecision::Forward,
                FilterDecision::Suppress => WireDecision::Suppress,
                FilterDecision::PlanUpgrade => WireDecision::PlanUpgrade,
                FilterDecision::Hold => WireDecision::Hold,
            },
            submitted,
            ready_at,
        }
    }

    fn throttle(&mut self, tenant: u64, at: u64, knob_class: u8, service_time_ms: u32) -> Response {
        if knob_class > 2 {
            return bad_request("knob class code not in 0..=2");
        }
        if !self.tenants.contains_key(&tenant) {
            return unknown_tenant(tenant);
        }
        let service = ServiceId(tenant);
        let service_time = if service_time_ms == 0 {
            self.cfg.bo_service_time_ms
        } else {
            service_time_ms as f64
        };
        let assignment = self.director.submit_request(service, at, service_time);
        self.meter.record(service, service_time);
        let config = self.synthesize_config(tenant);
        self.director
            .record_recommendation(service, assignment.ready_at, config);
        Response::ThrottleQueued {
            tuner: assignment.tuner as u32,
            ready_at: assignment.ready_at,
        }
    }

    fn fetch(&mut self, tenant: u64, now: u64) -> Response {
        let Some(state) = self.tenants.get(&tenant) else {
            return unknown_tenant(tenant);
        };
        let history = self.director.recommendation_history(state.service);
        match history.iter().rev().find(|(at, _)| *at <= now) {
            Some((at, config)) => Response::Recommendation {
                ready: true,
                at: *at,
                unit_config: config.clone(),
            },
            None => Response::Recommendation {
                ready: false,
                at: 0,
                unit_config: Vec::new(),
            },
        }
    }

    fn apply_ack(&mut self, tenant: u64, at: u64, ok: bool) -> Response {
        if !self.tenants.contains_key(&tenant) {
            return unknown_tenant(tenant);
        }
        self.access_log.emit(
            at,
            if ok { "gw.applied" } else { "gw.apply_failed" },
            tenant,
        );
        Response::ApplyRecorded
    }

    /// Submit a tuning request for `tenant` and synthesize the modelled
    /// tuner's output into the config repository. Returns `ready_at`.
    fn submit_recommendation(&mut self, tenant: u64, now: u64) -> u64 {
        let service = self
            .tenants
            .get(&tenant)
            .map_or(ServiceId(tenant), |s| s.service);
        let service_time = self.cfg.bo_service_time_ms;
        let assignment = self.director.submit_request(service, now, service_time);
        self.meter.record(service, service_time);
        let config = self.synthesize_config(tenant);
        self.director
            .record_recommendation(service, assignment.ready_at, config);
        assignment.ready_at
    }

    /// Deterministic stand-in for a tuner's output: an FNV-mixed unit
    /// vector keyed by (tenant seed, recommendation ordinal), so reruns
    /// produce identical configs without any RNG.
    fn synthesize_config(&mut self, tenant: u64) -> Vec<f64> {
        let (seed, ordinal) = match self.tenants.get_mut(&tenant) {
            Some(s) => {
                s.recs += 1;
                (s.seed, s.recs)
            }
            None => (tenant, 0),
        };
        let mut h: u64 = 0xcbf29ce484222325 ^ seed.wrapping_mul(0x9e3779b97f4a7c15);
        h ^= ordinal;
        (0..self.cfg.rec_dim)
            .map(|i| {
                h ^= (i as u64).wrapping_add(0x632be59bd9b4e019);
                h = h.wrapping_mul(0x100000001b3);
                // Map the high 53 bits into [0, 1).
                (h >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }
}

fn bad_request(detail: &str) -> Response {
    Response::Error {
        code: ErrorCode::BadRequest,
        detail: detail.to_string(),
    }
}

fn unknown_tenant(tenant: u64) -> Response {
    Response::Error {
        code: ErrorCode::UnknownTenant,
        detail: format!("tenant {tenant} is not registered"),
    }
}

fn decode_flavor(code: u8) -> Option<DbFlavor> {
    match code {
        0 => Some(DbFlavor::Postgres),
        1 => Some(DbFlavor::MySql),
        _ => None,
    }
}

fn decode_instance(code: u8) -> Option<InstanceType> {
    match code {
        0 => Some(InstanceType::T2Small),
        1 => Some(InstanceType::T2Medium),
        2 => Some(InstanceType::T2Large),
        3 => Some(InstanceType::M4Large),
        4 => Some(InstanceType::M4XLarge),
        5 => Some(InstanceType::T3XLarge),
        _ => None,
    }
}

fn decode_disk(code: u8) -> Option<DiskKind> {
    match code {
        0 => Some(DiskKind::Ssd),
        1 => Some(DiskKind::Hdd),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_state() -> GatewayState {
        GatewayState::new(RouterConfig {
            tuners: vec![TunerKind::Bo, TunerKind::Bo],
            bo_service_time_ms: 10_000.0,
            ..RouterConfig::default()
        })
    }

    fn register(state: &mut GatewayState) -> u64 {
        let resp = state.route(
            &Request::RegisterService {
                flavor: 0,
                instance: 3,
                disk: 0,
                n_slaves: 1,
                seed: 11,
            },
            0,
        );
        match resp {
            Response::Registered { tenant } => tenant,
            other => panic!("expected Registered, got {other:?}"),
        }
    }

    fn window(tenant: u64, at: u64, throttled: bool, at_cap: bool) -> Request {
        Request::PushMetricsWindow {
            tenant,
            window_start: at,
            window_ms: 60_000,
            // Heavily concentrated on the WorkMem class.
            class_counts: [500, 1, 1, 4, 2, 30],
            throttled,
            knob_at_cap: at_cap,
        }
    }

    #[test]
    fn register_then_metrics_then_fetch_then_ack() {
        let mut state = small_state();
        let tenant = register(&mut state);

        // First throttled window: under the consecutive threshold, the
        // throttle is forwarded and a tuning request submitted.
        let resp = state.route(&window(tenant, 60_000, true, false), 1);
        let Response::Classified {
            decision,
            submitted,
            ready_at,
        } = resp
        else {
            panic!("expected Classified, got {resp:?}");
        };
        assert_eq!(decision, WireDecision::Forward);
        assert!(submitted);
        assert_eq!(ready_at, 60_000 + 10_000);
        assert_eq!(state.director().total_requests(), 1);
        assert_eq!(state.meter().usage(ServiceId(tenant)).recommendations, 1);

        // Fetch before ready: nothing; at ready_at: the config.
        let early = state.route(
            &Request::FetchRecommendation {
                tenant,
                now: 65_000,
            },
            2,
        );
        assert_eq!(
            early,
            Response::Recommendation {
                ready: false,
                at: 0,
                unit_config: vec![]
            }
        );
        let resp = state.route(
            &Request::FetchRecommendation {
                tenant,
                now: ready_at,
            },
            3,
        );
        let Response::Recommendation {
            ready,
            at,
            unit_config,
        } = resp
        else {
            panic!("expected Recommendation");
        };
        assert!(ready);
        assert_eq!(at, ready_at);
        assert_eq!(unit_config.len(), 8);
        assert!(unit_config.iter().all(|v| (0.0..1.0).contains(v)));

        let resp = state.route(
            &Request::ApplyAck {
                tenant,
                at: ready_at + 1,
                ok: true,
            },
            4,
        );
        assert_eq!(resp, Response::ApplyRecorded);
        assert_eq!(state.access_log.count("gw.applied"), 1);
    }

    #[test]
    fn sustained_cap_limited_throttles_are_suppressed() {
        let mut state = small_state();
        let tenant = register(&mut state);
        let mut submitted_total = 0u32;
        let mut suppressed = 0u32;
        // 27 consecutive throttled windows with the knob at cap and a
        // concentrated class table: after each 8-run the filter suppresses.
        for i in 0..27u64 {
            match state.route(&window(tenant, 60_000 * (i + 1), true, true), i) {
                Response::Classified {
                    decision,
                    submitted,
                    ..
                } => {
                    submitted_total += u32::from(submitted);
                    if decision == WireDecision::Suppress {
                        suppressed += 1;
                    }
                }
                other => panic!("expected Classified, got {other:?}"),
            }
        }
        assert!(suppressed >= 3, "every 9th window suppresses: {suppressed}");
        assert_eq!(
            state.director().total_requests() as u32,
            submitted_total,
            "suppressed windows must not reach the director"
        );
        assert!(
            (submitted_total as usize) < 27,
            "TDE must shed some requests"
        );
    }

    #[test]
    fn unknown_tenant_and_bad_codes_are_typed_errors() {
        let mut state = small_state();
        let resp = state.route(&window(99, 0, true, false), 0);
        assert!(
            matches!(
                resp,
                Response::Error {
                    code: ErrorCode::UnknownTenant,
                    ..
                }
            ),
            "got {resp:?}"
        );
        let resp = state.route(
            &Request::RegisterService {
                flavor: 9,
                instance: 0,
                disk: 0,
                n_slaves: 0,
                seed: 0,
            },
            0,
        );
        assert!(matches!(
            resp,
            Response::Error {
                code: ErrorCode::BadRequest,
                ..
            }
        ));
        let tenant = register(&mut state);
        let resp = state.route(
            &Request::ThrottleSignal {
                tenant,
                at: 0,
                knob_class: 7,
                service_time_ms: 0,
            },
            0,
        );
        assert!(matches!(
            resp,
            Response::Error {
                code: ErrorCode::BadRequest,
                ..
            }
        ));
    }

    #[test]
    fn explicit_throttle_queues_and_bills() {
        let mut state = small_state();
        let tenant = register(&mut state);
        let resp = state.route(
            &Request::ThrottleSignal {
                tenant,
                at: 1_000,
                knob_class: 0,
                service_time_ms: 0,
            },
            5,
        );
        let Response::ThrottleQueued { ready_at, .. } = resp else {
            panic!("expected ThrottleQueued, got {resp:?}");
        };
        assert_eq!(ready_at, 11_000, "default BO service time applies");
        let usage = state.meter().usage(ServiceId(tenant));
        assert_eq!(usage.recommendations, 1);
        assert!(usage.tuner_busy_ms > 0.0);
    }

    #[test]
    fn admission_bills_busy_to_the_tenant() {
        let mut state = GatewayState::new(RouterConfig {
            admission: AdmissionConfig {
                burst: 2.0,
                rate_per_sec: 1.0,
            },
            ..RouterConfig::default()
        });
        let tenant = register(&mut state);
        let req = window(tenant, 0, false, false);
        assert_eq!(state.admit(&req, 0), Admission::Admit);
        assert_eq!(state.admit(&req, 0), Admission::Admit);
        assert!(matches!(state.admit(&req, 0), Admission::Busy { .. }));
        assert_eq!(state.meter().usage(ServiceId(tenant)).gateway_busy, 1);
        assert_eq!(state.counters().1, 1);
        assert_eq!(state.access_log.count("gw.busy"), 1);
    }

    #[test]
    fn stats_and_health_reflect_state() {
        let mut state = small_state();
        let t = register(&mut state);
        state.observe_latency_us(100);
        state.meter_bytes(&window(t, 0, false, false), 70, 11);
        let resp = state.route(&Request::Stats, 9);
        let Response::StatsReply {
            served,
            active_tenants,
            ..
        } = resp
        else {
            panic!("expected StatsReply");
        };
        assert_eq!(served, 2, "register + stats");
        assert_eq!(active_tenants, 1);
        let u = state.meter().usage(ServiceId(t));
        assert_eq!((u.gateway_bytes_in, u.gateway_bytes_out), (70, 11));

        assert_eq!(
            state.route(&Request::Health, 10),
            Response::Healthy { draining: false }
        );
        state.draining = true;
        assert_eq!(
            state.route(&Request::Health, 11),
            Response::Healthy { draining: true }
        );
    }

    #[test]
    fn synthesized_configs_are_deterministic_and_distinct() {
        let mut a = small_state();
        let mut b = small_state();
        let ta = register(&mut a);
        let tb = register(&mut b);
        assert_eq!(ta, tb);
        let ca = a.synthesize_config(ta);
        let cb = b.synthesize_config(tb);
        assert_eq!(ca, cb, "same seed + ordinal → same config");
        let ca2 = a.synthesize_config(ta);
        assert_ne!(ca, ca2, "next ordinal → different config");
    }
}
