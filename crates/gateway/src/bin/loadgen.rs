//! `autodbaas-loadgen` — closed-loop load generator for the gateway.
//!
//! ```text
//! autodbaas-loadgen [--requests 50000] [--conns 8] [--seed 42]
//!                   [--workers 8] [--rate 2000] [--burst 64]
//!                   [--out BENCH_gateway.json] [--addr HOST:PORT]
//!                   [--no-overquota]
//! ```
//!
//! Spins an in-process gateway on `127.0.0.1:0` (or targets `--addr`),
//! then drives it with `--conns` paced closed-loop tenant clients — each
//! replaying a seeded [`ArrivalProcess`] to shape its metrics windows —
//! plus one deliberately over-quota aggressor tenant that must observe
//! `Busy` replies, proving admission control sheds load. Every worker
//! waits for each reply before sending the next request (closed loop), so
//! a dropped reply deadlocks-by-timeout instead of vanishing silently.
//!
//! Results (client p50/p99/max latency, throughput, per-kind counts,
//! server-side counters) are written as JSON to `--out`. Exit code is
//! non-zero if any protocol error occurred, any reply was dropped, or —
//! with the aggressor enabled — no `Busy` reply was observed.

use autodbaas_gateway::{
    serve, AdmissionConfig, ClientError, GatewayClient, GatewayState, Request, Response,
    RouterConfig, ServerConfig, WallClock,
};
use autodbaas_telemetry::{percentile, MILLIS_PER_HOUR};
use autodbaas_workload::{ArrivalProcess, DiurnalProfile};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

// detlint-allow: D001 loadgen measures real wall-clock latency by design; nothing here feeds sim state
use std::time::Instant;

use autodbaas_telemetry::outln;

/// What one client thread brings home.
#[derive(Debug, Default)]
struct WorkerReport {
    sent: u64,
    served: u64,
    busy: u64,
    protocol_errors: u64,
    latencies_us: Vec<u64>,
    kind_counts: [u64; 7], // register, metrics, throttle, fetch, apply_ack, health, stats
}

fn arg(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parsed<T: std::str::FromStr>(name: &str, default: T) -> Result<T, ExitCode> {
    match arg(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| {
            eprintln!("error: {name} expects a number, got '{v}'");
            ExitCode::from(2)
        }),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(code) => code,
    }
}

#[allow(clippy::too_many_lines)]
fn run() -> Result<ExitCode, ExitCode> {
    if std::env::args().any(|a| a == "--help" || a == "-h") {
        outln!(
            "usage: autodbaas-loadgen [--requests N] [--conns N] [--seed N] \
             [--workers N] [--rate RPS] [--burst N] [--out FILE] \
             [--addr HOST:PORT] [--no-overquota]"
        );
        return Ok(ExitCode::SUCCESS);
    }
    let requests: u64 = parsed("--requests", 50_000)?;
    let conns: usize = parsed("--conns", 8)?;
    let seed: u64 = parsed("--seed", 42)?;
    // Workers pin connections until EOF, so the in-process server needs a
    // worker per client (paced conns + the aggressor) or the surplus
    // connection starves in a queue for the whole run.
    let workers: usize = parsed("--workers", conns + 1)?;
    let rate: f64 = parsed("--rate", 2_000.0)?;
    let burst: f64 = parsed("--burst", 64.0)?;
    let out = arg("--out").unwrap_or_else(|| "BENCH_gateway.json".to_string());
    let overquota = !std::env::args().any(|a| a == "--no-overquota");
    if conns == 0 || requests == 0 || rate <= 0.0 || burst <= 0.0 {
        eprintln!("error: --requests/--conns/--rate/--burst must be positive");
        return Err(ExitCode::from(2));
    }

    // Either attach to an external gateway or host one in-process.
    let (addr, handle) = match arg("--addr") {
        Some(a) => {
            let addr: SocketAddr = a.parse().map_err(|_| {
                eprintln!("error: --addr expects HOST:PORT, got '{a}'");
                ExitCode::from(2)
            })?;
            (addr, None)
        }
        None => {
            let state = GatewayState::new(RouterConfig {
                admission: AdmissionConfig {
                    burst,
                    rate_per_sec: rate,
                },
                ..RouterConfig::default()
            });
            let cfg = ServerConfig {
                workers,
                ..ServerConfig::default()
            };
            let handle =
                serve("127.0.0.1:0", state, cfg, Arc::new(WallClock::new())).map_err(|e| {
                    eprintln!("error: cannot bind loopback gateway: {e}");
                    ExitCode::from(2)
                })?;
            (handle.addr(), Some(handle))
        }
    };

    outln!(
        "loadgen: {requests} requests over {conns} paced conns{} against {addr} \
         (admission {rate}/s, burst {burst})",
        if overquota { " + 1 aggressor" } else { "" }
    );

    // Paced clients stay safely under the per-tenant rate; the aggressor
    // runs unpaced and must trip the token bucket.
    let pace_us = (1_000_000.0 / (rate * 0.7)).ceil() as u64;
    let sent_total = Arc::new(AtomicU64::new(0));
    let t_start = Instant::now();

    let mut threads = Vec::new();
    for i in 0..conns {
        let sent_total = Arc::clone(&sent_total);
        // detlint-allow: D005 one client thread per configured connection, spawned once per run
        threads.push(std::thread::spawn(move || {
            paced_client(
                addr,
                seed ^ ((i as u64 + 1) * 0x9E37),
                requests,
                pace_us,
                &sent_total,
            )
        }));
    }
    let aggressor = overquota.then(|| {
        let sent_total = Arc::clone(&sent_total);
        std::thread::spawn(move || aggressor_client(addr, seed ^ 0xA66E, requests, &sent_total))
    });

    let mut reports: Vec<WorkerReport> = Vec::new();
    for t in threads {
        match t.join() {
            Ok(r) => reports.push(r),
            Err(_) => {
                eprintln!("error: a client thread panicked");
                return Err(ExitCode::FAILURE);
            }
        }
    }
    let aggressor_report = match aggressor.map(std::thread::JoinHandle::join) {
        Some(Ok(r)) => Some(r),
        Some(Err(_)) => {
            eprintln!("error: the aggressor thread panicked");
            return Err(ExitCode::FAILURE);
        }
        None => None,
    };
    let elapsed = t_start.elapsed();

    // Aggregate.
    let mut all = reports;
    let aggressor_busy = aggressor_report.as_ref().map_or(0, |r| r.busy);
    if let Some(r) = aggressor_report {
        all.push(r);
    }
    let sent: u64 = all.iter().map(|r| r.sent).sum();
    let served: u64 = all.iter().map(|r| r.served).sum();
    let busy: u64 = all.iter().map(|r| r.busy).sum();
    let protocol_errors: u64 = all.iter().map(|r| r.protocol_errors).sum();
    let replies = served + busy;
    let dropped = sent.saturating_sub(replies + protocol_errors);
    let mut kind_counts = [0u64; 7];
    let mut lat: Vec<f64> = Vec::new();
    for r in &all {
        for (k, c) in r.kind_counts.iter().enumerate() {
            kind_counts[k] += c;
        }
        lat.extend(r.latencies_us.iter().map(|&us| us as f64));
    }
    lat.sort_by(f64::total_cmp);
    let p50 = percentile(&lat, 50.0);
    let p90 = percentile(&lat, 90.0);
    let p99 = percentile(&lat, 99.0);
    let max = lat.last().copied().unwrap_or(0.0);
    let throughput = sent as f64 / elapsed.as_secs_f64().max(1e-9);

    // Server-side counters (in-process mode only).
    let server_json = handle.map(|h| {
        let state = h.shutdown();
        let s = state.lock();
        let (srv_served, srv_busy, srv_errors) = s.counters();
        let (greq, gbusy, gin, gout) = s.meter().gateway_totals();
        let (recs, cost, _) = s.meter().totals();
        format!(
            concat!(
                "{{\"served\": {}, \"busy\": {}, \"errors\": {}, ",
                "\"tenant_requests\": {}, \"tenant_busy\": {}, ",
                "\"bytes_in\": {}, \"bytes_out\": {}, ",
                "\"recommendations\": {}, \"tuner_cost_ms\": {:.1}}}"
            ),
            srv_served, srv_busy, srv_errors, greq, gbusy, gin, gout, recs, cost
        )
    });

    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"autodbaas-gateway-loadgen-v1\",\n",
            "  \"config\": {{\"requests\": {}, \"conns\": {}, \"aggressor\": {}, ",
            "\"workers\": {}, \"rate_per_sec\": {}, \"burst\": {}, \"seed\": {}}},\n",
            "  \"totals\": {{\"sent\": {}, \"replies\": {}, \"served\": {}, \"busy\": {}, ",
            "\"aggressor_busy\": {}, \"protocol_errors\": {}, \"dropped\": {}}},\n",
            "  \"kinds\": {{\"register\": {}, \"metrics\": {}, \"throttle\": {}, ",
            "\"fetch\": {}, \"apply_ack\": {}, \"health\": {}, \"stats\": {}}},\n",
            "  \"latency_us\": {{\"p50\": {:.1}, \"p90\": {:.1}, \"p99\": {:.1}, \"max\": {:.1}}},\n",
            "  \"throughput_rps\": {:.1},\n",
            "  \"elapsed_s\": {:.3},\n",
            "  \"server\": {}\n",
            "}}\n"
        ),
        requests,
        conns,
        overquota,
        workers,
        rate,
        burst,
        seed,
        sent,
        replies,
        served,
        busy,
        aggressor_busy,
        protocol_errors,
        dropped,
        kind_counts[0],
        kind_counts[1],
        kind_counts[2],
        kind_counts[3],
        kind_counts[4],
        kind_counts[5],
        kind_counts[6],
        p50,
        p90,
        p99,
        max,
        throughput,
        elapsed.as_secs_f64(),
        server_json.unwrap_or_else(|| "null".to_string()),
    );
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: cannot write {out}: {e}");
        return Err(ExitCode::FAILURE);
    }

    outln!(
        "loadgen: sent={sent} served={served} busy={busy} (aggressor {aggressor_busy}) \
         errors={protocol_errors} dropped={dropped}"
    );
    outln!(
        "loadgen: p50={:.0}us p90={:.0}us p99={:.0}us max={:.0}us throughput={:.0} req/s -> {}",
        p50,
        p90,
        p99,
        max,
        throughput,
        out
    );

    let mut failed = false;
    if protocol_errors > 0 {
        eprintln!("FAIL: {protocol_errors} protocol errors");
        failed = true;
    }
    if dropped > 0 {
        eprintln!("FAIL: {dropped} dropped replies");
        failed = true;
    }
    if overquota && aggressor_busy == 0 {
        eprintln!("FAIL: aggressor saw no Busy replies; admission control did not shed");
        failed = true;
    }
    if failed {
        return Err(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

/// A well-behaved tenant: registers, then replays a seeded arrival
/// process as metrics windows interleaved with fetches, acks, throttle
/// signals and health probes, pacing itself under the admission rate.
fn paced_client(
    addr: SocketAddr,
    seed: u64,
    target: u64,
    pace_us: u64,
    sent_total: &AtomicU64,
) -> WorkerReport {
    let mut report = WorkerReport::default();
    let mut rng = StdRng::seed_from_u64(seed);
    let arrival = if seed.is_multiple_of(2) {
        ArrivalProcess::Diurnal(DiurnalProfile::default())
    } else {
        ArrivalProcess::Constant(400.0 + (seed % 7) as f64 * 150.0)
    };
    let Some(mut client) = connect(addr) else {
        report.protocol_errors += 1;
        return report;
    };
    let Some(tenant) = register(&mut client, &mut rng, seed, &mut report, sent_total) else {
        return report;
    };

    // Tenant-local simulated timeline for metrics windows: one hour per
    // window keeps the TDE's workload classes moving through the day.
    let mut sim_time: u64 = (seed % 24) * MILLIS_PER_HOUR;
    let window_ms: u32 = MILLIS_PER_HOUR as u32;
    let mut window_idx: u64 = 0;

    while sent_total.load(Ordering::Relaxed) < target {
        let roll = rng.gen_range(0u32..100);
        let req = if roll < 60 {
            window_idx += 1;
            let mut class_counts = [0u64; 6];
            for c in class_counts.iter_mut() {
                // Independent thinned samples per class: same diurnal
                // shape, class mix varies with the tenant's RNG stream.
                *c = arrival.sample_count(&mut rng, sim_time, u64::from(window_ms)) / 6;
            }
            sim_time += u64::from(window_ms);
            Request::PushMetricsWindow {
                tenant,
                window_start: sim_time,
                window_ms,
                class_counts,
                throttled: window_idx.is_multiple_of(3),
                knob_at_cap: window_idx.is_multiple_of(9),
            }
        } else if roll < 75 {
            Request::FetchRecommendation {
                tenant,
                now: sim_time,
            }
        } else if roll < 85 {
            Request::ThrottleSignal {
                tenant,
                at: sim_time,
                knob_class: (rng.next_u32() % 3) as u8,
                service_time_ms: 90_000 + rng.next_u32() % 40_000,
            }
        } else if roll < 95 {
            Request::ApplyAck {
                tenant,
                at: sim_time,
                ok: rng.gen_range(0u32..10) != 0,
            }
        } else if roll < 98 {
            Request::Health
        } else {
            Request::Stats
        };
        call_once(&mut client, &req, &mut report, sent_total);
        std::thread::sleep(Duration::from_micros(pace_us));
    }
    report
}

/// The over-quota tenant: same protocol, no pacing. Its token bucket must
/// empty and the gateway must answer `Busy` — that is the signal this
/// client exists to provoke.
fn aggressor_client(
    addr: SocketAddr,
    seed: u64,
    target: u64,
    sent_total: &AtomicU64,
) -> WorkerReport {
    let mut report = WorkerReport::default();
    let mut rng = StdRng::seed_from_u64(seed);
    let Some(mut client) = connect(addr) else {
        report.protocol_errors += 1;
        return report;
    };
    let Some(tenant) = register(&mut client, &mut rng, seed, &mut report, sent_total) else {
        return report;
    };
    let mut sim_time: u64 = 0;
    while sent_total.load(Ordering::Relaxed) < target {
        sim_time += 1_000;
        let req = Request::FetchRecommendation {
            tenant,
            now: sim_time,
        };
        call_once(&mut client, &req, &mut report, sent_total);
        // Several-fold over any sane quota (~8–10k req/s effective) but
        // not a pure spin loop, so paced tenants keep a visible share of
        // the benchmark's traffic mix.
        std::thread::sleep(Duration::from_micros(100));
    }
    report
}

fn connect(addr: SocketAddr) -> Option<GatewayClient> {
    let mut client = GatewayClient::connect(addr).ok()?;
    client.set_timeout(Duration::from_secs(10)).ok()?;
    Some(client)
}

fn register(
    client: &mut GatewayClient,
    rng: &mut StdRng,
    seed: u64,
    report: &mut WorkerReport,
    sent_total: &AtomicU64,
) -> Option<u64> {
    let req = Request::RegisterService {
        flavor: (rng.next_u32() % 2) as u8,
        instance: (rng.next_u32() % 6) as u8,
        disk: (rng.next_u32() % 2) as u8,
        n_slaves: (rng.next_u32() % 3) as u8,
        seed,
    };
    match call_once(client, &req, report, sent_total) {
        Some(Response::Registered { tenant }) => Some(tenant),
        Some(Response::Busy { retry_after_ms }) => {
            // Registration raced the bucket; back off once and retry.
            std::thread::sleep(Duration::from_millis(u64::from(retry_after_ms.max(1))));
            match call_once(client, &req, report, sent_total) {
                Some(Response::Registered { tenant }) => Some(tenant),
                _ => None,
            }
        }
        _ => None,
    }
}

/// One closed-loop exchange: send, wait for the reply, classify it.
fn call_once(
    client: &mut GatewayClient,
    req: &Request,
    report: &mut WorkerReport,
    sent_total: &AtomicU64,
) -> Option<Response> {
    let kind_idx = match req {
        Request::RegisterService { .. } => 0,
        Request::PushMetricsWindow { .. } => 1,
        Request::ThrottleSignal { .. } => 2,
        Request::FetchRecommendation { .. } => 3,
        Request::ApplyAck { .. } => 4,
        Request::Health => 5,
        Request::Stats => 6,
    };
    report.sent += 1;
    report.kind_counts[kind_idx] += 1;
    sent_total.fetch_add(1, Ordering::Relaxed);
    let t0 = Instant::now();
    match client.call(req) {
        Ok(Response::Busy { .. }) => {
            report.busy += 1;
            Some(Response::Busy { retry_after_ms: 0 })
        }
        Ok(Response::Error { .. }) => {
            // Any typed server error is a protocol failure for a
            // well-formed load-generator request.
            report.protocol_errors += 1;
            None
        }
        Ok(resp) => {
            report.served += 1;
            report
                .latencies_us
                .push(t0.elapsed().as_micros().min(u64::MAX as u128) as u64);
            Some(resp)
        }
        Err(ClientError::Io(_) | ClientError::Closed) => {
            // Connection died (e.g. shed); count as a protocol error —
            // the loadgen's contract is zero of these on loopback.
            report.protocol_errors += 1;
            None
        }
        Err(_) => {
            report.protocol_errors += 1;
            None
        }
    }
}
