//! `autodbaas-gateway` — the front-door daemon.
//!
//! ```text
//! autodbaas-gateway [--addr 127.0.0.1:7878] [--workers 8] [--queue 2]
//!                   [--tuners 4] [--burst 64] [--rate 500]
//! ```
//!
//! Binds, prints the bound address, then serves until stdin reaches EOF
//! or a line `quit` arrives (the container-friendly stand-in for signal
//! handling). Shutdown drains: in-flight requests finish, health flips to
//! `draining`, then every worker joins. Exit codes: 0 clean, 2 usage or
//! bind error.

use autodbaas_ctrlplane::TunerKind;
use autodbaas_gateway::{
    serve, AdmissionConfig, GatewayState, RouterConfig, ServerConfig, WallClock,
};
use autodbaas_telemetry::outln;
use std::process::ExitCode;
use std::sync::Arc;

fn arg(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parsed<T: std::str::FromStr>(name: &str, default: T) -> Result<T, ExitCode> {
    match arg(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| {
            eprintln!("error: {name} expects a number, got '{v}'");
            ExitCode::from(2)
        }),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(code) => code,
    }
}

fn run() -> Result<ExitCode, ExitCode> {
    if std::env::args().any(|a| a == "--help" || a == "-h") {
        outln!(
            "usage: autodbaas-gateway [--addr HOST:PORT] [--workers N] \
             [--queue N] [--tuners N] [--burst N] [--rate RPS]"
        );
        return Ok(ExitCode::SUCCESS);
    }
    let addr = arg("--addr").unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let workers: usize = parsed("--workers", 8)?;
    let queue: usize = parsed("--queue", 2)?;
    let tuners: usize = parsed("--tuners", 4)?;
    let burst: f64 = parsed("--burst", 64.0)?;
    let rate: f64 = parsed("--rate", 500.0)?;
    if workers == 0 || tuners == 0 || burst <= 0.0 || rate <= 0.0 {
        eprintln!("error: --workers/--tuners/--burst/--rate must be positive");
        return Err(ExitCode::from(2));
    }

    let state = GatewayState::new(RouterConfig {
        admission: AdmissionConfig {
            burst,
            rate_per_sec: rate,
        },
        tuners: vec![TunerKind::Bo; tuners],
        ..RouterConfig::default()
    });
    let server_cfg = ServerConfig {
        workers,
        queue_depth: queue,
        ..ServerConfig::default()
    };
    let handle = match serve(&addr, state, server_cfg, Arc::new(WallClock::new())) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: cannot bind {addr}: {e}");
            return Err(ExitCode::from(2));
        }
    };
    outln!(
        "autodbaas-gateway listening on {} ({} workers, queue depth {}, \
         {} tuners, {}/s per tenant, burst {})",
        handle.addr(),
        workers,
        queue,
        tuners,
        rate,
        burst
    );
    outln!("send `quit` or close stdin to drain and exit");

    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        match stdin.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line.trim() == "quit" => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }

    let state = handle.shutdown();
    let s = state.lock();
    let (served, busy, errors) = s.counters();
    let (greq, gbusy, gin, gout) = s.meter().gateway_totals();
    outln!(
        "drained: served={served} busy={busy} errors={errors} \
         tenant_requests={greq} tenant_busy={gbusy} bytes_in={gin} bytes_out={gout}"
    );
    Ok(ExitCode::SUCCESS)
}
