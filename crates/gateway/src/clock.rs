//! The gateway's single time source.
//!
//! Routing, admission and metering all take time as a *parameter* so they
//! replay deterministically; only the server shell needs a real clock for
//! latency stamps and token-bucket refill. Centralising that read behind
//! a trait keeps the rest of the crate inside detlint's D001 scope and
//! lets tests drive the whole stack with a hand-cranked clock.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic microseconds since some fixed origin.
pub trait Clock: Send + Sync {
    /// Microseconds since the clock's origin.
    fn now_us(&self) -> u64;

    /// Milliseconds since the clock's origin.
    fn now_ms(&self) -> u64 {
        self.now_us() / 1_000
    }
}

/// Real monotonic clock, origin = construction time.
#[derive(Debug)]
pub struct WallClock {
    // detlint-allow: D001 latency stamps and bucket refill only; values never reach replayed sim state
    origin: std::time::Instant,
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl WallClock {
    /// Clock starting now.
    pub fn new() -> Self {
        Self {
            // detlint-allow: D001 the gateway's one wall-clock read; sim-facing time is always a request field
            origin: std::time::Instant::now(),
        }
    }
}

impl Clock for WallClock {
    fn now_us(&self) -> u64 {
        // detlint-allow: D001 see WallClock — the designated wall-clock boundary of this crate
        let d = std::time::Instant::now().saturating_duration_since(self.origin);
        d.as_micros().min(u64::MAX as u128) as u64
    }
}

/// Hand-cranked clock for deterministic tests.
#[derive(Debug, Default)]
pub struct ManualClock {
    us: AtomicU64,
}

impl ManualClock {
    /// Clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance by `us` microseconds.
    pub fn advance_us(&self, us: u64) {
        self.us.fetch_add(us, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_us(&self) -> u64 {
        self.us.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_advances_and_converts() {
        let c = ManualClock::new();
        assert_eq!(c.now_us(), 0);
        c.advance_us(2_500);
        assert_eq!(c.now_us(), 2_500);
        assert_eq!(c.now_ms(), 2);
    }

    #[test]
    fn wall_clock_is_monotone() {
        let c = WallClock::new();
        let a = c.now_us();
        let b = c.now_us();
        assert!(b >= a);
    }
}
