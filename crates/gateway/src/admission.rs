//! Per-tenant token-bucket admission control.
//!
//! The gateway's economics depend on the tuner fleet never seeing more
//! work than it can absorb, so excess load is shed *at the front door*
//! with an explicit [`Busy`](crate::proto::Response::Busy) reply instead
//! of queueing: queues hide overload until every client times out at
//! once, while a Busy reply with a retry hint keeps tail latency flat and
//! tells well-behaved clients exactly how long to back off.
//!
//! Buckets are purely logical: every method takes `now_ms`, so the policy
//! is deterministic under test and the only wall-clock read in the whole
//! gateway stays in the server shell's clock.

use std::collections::BTreeMap;

/// Admission policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Burst capacity: requests a silent tenant may fire back-to-back.
    pub burst: f64,
    /// Sustained refill rate, requests per second.
    pub rate_per_sec: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        // Generous defaults: the gateway exists to multiplex hundreds of
        // tenants, each pushing one metrics window per detector period —
        // 500 rps sustained per tenant is already two orders above that.
        Self {
            burst: 64.0,
            rate_per_sec: 500.0,
        }
    }
}

/// One tenant's bucket.
#[derive(Debug, Clone, Copy)]
struct TokenBucket {
    tokens: f64,
    last_ms: u64,
}

/// What the admission layer decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Serve the request.
    Admit,
    /// Shed it; the client should retry after this many ms.
    Busy {
        /// Back-off hint until one token has refilled.
        retry_after_ms: u32,
    },
}

/// Per-tenant token buckets with a shared config.
#[derive(Debug, Clone)]
pub struct AdmissionControl {
    cfg: AdmissionConfig,
    buckets: BTreeMap<u64, TokenBucket>,
}

impl AdmissionControl {
    /// Admission control with per-tenant `cfg`.
    pub fn new(cfg: AdmissionConfig) -> Self {
        Self {
            cfg,
            buckets: BTreeMap::new(),
        }
    }

    /// Override the policy for one tenant? No — policy is uniform; tests
    /// and the loadgen provoke shedding by exceeding the uniform rate.
    pub fn config(&self) -> AdmissionConfig {
        self.cfg
    }

    /// Charge one request for `tenant` at `now_ms`.
    pub fn check(&mut self, tenant: u64, now_ms: u64) -> Admission {
        let cfg = self.cfg;
        let b = self.buckets.entry(tenant).or_insert(TokenBucket {
            tokens: cfg.burst,
            last_ms: now_ms,
        });
        // Refill for the elapsed interval; clocks are monotonic per
        // server, but saturate anyway so a rewound caller cannot panic.
        let elapsed_ms = now_ms.saturating_sub(b.last_ms);
        b.last_ms = now_ms;
        b.tokens = (b.tokens + elapsed_ms as f64 * cfg.rate_per_sec / 1_000.0).min(cfg.burst);
        if b.tokens >= 1.0 {
            b.tokens -= 1.0;
            Admission::Admit
        } else {
            let deficit = 1.0 - b.tokens;
            let wait_ms = (deficit * 1_000.0 / cfg.rate_per_sec.max(1e-9)).ceil();
            Admission::Busy {
                // Clamp into u32; a pathological rate cannot overflow the
                // wire field.
                retry_after_ms: wait_ms.min(u32::MAX as f64).max(1.0) as u32,
            }
        }
    }

    /// Tenants with a bucket (i.e. that have sent at least one request).
    pub fn tenants_seen(&self) -> usize {
        self.buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(burst: f64, rate: f64) -> AdmissionConfig {
        AdmissionConfig {
            burst,
            rate_per_sec: rate,
        }
    }

    #[test]
    fn burst_then_busy_then_refill() {
        let mut ac = AdmissionControl::new(cfg(3.0, 10.0));
        assert_eq!(ac.check(1, 0), Admission::Admit);
        assert_eq!(ac.check(1, 0), Admission::Admit);
        assert_eq!(ac.check(1, 0), Admission::Admit);
        let Admission::Busy { retry_after_ms } = ac.check(1, 0) else {
            panic!("4th instantaneous request must be shed");
        };
        // One token at 10/s = 100 ms away.
        assert_eq!(retry_after_ms, 100);
        // After the hinted wait, exactly one more is admitted.
        assert_eq!(ac.check(1, 100), Admission::Admit);
        assert!(matches!(ac.check(1, 100), Admission::Busy { .. }));
    }

    #[test]
    fn tenants_are_isolated() {
        let mut ac = AdmissionControl::new(cfg(1.0, 1.0));
        assert_eq!(ac.check(1, 0), Admission::Admit);
        assert!(matches!(ac.check(1, 0), Admission::Busy { .. }));
        // Tenant 2's bucket is untouched by tenant 1's exhaustion.
        assert_eq!(ac.check(2, 0), Admission::Admit);
        assert_eq!(ac.tenants_seen(), 2);
    }

    #[test]
    fn sustained_rate_is_enforced() {
        let mut ac = AdmissionControl::new(cfg(5.0, 100.0));
        let mut admitted = 0u32;
        // 1 request per ms for 1 s = 1000 offered, 100/s sustained + burst.
        for ms in 0..1_000u64 {
            if ac.check(7, ms) == Admission::Admit {
                admitted += 1;
            }
        }
        assert!(
            (100..=110).contains(&admitted),
            "expected ~rate+burst admits, got {admitted}"
        );
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut ac = AdmissionControl::new(cfg(2.0, 1_000.0));
        assert_eq!(ac.check(1, 0), Admission::Admit);
        // A long silence refills to burst (2), not unbounded.
        for i in 0..2 {
            assert_eq!(ac.check(1, 10_000), Admission::Admit, "request {i}");
        }
        assert!(matches!(ac.check(1, 10_000), Admission::Busy { .. }));
    }

    #[test]
    fn clock_rewind_is_tolerated() {
        let mut ac = AdmissionControl::new(cfg(2.0, 10.0));
        assert_eq!(ac.check(1, 1_000), Admission::Admit);
        // now_ms going backwards must not panic or refill.
        assert_eq!(ac.check(1, 500), Admission::Admit);
        assert!(matches!(ac.check(1, 400), Admission::Busy { .. }));
    }
}
