//! Request/response messages carried inside gateway frames.
//!
//! The payload is `opcode (1 byte) + fixed-order fields`, all integers
//! little-endian. Variable-length fields carry a `u16` count first and are
//! capped (`MAX_STRING`, `MAX_CONFIG_DIM`) so a frame that passed the
//! outer size check still cannot request absurd allocations. Decoding is
//! total: every failure is a typed [`WireError`], never a panic.
//!
//! Opcode table (version 1):
//!
//! | opcode | message              | direction |
//! |--------|----------------------|-----------|
//! | 0x01   | RegisterService      | →         |
//! | 0x02   | PushMetricsWindow    | →         |
//! | 0x03   | ThrottleSignal       | →         |
//! | 0x04   | FetchRecommendation  | →         |
//! | 0x05   | ApplyAck             | →         |
//! | 0x06   | Health               | →         |
//! | 0x07   | Stats                | →         |
//! | 0x81   | Registered           | ←         |
//! | 0x82   | Classified           | ←         |
//! | 0x83   | ThrottleQueued       | ←         |
//! | 0x84   | Recommendation       | ←         |
//! | 0x85   | ApplyRecorded        | ←         |
//! | 0x86   | Healthy              | ←         |
//! | 0x87   | StatsReply           | ←         |
//! | 0x88   | Busy                 | ←         |
//! | 0x89   | Error                | ←         |
//!
//! Versioning rule: adding an opcode or appending fields requires a new
//! protocol version (the frame header's `u16`); peers never parse by
//! guessing. Within one version the byte layout of every message is
//! frozen.

/// Query classes carried in a metrics window (mirrors
/// `autodbaas_core::QueryClass::ALL`; the router asserts the two agree).
pub const N_CLASSES: usize = 6;

/// Cap on strings (error details) on the wire.
pub const MAX_STRING: usize = 1024;

/// Cap on unit-config dimensionality.
pub const MAX_CONFIG_DIM: usize = 64;

/// What a client asks the control plane to do.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Provision a managed service; the reply carries the tenant id used
    /// on every subsequent request.
    RegisterService {
        /// Database flavor code (0 = Postgres, 1 = MySQL).
        flavor: u8,
        /// Instance plan code (0..=3, small → xlarge).
        instance: u8,
        /// Disk kind code (0 = SSD, 1 = HDD).
        disk: u8,
        /// HA replicas to provision.
        n_slaves: u8,
        /// Determinism seed for the tenant's replica set.
        seed: u64,
    },
    /// One monitoring window: per-class query counts plus the throttle
    /// verdict the tenant-side detector reached. The gateway runs the TDE
    /// entropy filtration and decides whether a tuning request is
    /// forwarded to the director or suppressed.
    PushMetricsWindow {
        /// Tenant id from registration.
        tenant: u64,
        /// Window start, tenant sim-time ms.
        window_start: u64,
        /// Window width, ms.
        window_ms: u32,
        /// Per-class query counts in `QueryClass::ALL` order.
        class_counts: [u64; N_CLASSES],
        /// Did this window trip the tenant-side throttle detector?
        throttled: bool,
        /// Is the throttled knob pinned at its instance cap?
        knob_at_cap: bool,
    },
    /// An explicit throttle that must reach a tuner (bypasses filtration;
    /// used for restart-bound escalations).
    ThrottleSignal {
        /// Tenant id.
        tenant: u64,
        /// Signal time, tenant sim-time ms.
        at: u64,
        /// Knob class code (0 memory, 1 bgwriter, 2 async/planner).
        knob_class: u8,
        /// Modelled tuner busy-time this request will consume, ms.
        service_time_ms: u32,
    },
    /// Fetch the newest recommendation that is ready at `now`.
    FetchRecommendation {
        /// Tenant id.
        tenant: u64,
        /// Tenant sim-time ms; recommendations still training are held.
        now: u64,
    },
    /// Acknowledge that a fetched recommendation was applied (persists the
    /// config so it survives redeploys).
    ApplyAck {
        /// Tenant id.
        tenant: u64,
        /// Apply time, tenant sim-time ms.
        at: u64,
        /// Whether the apply succeeded tenant-side.
        ok: bool,
    },
    /// Liveness probe.
    Health,
    /// Gateway-wide counters and latency quantiles.
    Stats,
}

/// TDE verdict carried in [`Response::Classified`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum WireDecision {
    /// Below the consecutive-throttle threshold; keep counting.
    Hold = 0,
    /// Forwarded to the config director (a tuning request was submitted).
    Forward = 1,
    /// Suppressed: concentrated class with the knob at cap.
    Suppress = 2,
    /// Suppressed and a plan upgrade was requested.
    PlanUpgrade = 3,
}

impl WireDecision {
    fn from_u8(b: u8) -> Result<Self, WireError> {
        match b {
            0 => Ok(WireDecision::Hold),
            1 => Ok(WireDecision::Forward),
            2 => Ok(WireDecision::Suppress),
            3 => Ok(WireDecision::PlanUpgrade),
            _ => Err(WireError::BadValue("decision")),
        }
    }
}

/// Machine-readable error classes in [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The frame/payload could not be decoded.
    Malformed = 1,
    /// The tenant id is not registered.
    UnknownTenant = 2,
    /// A field value is out of range for this gateway.
    BadRequest = 3,
    /// The gateway is draining; reconnect elsewhere.
    ShuttingDown = 4,
}

impl ErrorCode {
    fn from_u8(b: u8) -> Result<Self, WireError> {
        match b {
            1 => Ok(ErrorCode::Malformed),
            2 => Ok(ErrorCode::UnknownTenant),
            3 => Ok(ErrorCode::BadRequest),
            4 => Ok(ErrorCode::ShuttingDown),
            _ => Err(WireError::BadValue("error code")),
        }
    }
}

/// What the gateway replies.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Registration succeeded; use this tenant id from now on.
    Registered {
        /// Assigned tenant id.
        tenant: u64,
    },
    /// Verdict for a metrics window.
    Classified {
        /// The filtration decision.
        decision: WireDecision,
        /// True when a tuning request was submitted to the director.
        submitted: bool,
        /// When the resulting recommendation will be ready (0 if none).
        ready_at: u64,
    },
    /// An explicit throttle was queued on a tuner.
    ThrottleQueued {
        /// Chosen tuner instance.
        tuner: u32,
        /// When the recommendation will be ready.
        ready_at: u64,
    },
    /// Recommendation fetch result.
    Recommendation {
        /// False when nothing is ready yet (fields below are empty).
        ready: bool,
        /// Recommendation timestamp.
        at: u64,
        /// Normalised `[0,1]` knob vector.
        unit_config: Vec<f64>,
    },
    /// ApplyAck recorded.
    ApplyRecorded,
    /// Health reply.
    Healthy {
        /// True once shutdown has begun (stop sending new work).
        draining: bool,
    },
    /// Gateway-wide counters.
    StatsReply {
        /// Requests served (admitted and answered).
        served: u64,
        /// Requests shed with `Busy`.
        busy: u64,
        /// Protocol errors answered with `Error`.
        errors: u64,
        /// Registered tenants.
        active_tenants: u64,
        /// Median request latency, µs.
        p50_us: u64,
        /// 99th-percentile request latency, µs.
        p99_us: u64,
    },
    /// Admission control refused the request; retry after the hint.
    Busy {
        /// Client back-off hint, ms.
        retry_after_ms: u32,
    },
    /// The request failed; the connection stays usable.
    Error {
        /// Machine-readable class.
        code: ErrorCode,
        /// Human-readable detail (capped at [`MAX_STRING`]).
        detail: String,
    },
}

/// Why a payload could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Opcode byte not in the version-1 table.
    UnknownOpcode(u8),
    /// Payload ended before the message did.
    Truncated,
    /// Bytes were left over after a complete message.
    TrailingBytes(usize),
    /// A field held an out-of-domain value (named for diagnostics).
    BadValue(&'static str),
    /// A length prefix exceeded its cap.
    LengthCap(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            WireError::Truncated => write!(f, "payload truncated"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            WireError::BadValue(what) => write!(f, "bad value for {what}"),
            WireError::LengthCap(what) => write!(f, "length prefix over cap for {what}"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------- helpers

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::BadValue("bool")),
        }
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(self.buf.len() - self.pos))
        }
    }
}

fn put_bool(out: &mut Vec<u8>, b: bool) {
    out.push(u8::from(b));
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    // Encoding side enforces the cap by truncation at a char boundary —
    // an over-long diagnostic must not become an encode failure.
    let mut end = s.len().min(MAX_STRING);
    while end > 0 && !s.is_char_boundary(end) {
        end -= 1;
    }
    let bytes = &s.as_bytes()[..end];
    out.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
    out.extend_from_slice(bytes);
}

fn read_string(r: &mut Reader<'_>) -> Result<String, WireError> {
    let len = r.u16()? as usize;
    if len > MAX_STRING {
        return Err(WireError::LengthCap("string"));
    }
    let bytes = r.take(len)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadValue("utf-8 string"))
}

// ---------------------------------------------------------------- encode

impl Request {
    /// Static label for access logs and event kinds.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::RegisterService { .. } => "gw.register",
            Request::PushMetricsWindow { .. } => "gw.metrics",
            Request::ThrottleSignal { .. } => "gw.throttle",
            Request::FetchRecommendation { .. } => "gw.fetch",
            Request::ApplyAck { .. } => "gw.apply_ack",
            Request::Health => "gw.health",
            Request::Stats => "gw.stats",
        }
    }

    /// Tenant this request bills to, when it names one.
    pub fn tenant(&self) -> Option<u64> {
        match *self {
            Request::PushMetricsWindow { tenant, .. }
            | Request::ThrottleSignal { tenant, .. }
            | Request::FetchRecommendation { tenant, .. }
            | Request::ApplyAck { tenant, .. } => Some(tenant),
            _ => None,
        }
    }

    /// Serialise to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            Request::RegisterService {
                flavor,
                instance,
                disk,
                n_slaves,
                seed,
            } => {
                out.push(0x01);
                out.push(*flavor);
                out.push(*instance);
                out.push(*disk);
                out.push(*n_slaves);
                out.extend_from_slice(&seed.to_le_bytes());
            }
            Request::PushMetricsWindow {
                tenant,
                window_start,
                window_ms,
                class_counts,
                throttled,
                knob_at_cap,
            } => {
                out.push(0x02);
                out.extend_from_slice(&tenant.to_le_bytes());
                out.extend_from_slice(&window_start.to_le_bytes());
                out.extend_from_slice(&window_ms.to_le_bytes());
                for c in class_counts {
                    out.extend_from_slice(&c.to_le_bytes());
                }
                put_bool(&mut out, *throttled);
                put_bool(&mut out, *knob_at_cap);
            }
            Request::ThrottleSignal {
                tenant,
                at,
                knob_class,
                service_time_ms,
            } => {
                out.push(0x03);
                out.extend_from_slice(&tenant.to_le_bytes());
                out.extend_from_slice(&at.to_le_bytes());
                out.push(*knob_class);
                out.extend_from_slice(&service_time_ms.to_le_bytes());
            }
            Request::FetchRecommendation { tenant, now } => {
                out.push(0x04);
                out.extend_from_slice(&tenant.to_le_bytes());
                out.extend_from_slice(&now.to_le_bytes());
            }
            Request::ApplyAck { tenant, at, ok } => {
                out.push(0x05);
                out.extend_from_slice(&tenant.to_le_bytes());
                out.extend_from_slice(&at.to_le_bytes());
                put_bool(&mut out, *ok);
            }
            Request::Health => out.push(0x06),
            Request::Stats => out.push(0x07),
        }
        out
    }

    /// Parse a frame payload.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(buf);
        let op = r.u8()?;
        let req = match op {
            0x01 => Request::RegisterService {
                flavor: r.u8()?,
                instance: r.u8()?,
                disk: r.u8()?,
                n_slaves: r.u8()?,
                seed: r.u64()?,
            },
            0x02 => {
                let tenant = r.u64()?;
                let window_start = r.u64()?;
                let window_ms = r.u32()?;
                let mut class_counts = [0u64; N_CLASSES];
                for c in &mut class_counts {
                    *c = r.u64()?;
                }
                Request::PushMetricsWindow {
                    tenant,
                    window_start,
                    window_ms,
                    class_counts,
                    throttled: r.bool()?,
                    knob_at_cap: r.bool()?,
                }
            }
            0x03 => Request::ThrottleSignal {
                tenant: r.u64()?,
                at: r.u64()?,
                knob_class: r.u8()?,
                service_time_ms: r.u32()?,
            },
            0x04 => Request::FetchRecommendation {
                tenant: r.u64()?,
                now: r.u64()?,
            },
            0x05 => Request::ApplyAck {
                tenant: r.u64()?,
                at: r.u64()?,
                ok: r.bool()?,
            },
            0x06 => Request::Health,
            0x07 => Request::Stats,
            other => return Err(WireError::UnknownOpcode(other)),
        };
        r.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Serialise to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            Response::Registered { tenant } => {
                out.push(0x81);
                out.extend_from_slice(&tenant.to_le_bytes());
            }
            Response::Classified {
                decision,
                submitted,
                ready_at,
            } => {
                out.push(0x82);
                out.push(*decision as u8);
                put_bool(&mut out, *submitted);
                out.extend_from_slice(&ready_at.to_le_bytes());
            }
            Response::ThrottleQueued { tuner, ready_at } => {
                out.push(0x83);
                out.extend_from_slice(&tuner.to_le_bytes());
                out.extend_from_slice(&ready_at.to_le_bytes());
            }
            Response::Recommendation {
                ready,
                at,
                unit_config,
            } => {
                out.push(0x84);
                put_bool(&mut out, *ready);
                out.extend_from_slice(&at.to_le_bytes());
                let n = unit_config.len().min(MAX_CONFIG_DIM);
                out.extend_from_slice(&(n as u16).to_le_bytes());
                for v in &unit_config[..n] {
                    out.extend_from_slice(&v.to_bits().to_le_bytes());
                }
            }
            Response::ApplyRecorded => out.push(0x85),
            Response::Healthy { draining } => {
                out.push(0x86);
                put_bool(&mut out, *draining);
            }
            Response::StatsReply {
                served,
                busy,
                errors,
                active_tenants,
                p50_us,
                p99_us,
            } => {
                out.push(0x87);
                for v in [served, busy, errors, active_tenants, p50_us, p99_us] {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            Response::Busy { retry_after_ms } => {
                out.push(0x88);
                out.extend_from_slice(&retry_after_ms.to_le_bytes());
            }
            Response::Error { code, detail } => {
                out.push(0x89);
                out.push(*code as u8);
                put_string(&mut out, detail);
            }
        }
        out
    }

    /// Parse a frame payload.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(buf);
        let op = r.u8()?;
        let resp = match op {
            0x81 => Response::Registered { tenant: r.u64()? },
            0x82 => Response::Classified {
                decision: WireDecision::from_u8(r.u8()?)?,
                submitted: r.bool()?,
                ready_at: r.u64()?,
            },
            0x83 => Response::ThrottleQueued {
                tuner: r.u32()?,
                ready_at: r.u64()?,
            },
            0x84 => {
                let ready = r.bool()?;
                let at = r.u64()?;
                let n = r.u16()? as usize;
                if n > MAX_CONFIG_DIM {
                    return Err(WireError::LengthCap("unit_config"));
                }
                let mut unit_config = Vec::with_capacity(n);
                for _ in 0..n {
                    unit_config.push(r.f64()?);
                }
                Response::Recommendation {
                    ready,
                    at,
                    unit_config,
                }
            }
            0x85 => Response::ApplyRecorded,
            0x86 => Response::Healthy {
                draining: r.bool()?,
            },
            0x87 => Response::StatsReply {
                served: r.u64()?,
                busy: r.u64()?,
                errors: r.u64()?,
                active_tenants: r.u64()?,
                p50_us: r.u64()?,
                p99_us: r.u64()?,
            },
            0x88 => Response::Busy {
                retry_after_ms: r.u32()?,
            },
            0x89 => Response::Error {
                code: ErrorCode::from_u8(r.u8()?)?,
                detail: read_string(&mut r)?,
            },
            other => return Err(WireError::UnknownOpcode(other)),
        };
        r.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_requests() -> Vec<Request> {
        vec![
            Request::RegisterService {
                flavor: 0,
                instance: 2,
                disk: 0,
                n_slaves: 1,
                seed: 42,
            },
            Request::PushMetricsWindow {
                tenant: 7,
                window_start: 60_000,
                window_ms: 60_000,
                class_counts: [900, 3, 2, 40, 11, 250],
                throttled: true,
                knob_at_cap: false,
            },
            Request::ThrottleSignal {
                tenant: 7,
                at: 123_456,
                knob_class: 0,
                service_time_ms: 110_000,
            },
            Request::FetchRecommendation {
                tenant: 7,
                now: 200_000,
            },
            Request::ApplyAck {
                tenant: 7,
                at: 201_000,
                ok: true,
            },
            Request::Health,
            Request::Stats,
        ]
    }

    pub(crate) fn sample_responses() -> Vec<Response> {
        vec![
            Response::Registered { tenant: 3 },
            Response::Classified {
                decision: WireDecision::Forward,
                submitted: true,
                ready_at: 310_000,
            },
            Response::ThrottleQueued {
                tuner: 2,
                ready_at: 310_000,
            },
            Response::Recommendation {
                ready: true,
                at: 310_000,
                unit_config: vec![0.25, 0.5, 0.75],
            },
            Response::ApplyRecorded,
            Response::Healthy { draining: false },
            Response::StatsReply {
                served: 50_000,
                busy: 120,
                errors: 0,
                active_tenants: 8,
                p50_us: 85,
                p99_us: 900,
            },
            Response::Busy { retry_after_ms: 40 },
            Response::Error {
                code: ErrorCode::UnknownTenant,
                detail: "tenant 99 is not registered".into(),
            },
        ]
    }

    #[test]
    fn every_request_round_trips() {
        for req in sample_requests() {
            let bytes = req.encode();
            assert_eq!(Request::decode(&bytes), Ok(req));
        }
    }

    #[test]
    fn every_response_round_trips() {
        for resp in sample_responses() {
            let bytes = resp.encode();
            assert_eq!(Response::decode(&bytes), Ok(resp));
        }
    }

    #[test]
    fn truncated_messages_error_not_panic() {
        for req in sample_requests() {
            let bytes = req.encode();
            for cut in 0..bytes.len() {
                assert!(Request::decode(&bytes[..cut]).is_err(), "cut at {cut}");
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Request::Health.encode();
        bytes.push(0);
        assert_eq!(Request::decode(&bytes), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn unknown_opcode_is_typed() {
        assert_eq!(
            Request::decode(&[0x70]),
            Err(WireError::UnknownOpcode(0x70))
        );
        assert_eq!(
            Response::decode(&[0x01]),
            Err(WireError::UnknownOpcode(0x01)),
            "request opcodes are not valid responses"
        );
    }

    #[test]
    fn bad_bool_and_bad_enum_are_typed() {
        let mut bytes = Request::ApplyAck {
            tenant: 1,
            at: 2,
            ok: true,
        }
        .encode();
        let last = bytes.len() - 1;
        bytes[last] = 7;
        assert_eq!(Request::decode(&bytes), Err(WireError::BadValue("bool")));

        let mut resp = Response::Classified {
            decision: WireDecision::Hold,
            submitted: false,
            ready_at: 0,
        }
        .encode();
        resp[1] = 200;
        assert_eq!(
            Response::decode(&resp),
            Err(WireError::BadValue("decision"))
        );
    }

    #[test]
    fn long_error_detail_is_truncated_at_a_char_boundary() {
        let detail: String = "é".repeat(MAX_STRING); // 2 bytes per char
        let resp = Response::Error {
            code: ErrorCode::BadRequest,
            detail,
        };
        let bytes = resp.encode();
        match Response::decode(&bytes) {
            Ok(Response::Error { detail, .. }) => {
                assert!(detail.len() <= MAX_STRING);
                assert!(detail.chars().all(|c| c == 'é'));
            }
            other => panic!("expected error response, got {other:?}"),
        }
    }
}
