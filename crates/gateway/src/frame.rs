//! The gateway's wire frame: the only bytes that ever cross a socket.
//!
//! Every message — request or response — travels inside one frame:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"ADBG"
//! 4       2     protocol version, u16 LE (currently 1)
//! 6       2     reserved, must be zero
//! 8       4     payload length, u32 LE (hard cap: MAX_PAYLOAD)
//! 12      4     FNV-1a-32 checksum of the payload, u32 LE
//! 16      N     payload (opcode + body, see `proto`)
//! ```
//!
//! Decoding is *total*: any byte soup either yields a frame, a typed
//! [`FrameError`], or a need-more-bytes signal — never a panic and never
//! unbounded buffering (the length field is validated against
//! [`MAX_PAYLOAD`] before any allocation). Versioning rule: the major
//! version is the whole `u16`; peers reject frames whose version they do
//! not implement rather than guessing at field layouts.

/// Frame magic: "ADBG" (AutoDBaaS Gateway).
pub const MAGIC: [u8; 4] = *b"ADBG";

/// Protocol version carried in every frame.
pub const PROTOCOL_VERSION: u16 = 1;

/// Header bytes before the payload.
pub const HEADER_LEN: usize = 16;

/// Hard cap on payload size. Frames claiming more are rejected before any
/// buffer is grown, so a hostile or corrupt peer cannot balloon memory.
pub const MAX_PAYLOAD: usize = 64 * 1024;

/// Why a frame could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// First four bytes are not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The peer speaks a version this build does not implement.
    UnsupportedVersion(u16),
    /// Reserved header bytes were non-zero (a version-1 frame never sets
    /// them; a future version that does must bump the version instead).
    ReservedBitsSet(u16),
    /// Claimed payload length exceeds [`MAX_PAYLOAD`].
    Oversize(u32),
    /// Payload checksum mismatch: `{expected, got}`.
    ChecksumMismatch {
        /// Checksum carried in the header.
        expected: u32,
        /// Checksum computed over the received payload.
        got: u32,
    },
    /// Encoding-side: refusing to build a frame larger than the cap.
    PayloadTooLarge(usize),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            FrameError::UnsupportedVersion(v) => write!(f, "unsupported protocol version {v}"),
            FrameError::ReservedBitsSet(r) => write!(f, "reserved header bits set ({r:#06x})"),
            FrameError::Oversize(n) => {
                write!(f, "frame claims {n} payload bytes (cap {MAX_PAYLOAD})")
            }
            FrameError::ChecksumMismatch { expected, got } => {
                write!(f, "payload checksum {got:#010x} != header {expected:#010x}")
            }
            FrameError::PayloadTooLarge(n) => {
                write!(f, "refusing to encode {n}-byte payload (cap {MAX_PAYLOAD})")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// FNV-1a over `bytes`, truncated to 32 bits — cheap, dependency-free
/// corruption detection (not cryptographic integrity).
pub fn checksum(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x01000193);
    }
    h
}

/// Encode `payload` into a complete frame.
pub fn encode(payload: &[u8]) -> Result<Vec<u8>, FrameError> {
    if payload.len() > MAX_PAYLOAD {
        return Err(FrameError::PayloadTooLarge(payload.len()));
    }
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&checksum(payload).to_le_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Outcome of a [`decode`] attempt over a byte buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decoded {
    /// A complete frame: the payload plus the total bytes consumed.
    Frame {
        /// The validated payload.
        payload: Vec<u8>,
        /// Bytes of `buf` this frame occupied (header + payload).
        consumed: usize,
    },
    /// The buffer holds a valid prefix; at least this many more bytes are
    /// needed before another attempt can succeed.
    NeedMore(usize),
}

/// Try to decode one frame from the front of `buf`.
///
/// Total over arbitrary input: returns [`Decoded::NeedMore`] for valid
/// prefixes, a typed [`FrameError`] for invalid ones, and never panics.
pub fn decode(buf: &[u8]) -> Result<Decoded, FrameError> {
    if buf.len() < HEADER_LEN {
        // Validate what we do have so garbage fails fast instead of
        // stalling a connection waiting for "more" of a bad frame.
        let n = buf.len().min(4);
        if buf[..n] != MAGIC[..n] {
            let mut m = [0u8; 4];
            m[..n].copy_from_slice(&buf[..n]);
            return Err(FrameError::BadMagic(m));
        }
        return Ok(Decoded::NeedMore(HEADER_LEN - buf.len()));
    }
    let mut magic = [0u8; 4];
    magic.copy_from_slice(&buf[0..4]);
    if magic != MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let version = u16::from_le_bytes([buf[4], buf[5]]);
    if version != PROTOCOL_VERSION {
        return Err(FrameError::UnsupportedVersion(version));
    }
    let reserved = u16::from_le_bytes([buf[6], buf[7]]);
    if reserved != 0 {
        return Err(FrameError::ReservedBitsSet(reserved));
    }
    let len = u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]);
    if len as usize > MAX_PAYLOAD {
        return Err(FrameError::Oversize(len));
    }
    let expected = u32::from_le_bytes([buf[12], buf[13], buf[14], buf[15]]);
    let total = HEADER_LEN + len as usize;
    if buf.len() < total {
        return Ok(Decoded::NeedMore(total - buf.len()));
    }
    let payload = &buf[HEADER_LEN..total];
    let got = checksum(payload);
    if got != expected {
        return Err(FrameError::ChecksumMismatch { expected, got });
    }
    Ok(Decoded::Frame {
        payload: payload.to_vec(),
        consumed: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_payloads() {
        for payload in [&b""[..], b"x", b"hello gateway", &[0u8; 4096]] {
            let frame = encode(payload).unwrap();
            match decode(&frame).unwrap() {
                Decoded::Frame {
                    payload: p,
                    consumed,
                } => {
                    assert_eq!(p, payload);
                    assert_eq!(consumed, frame.len());
                }
                other => panic!("expected frame, got {other:?}"),
            }
        }
    }

    #[test]
    fn trailing_bytes_are_left_for_the_next_frame() {
        let mut buf = encode(b"first").unwrap();
        let second = encode(b"second").unwrap();
        buf.extend_from_slice(&second);
        let Decoded::Frame { payload, consumed } = decode(&buf).unwrap() else {
            panic!("expected frame");
        };
        assert_eq!(payload, b"first");
        let Decoded::Frame { payload, .. } = decode(&buf[consumed..]).unwrap() else {
            panic!("expected second frame");
        };
        assert_eq!(payload, b"second");
    }

    #[test]
    fn truncation_reports_exact_need() {
        let frame = encode(b"abcdef").unwrap();
        assert_eq!(decode(&frame[..3]).unwrap(), Decoded::NeedMore(13));
        assert_eq!(decode(&frame[..HEADER_LEN]).unwrap(), Decoded::NeedMore(6));
        assert_eq!(
            decode(&frame[..HEADER_LEN + 2]).unwrap(),
            Decoded::NeedMore(4)
        );
    }

    #[test]
    fn garbage_prefix_fails_immediately() {
        assert!(matches!(decode(b"GET "), Err(FrameError::BadMagic(_))));
        assert!(matches!(decode(b"A"), Ok(Decoded::NeedMore(_))));
        assert!(matches!(decode(b"AX"), Err(FrameError::BadMagic(_))));
    }

    #[test]
    fn wrong_version_and_reserved_bits_are_rejected() {
        let mut frame = encode(b"x").unwrap();
        frame[4] = 9;
        assert_eq!(decode(&frame), Err(FrameError::UnsupportedVersion(9)));
        let mut frame = encode(b"x").unwrap();
        frame[6] = 1;
        assert_eq!(decode(&frame), Err(FrameError::ReservedBitsSet(1)));
    }

    #[test]
    fn oversize_claim_is_rejected_before_buffering() {
        let mut frame = encode(b"x").unwrap();
        frame[8..12].copy_from_slice(&(MAX_PAYLOAD as u32 + 1).to_le_bytes());
        assert_eq!(decode(&frame), Err(FrameError::Oversize(65537)));
        assert_eq!(
            encode(&vec![0u8; MAX_PAYLOAD + 1]),
            Err(FrameError::PayloadTooLarge(MAX_PAYLOAD + 1))
        );
    }

    #[test]
    fn corrupted_payload_is_caught_by_checksum() {
        let mut frame = encode(b"important bytes").unwrap();
        let last = frame.len() - 1;
        frame[last] ^= 0xff;
        assert!(matches!(
            decode(&frame),
            Err(FrameError::ChecksumMismatch { .. })
        ));
    }
}
