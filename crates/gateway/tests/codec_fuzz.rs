//! Property tests for the gateway wire codec.
//!
//! The gateway reads these bytes off a public socket, so the codec's
//! contract is *totality*: any byte sequence must produce either a frame
//! or a typed error — never a panic, never an allocation proportional to
//! an attacker-chosen length field. Three properties pin that down:
//!
//! 1. `frame::decode` and `Request::decode`/`Response::decode` never
//!    panic on arbitrary bytes;
//! 2. every representable message round-trips encode → frame → decode
//!    bit-for-bit;
//! 3. oversized frames are rejected with the typed `Oversize` error
//!    *before* the payload is buffered.

use autodbaas_gateway::frame::{self, Decoded, HEADER_LEN, MAX_PAYLOAD};
use autodbaas_gateway::proto::{ErrorCode, Request, Response, WireDecision, N_CLASSES};
use autodbaas_gateway::FrameError;
use proptest::prelude::*;

// ---------------------------------------------------------------- totality

proptest! {
    /// Arbitrary byte soup: the frame decoder must return `Frame`,
    /// `NeedMore` or a typed error — and on success, consume a sane span.
    #[test]
    fn frame_decode_never_panics_on_byte_soup(
        bytes in prop::collection::vec(0u8..=255, 0..256)
    ) {
        match frame::decode(&bytes) {
            Ok(Decoded::Frame { payload, consumed }) => {
                prop_assert!(consumed <= bytes.len());
                prop_assert_eq!(consumed, HEADER_LEN + payload.len());
            }
            Ok(Decoded::NeedMore(n)) => prop_assert!(n > 0),
            Err(_) => {}
        }
    }

    /// Same soup through the message decoders: typed errors only.
    #[test]
    fn message_decode_never_panics_on_byte_soup(
        bytes in prop::collection::vec(0u8..=255, 0..192)
    ) {
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }

    /// Soup *wrapped in a valid frame* exercises the message layer with a
    /// checksum-correct envelope, as a confused-but-honest peer would.
    #[test]
    fn framed_soup_reaches_the_message_layer_safely(
        bytes in prop::collection::vec(0u8..=255, 0..192)
    ) {
        let framed = frame::encode(&bytes).expect("soup is far below MAX_PAYLOAD");
        match frame::decode(&framed) {
            Ok(Decoded::Frame { payload, consumed }) => {
                prop_assert_eq!(consumed, framed.len());
                prop_assert_eq!(&payload[..], &bytes[..]);
                let _ = Request::decode(&payload);
            }
            other => prop_assert!(false, "encode produced undecodable frame: {other:?}"),
        }
    }

    /// Flipping any single byte of a valid frame must never decode to the
    /// original payload: the magic/version/length checks or the checksum
    /// catch it (or, for length-field corruption, `NeedMore`/`Oversize`).
    #[test]
    fn single_byte_corruption_is_always_detected(
        seed in 0u64..u64::MAX, flip in 0usize..10_000, xor in 1u8..=255
    ) {
        let payload: Vec<u8> = (0..32).map(|i| (seed.rotate_left(i) & 0xFF) as u8).collect();
        let mut framed = frame::encode(&payload).expect("fits");
        let idx = flip % framed.len();
        framed[idx] ^= xor;
        match frame::decode(&framed) {
            Ok(Decoded::Frame { payload: got, .. }) => {
                prop_assert_ne!(got, payload, "corruption at byte {} went unnoticed", idx);
            }
            Ok(Decoded::NeedMore(_)) | Err(_) => {}
        }
    }
}

// ------------------------------------------------------------- round-trips

fn class_counts(seed: u64) -> [u64; N_CLASSES] {
    let mut out = [0u64; N_CLASSES];
    for (i, c) in out.iter_mut().enumerate() {
        *c = seed.rotate_left(i as u32 * 11) % 100_000;
    }
    out
}

proptest! {
    #[test]
    fn register_round_trips(
        flavor in 0u8..=1, instance in 0u8..=5, disk in 0u8..=1,
        n_slaves in 0u8..=4, seed in 0u64..u64::MAX,
    ) {
        round_trip_request(&Request::RegisterService { flavor, instance, disk, n_slaves, seed });
    }

    #[test]
    fn metrics_window_round_trips(
        tenant in 0u64..u64::MAX, window_start in 0u64..u64::MAX,
        window_ms in 0u32..u32::MAX, seed in 0u64..u64::MAX,
        flags in 0u8..4,
    ) {
        round_trip_request(&Request::PushMetricsWindow {
            tenant, window_start, window_ms,
            class_counts: class_counts(seed),
            throttled: flags & 1 != 0,
            knob_at_cap: flags & 2 != 0,
        });
    }

    #[test]
    fn throttle_fetch_ack_round_trip(
        tenant in 0u64..u64::MAX, at in 0u64..u64::MAX,
        knob_class in 0u8..=2, service_time_ms in 0u32..u32::MAX,
        flags in 0u8..2,
    ) {
        let ok = flags != 0;
        round_trip_request(&Request::ThrottleSignal { tenant, at, knob_class, service_time_ms });
        round_trip_request(&Request::FetchRecommendation { tenant, now: at });
        round_trip_request(&Request::ApplyAck { tenant, at, ok });
        round_trip_request(&Request::Health);
        round_trip_request(&Request::Stats);
    }

    #[test]
    fn responses_round_trip(
        tenant in 0u64..u64::MAX, at in 0u64..u64::MAX,
        served in 0u64..u64::MAX, retry in 0u32..u32::MAX,
        dim in 0usize..16, seed in 0u64..u64::MAX,
        flags in 0u8..2,
    ) {
        let flag = flags != 0;
        let unit_config: Vec<f64> = (0..dim)
            .map(|i| (seed.rotate_left(i as u32 * 7) % 1_000_000) as f64 / 1_000_000.0)
            .collect();
        let all = [
            Response::Registered { tenant },
            Response::Classified {
                decision: match tenant % 4 {
                    0 => WireDecision::Forward,
                    1 => WireDecision::Suppress,
                    2 => WireDecision::PlanUpgrade,
                    _ => WireDecision::Hold,
                },
                submitted: flag,
                ready_at: at,
            },
            Response::ThrottleQueued { tuner: retry, ready_at: at },
            Response::Recommendation { ready: flag, at, unit_config },
            Response::ApplyRecorded,
            Response::Healthy { draining: flag },
            Response::StatsReply {
                served, busy: at, errors: tenant,
                active_tenants: served % 1_000, p50_us: at, p99_us: served,
            },
            Response::Busy { retry_after_ms: retry },
            Response::Error { code: ErrorCode::Malformed, detail: "x".repeat(dim) },
        ];
        for resp in &all {
            round_trip_response(resp);
        }
    }
}

fn round_trip_request(req: &Request) {
    let framed = frame::encode(&req.encode()).expect("requests fit in a frame");
    let Ok(Decoded::Frame { payload, consumed }) = frame::decode(&framed) else {
        panic!("frame did not round-trip for {req:?}");
    };
    assert_eq!(consumed, framed.len());
    let back = Request::decode(&payload).expect("payload decodes");
    assert_eq!(&back, req);
}

fn round_trip_response(resp: &Response) {
    let framed = frame::encode(&resp.encode()).expect("responses fit in a frame");
    let Ok(Decoded::Frame { payload, consumed }) = frame::decode(&framed) else {
        panic!("frame did not round-trip for {resp:?}");
    };
    assert_eq!(consumed, framed.len());
    let back = Response::decode(&payload).expect("payload decodes");
    assert_eq!(&back, resp);
}

// ---------------------------------------------------------- size rejection

proptest! {
    /// A header advertising an oversize payload is rejected from the
    /// header alone — `decode` must not ask for more bytes first.
    #[test]
    fn oversize_frames_rejected_from_header(excess in 1u64..1_000_000) {
        let len = (MAX_PAYLOAD as u64 + excess).min(u64::from(u32::MAX)) as u32;
        let mut hdr = Vec::with_capacity(HEADER_LEN);
        hdr.extend_from_slice(b"ADBG");
        hdr.extend_from_slice(&1u16.to_le_bytes());
        hdr.extend_from_slice(&0u16.to_le_bytes());
        hdr.extend_from_slice(&len.to_le_bytes());
        hdr.extend_from_slice(&0u32.to_le_bytes());
        match frame::decode(&hdr) {
            Err(FrameError::Oversize(got)) => prop_assert_eq!(got, len),
            other => prop_assert!(false, "expected Oversize, got {other:?}"),
        }
    }
}

#[test]
fn encode_rejects_oversize_payload_with_typed_error() {
    let too_big = vec![0u8; MAX_PAYLOAD + 1];
    match frame::encode(&too_big) {
        Err(FrameError::PayloadTooLarge(n)) => assert_eq!(n, MAX_PAYLOAD + 1),
        other => panic!("expected PayloadTooLarge, got {other:?}"),
    }
}
