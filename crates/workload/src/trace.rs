//! Trace capture, export, and replay.
//!
//! The paper's evaluation runs a *captured* customer trace. A downstream
//! user of this library will want the same workflow: record a timestamped
//! query trace from any generator, export it (a simple CSV carried in a
//! [`bytes::Bytes`] buffer so it can be shipped or persisted zero-copy),
//! re-import it, and replay it deterministically against a simulator —
//! identical traffic every run, independent of generator internals.

use crate::arrival::ArrivalProcess;
use crate::QuerySource;
use autodbaas_simdb::{QueryKind, QueryProfile};
use autodbaas_telemetry::SimTime;
use bytes::{BufMut, Bytes, BytesMut};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One recorded event: a query batch arriving at a timestamp.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Arrival time, ms.
    pub at: SimTime,
    /// The query.
    pub query: QueryProfile,
    /// How many identical instances arrived together.
    pub count: u64,
}

/// A recorded trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

/// Errors from parsing an exported trace.
#[derive(Debug, PartialEq, Eq)]
pub enum TraceParseError {
    /// A line had the wrong number of fields.
    BadFieldCount {
        /// 1-based line number.
        line: usize,
    },
    /// A field failed to parse.
    BadField {
        /// 1-based line number.
        line: usize,
        /// Field name.
        field: &'static str,
    },
    /// The buffer was not UTF-8.
    NotUtf8,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceParseError::BadFieldCount { line } => {
                write!(f, "line {line}: wrong field count")
            }
            TraceParseError::BadField { line, field } => {
                write!(f, "line {line}: bad {field}")
            }
            TraceParseError::NotUtf8 => write!(f, "trace buffer is not UTF-8"),
        }
    }
}

impl std::error::Error for TraceParseError {}

impl Trace {
    /// Record `duration_ms` of `workload` under `arrival`, batching each
    /// tick into up to `shapes` distinct statements (the same batching the
    /// simulators use).
    pub fn record(
        workload: &dyn QuerySource,
        arrival: &ArrivalProcess,
        duration_ms: u64,
        tick_ms: u64,
        shapes: u64,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::new();
        let mut t = 0;
        while t < duration_ms {
            let n = arrival.sample_count(&mut rng, t, tick_ms);
            if n > 0 {
                let k = n.min(shapes.max(1));
                let per = n / k;
                let rem = n - per * k;
                for i in 0..k {
                    let count = per + u64::from(i < rem);
                    if count > 0 {
                        events.push(TraceEvent {
                            at: t,
                            query: workload.next_query(&mut rng),
                            count,
                        });
                    }
                }
            }
            t += tick_ms;
        }
        Self { events }
    }

    /// Events in time order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total query instances across all events.
    pub fn total_queries(&self) -> u64 {
        self.events.iter().map(|e| e.count).sum()
    }

    /// Export as CSV in a [`Bytes`] buffer. Columns:
    /// `at,kind,table,count,rows,writes,sort,maint,temp,par,loc,lit0,lit1`.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.events.len() * 56 + 72);
        buf.put_slice(b"at,kind,table,count,rows,writes,sort,maint,temp,par,loc,lit0,lit1\n");
        for e in &self.events {
            let q = &e.query;
            let line = format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                e.at,
                q.kind.index(),
                q.table,
                e.count,
                q.rows_examined,
                q.rows_written,
                q.sort_bytes,
                q.maintenance_bytes,
                q.temp_bytes,
                u8::from(q.parallelizable),
                q.locality,
                q.literals[0],
                q.literals[1],
            );
            buf.put_slice(line.as_bytes());
        }
        buf.freeze()
    }

    /// Parse a buffer produced by [`Trace::to_bytes`].
    pub fn from_bytes(bytes: &Bytes) -> Result<Self, TraceParseError> {
        let text = std::str::from_utf8(bytes).map_err(|_| TraceParseError::NotUtf8)?;
        let mut events = Vec::new();
        for (i, line) in text.lines().enumerate().skip(1) {
            let line_no = i + 1;
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != 13 {
                return Err(TraceParseError::BadFieldCount { line: line_no });
            }
            let num = |idx: usize, field: &'static str| -> Result<u64, TraceParseError> {
                fields[idx]
                    .parse::<u64>()
                    .map_err(|_| TraceParseError::BadField {
                        line: line_no,
                        field,
                    })
            };
            let kind_idx = num(1, "kind")? as usize;
            let kind = *QueryKind::ALL
                .get(kind_idx)
                .ok_or(TraceParseError::BadField {
                    line: line_no,
                    field: "kind",
                })?;
            let mut q = QueryProfile::new(kind, num(2, "table")? as u32);
            q.rows_examined = num(4, "rows")?;
            q.rows_written = num(5, "writes")?;
            q.sort_bytes = num(6, "sort")?;
            q.maintenance_bytes = num(7, "maint")?;
            q.temp_bytes = num(8, "temp")?;
            q.parallelizable = num(9, "par")? != 0;
            q.locality = fields[10]
                .parse::<f64>()
                .map_err(|_| TraceParseError::BadField {
                    line: line_no,
                    field: "loc",
                })?;
            for (slot, (idx, field)) in q.literals.iter_mut().zip([(11usize, "lit0"), (12, "lit1")])
            {
                *slot = fields[idx]
                    .parse::<i64>()
                    .map_err(|_| TraceParseError::BadField {
                        line: line_no,
                        field,
                    })?;
            }
            events.push(TraceEvent {
                at: num(0, "at")?,
                query: q,
                count: num(3, "count")?,
            });
        }
        Ok(Self { events })
    }

    /// A replay cursor over the trace.
    pub fn replay(&self) -> TraceReplay<'_> {
        TraceReplay {
            trace: self,
            next: 0,
        }
    }
}

/// Time-indexed replay cursor: ask for everything due up to a timestamp.
#[derive(Debug, Clone)]
pub struct TraceReplay<'a> {
    trace: &'a Trace,
    next: usize,
}

impl<'a> TraceReplay<'a> {
    /// Events with `at <= now` not yet delivered, in order.
    pub fn due(&mut self, now: SimTime) -> &'a [TraceEvent] {
        let start = self.next;
        while self.next < self.trace.events.len() && self.trace.events[self.next].at <= now {
            self.next += 1;
        }
        &self.trace.events[start..self.next]
    }

    /// True when the whole trace has been delivered.
    pub fn finished(&self) -> bool {
        self.next == self.trace.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::tpcc;

    fn record_small() -> Trace {
        Trace::record(
            &tpcc(0.5),
            &ArrivalProcess::Constant(100.0),
            10_000,
            1_000,
            8,
            7,
        )
    }

    #[test]
    fn record_produces_time_ordered_events() {
        let t = record_small();
        assert!(!t.is_empty());
        assert!(t.events().windows(2).all(|w| w[0].at <= w[1].at));
        // ~100 qps for 10 s.
        let total = t.total_queries();
        assert!((700..1_300).contains(&total), "total {total}");
    }

    #[test]
    fn bytes_roundtrip_is_lossless() {
        let t = record_small();
        let bytes = t.to_bytes();
        let back = Trace::from_bytes(&bytes).expect("parse");
        assert_eq!(t, back);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(
            Trace::from_bytes(&Bytes::from_static(b"header\n1,2\n")),
            Err(TraceParseError::BadFieldCount { line: 2 })
        );
        assert_eq!(
            Trace::from_bytes(&Bytes::from_static(b"h\n1,99,0,1,1,0,0,0,0,0,2.0,0,0\n")),
            Err(TraceParseError::BadField {
                line: 2,
                field: "kind"
            })
        );
        let not_utf8 = Bytes::from(vec![0xff, 0xfe, 0x00]);
        assert_eq!(Trace::from_bytes(&not_utf8), Err(TraceParseError::NotUtf8));
    }

    #[test]
    fn replay_delivers_each_event_exactly_once() {
        let t = record_small();
        let mut replay = t.replay();
        let mut delivered = 0;
        for now in (0..=10_000).step_by(500) {
            delivered += replay.due(now).len();
        }
        assert_eq!(delivered, t.len());
        assert!(replay.finished());
        assert!(replay.due(999_999).is_empty(), "no double delivery");
    }

    #[test]
    fn replay_respects_timestamps() {
        let t = record_small();
        let mut replay = t.replay();
        for e in replay.due(2_000) {
            assert!(e.at <= 2_000);
        }
    }

    #[test]
    fn recording_is_deterministic_per_seed() {
        let a = Trace::record(
            &tpcc(0.5),
            &ArrivalProcess::Constant(50.0),
            5_000,
            1_000,
            4,
            9,
        );
        let b = Trace::record(
            &tpcc(0.5),
            &ArrivalProcess::Constant(50.0),
            5_000,
            1_000,
            4,
            9,
        );
        assert_eq!(a, b);
    }
}
