//! Arrival processes: how many queries hit a database per time step.
//!
//! Production workloads (Fig. 8) are diurnal — a surge between 8 and 11 AM
//! when "most of the microservice usages surge" (§5), low traffic at night,
//! a weekly dip on weekends — while benchmark executions drive constant
//! request rates. Both are Poisson-thinned so counts vary realistically.

use autodbaas_telemetry::dist::poisson;
use autodbaas_telemetry::{SimTime, MILLIS_PER_DAY, MILLIS_PER_HOUR};
use rand::RngCore;

/// A time-varying arrival-rate model.
#[derive(Debug, Clone)]
pub enum ArrivalProcess {
    /// Constant requests/second (benchmark executions).
    Constant(f64),
    /// Diurnal profile for production services.
    Diurnal(DiurnalProfile),
}

/// Parameters of a day/week-shaped arrival curve.
#[derive(Debug, Clone)]
pub struct DiurnalProfile {
    /// Off-peak requests/second.
    pub base_rps: f64,
    /// Peak requests/second at the top of the morning surge.
    pub peak_rps: f64,
    /// Hour of day (0–23) when the surge starts.
    pub surge_start_hour: u32,
    /// Hour of day when the surge ends.
    pub surge_end_hour: u32,
    /// Weekend traffic multiplier (≤1).
    pub weekend_factor: f64,
}

impl Default for DiurnalProfile {
    fn default() -> Self {
        // Tuned to the paper's production service: surge 8–11 AM, ~42M
        // queries/day at the default production rate.
        Self {
            base_rps: 210.0,
            peak_rps: 1_580.0,
            surge_start_hour: 8,
            surge_end_hour: 11,
            weekend_factor: 0.55,
        }
    }
}

impl ArrivalProcess {
    /// Instantaneous rate (requests/second) at sim time `t`.
    pub fn rate_at(&self, t: SimTime) -> f64 {
        match self {
            ArrivalProcess::Constant(rps) => *rps,
            ArrivalProcess::Diurnal(p) => {
                let ms_of_day = t % MILLIS_PER_DAY;
                let hour = (ms_of_day / MILLIS_PER_HOUR) as f64
                    + (ms_of_day % MILLIS_PER_HOUR) as f64 / MILLIS_PER_HOUR as f64;
                let day = (t / MILLIS_PER_DAY) % 7;
                let weekend = day >= 5;

                // Smooth daily curve: a broad sinusoid with its crest inside
                // the surge window plus a sharper surge bump.
                let daily = 0.5 + 0.5 * ((hour - 13.0) / 24.0 * 2.0 * std::f64::consts::PI).cos();
                let surge_mid = (p.surge_start_hour as f64 + p.surge_end_hour as f64) / 2.0;
                let surge_halfwidth =
                    ((p.surge_end_hour as f64 - p.surge_start_hour as f64) / 2.0).max(0.5);
                let d = (hour - surge_mid) / surge_halfwidth;
                let surge = (-d * d).exp();

                let mut rate =
                    p.base_rps + (p.peak_rps - p.base_rps) * (0.35 * daily + 0.65 * surge);
                if weekend {
                    rate *= p.weekend_factor;
                }
                rate.max(0.0)
            }
        }
    }

    /// Poisson-sampled number of arrivals in `[t, t + dt_ms)`.
    pub fn sample_count(&self, rng: &mut dyn RngCore, t: SimTime, dt_ms: u64) -> u64 {
        let lambda = self.rate_at(t) * dt_ms as f64 / 1000.0;
        poisson(rng, lambda)
    }
}

use autodbaas_snapshot::{snap_struct, Snap, SnapError, SnapReader, SnapWriter};

snap_struct!(DiurnalProfile {
    base_rps,
    peak_rps,
    surge_start_hour,
    surge_end_hour,
    weekend_factor
});

impl Snap for ArrivalProcess {
    fn encode(&self, w: &mut SnapWriter) {
        match self {
            ArrivalProcess::Constant(rps) => {
                w.put_u16(0);
                rps.encode(w);
            }
            ArrivalProcess::Diurnal(p) => {
                w.put_u16(1);
                p.encode(w);
            }
        }
    }
    fn decode(r: &mut SnapReader) -> Result<Self, SnapError> {
        match r.get_u16()? {
            0 => Ok(ArrivalProcess::Constant(f64::decode(r)?)),
            1 => Ok(ArrivalProcess::Diurnal(DiurnalProfile::decode(r)?)),
            _ => Err(SnapError::Malformed("ArrivalProcess tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constant_rate_is_flat() {
        let a = ArrivalProcess::Constant(100.0);
        assert_eq!(a.rate_at(0), 100.0);
        assert_eq!(a.rate_at(MILLIS_PER_DAY * 3), 100.0);
    }

    #[test]
    fn diurnal_surges_in_the_morning_window() {
        let a = ArrivalProcess::Diurnal(DiurnalProfile::default());
        let at_hour = |h: u64| a.rate_at(h * MILLIS_PER_HOUR);
        let surge = at_hour(9); // inside 8–11
        let night = at_hour(3);
        assert!(surge > night * 2.0, "surge {surge} vs night {night}");
    }

    #[test]
    fn diurnal_peak_is_in_surge_window() {
        let a = ArrivalProcess::Diurnal(DiurnalProfile::default());
        let mut best_hour = 0;
        let mut best = 0.0;
        for h in 0..24u64 {
            let r = a.rate_at(h * MILLIS_PER_HOUR + MILLIS_PER_HOUR / 2);
            if r > best {
                best = r;
                best_hour = h;
            }
        }
        assert!((8..=11).contains(&best_hour), "peak at hour {best_hour}");
    }

    #[test]
    fn weekend_reduces_traffic() {
        let a = ArrivalProcess::Diurnal(DiurnalProfile::default());
        let weekday = a.rate_at(9 * MILLIS_PER_HOUR); // day 0
        let weekend = a.rate_at(5 * MILLIS_PER_DAY + 9 * MILLIS_PER_HOUR); // day 5
        assert!(weekend < weekday);
    }

    #[test]
    fn sampled_counts_track_rate() {
        let a = ArrivalProcess::Constant(500.0);
        let mut rng = StdRng::seed_from_u64(1);
        let total: u64 = (0..100)
            .map(|i| a.sample_count(&mut rng, i * 1000, 1000))
            .sum();
        let mean = total as f64 / 100.0;
        assert!((mean - 500.0).abs() < 25.0, "mean {mean}");
    }

    #[test]
    fn daily_total_close_to_paper_production_volume() {
        // The paper's trace averages 42.13M queries/day.
        let a = ArrivalProcess::Diurnal(DiurnalProfile::default());
        let mut total = 0.0;
        let step = MILLIS_PER_HOUR / 4;
        let mut t = 0;
        while t < MILLIS_PER_DAY {
            total += a.rate_at(t) * (step as f64 / 1000.0);
            t += step;
        }
        assert!(
            (25e6..70e6).contains(&total),
            "daily volume {total} out of the plausible band"
        );
    }
}
