//! The OLTP-Bench workloads the paper evaluates with (§5): TPCC, YCSB,
//! Wikipedia, Twitter, plus TPCH and CH-benCHmark used in Fig. 2 and the
//! Fig. 14 workload-switch experiment.
//!
//! Memory footprints follow the paper's Fig. 2 measurements: TPCC's sorts
//! use ~0.5 MB of working memory; YCSB and Wikipedia use none ("due to
//! absence of complex queries like aggregate, joins, and order-by");
//! analytic workloads demand hundreds of MB and are what actually throttles
//! memory knobs.

use crate::arrival::ArrivalProcess;
use crate::mix::{MixWorkload, TemplateSpec};
use autodbaas_simdb::{Catalog, QueryKind};

const KIB: u64 = 1024;
const MIB: u64 = 1024 * 1024;
const GIB: u64 = 1024 * 1024 * 1024;

fn gb(x: f64) -> u64 {
    (x * GIB as f64) as u64
}

/// TPC-C at roughly `db_gb` gigabytes (the paper's scale factor 18 ≈ 21 GB;
/// Fig. 10 runs 26 GB at 3300 requests/second).
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
///
/// let wl = autodbaas_workload::tpcc(1.0);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let q = wl.next_query(&mut rng);
/// assert!(q.table < wl.catalog().len() as u32);
/// ```
pub fn tpcc(db_gb: f64) -> MixWorkload {
    let catalog = Catalog::synthetic(9, gb(db_gb), 150, 2);
    // TPCC exhibits strong temporal locality: transactions hammer the
    // newest orders/districts, so its hot set stays small.
    const TPCC_LOCALITY: f64 = 6.0;
    let t = vec![
        // NewOrder: a multi-insert transaction.
        TemplateSpec::write(45.0, QueryKind::Insert, (0, 8), (10, 40), (5, 15))
            .with_locality(TPCC_LOCALITY),
        // Payment: small update.
        TemplateSpec::write(43.0, QueryKind::Update, (0, 8), (1, 4), (1, 3))
            .with_locality(TPCC_LOCALITY),
        // OrderStatus: short sorted read (the ~0.5 MB work_mem user).
        TemplateSpec::read(4.0, QueryKind::OrderBy, (0, 8), (5, 30))
            .with_sort(200 * KIB, 700 * KIB)
            .with_locality(TPCC_LOCALITY),
        // Delivery: batched updates.
        TemplateSpec::write(4.0, QueryKind::Update, (0, 8), (50, 150), (20, 60))
            .with_locality(TPCC_LOCALITY),
        // StockLevel: join with a small hash table.
        TemplateSpec::read(4.0, QueryKind::Join, (0, 8), (100, 400))
            .with_sort(200 * KIB, 600 * KIB)
            .with_locality(4.0),
    ];
    MixWorkload::new("tpcc", t, catalog, ArrivalProcess::Constant(3_300.0))
}

/// YCSB (workload-A-like 50/50 point read/update) at `db_gb`; the paper
/// runs 20 GB at 5000 requests/second. No working-memory demand at all.
pub fn ycsb(db_gb: f64) -> MixWorkload {
    let catalog = Catalog::synthetic(1, gb(db_gb), 1_100, 1);
    let t = vec![
        TemplateSpec::read(50.0, QueryKind::PointSelect, (0, 0), (1, 1)),
        TemplateSpec::write(50.0, QueryKind::Update, (0, 0), (1, 1), (1, 1)),
    ];
    MixWorkload::new("ycsb", t, catalog, ArrivalProcess::Constant(5_000.0))
}

/// Wikipedia at `db_gb`; the paper runs 12 GB at 1000 requests/second.
pub fn wikipedia(db_gb: f64) -> MixWorkload {
    let catalog = Catalog::synthetic(5, gb(db_gb), 600, 2);
    // Wikipedia reads follow a long tail: most articles are cold, so the
    // effective locality is near-uniform.
    let t = vec![
        // Article fetch by title.
        TemplateSpec::read(68.0, QueryKind::PointSelect, (0, 4), (1, 3)).with_locality(1.2),
        // Revision-history page: a modest range read, no sort memory (the
        // history index already provides order).
        TemplateSpec::read(22.0, QueryKind::RangeSelect, (0, 4), (20, 200)).with_locality(1.2),
        // Page edit.
        TemplateSpec::write(8.0, QueryKind::Update, (0, 4), (1, 4), (1, 3)).with_locality(1.5),
        // New page / new revision rows.
        TemplateSpec::write(2.0, QueryKind::Insert, (0, 4), (1, 2), (1, 4)).with_locality(4.0),
    ];
    MixWorkload::new("wikipedia", t, catalog, ArrivalProcess::Constant(1_000.0))
}

/// Twitter at `db_gb`; the paper runs 22 GB at 10000 requests/second.
pub fn twitter(db_gb: f64) -> MixWorkload {
    let catalog = Catalog::synthetic(4, gb(db_gb), 300, 2);
    let t = vec![
        TemplateSpec::read(55.0, QueryKind::PointSelect, (0, 3), (1, 2)).with_locality(2.5),
        // Timeline / follower list: skewed range reads.
        TemplateSpec::read(25.0, QueryKind::RangeSelect, (0, 3), (20, 120)).with_locality(2.0),
        // Who-follows joins with tiny hash tables.
        TemplateSpec::read(8.0, QueryKind::Join, (0, 3), (50, 300))
            .with_sort(64 * KIB, 256 * KIB)
            .with_locality(2.0),
        TemplateSpec::write(12.0, QueryKind::Insert, (0, 3), (1, 1), (1, 2)).with_locality(5.0),
    ];
    MixWorkload::new("twitter", t, catalog, ArrivalProcess::Constant(10_000.0))
}

/// TPC-H-style analytics at `db_gb` (Fig. 14 loads 24 GB). Large
/// parallelizable scans with heavy sort/aggregate memory.
pub fn tpch(db_gb: f64) -> MixWorkload {
    let catalog = Catalog::synthetic(8, gb(db_gb), 180, 1);
    let t = vec![
        TemplateSpec::read(35.0, QueryKind::Aggregate, (0, 7), (100_000, 3_000_000))
            .with_sort(20 * MIB, 300 * MIB)
            .parallel(),
        TemplateSpec::read(30.0, QueryKind::Join, (0, 7), (200_000, 5_000_000))
            .with_sort(50 * MIB, 500 * MIB)
            .parallel(),
        TemplateSpec::read(20.0, QueryKind::OrderBy, (0, 7), (50_000, 1_000_000))
            .with_sort(10 * MIB, 200 * MIB)
            .parallel(),
        TemplateSpec::read(15.0, QueryKind::RangeSelect, (0, 7), (10_000, 500_000)).parallel(),
    ];
    MixWorkload::new("tpch", t, catalog, ArrivalProcess::Constant(8.0))
}

/// CH-benCHmark: TPCC transactions with TPCH-style analytics mixed in —
/// the hybrid Fig. 2 measures working memory for.
pub fn chbench(db_gb: f64) -> MixWorkload {
    let catalog = Catalog::synthetic(17, gb(db_gb), 160, 2);
    let t = vec![
        TemplateSpec::write(32.0, QueryKind::Insert, (0, 16), (10, 40), (5, 15)),
        TemplateSpec::write(30.0, QueryKind::Update, (0, 16), (1, 4), (1, 3)),
        TemplateSpec::read(6.0, QueryKind::OrderBy, (0, 16), (5, 30))
            .with_sort(200 * KIB, 700 * KIB),
        // The analytic side.
        TemplateSpec::read(16.0, QueryKind::Aggregate, (0, 16), (50_000, 1_000_000))
            .with_sort(5 * MIB, 120 * MIB)
            .parallel(),
        TemplateSpec::read(16.0, QueryKind::Join, (0, 16), (100_000, 2_000_000))
            .with_sort(10 * MIB, 200 * MIB)
            .parallel(),
    ];
    MixWorkload::new("chbench", t, catalog, ArrivalProcess::Constant(800.0))
}

/// The standard workloads by name, at the §5 database sizes — convenience
/// for harnesses that sweep all of them.
pub fn by_name(name: &str) -> Option<MixWorkload> {
    match name {
        "tpcc" => Some(tpcc(26.0)),
        "ycsb" => Some(ycsb(20.0)),
        "wikipedia" => Some(wikipedia(12.0)),
        "twitter" => Some(twitter(22.0)),
        "tpch" => Some(tpch(24.0)),
        "chbench" => Some(chbench(21.0)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_sorts(w: &MixWorkload, n: usize) -> (u64, u64) {
        let mut rng = StdRng::seed_from_u64(11);
        let mut max_sort = 0;
        let mut with_sort = 0;
        for _ in 0..n {
            let q = w.next_query(&mut rng);
            if q.sort_bytes > 0 {
                with_sort += 1;
            }
            max_sort = max_sort.max(q.sort_bytes);
        }
        (with_sort, max_sort)
    }

    #[test]
    fn tpcc_memory_footprint_matches_fig2() {
        let w = tpcc(21.0);
        let (_, max_sort) = sample_sorts(&w, 5_000);
        // ~0.5 MB, never more than ~0.7 MB.
        assert!(max_sort <= 700 * KIB + 1, "tpcc max sort {max_sort}");
        assert!(max_sort >= 200 * KIB, "tpcc sorts too small {max_sort}");
    }

    #[test]
    fn ycsb_and_wikipedia_use_no_working_memory() {
        for w in [ycsb(20.0), wikipedia(12.0)] {
            let (with_sort, _) = sample_sorts(&w, 3_000);
            assert_eq!(with_sort, 0, "{} must not demand work_mem", w.name());
        }
    }

    #[test]
    fn tpch_demands_hundreds_of_megabytes() {
        let w = tpch(24.0);
        let (_, max_sort) = sample_sorts(&w, 3_000);
        assert!(max_sort > 100 * MIB, "tpch max sort {max_sort}");
    }

    #[test]
    fn catalog_sizes_match_requested_gb() {
        for (w, gb) in [
            (tpcc(26.0), 26.0),
            (ycsb(20.0), 20.0),
            (wikipedia(12.0), 12.0),
            (twitter(22.0), 22.0),
        ] {
            let actual = w.catalog().total_bytes() as f64 / GIB as f64;
            assert!(
                (actual - gb).abs() / gb < 0.05,
                "{}: {actual} GB vs {gb}",
                w.name()
            );
        }
    }

    #[test]
    fn tpcc_is_write_heavy_ycsb_is_mixed() {
        let mut rng = StdRng::seed_from_u64(12);
        let tpcc_wl = tpcc(5.0);
        let tp = (0..4_000)
            .filter(|_| tpcc_wl.next_query(&mut rng).kind.is_write())
            .count();
        let ycsb_wl = ycsb(5.0);
        let yc = (0..4_000)
            .filter(|_| ycsb_wl.next_query(&mut rng).kind.is_write())
            .count();
        assert!(tp as f64 / 4000.0 > 0.85, "tpcc write fraction {}", tp);
        assert!(
            (yc as f64 / 4000.0 - 0.5).abs() < 0.05,
            "ycsb write fraction {}",
            yc
        );
    }

    #[test]
    fn by_name_covers_all_and_rejects_unknown() {
        for n in ["tpcc", "ycsb", "wikipedia", "twitter", "tpch", "chbench"] {
            assert!(by_name(n).is_some(), "missing {n}");
        }
        assert!(by_name("sysbench").is_none());
    }

    #[test]
    fn default_rates_match_paper() {
        assert!(
            matches!(tpcc(26.0).default_arrival(), ArrivalProcess::Constant(r) if *r == 3_300.0)
        );
        assert!(
            matches!(ycsb(20.0).default_arrival(), ArrivalProcess::Constant(r) if *r == 5_000.0)
        );
        assert!(
            matches!(twitter(22.0).default_arrival(), ArrivalProcess::Constant(r) if *r == 10_000.0)
        );
        assert!(
            matches!(wikipedia(12.0).default_arrival(), ArrivalProcess::Constant(r) if *r == 1_000.0)
        );
    }
}
