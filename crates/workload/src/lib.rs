//! Workload generators for the AutoDBaaS reproduction.
//!
//! The paper drives its evaluation with OLTP-Bench workloads (TPCC, YCSB,
//! Wikipedia, Twitter; TPCH and CH-benCHmark for the memory table), an
//! adulterated TPCC that injects the queries production bottlenecks came
//! from (§3.1), and a 33-day proprietary customer trace (§5). The trace is
//! unavailable, so [`production()`] synthesises one matching every statistic
//! the paper publishes — table count, size, per-kind daily volumes, and the
//! diurnal arrival shape of Fig. 8.

pub mod adulterate;
pub mod arrival;
pub mod benchmarks;
pub mod mix;
pub mod production;
pub mod trace;

pub use adulterate::AdulteratedWorkload;
pub use arrival::{ArrivalProcess, DiurnalProfile};
pub use benchmarks::{by_name, chbench, tpcc, tpch, twitter, wikipedia, ycsb};
pub use mix::{MixWorkload, TemplateSpec};
pub use production::{production, TRACE_DAYS};
pub use trace::{Trace, TraceEvent, TraceParseError, TraceReplay};

use autodbaas_simdb::QueryProfile;
use rand::RngCore;

/// Anything that can produce a stream of queries. Both plain mixes and
/// adulterated workloads implement this, so harness code is generic.
pub trait QuerySource {
    /// Draw the next query.
    fn next_query(&self, rng: &mut dyn RngCore) -> QueryProfile;
    /// Name for reports.
    fn source_name(&self) -> &str;
    /// Clone into a snapshotable descriptor (see [`WorkloadSnap`]).
    fn to_snap(&self) -> WorkloadSnap;
}

impl QuerySource for MixWorkload {
    fn next_query(&self, rng: &mut dyn RngCore) -> QueryProfile {
        MixWorkload::next_query(self, rng)
    }
    fn source_name(&self) -> &str {
        self.name()
    }
    fn to_snap(&self) -> WorkloadSnap {
        WorkloadSnap::Mix(self.clone())
    }
}

impl QuerySource for AdulteratedWorkload {
    fn next_query(&self, rng: &mut dyn RngCore) -> QueryProfile {
        AdulteratedWorkload::next_query(self, rng)
    }
    fn source_name(&self) -> &str {
        self.base().name()
    }
    fn to_snap(&self) -> WorkloadSnap {
        WorkloadSnap::Adulterated(self.clone())
    }
}

use autodbaas_snapshot::{Snap, SnapError, SnapReader, SnapWriter};

/// Concrete, snapshotable form of a boxed [`QuerySource`]. Each source type
/// clones itself into a variant here; restore turns it back into a box.
#[derive(Debug, Clone)]
pub enum WorkloadSnap {
    /// A plain mix.
    Mix(MixWorkload),
    /// A mix with probabilistic injections.
    Adulterated(AdulteratedWorkload),
}

impl WorkloadSnap {
    /// Rebuild the boxed source this snapshot was taken from.
    pub fn into_source(self) -> Box<dyn QuerySource + Send> {
        match self {
            WorkloadSnap::Mix(m) => Box::new(m),
            WorkloadSnap::Adulterated(a) => Box::new(a),
        }
    }
}

impl Snap for WorkloadSnap {
    fn encode(&self, w: &mut SnapWriter) {
        match self {
            WorkloadSnap::Mix(m) => {
                w.put_u16(0);
                m.encode(w);
            }
            WorkloadSnap::Adulterated(a) => {
                w.put_u16(1);
                a.encode(w);
            }
        }
    }
    fn decode(r: &mut SnapReader) -> Result<Self, SnapError> {
        match r.get_u16()? {
            0 => Ok(WorkloadSnap::Mix(Snap::decode(r)?)),
            1 => Ok(WorkloadSnap::Adulterated(Snap::decode(r)?)),
            _ => Err(SnapError::Malformed("WorkloadSnap tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn query_source_is_object_safe() {
        let sources: Vec<Box<dyn QuerySource>> = vec![
            Box::new(tpcc(1.0)),
            Box::new(AdulteratedWorkload::new(tpcc(1.0), 0.5)),
        ];
        let mut rng = StdRng::seed_from_u64(1);
        for s in &sources {
            let _ = s.next_query(&mut rng);
            assert_eq!(s.source_name(), "tpcc");
        }
    }
}
