//! Workload generators for the AutoDBaaS reproduction.
//!
//! The paper drives its evaluation with OLTP-Bench workloads (TPCC, YCSB,
//! Wikipedia, Twitter; TPCH and CH-benCHmark for the memory table), an
//! adulterated TPCC that injects the queries production bottlenecks came
//! from (§3.1), and a 33-day proprietary customer trace (§5). The trace is
//! unavailable, so [`production()`] synthesises one matching every statistic
//! the paper publishes — table count, size, per-kind daily volumes, and the
//! diurnal arrival shape of Fig. 8.

pub mod adulterate;
pub mod arrival;
pub mod benchmarks;
pub mod mix;
pub mod production;
pub mod trace;

pub use adulterate::AdulteratedWorkload;
pub use arrival::{ArrivalProcess, DiurnalProfile};
pub use benchmarks::{by_name, chbench, tpcc, tpch, twitter, wikipedia, ycsb};
pub use mix::{MixWorkload, TemplateSpec};
pub use production::production;
pub use trace::{Trace, TraceEvent, TraceParseError, TraceReplay};

use autodbaas_simdb::QueryProfile;
use rand::RngCore;

/// Anything that can produce a stream of queries. Both plain mixes and
/// adulterated workloads implement this, so harness code is generic.
pub trait QuerySource {
    /// Draw the next query.
    fn next_query(&self, rng: &mut dyn RngCore) -> QueryProfile;
    /// Name for reports.
    fn source_name(&self) -> &str;
}

impl QuerySource for MixWorkload {
    fn next_query(&self, rng: &mut dyn RngCore) -> QueryProfile {
        MixWorkload::next_query(self, rng)
    }
    fn source_name(&self) -> &str {
        self.name()
    }
}

impl QuerySource for AdulteratedWorkload {
    fn next_query(&self, rng: &mut dyn RngCore) -> QueryProfile {
        AdulteratedWorkload::next_query(self, rng)
    }
    fn source_name(&self) -> &str {
        self.base().name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn query_source_is_object_safe() {
        let sources: Vec<Box<dyn QuerySource>> = vec![
            Box::new(tpcc(1.0)),
            Box::new(AdulteratedWorkload::new(tpcc(1.0), 0.5)),
        ];
        let mut rng = StdRng::seed_from_u64(1);
        for s in &sources {
            let _ = s.next_query(&mut rng);
            assert_eq!(s.source_name(), "tpcc");
        }
    }
}
