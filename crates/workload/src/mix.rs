//! Data-driven workload mixes.
//!
//! Every benchmark (TPCC, YCSB, …) reduces to a weighted set of
//! [`TemplateSpec`]s — query shapes with parameter ranges — plus a catalog
//! layout and a default request rate. [`MixWorkload`] samples from the mix;
//! literals vary per instance so the TDE's templating has realistic input.

use crate::arrival::ArrivalProcess;
use autodbaas_simdb::{Catalog, QueryKind, QueryProfile};
use autodbaas_telemetry::dist::{categorical, Zipf};
use rand::{Rng, RngCore};

/// One query shape with parameter ranges. Ranges are sampled log-uniformly
/// so row counts span orders of magnitude like real template instances.
#[derive(Debug, Clone)]
pub struct TemplateSpec {
    /// Relative frequency in the mix.
    pub weight: f64,
    /// Statement kind.
    pub kind: QueryKind,
    /// Inclusive range of table ids this template targets.
    pub tables: (u32, u32),
    /// Rows examined, `[lo, hi]`.
    pub rows: (u64, u64),
    /// Rows written, `[lo, hi]`.
    pub writes: (u64, u64),
    /// Sort/hash work-area demand in bytes, `[lo, hi]`.
    pub sort_bytes: (u64, u64),
    /// Maintenance work-area demand in bytes, `[lo, hi]`.
    pub maintenance_bytes: (u64, u64),
    /// Temp-table demand in bytes, `[lo, hi]`.
    pub temp_bytes: (u64, u64),
    /// Whether the planner may parallelise it.
    pub parallelizable: bool,
    /// Access-locality exponent (see `QueryProfile::locality`).
    pub locality: f64,
}

impl TemplateSpec {
    /// A read template with everything zeroed; builders chain from here.
    pub fn read(weight: f64, kind: QueryKind, tables: (u32, u32), rows: (u64, u64)) -> Self {
        Self {
            weight,
            kind,
            tables,
            rows,
            writes: (0, 0),
            sort_bytes: (0, 0),
            maintenance_bytes: (0, 0),
            temp_bytes: (0, 0),
            parallelizable: false,
            locality: 2.0,
        }
    }

    /// A write template.
    pub fn write(
        weight: f64,
        kind: QueryKind,
        tables: (u32, u32),
        rows: (u64, u64),
        writes: (u64, u64),
    ) -> Self {
        let mut t = Self::read(weight, kind, tables, rows);
        t.writes = writes;
        t
    }

    /// Set the sort-memory demand range.
    pub fn with_sort(mut self, lo: u64, hi: u64) -> Self {
        self.sort_bytes = (lo, hi);
        self
    }

    /// Set the maintenance-memory demand range.
    pub fn with_maintenance(mut self, lo: u64, hi: u64) -> Self {
        self.maintenance_bytes = (lo, hi);
        self
    }

    /// Set the temp-table demand range.
    pub fn with_temp(mut self, lo: u64, hi: u64) -> Self {
        self.temp_bytes = (lo, hi);
        self
    }

    /// Mark parallelizable.
    pub fn parallel(mut self) -> Self {
        self.parallelizable = true;
        self
    }

    /// Set the access-locality exponent.
    pub fn with_locality(mut self, locality: f64) -> Self {
        self.locality = locality;
        self
    }
}

fn log_uniform(rng: &mut dyn RngCore, lo: u64, hi: u64) -> u64 {
    if hi <= lo {
        return lo;
    }
    let (l, h) = ((lo.max(1)) as f64, hi as f64);
    let x = (l.ln() + rng.gen::<f64>() * (h.ln() - l.ln())).exp();
    (x as u64).clamp(lo, hi)
}

/// A sampled workload: weighted templates over a catalog.
#[derive(Debug, Clone)]
pub struct MixWorkload {
    name: &'static str,
    templates: Vec<TemplateSpec>,
    weights: Vec<f64>,
    table_zipf: Zipf,
    table_offset: u32,
    catalog: Catalog,
    default_arrival: ArrivalProcess,
}

impl MixWorkload {
    /// Assemble a workload. `catalog` is the dataset this mix runs against;
    /// `default_arrival` is the paper's request rate for it.
    pub fn new(
        name: &'static str,
        templates: Vec<TemplateSpec>,
        catalog: Catalog,
        default_arrival: ArrivalProcess,
    ) -> Self {
        assert!(
            !templates.is_empty(),
            "a workload needs at least one template"
        );
        let weights = templates.iter().map(|t| t.weight).collect();
        let n_tables = catalog.len().max(1);
        Self {
            name,
            templates,
            weights,
            table_zipf: Zipf::new(n_tables, 0.9),
            table_offset: 0,
            catalog,
            default_arrival,
        }
    }

    /// Workload name (for reports).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The dataset this workload runs against.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The paper's request rate for this workload.
    pub fn default_arrival(&self) -> &ArrivalProcess {
        &self.default_arrival
    }

    /// Rebase all table ids by `offset` — used when several datasets are
    /// loaded into one instance (the Fig. 14 workload-switch experiment).
    pub fn rebase_tables(&mut self, offset: u32) {
        self.table_offset = offset;
    }

    /// Template list (inspection / adulteration).
    pub fn templates(&self) -> &[TemplateSpec] {
        &self.templates
    }

    /// Draw the next query.
    pub fn next_query(&self, rng: &mut dyn RngCore) -> QueryProfile {
        let idx = categorical(rng, &self.weights);
        self.instantiate(&self.templates[idx], rng)
    }

    /// Instantiate a specific template (used by the adulterator).
    pub fn instantiate(&self, t: &TemplateSpec, rng: &mut dyn RngCore) -> QueryProfile {
        // Pick a table: zipf over the template's table span, so the hot
        // tables stay hot.
        let span = t.tables.1.saturating_sub(t.tables.0) as usize + 1;
        let pick = if span <= 1 {
            t.tables.0
        } else {
            let z = self.table_zipf.sample(rng) % span;
            t.tables.0 + z as u32
        };
        let mut q = QueryProfile::new(t.kind, pick + self.table_offset);
        q.rows_examined = log_uniform(rng, t.rows.0, t.rows.1);
        q.rows_written = log_uniform(rng, t.writes.0, t.writes.1);
        q.sort_bytes = log_uniform(rng, t.sort_bytes.0, t.sort_bytes.1);
        q.maintenance_bytes = log_uniform(rng, t.maintenance_bytes.0, t.maintenance_bytes.1);
        q.temp_bytes = log_uniform(rng, t.temp_bytes.0, t.temp_bytes.1);
        q.parallelizable = t.parallelizable;
        q.locality = t.locality;
        q.literals = [
            rng.gen::<i64>().rem_euclid(1_000_000),
            rng.gen::<i64>().rem_euclid(1_000),
        ];
        q
    }
}

use autodbaas_snapshot::{snap_struct, Snap, SnapError, SnapReader, SnapWriter};

snap_struct!(TemplateSpec {
    weight,
    kind,
    tables,
    rows,
    writes,
    sort_bytes,
    maintenance_bytes,
    temp_bytes,
    parallelizable,
    locality
});

impl Snap for MixWorkload {
    fn encode(&self, w: &mut SnapWriter) {
        w.put_str(self.name);
        self.templates.encode(w);
        self.weights.encode(w);
        self.table_zipf.encode(w);
        self.table_offset.encode(w);
        self.catalog.encode(w);
        self.default_arrival.encode(w);
    }
    fn decode(r: &mut SnapReader) -> Result<Self, SnapError> {
        // Workload names are a small closed set; the telemetry interner
        // restores the `&'static str` without leaking per-decode.
        let name = autodbaas_telemetry::intern_kind(r.get_str()?);
        Ok(Self {
            name,
            templates: Snap::decode(r)?,
            weights: Snap::decode(r)?,
            table_zipf: Snap::decode(r)?,
            table_offset: Snap::decode(r)?,
            catalog: Snap::decode(r)?,
            default_arrival: Snap::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> MixWorkload {
        let catalog = Catalog::synthetic(4, 10_000_000, 100, 1);
        MixWorkload::new(
            "toy",
            vec![
                TemplateSpec::read(0.8, QueryKind::PointSelect, (0, 3), (1, 10)),
                TemplateSpec::write(0.2, QueryKind::Insert, (0, 3), (1, 1), (1, 5)),
            ],
            catalog,
            ArrivalProcess::Constant(100.0),
        )
    }

    #[test]
    fn mix_roughly_matches_weights() {
        let w = toy();
        let mut rng = StdRng::seed_from_u64(3);
        let mut reads = 0;
        for _ in 0..5_000 {
            if w.next_query(&mut rng).kind == QueryKind::PointSelect {
                reads += 1;
            }
        }
        let frac = reads as f64 / 5_000.0;
        assert!((frac - 0.8).abs() < 0.03, "read fraction {frac}");
    }

    #[test]
    fn sampled_rows_respect_ranges() {
        let w = toy();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1_000 {
            let q = w.next_query(&mut rng);
            assert!(q.rows_examined >= 1 && q.rows_examined <= 10);
            assert!(q.table < 4);
        }
    }

    #[test]
    fn rebase_shifts_tables() {
        let mut w = toy();
        w.rebase_tables(100);
        let mut rng = StdRng::seed_from_u64(5);
        let q = w.next_query(&mut rng);
        assert!(q.table >= 100 && q.table < 104);
    }

    #[test]
    fn literals_vary_between_instances() {
        let w = toy();
        let mut rng = StdRng::seed_from_u64(6);
        let a = w.next_query(&mut rng);
        let b = w.next_query(&mut rng);
        assert_ne!(a.literals, b.literals);
    }

    #[test]
    fn log_uniform_respects_bounds_and_degenerate_ranges() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let v = log_uniform(&mut rng, 10, 1000);
            assert!((10..=1000).contains(&v));
        }
        assert_eq!(log_uniform(&mut rng, 5, 5), 5);
        assert_eq!(log_uniform(&mut rng, 0, 0), 0);
    }

    #[test]
    fn log_uniform_is_log_scaled() {
        // Over [1, 1M], the geometric mean should be ~1000 (not ~500k).
        let mut rng = StdRng::seed_from_u64(8);
        let n = 20_000;
        let mean_log: f64 = (0..n)
            .map(|_| (log_uniform(&mut rng, 1, 1_000_000).max(1) as f64).ln())
            .sum::<f64>()
            / n as f64;
        let geo = mean_log.exp();
        assert!((300.0..3000.0).contains(&geo), "geometric mean {geo}");
    }
}
