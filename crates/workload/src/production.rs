//! Synthetic production customer workload (§5).
//!
//! The paper captures 33 days of a real customer service: 132 tables, 59 GB,
//! an average of 42.13M queries/day split into 41M inserts, 71K selects,
//! 34K updates and 0.8K deletes, with the diurnal arrival shape of Fig. 8.
//! This module generates a statistically matching trace. The select slice
//! carries a tail of analytic queries (joins/aggregations with real sort
//! demand) — the production bottlenecks §3.1 reports came from somewhere.

use crate::arrival::{ArrivalProcess, DiurnalProfile};
use crate::mix::{MixWorkload, TemplateSpec};
use autodbaas_simdb::{Catalog, QueryKind};

const KIB: u64 = 1024;
const MIB: u64 = 1024 * 1024;
const GIB: u64 = 1024 * 1024 * 1024;

/// Days of activity in the paper's capture.
pub const TRACE_DAYS: u64 = 33;

/// Build the production workload. The returned [`MixWorkload`] samples the
/// query mix; its default arrival process is the Fig. 8 diurnal curve.
pub fn production() -> MixWorkload {
    // 132 tables, 59 GB.
    let catalog = Catalog::synthetic(132, 59 * GIB, 220, 2);
    let span = (0u32, 131u32);

    // Daily counts from §5, used directly as weights.
    let inserts = 41_000_000.0;
    let selects = 71_000.0;
    let updates = 34_000.0;
    let deletes = 800.0;

    let t = vec![
        // The firehose: telemetry-style single-row inserts (append-only ->
        // extremely hot tail pages).
        TemplateSpec::write(inserts, QueryKind::Insert, span, (1, 2), (1, 3)).with_locality(8.0),
        // Simple operational lookups (most of the select volume).
        TemplateSpec::read(selects * 0.70, QueryKind::PointSelect, span, (1, 10)),
        TemplateSpec::read(selects * 0.15, QueryKind::RangeSelect, span, (50, 5_000)),
        // Reporting queries: joins and aggregations with real memory needs.
        TemplateSpec::read(selects * 0.09, QueryKind::Join, span, (10_000, 500_000))
            .with_sort(2 * MIB, 80 * MIB)
            .parallel(),
        TemplateSpec::read(
            selects * 0.05,
            QueryKind::Aggregate,
            span,
            (20_000, 800_000),
        )
        .with_sort(4 * MIB, 120 * MIB)
        .parallel(),
        TemplateSpec::read(selects * 0.01, QueryKind::OrderBy, span, (5_000, 100_000))
            .with_sort(MIB, 40 * MIB),
        // Updates and rare deletes.
        TemplateSpec::write(updates, QueryKind::Update, span, (1, 20), (1, 10)),
        TemplateSpec::write(
            deletes,
            QueryKind::Delete,
            span,
            (100, 10_000),
            (100, 10_000),
        )
        .with_maintenance(512 * KIB, 16 * MIB),
    ];
    MixWorkload::new(
        "production",
        t,
        catalog,
        ArrivalProcess::Diurnal(DiurnalProfile::default()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use autodbaas_telemetry::MILLIS_PER_HOUR;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn catalog_matches_paper_shape() {
        let w = production();
        assert_eq!(w.catalog().len(), 132);
        let size = w.catalog().total_bytes() as f64 / GIB as f64;
        assert!((size - 59.0).abs() < 1.0, "size {size} GB");
    }

    #[test]
    fn mix_is_insert_dominated() {
        let w = production();
        let mut rng = StdRng::seed_from_u64(31);
        let n = 20_000;
        let inserts = (0..n)
            .filter(|_| w.next_query(&mut rng).kind == QueryKind::Insert)
            .count();
        let frac = inserts as f64 / n as f64;
        // 41M of 41.1M daily queries are inserts ⇒ ≥99%.
        assert!(frac > 0.985, "insert fraction {frac}");
    }

    #[test]
    fn selects_include_analytic_tail() {
        let w = production();
        let mut rng = StdRng::seed_from_u64(32);
        // Sample a lot: selects are rare.
        let mut saw_heavy_sort = false;
        for _ in 0..400_000 {
            let q = w.next_query(&mut rng);
            if q.sort_bytes > 10 * MIB {
                saw_heavy_sort = true;
                break;
            }
        }
        assert!(saw_heavy_sort, "production trace lost its analytic tail");
    }

    #[test]
    fn arrival_is_diurnal() {
        let w = production();
        let surge = w.default_arrival().rate_at(9 * MILLIS_PER_HOUR);
        let night = w.default_arrival().rate_at(3 * MILLIS_PER_HOUR);
        assert!(surge > night * 2.0);
    }
}
