//! Workload adulteration (§3.1).
//!
//! TPCC alone only ever throttles `work_mem` (its sorts need ~0.5 MB). To
//! exercise every knob class the paper injects, with probability `p`, the
//! queries it saw cause production bottlenecks:
//!
//! * complex sorts/aggregations → `work_mem` / `sort_buffer_size` throttles,
//! * create/delete indexes → `maintenance_work_mem` / `key_buffer_size`,
//! * bulk deletes → `maintenance_work_mem`,
//! * temp tables + aggregation over them → `temp_buffers` / `tmp_table_size`.
//!
//! Figs. 3 and 4 run this at p = 0.8 and p = 0.5 respectively.

use crate::mix::{MixWorkload, TemplateSpec};
use autodbaas_simdb::{QueryKind, QueryProfile};
use autodbaas_telemetry::dist::categorical;
use rand::{Rng, RngCore};

const KIB: u64 = 1024;
const MIB: u64 = 1024 * 1024;

/// The paper's injection set. Table spans are resolved against the base
/// workload's catalog at build time.
fn injection_templates(n_tables: u32) -> Vec<TemplateSpec> {
    let span = (0, n_tables.saturating_sub(1));
    vec![
        // Complex sorts/aggregation: "requires nearby 350 MB".
        TemplateSpec::read(35.0, QueryKind::ComplexAggregate, span, (50_000, 500_000))
            .with_sort(150 * MIB, 400 * MIB),
        // Create/delete indexes.
        TemplateSpec::write(
            15.0,
            QueryKind::CreateIndex,
            span,
            (100_000, 1_000_000),
            (0, 0),
        )
        .with_maintenance(100 * MIB, 1_024 * MIB)
        .with_sort(10 * MIB, 60 * MIB),
        TemplateSpec::read(10.0, QueryKind::DropIndex, span, (1, 1)),
        // Bulk deletes.
        TemplateSpec::write(
            15.0,
            QueryKind::Delete,
            span,
            (10_000, 200_000),
            (10_000, 200_000),
        )
        .with_maintenance(80 * MIB, 400 * MIB),
        // Temp tables + aggregation over them.
        TemplateSpec::read(20.0, QueryKind::TempTable, span, (10_000, 300_000))
            .with_temp(50 * MIB, 600 * MIB)
            .with_sort(512 * KIB, 4 * MIB),
        // Alter table.
        TemplateSpec::write(5.0, QueryKind::AlterTable, span, (10_000, 500_000), (0, 0))
            .with_maintenance(50 * MIB, 300 * MIB),
    ]
}

/// A base workload with probabilistic injections.
#[derive(Debug, Clone)]
pub struct AdulteratedWorkload {
    base: MixWorkload,
    extras: Vec<TemplateSpec>,
    extra_weights: Vec<f64>,
    probability: f64,
}

impl AdulteratedWorkload {
    /// Adulterate `base` with the paper's injection set at probability `p`.
    pub fn new(base: MixWorkload, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        let extras = injection_templates(base.catalog().len() as u32);
        let extra_weights = extras.iter().map(|t| t.weight).collect();
        Self {
            base,
            extras,
            extra_weights,
            probability: p,
        }
    }

    /// Adulterate with a custom injection set.
    pub fn with_templates(base: MixWorkload, p: f64, extras: Vec<TemplateSpec>) -> Self {
        assert!((0.0..=1.0).contains(&p));
        assert!(!extras.is_empty());
        let extra_weights = extras.iter().map(|t| t.weight).collect();
        Self {
            base,
            extras,
            extra_weights,
            probability: p,
        }
    }

    /// The underlying clean workload.
    pub fn base(&self) -> &MixWorkload {
        &self.base
    }

    /// Injection probability.
    pub fn probability(&self) -> f64 {
        self.probability
    }

    /// Draw the next query: with probability `p` an injected shape,
    /// otherwise the base mix.
    pub fn next_query(&self, rng: &mut dyn RngCore) -> QueryProfile {
        if rng.gen::<f64>() < self.probability {
            let idx = categorical(rng, &self.extra_weights);
            self.base.instantiate(&self.extras[idx], rng)
        } else {
            self.base.next_query(rng)
        }
    }
}

use autodbaas_snapshot::snap_struct;

snap_struct!(AdulteratedWorkload {
    base,
    extras,
    extra_weights,
    probability
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::tpcc;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn kinds_injected() -> [QueryKind; 6] {
        [
            QueryKind::ComplexAggregate,
            QueryKind::CreateIndex,
            QueryKind::DropIndex,
            QueryKind::Delete,
            QueryKind::TempTable,
            QueryKind::AlterTable,
        ]
    }

    #[test]
    fn zero_probability_is_pure_base() {
        let w = AdulteratedWorkload::new(tpcc(5.0), 0.0);
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..2_000 {
            let q = w.next_query(&mut rng);
            assert!(
                !kinds_injected().contains(&q.kind),
                "injected {:?} at p=0",
                q.kind
            );
        }
    }

    #[test]
    fn injection_rate_tracks_probability() {
        for p in [0.5, 0.8] {
            let w = AdulteratedWorkload::new(tpcc(5.0), p);
            let mut rng = StdRng::seed_from_u64(22);
            let n = 10_000;
            let injected = (0..n)
                .filter(|_| kinds_injected().contains(&w.next_query(&mut rng).kind))
                .count();
            let frac = injected as f64 / n as f64;
            assert!((frac - p).abs() < 0.03, "p={p} got {frac}");
        }
    }

    #[test]
    fn injections_cover_all_memory_knob_classes() {
        let w = AdulteratedWorkload::new(tpcc(5.0), 1.0);
        let mut rng = StdRng::seed_from_u64(23);
        let mut saw_sort = false;
        let mut saw_maint = false;
        let mut saw_temp = false;
        for _ in 0..2_000 {
            let q = w.next_query(&mut rng);
            saw_sort |= q.sort_bytes > 100 * MIB;
            saw_maint |= q.maintenance_bytes > 50 * MIB;
            saw_temp |= q.temp_bytes > 50 * MIB;
        }
        assert!(saw_sort && saw_maint && saw_temp);
    }

    #[test]
    fn complex_aggregates_need_about_350_mb() {
        // The paper: complex aggregation added to TPCC "requires nearby 350 MB".
        let w = AdulteratedWorkload::new(tpcc(5.0), 1.0);
        let mut rng = StdRng::seed_from_u64(24);
        let sorts: Vec<u64> = (0..5_000)
            .map(|_| w.next_query(&mut rng))
            .filter(|q| q.kind == QueryKind::ComplexAggregate)
            .map(|q| q.sort_bytes)
            .collect();
        assert!(!sorts.is_empty());
        let max = *sorts.iter().max().unwrap();
        assert!(
            (300 * MIB..=400 * MIB).contains(&max),
            "max complex-agg sort {max}"
        );
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range_probability() {
        let _ = AdulteratedWorkload::new(tpcc(1.0), 1.5);
    }
}
