//! The explore pipeline: generate → run → judge → shrink → persist.
//!
//! One function per stage so the CLI, the verify smoke and the tests all
//! drive the same code path; the CLI binary is argument parsing and
//! printing only.

use crate::bugbase::{BugEntry, BugStatus};
use crate::gen::generate;
use crate::oracle::{check_all, Property, Violation};
use crate::profile::Profile;
use crate::run::{run_plan, RunOutcome};
use crate::shrink::{shrink, ShrinkStats};
use autodbaas_cloudsim::InteractionPlan;

/// Everything one explored seed produced.
#[derive(Debug)]
pub struct SeedVerdict {
    /// The explored seed.
    pub seed: u64,
    /// Fingerprint of the generated plan (bit-determinism witness).
    pub plan_fingerprint: u64,
    /// The generated plan itself.
    pub plan: InteractionPlan,
    /// Violated properties, in catalog order (empty = healthy).
    pub violations: Vec<Violation>,
    /// The distilled run.
    pub outcome: RunOutcome,
}

impl SeedVerdict {
    /// True when every property held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Explore one `(profile, seed)`: generate the plan, run it (with the
/// sharded doublecheck twin when asked), judge every oracle.
pub fn explore_seed(profile: &Profile, seed: u64, doublecheck: bool) -> SeedVerdict {
    let plan = generate(profile, seed);
    let outcome = run_plan(profile, &plan, seed, doublecheck);
    let violations = check_all(profile, &outcome);
    SeedVerdict {
        seed,
        plan_fingerprint: plan.fingerprint(),
        plan,
        violations,
        outcome,
    }
}

/// Shrink a failing plan against one recorded property: the predicate
/// re-runs the candidate plan under the same `(profile, seed)` and asks
/// whether that property still fails. The twins only run when the
/// property under shrink is one of the identity oracles — every other
/// property is serial-observable, and the twins would triple the probe
/// cost.
pub fn shrink_violation(
    profile: &Profile,
    plan: &InteractionPlan,
    seed: u64,
    property: Property,
) -> (InteractionPlan, ShrinkStats) {
    let doublecheck = matches!(
        property,
        Property::ShardedIdentity | Property::SnapshotIdentity
    );
    shrink(plan, |candidate| {
        let out = run_plan(profile, candidate, seed, doublecheck);
        property.check(profile, &out).is_some()
    })
}

/// Package a shrunk violation as a bug-base entry (open-bug status; flip
/// to `fixed` in the same commit as the fix).
pub fn entry_from(
    profile: &Profile,
    seed: u64,
    shrunk: InteractionPlan,
    violation: &Violation,
) -> BugEntry {
    BugEntry {
        seed,
        profile: profile.name.to_string(),
        property: violation.property,
        status: BugStatus::Fails,
        detail: violation.detail.clone(),
        plan_fingerprint: shrunk.fingerprint(),
        plan: shrunk,
    }
}

/// Re-judge one finished outcome (convenience for printing).
pub fn verdict_line(profile: &Profile, v: &SeedVerdict) -> String {
    if v.ok() {
        format!(
            "{} seed={} plan={:016x} ok availability={:.4}",
            profile.name, v.seed, v.plan_fingerprint, v.outcome.availability
        )
    } else {
        let names: Vec<&str> = v.violations.iter().map(|x| x.property.name()).collect();
        format!(
            "{} seed={} plan={:016x} FAIL {} — {}",
            profile.name,
            v.seed,
            v.plan_fingerprint,
            names.join(","),
            v.violations[0].detail
        )
    }
}
