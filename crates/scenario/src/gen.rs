//! Seeded plan generation: `(profile, seed)` → one interaction plan.
//!
//! All randomness is drawn up front from one seeded RNG, so the same
//! `(profile, seed)` pair produces a byte-identical plan on every machine
//! — the property that makes bug-base entries replayable and the explore
//! smoke bit-deterministic.

use crate::profile::Profile;
use autodbaas_cloudsim::{FaultKind, InteractionPlan, PlanAction, PlanEvent};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generate the interaction plan for `(profile, seed)`.
///
/// Events land at uniform times in the first 75% of the profile's run
/// (mirroring [`FaultPlan::generate`](autodbaas_cloudsim::FaultPlan)), on
/// uniform nodes, with action classes drawn from the profile's weighted
/// dice. The plan is sorted by `(at, node, action)` like every plan in the
/// workspace, so generation order never leaks into injection order.
pub fn generate(profile: &Profile, seed: u64) -> InteractionPlan {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5ce2a410);
    let window = (profile.duration_ms * 3 / 4).max(1);
    let events = (0..profile.n_events)
        .map(|_| PlanEvent {
            at: rng.gen_range(0..window),
            node: rng.gen_range(0..profile.n_nodes),
            action: gen_action(profile, &mut rng),
        })
        .collect();
    InteractionPlan::new(events)
}

/// Roll the profile's weighted dice for one action.
fn gen_action(profile: &Profile, rng: &mut StdRng) -> PlanAction {
    let w = profile.weights;
    let mut roll = rng.gen_range(0..w.total());
    if roll < w.fault {
        return PlanAction::Fault(gen_fault(rng));
    }
    roll -= w.fault;
    if roll < w.burst {
        // 2–6× the steady rate, long enough to straddle a TDE window.
        let mult = 2.0 + rng.gen::<f64>() * 4.0;
        return PlanAction::Burst {
            rate_qps: (profile.base_qps * mult).round(),
            duration_ms: rng.gen_range(30..=120) * 1_000,
        };
    }
    roll -= w.burst;
    if roll < w.knob_push {
        // The unit-cube corners are the adversarial pushes (a 0.5 push is
        // close to a sane config); snap to one of five coordinates so
        // shrinking has few distinct values to walk through.
        let value = [0.0, 0.25, 0.5, 0.75, 1.0][rng.gen_range(0..5)];
        return PlanAction::KnobPush { value };
    }
    roll -= w.knob_push;
    if roll < w.maintenance {
        return PlanAction::Maintenance;
    }
    roll -= w.maintenance;
    if roll < w.add_replica {
        return PlanAction::AddReplica;
    }
    PlanAction::RemoveReplica
}

/// Uniform pick over the eight fault kinds with profile-independent,
/// shrink-friendly parameter grids.
fn gen_fault(rng: &mut StdRng) -> FaultKind {
    match rng.gen_range(0..8u32) {
        0 => FaultKind::VmCrash,
        1 => FaultKind::MasterCrashMidApply,
        2 => FaultKind::SlaveCrashMidApply,
        3 => FaultKind::TunerOutage {
            duration_ms: rng.gen_range(1..=4) * 30_000,
        },
        4 => FaultKind::TelemetryDrop {
            duration_ms: rng.gen_range(1..=3) * 60_000,
        },
        5 => FaultKind::DiskStall {
            duration_ms: rng.gen_range(1..=4) * 15_000,
            factor: [2.0, 4.0, 8.0][rng.gen_range(0..3)],
        },
        6 => FaultKind::ReplicaLagSpike {
            pause_ms: rng.gen_range(1..=3) * 30_000,
        },
        _ => FaultKind::RequestLoss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{profile, PROFILES};

    #[test]
    fn generation_is_deterministic_per_seed_and_profile() {
        for p in PROFILES {
            for seed in 0..20u64 {
                let a = generate(p, seed);
                let b = generate(p, seed);
                assert_eq!(a, b, "{} seed {seed}", p.name);
                assert_eq!(a.fingerprint(), b.fingerprint());
                assert_eq!(a.len(), p.n_events);
                let window = p.duration_ms * 3 / 4;
                assert!(a.events().iter().all(|e| e.at < window), "quiet tail");
                assert!(a.events().iter().all(|e| e.node < p.n_nodes));
            }
            assert_ne!(
                generate(p, 1).fingerprint(),
                generate(p, 2).fingerprint(),
                "{}: different seeds must differ",
                p.name
            );
        }
    }

    #[test]
    fn profiles_shape_the_action_mix() {
        let storm = profile("failover-storm").unwrap();
        let quiet = profile("quiet").unwrap();
        let count = |p: &Profile, pred: fn(&PlanAction) -> bool| {
            (0..40u64)
                .flat_map(|s| generate(p, s).events().to_vec())
                .filter(|e| pred(&e.action))
                .count()
        };
        let is_fault = |a: &PlanAction| matches!(a, PlanAction::Fault(_));
        assert_eq!(count(quiet, is_fault), 0, "quiet profile draws no faults");
        assert!(count(storm, is_fault) > 40, "storm is fault-dominated");
        let is_burst = |a: &PlanAction| matches!(a, PlanAction::Burst { .. });
        assert!(count(quiet, is_burst) > count(storm, is_burst));
    }
}
