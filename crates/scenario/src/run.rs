//! Drive a generated plan through the real fleet simulator and distill the
//! run into the facts the oracles judge.
//!
//! The harness mirrors the chaos-recovery integration tests: 1 s ticks,
//! 1-minute TDE windows, the RL backend (fixed 50 ms service time, so
//! request timing is exact), TDE-gated sample capture and the OnlineTune
//! rollback guard armed. In doublecheck mode the same plan runs three
//! times — once on the serial tick engine, once sharded, and once
//! interrupted by a mid-plan save/restore — and the extra event logs feed
//! the serial-vs-sharded and snapshot identity oracles.

use crate::profile::Profile;
use autodbaas_cloudsim::{FleetConfig, FleetSim, InteractionPlan, ManagedDatabase, RollbackPolicy};
use autodbaas_core::{TdeConfig, TuningPolicy};
use autodbaas_ctrlplane::TunerKind;
use autodbaas_simdb::{AnyBackend, DbFlavor, DiskKind, InstanceType};
use autodbaas_telemetry::MILLIS_PER_MIN;
use autodbaas_tuner::{SampleQuality, WorkloadId};
use autodbaas_workload::{tpcc, ArrivalProcess};

/// Shards forced in doublecheck mode: real worker threads even on a
/// single-core machine, where auto resolution would pick one shard and the
/// identity oracle would compare the serial engine against itself.
const DOUBLECHECK_SHARDS: usize = 4;

/// Quiesce-then-audit settle phase appended after the profile's duration:
/// recommendation applies are frozen and the fleet runs on, long enough for
/// every armed rollback guard (3 observation windows), parked apply
/// (backoff ≤ 160 s) and crash recovery to resolve. Terminal oracles judge
/// the fleet *after* this drain, so "guard still armed" means stuck, not
/// merely recent.
const SETTLE_MS: u64 = 5 * MILLIS_PER_MIN;

/// Everything one simulated run tells the oracles.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Fleet availability over the run.
    pub availability: f64,
    /// Nodes with stalled control-plane work after the quiet tail.
    pub wedged: Vec<usize>,
    /// Nodes whose live config drifted from the persisted config of record.
    pub drifted: Vec<usize>,
    /// Nodes whose rollback guard is still armed after the quiet tail.
    pub guards_armed: Vec<usize>,
    /// Low-quality samples that reached the repository from *online*
    /// workloads (the run captures TDE-gated, so this must be zero).
    pub online_low_samples: usize,
    /// Event-log fingerprint of the serial run.
    pub fingerprint_serial: u64,
    /// Event-log fingerprint of the sharded run (doublecheck mode only).
    pub fingerprint_sharded: Option<u64>,
    /// Per-node submitted-query counters, serial then sharded.
    pub queries_serial: Vec<u64>,
    /// Sharded counterpart of [`RunOutcome::queries_serial`].
    pub queries_sharded: Option<Vec<u64>>,
    /// Event-log fingerprint of the save/restore twin — the same serial
    /// run interrupted mid-plan by a snapshot round trip (doublecheck mode
    /// only).
    pub fingerprint_resumed: Option<u64>,
    /// Save/restore counterpart of [`RunOutcome::queries_serial`].
    pub queries_resumed: Option<Vec<u64>>,
    /// Rollbacks the safety guard fired during the (serial) run.
    pub rollbacks: u64,
    /// Per-node write-stall exposure of every LSM master, as a fraction of
    /// the full run (duration + settle). Empty on all-page-heap fleets, so
    /// the compaction-stall oracle abstains there.
    pub lsm_stall_frac: Vec<(usize, f64)>,
}

/// Which engine serves node `i` of this profile's fleet: mixed-backend
/// profiles interleave the LSM adapter on odd indices.
fn node_flavor(profile: &Profile, i: usize) -> DbFlavor {
    if profile.mixed_backends && i % 2 == 1 {
        DbFlavor::Lsm
    } else {
        DbFlavor::Postgres
    }
}

/// One managed tenant shaped by the profile.
fn managed_node(profile: &Profile, i: usize, seed: u64) -> ManagedDatabase {
    let wl = tpcc(1.0);
    let catalog = wl.catalog().clone();
    let node = ManagedDatabase::new(
        node_flavor(profile, i),
        InstanceType::M4Large,
        DiskKind::Ssd,
        catalog,
        Box::new(wl),
        ArrivalProcess::Constant(profile.base_qps),
        TuningPolicy::TdeDriven,
        WorkloadId(0),
        TdeConfig::default(),
        seed,
    );
    node.with_slaves(profile.n_slaves)
}

/// The profile's fleet with `plan` armed and the clock at zero.
fn armed_fleet(profile: &Profile, plan: &InteractionPlan, seed: u64, sharded: bool) -> FleetSim {
    let mut sim = FleetSim::new(
        FleetConfig {
            tick_ms: 1_000,
            tde_period_ms: MILLIS_PER_MIN,
            tuner: TunerKind::Rl,
            seed,
            shards: if sharded { DOUBLECHECK_SHARDS } else { 0 },
            request_timeout_ms: 30_000,
            retry_base_ms: 5_000,
            rollback: Some(RollbackPolicy::default()),
            ..FleetConfig::default()
        },
        2,
    );
    sim.set_parallel(sharded);
    for i in 0..profile.n_nodes {
        sim.add_node(
            managed_node(profile, i, seed ^ (i as u64 + 1).wrapping_mul(0x9e3779b9)),
            &format!("{}-db-{i}", profile.name),
        );
    }
    sim.enable_plan(plan.clone());
    sim
}

/// Freeze new applies and drain for [`SETTLE_MS`] before the caller
/// audits terminal state.
fn settle(sim: &mut FleetSim) {
    sim.set_apply_recommendations(false);
    sim.run_for(SETTLE_MS);
}

/// Build the profile's fleet, arm `plan`, run to the end of the profile's
/// duration (plan events stop at 75%, so the last quarter is already
/// quiet), then settle.
fn run_once(profile: &Profile, plan: &InteractionPlan, seed: u64, sharded: bool) -> FleetSim {
    let mut sim = armed_fleet(profile, plan, seed, sharded);
    sim.run_for(profile.duration_ms);
    settle(&mut sim);
    sim
}

/// The serial run again, but interrupted halfway through the plan by a
/// full snapshot round trip — serialize, drop the live fleet, restore
/// from bytes, continue. The plan generator places events up to 75% of
/// the duration, so the split lands with live plan state (a cursor into
/// pending events, often an in-flight burst or fault) on both sides of
/// the checkpoint. Bit-identity with the uninterrupted run is exactly
/// the ROADMAP item 5 contract, judged by the `snapshot_identity`
/// oracle.
fn run_resumed(profile: &Profile, plan: &InteractionPlan, seed: u64) -> FleetSim {
    let mut sim = armed_fleet(profile, plan, seed, false);
    let half = profile.duration_ms / 2;
    sim.run_for(half);
    let bytes = sim.snapshot_bytes();
    drop(sim);
    let mut sim = FleetSim::from_snapshot_bytes(&bytes).expect("restore mid-plan snapshot");
    sim.run_for(profile.duration_ms - half);
    settle(&mut sim);
    sim
}

/// Run `plan` under `profile` and distill the outcome. `doublecheck` adds
/// the sharded twin and the mid-plan save/restore twin feeding the two
/// identity oracles.
pub fn run_plan(
    profile: &Profile,
    plan: &InteractionPlan,
    seed: u64,
    doublecheck: bool,
) -> RunOutcome {
    let serial = run_once(profile, plan, seed, false);
    let (_, low_online) = serial.repo.online_quality_counts();
    let run_ms = (profile.duration_ms + SETTLE_MS) as f64;
    let lsm_stall_frac = serial
        .nodes
        .iter()
        .enumerate()
        .filter_map(|(i, n)| match n.db() {
            AnyBackend::Lsm(db) => Some((i, db.write_stalled_ms() as f64 / run_ms)),
            AnyBackend::PageHeap(_) => None,
        })
        .collect();
    let mut outcome = RunOutcome {
        availability: serial.availability(),
        wedged: serial.wedged_nodes(),
        drifted: serial.drifted_nodes(),
        guards_armed: serial.guard_armed_nodes(),
        online_low_samples: low_online,
        fingerprint_serial: serial.events.fingerprint(),
        fingerprint_sharded: None,
        queries_serial: serial.nodes.iter().map(|n| n.queries_submitted).collect(),
        queries_sharded: None,
        rollbacks: serial.events.count("tune.rollback") as u64,
        lsm_stall_frac,
        fingerprint_resumed: None,
        queries_resumed: None,
    };
    if doublecheck {
        let sharded = run_once(profile, plan, seed, true);
        outcome.fingerprint_sharded = Some(sharded.events.fingerprint());
        outcome.queries_sharded = Some(sharded.nodes.iter().map(|n| n.queries_submitted).collect());
        let resumed = run_resumed(profile, plan, seed);
        outcome.fingerprint_resumed = Some(resumed.events.fingerprint());
        outcome.queries_resumed = Some(resumed.nodes.iter().map(|n| n.queries_submitted).collect());
    }
    outcome
}

/// Count low-quality online samples in a finished sim — exposed for tests
/// that build their own fleets.
pub fn online_low_samples(sim: &FleetSim) -> usize {
    sim.repo
        .iter()
        .filter(|w| !w.offline)
        .flat_map(|w| w.samples.iter())
        .filter(|s| s.quality == SampleQuality::Low)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use crate::profile::profile;

    #[test]
    fn runs_are_bit_deterministic() {
        let p = profile("quiet").unwrap();
        let plan = generate(p, 3);
        let a = run_plan(p, &plan, 3, false);
        let b = run_plan(p, &plan, 3, false);
        assert_eq!(a.fingerprint_serial, b.fingerprint_serial);
        assert_eq!(a.queries_serial, b.queries_serial);
        assert_eq!(a.availability, b.availability);
    }

    #[test]
    fn mixed_profile_hosts_lsm_masters_and_reports_stall_exposure() {
        let p = profile("diurnal-heavy").unwrap();
        assert!(p.mixed_backends);
        let plan = generate(p, 11);
        let out = run_plan(p, &plan, 11, false);
        // Odd indices carry the LSM adapter (4-node fleet → nodes 1, 3)…
        assert_eq!(
            out.lsm_stall_frac
                .iter()
                .map(|&(i, _)| i)
                .collect::<Vec<_>>(),
            vec![1, 3]
        );
        // …and a generated plan stays well inside the write-stall budget.
        for &(i, frac) in &out.lsm_stall_frac {
            assert!(
                frac <= crate::oracle::MAX_LSM_STALL_FRAC,
                "node {i} stalled {frac:.3} of the run"
            );
        }
    }

    #[test]
    fn doublecheck_attaches_the_sharded_and_resumed_twins() {
        let p = profile("quiet").unwrap();
        let plan = generate(p, 5);
        let out = run_plan(p, &plan, 5, true);
        assert!(out.fingerprint_sharded.is_some());
        assert_eq!(out.queries_sharded.as_ref().map(Vec::len), Some(p.n_nodes),);
        // The save/restore twin is attached too — and on a healthy build
        // it reproduces the uninterrupted run bit for bit.
        assert_eq!(out.fingerprint_resumed, Some(out.fingerprint_serial));
        assert_eq!(out.queries_resumed.as_ref(), Some(&out.queries_serial));
    }
}
