//! The persistent bug base: shrunk counterexamples as small TOML files.
//!
//! Every failure the explorer finds is shrunk and persisted to
//! `tests/bugbase/<name>.toml` as `{seed, profile, property, status,
//! plan}`. A tier-1 test replays the directory forever: entries with
//! `status = "fixed"` must pass (the bug stays fixed), entries with
//! `status = "fails"` must still violate their recorded property (the bug
//! is known and minimised; the test flags the day it silently disappears,
//! because that is the day to flip the status and pin the fix).
//!
//! The format is a deliberate TOML subset — scalar `key = value` lines and
//! one string array — parsed by hand because the workspace vendors no TOML
//! crate. Plans serialise as one human-readable line per event
//! (`"at=120000 node=2 vm_crash"`), so a bug report is also documentation.

use crate::oracle::Property;
use crate::profile::{profile, Profile};
use crate::run::{run_plan, RunOutcome};
use autodbaas_cloudsim::{FaultKind, InteractionPlan, PlanAction, PlanEvent};

/// Replay contract of an entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BugStatus {
    /// The underlying bug was fixed: replay must pass the property.
    Fixed,
    /// Known open (or by-design) failure: replay must still violate it.
    Fails,
}

impl BugStatus {
    /// Stable file vocabulary.
    pub fn name(&self) -> &'static str {
        match self {
            BugStatus::Fixed => "fixed",
            BugStatus::Fails => "fails",
        }
    }

    /// Inverse of [`BugStatus::name`].
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "fixed" => Some(BugStatus::Fixed),
            "fails" => Some(BugStatus::Fails),
            _ => None,
        }
    }
}

/// One persisted counterexample.
#[derive(Debug, Clone)]
pub struct BugEntry {
    /// Fleet seed the violation reproduces under.
    pub seed: u64,
    /// Profile name (fleet shape + oracle thresholds).
    pub profile: String,
    /// The violated property.
    pub property: Property,
    /// Replay contract.
    pub status: BugStatus,
    /// Evidence recorded when the bug was found.
    pub detail: String,
    /// Fingerprint of `plan`, to catch hand-edited or corrupted files.
    pub plan_fingerprint: u64,
    /// The shrunk plan.
    pub plan: InteractionPlan,
}

/// How a replayed entry compared against its contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayVerdict {
    /// `fixed` entry passed its property — the regression stays fixed.
    Pass,
    /// `fails` entry still violates its property — the known bug is still
    /// known.
    StillFails,
    /// `fixed` entry violates its property again: a regression.
    Regressed(String),
    /// `fails` entry now passes: the bug silently disappeared — flip the
    /// status to `fixed` to pin it.
    UnexpectedlyPassed,
}

impl ReplayVerdict {
    /// True when the entry met its contract.
    pub fn ok(&self) -> bool {
        matches!(self, ReplayVerdict::Pass | ReplayVerdict::StillFails)
    }
}

impl BugEntry {
    /// Deterministic file stem: `<profile>-<property>-<seed>`.
    pub fn file_stem(&self) -> String {
        format!("{}-{}-{}", self.profile, self.property.name(), self.seed)
    }

    /// Serialise to the TOML subset.
    pub fn to_toml(&self) -> String {
        let mut s = String::new();
        s.push_str("# shrunk scenario counterexample; replayed by tests/scenario_bugbase.rs\n");
        s.push_str("# regenerate with: autodbaas-scenario explore (see DESIGN.md)\n");
        s.push_str(&format!("seed = {}\n", self.seed));
        s.push_str(&format!("profile = \"{}\"\n", self.profile));
        s.push_str(&format!("property = \"{}\"\n", self.property.name()));
        s.push_str(&format!("status = \"{}\"\n", self.status.name()));
        s.push_str(&format!("detail = \"{}\"\n", self.detail.replace('"', "'")));
        s.push_str(&format!("plan_fingerprint = {}\n", self.plan_fingerprint));
        s.push_str("plan = [\n");
        for ev in self.plan.events() {
            s.push_str(&format!("    \"{}\",\n", format_event(ev)));
        }
        s.push_str("]\n");
        s
    }

    /// Parse from the TOML subset. Validates the plan fingerprint and the
    /// profile/property vocabulary.
    pub fn from_toml(text: &str) -> Result<BugEntry, String> {
        let mut seed = None;
        let mut profile_name = None;
        let mut property = None;
        let mut status = None;
        let mut detail = String::new();
        let mut plan_fingerprint = None;
        let mut plan_lines: Vec<String> = Vec::new();
        let mut in_plan = false;
        for raw in text.lines() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if in_plan {
                if line.starts_with(']') {
                    in_plan = false;
                    continue;
                }
                let item = line.trim_end_matches(',').trim();
                plan_lines.push(unquote(item).ok_or_else(|| format!("bad plan item: {line}"))?);
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .map(|(k, v)| (k.trim(), v.trim()))
                .ok_or_else(|| format!("expected `key = value`, got: {line}"))?;
            match key {
                "seed" => seed = Some(parse_u64(value)?),
                "profile" => profile_name = Some(unquote(value).ok_or("profile must be quoted")?),
                "property" => {
                    let name = unquote(value).ok_or("property must be quoted")?;
                    property = Some(
                        Property::from_name(&name)
                            .ok_or_else(|| format!("unknown property: {name}"))?,
                    );
                }
                "status" => {
                    let name = unquote(value).ok_or("status must be quoted")?;
                    status = Some(
                        BugStatus::from_name(&name)
                            .ok_or_else(|| format!("unknown status: {name}"))?,
                    );
                }
                "detail" => detail = unquote(value).ok_or("detail must be quoted")?,
                "plan_fingerprint" => plan_fingerprint = Some(parse_u64(value)?),
                "plan" => {
                    if value != "[" {
                        return Err("plan must open a multi-line array".into());
                    }
                    in_plan = true;
                }
                other => return Err(format!("unknown key: {other}")),
            }
        }
        let events = plan_lines
            .iter()
            .map(|l| parse_event(l))
            .collect::<Result<Vec<_>, _>>()?;
        let plan = InteractionPlan::new(events);
        let entry = BugEntry {
            seed: seed.ok_or("missing seed")?,
            profile: profile_name.ok_or("missing profile")?,
            property: property.ok_or("missing property")?,
            status: status.ok_or("missing status")?,
            detail,
            plan_fingerprint: plan_fingerprint.ok_or("missing plan_fingerprint")?,
            plan,
        };
        if profile(&entry.profile).is_none() {
            return Err(format!("unknown profile: {}", entry.profile));
        }
        if entry.plan.fingerprint() != entry.plan_fingerprint {
            return Err(format!(
                "plan fingerprint mismatch: recorded {}, computed {} — file edited or corrupted",
                entry.plan_fingerprint,
                entry.plan.fingerprint()
            ));
        }
        Ok(entry)
    }

    /// The profile this entry runs under.
    pub fn profile(&self) -> &'static Profile {
        profile(&self.profile).expect("validated at parse time")
    }

    /// Re-run the entry's plan and judge it against its contract.
    /// `doublecheck` additionally runs the sharded and save/restore twins
    /// (needed when the recorded property is one of the identity oracles).
    pub fn replay(&self, doublecheck: bool) -> (ReplayVerdict, RunOutcome) {
        let p = self.profile();
        let need_twin = doublecheck
            || matches!(
                self.property,
                Property::ShardedIdentity | Property::SnapshotIdentity
            );
        let out = run_plan(p, &self.plan, self.seed, need_twin);
        let violated = self.property.check(p, &out);
        let verdict = match (self.status, violated) {
            (BugStatus::Fixed, None) => ReplayVerdict::Pass,
            (BugStatus::Fixed, Some(detail)) => ReplayVerdict::Regressed(detail),
            (BugStatus::Fails, Some(_)) => ReplayVerdict::StillFails,
            (BugStatus::Fails, None) => ReplayVerdict::UnexpectedlyPassed,
        };
        (verdict, out)
    }
}

/// Strip one layer of double quotes.
fn unquote(s: &str) -> Option<String> {
    s.strip_prefix('"')?.strip_suffix('"').map(str::to_string)
}

fn parse_u64(s: &str) -> Result<u64, String> {
    s.parse().map_err(|_| format!("bad integer: {s}"))
}

fn parse_f64(s: &str) -> Result<f64, String> {
    s.parse().map_err(|_| format!("bad float: {s}"))
}

/// One event as a human-readable line: `at=<ms> node=<idx> <kind> [k=v…]`.
/// Floats use Rust's shortest-roundtrip formatting, so parse ∘ format is
/// the identity on every value the generator can produce.
pub fn format_event(ev: &PlanEvent) -> String {
    let head = format!("at={} node={}", ev.at, ev.node);
    let tail = match ev.action {
        PlanAction::Fault(kind) => match kind {
            FaultKind::VmCrash => "vm_crash".to_string(),
            FaultKind::MasterCrashMidApply => "master_crash_mid_apply".to_string(),
            FaultKind::SlaveCrashMidApply => "slave_crash_mid_apply".to_string(),
            FaultKind::RequestLoss => "request_loss".to_string(),
            FaultKind::TunerOutage { duration_ms } => {
                format!("tuner_outage duration={duration_ms}")
            }
            FaultKind::TelemetryDrop { duration_ms } => {
                format!("telemetry_drop duration={duration_ms}")
            }
            FaultKind::DiskStall {
                duration_ms,
                factor,
            } => format!("disk_stall duration={duration_ms} factor={factor}"),
            FaultKind::ReplicaLagSpike { pause_ms } => {
                format!("replica_lag_spike pause={pause_ms}")
            }
        },
        PlanAction::Burst {
            rate_qps,
            duration_ms,
        } => format!("burst rate={rate_qps} duration={duration_ms}"),
        PlanAction::KnobPush { value } => format!("knob_push value={value}"),
        PlanAction::Maintenance => "maintenance".to_string(),
        PlanAction::AddReplica => "replica_add".to_string(),
        PlanAction::RemoveReplica => "replica_remove".to_string(),
    };
    format!("{head} {tail}")
}

/// Inverse of [`format_event`].
pub fn parse_event(line: &str) -> Result<PlanEvent, String> {
    let mut at = None;
    let mut node = None;
    let mut kind = None;
    let mut params: Vec<(&str, &str)> = Vec::new();
    for tok in line.split_whitespace() {
        match tok.split_once('=') {
            Some(("at", v)) => at = Some(parse_u64(v)?),
            Some(("node", v)) => node = Some(parse_u64(v)? as usize),
            Some((k, v)) => params.push((k, v)),
            None => {
                if kind.replace(tok).is_some() {
                    return Err(format!("two kinds in one event: {line}"));
                }
            }
        }
    }
    let get = |key: &str| -> Result<&str, String> {
        params
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
            .ok_or_else(|| format!("missing {key}= in: {line}"))
    };
    let action = match kind.ok_or_else(|| format!("no action kind in: {line}"))? {
        "vm_crash" => PlanAction::Fault(FaultKind::VmCrash),
        "master_crash_mid_apply" => PlanAction::Fault(FaultKind::MasterCrashMidApply),
        "slave_crash_mid_apply" => PlanAction::Fault(FaultKind::SlaveCrashMidApply),
        "request_loss" => PlanAction::Fault(FaultKind::RequestLoss),
        "tuner_outage" => PlanAction::Fault(FaultKind::TunerOutage {
            duration_ms: parse_u64(get("duration")?)?,
        }),
        "telemetry_drop" => PlanAction::Fault(FaultKind::TelemetryDrop {
            duration_ms: parse_u64(get("duration")?)?,
        }),
        "disk_stall" => PlanAction::Fault(FaultKind::DiskStall {
            duration_ms: parse_u64(get("duration")?)?,
            factor: parse_f64(get("factor")?)?,
        }),
        "replica_lag_spike" => PlanAction::Fault(FaultKind::ReplicaLagSpike {
            pause_ms: parse_u64(get("pause")?)?,
        }),
        "burst" => PlanAction::Burst {
            rate_qps: parse_f64(get("rate")?)?,
            duration_ms: parse_u64(get("duration")?)?,
        },
        "knob_push" => PlanAction::KnobPush {
            value: parse_f64(get("value")?)?,
        },
        "maintenance" => PlanAction::Maintenance,
        "replica_add" => PlanAction::AddReplica,
        "replica_remove" => PlanAction::RemoveReplica,
        other => return Err(format!("unknown action kind: {other}")),
    };
    Ok(PlanEvent {
        at: at.ok_or_else(|| format!("missing at= in: {line}"))?,
        node: node.ok_or_else(|| format!("missing node= in: {line}"))?,
        action,
    })
}

/// Load every `*.toml` entry in `dir`, sorted by file name so replay order
/// is stable across filesystems.
pub fn load_dir(dir: &std::path::Path) -> Result<Vec<(std::path::PathBuf, BugEntry)>, String> {
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("read {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "toml"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|p| {
            let text =
                std::fs::read_to_string(&p).map_err(|e| format!("read {}: {e}", p.display()))?;
            let entry = BugEntry::from_toml(&text).map_err(|e| format!("{}: {e}", p.display()))?;
            Ok((p, entry))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entry() -> BugEntry {
        let plan = InteractionPlan::new(vec![
            PlanEvent {
                at: 120_000,
                node: 2,
                action: PlanAction::Fault(FaultKind::VmCrash),
            },
            PlanEvent {
                at: 180_000,
                node: 0,
                action: PlanAction::Burst {
                    rate_qps: 912.5,
                    duration_ms: 60_000,
                },
            },
            PlanEvent {
                at: 240_000,
                node: 1,
                action: PlanAction::KnobPush { value: 0.75 },
            },
        ]);
        BugEntry {
            seed: 42,
            profile: "failover-storm".to_string(),
            property: Property::NoWedgedServices,
            status: BugStatus::Fails,
            detail: "nodes wedged after quiet tail: [2]".to_string(),
            plan_fingerprint: plan.fingerprint(),
            plan,
        }
    }

    #[test]
    fn every_action_kind_round_trips_through_the_line_format() {
        let actions = [
            PlanAction::Fault(FaultKind::VmCrash),
            PlanAction::Fault(FaultKind::MasterCrashMidApply),
            PlanAction::Fault(FaultKind::SlaveCrashMidApply),
            PlanAction::Fault(FaultKind::RequestLoss),
            PlanAction::Fault(FaultKind::TunerOutage {
                duration_ms: 90_000,
            }),
            PlanAction::Fault(FaultKind::TelemetryDrop {
                duration_ms: 60_000,
            }),
            PlanAction::Fault(FaultKind::DiskStall {
                duration_ms: 45_000,
                factor: 7.25,
            }),
            PlanAction::Fault(FaultKind::ReplicaLagSpike { pause_ms: 30_000 }),
            PlanAction::Burst {
                rate_qps: 333.125,
                duration_ms: 90_000,
            },
            PlanAction::KnobPush { value: 0.1 },
            PlanAction::Maintenance,
            PlanAction::AddReplica,
            PlanAction::RemoveReplica,
        ];
        for (i, action) in actions.into_iter().enumerate() {
            let ev = PlanEvent {
                at: 1_000 * i as u64,
                node: i % 5,
                action,
            };
            let line = format_event(&ev);
            assert_eq!(parse_event(&line).as_ref(), Ok(&ev), "{line}");
        }
        assert!(parse_event("at=5 node=0 bogus_kind").is_err());
        assert!(parse_event("node=0 vm_crash").is_err(), "missing at");
        assert!(parse_event("at=5 node=0").is_err(), "missing kind");
        assert!(parse_event("at=5 node=0 disk_stall duration=1").is_err());
    }

    #[test]
    fn entries_round_trip_through_toml() {
        let entry = sample_entry();
        let text = entry.to_toml();
        let back = BugEntry::from_toml(&text).expect("round trip");
        assert_eq!(back.seed, entry.seed);
        assert_eq!(back.profile, entry.profile);
        assert_eq!(back.property, entry.property);
        assert_eq!(back.status, entry.status);
        assert_eq!(back.detail, entry.detail);
        assert_eq!(back.plan, entry.plan);
        assert_eq!(back.to_toml(), text, "serialisation is a fixpoint");
    }

    #[test]
    fn tampered_plans_are_rejected_by_the_fingerprint() {
        let entry = sample_entry();
        let text = entry
            .to_toml()
            .replace("node=2 vm_crash", "node=1 vm_crash");
        let err = BugEntry::from_toml(&text).unwrap_err();
        assert!(err.contains("fingerprint mismatch"), "{err}");
        assert!(BugEntry::from_toml("seed = 1\n").is_err(), "missing keys");
        assert!(
            BugEntry::from_toml(&sample_entry().to_toml().replace("failover-storm", "nope"))
                .is_err(),
            "unknown profile"
        );
    }
}
