//! `autodbaas-scenario` — explore, shrink and replay fleet scenarios.
//!
//! ```text
//! autodbaas-scenario list
//! autodbaas-scenario gen      --profile diurnal-heavy --seed 7
//! autodbaas-scenario explore  [--profile NAME|all] [--seeds N] [--start S]
//!                             [--no-doublecheck] [--bugbase DIR]
//! autodbaas-scenario replay     tests/bugbase/foo.toml
//! autodbaas-scenario replay-all tests/bugbase
//! ```
//!
//! `explore` exits non-zero when any seed violates a property (after
//! shrinking it and, with `--bugbase`, persisting the counterexample);
//! `replay`/`replay-all` exit non-zero when an entry breaks its contract
//! (`fixed` regressed, or `fails` silently passed).

use autodbaas_scenario::{
    explore_seed, load_dir, profile, shrink_violation, verdict_line, BugEntry, Profile,
    ReplayVerdict, PROFILES,
};
use autodbaas_telemetry::outln;
use std::path::Path;
use std::process::ExitCode;

fn usage() -> ExitCode {
    outln!("usage: autodbaas-scenario <list|gen|explore|replay|replay-all> [options]");
    outln!("  list                                  show the profile catalog");
    outln!("  gen --profile NAME --seed S           print the generated plan");
    outln!("  explore [--profile NAME|all] [--seeds N] [--start S]");
    outln!("          [--no-doublecheck] [--bugbase DIR]");
    outln!("  replay FILE.toml                      replay one bug-base entry");
    outln!("  replay-all DIR                        replay every entry in DIR");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => list(),
        Some("gen") => gen(&args[1..]),
        Some("explore") => explore(&args[1..]),
        Some("replay") => replay(&args[1..]),
        Some("replay-all") => replay_all(&args[1..]),
        _ => usage(),
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn list() -> ExitCode {
    for p in PROFILES {
        outln!(
            "{:<16} nodes={} slaves={} events={} duration={}s floor={:.3}  {}",
            p.name,
            p.n_nodes,
            p.n_slaves,
            p.n_events,
            p.duration_ms / 1_000,
            p.availability_floor,
            p.blurb
        );
    }
    ExitCode::SUCCESS
}

fn resolve_profiles(args: &[String]) -> Result<Vec<&'static Profile>, ExitCode> {
    match flag_value(args, "--profile") {
        None | Some("all") => Ok(PROFILES.iter().collect()),
        Some(name) => match profile(name) {
            Some(p) => Ok(vec![p]),
            None => {
                outln!("unknown profile: {name} (try `autodbaas-scenario list`)");
                Err(ExitCode::from(2))
            }
        },
    }
}

fn gen(args: &[String]) -> ExitCode {
    let profiles = match resolve_profiles(args) {
        Ok(p) => p,
        Err(code) => return code,
    };
    let seed: u64 = flag_value(args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    for p in profiles {
        let plan = autodbaas_scenario::generate(p, seed);
        outln!(
            "# {} seed={} fingerprint={:016x} ({} events)",
            p.name,
            seed,
            plan.fingerprint(),
            plan.len()
        );
        for ev in plan.events() {
            outln!("{}", autodbaas_scenario::format_event(ev));
        }
    }
    ExitCode::SUCCESS
}

fn explore(args: &[String]) -> ExitCode {
    let profiles = match resolve_profiles(args) {
        Ok(p) => p,
        Err(code) => return code,
    };
    let seeds: u64 = flag_value(args, "--seeds")
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let start: u64 = flag_value(args, "--start")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let doublecheck = !args.iter().any(|a| a == "--no-doublecheck");
    let bugbase_dir = flag_value(args, "--bugbase").map(Path::new);
    let mut failures = 0usize;
    for p in profiles {
        for seed in start..start + seeds {
            let v = explore_seed(p, seed, doublecheck);
            outln!("{}", verdict_line(p, &v));
            if v.ok() {
                continue;
            }
            failures += 1;
            let violation = &v.violations[0];
            let (shrunk, stats) = shrink_violation(p, &v.plan, seed, violation.property);
            outln!(
                "  shrunk {} -> {} events in {} probes:",
                stats.from_len,
                stats.to_len,
                stats.probes
            );
            for ev in shrunk.events() {
                outln!("    {}", autodbaas_scenario::format_event(ev));
            }
            if let Some(dir) = bugbase_dir {
                let entry = autodbaas_scenario::entry_from(p, seed, shrunk, violation);
                let path = dir.join(format!("{}.toml", entry.file_stem()));
                match std::fs::create_dir_all(dir)
                    .and_then(|()| std::fs::write(&path, entry.to_toml()))
                {
                    Ok(()) => outln!("  persisted {}", path.display()),
                    Err(e) => {
                        outln!("  FAILED to persist {}: {e}", path.display());
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
    }
    if failures > 0 {
        outln!("{failures} violating seed(s)");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn replay_one(path: &Path) -> Result<ReplayVerdict, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let entry = BugEntry::from_toml(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let (verdict, out) = entry.replay(false);
    outln!(
        "{}: {} seed={} property={} status={} -> {:?} (availability={:.4})",
        path.display(),
        entry.profile,
        entry.seed,
        entry.property.name(),
        entry.status.name(),
        verdict,
        out.availability
    );
    Ok(verdict)
}

fn replay(args: &[String]) -> ExitCode {
    let Some(file) = args.first() else {
        return usage();
    };
    match replay_one(Path::new(file)) {
        Ok(v) if v.ok() => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(e) => {
            outln!("{e}");
            ExitCode::FAILURE
        }
    }
}

fn replay_all(args: &[String]) -> ExitCode {
    let Some(dir) = args.first() else {
        return usage();
    };
    let entries = match load_dir(Path::new(dir)) {
        Ok(e) => e,
        Err(e) => {
            outln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if entries.is_empty() {
        outln!("{dir}: no bug-base entries");
        return ExitCode::SUCCESS;
    }
    let mut broken = 0usize;
    for (path, _) in &entries {
        match replay_one(path) {
            Ok(v) if v.ok() => {}
            Ok(_) => broken += 1,
            Err(e) => {
                outln!("{e}");
                broken += 1;
            }
        }
    }
    if broken > 0 {
        outln!("{broken} entr(y/ies) broke their contract");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
