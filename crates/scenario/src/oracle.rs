//! The property catalog: named invariants every scenario run is judged
//! against.
//!
//! Each property is a *terminal* check over a [`RunOutcome`] — the run
//! finishes (including its quiet tail) and then the oracles ask whether
//! the control plane ended where it promised to. Names are stable: bug-base
//! entries record them, so renaming a property orphans its bugs.

use crate::profile::Profile;
use crate::run::RunOutcome;

/// One named invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Property {
    /// Fleet availability stayed at or above the profile's floor.
    AvailabilityFloor,
    /// No node ended the run with stalled control-plane work (a master
    /// still down, a request past deadline, a retry or parked apply past
    /// due) — every request terminates or retries within deadline.
    NoWedgedServices,
    /// Bad configs never survive: after the quiet tail every rollback
    /// guard has resolved and no live config drifts from the config of
    /// record.
    RollbackGuardCorrectness,
    /// No quarantined (low-quality) sample leaked into online training
    /// while capture was TDE-gated.
    SampleHygiene,
    /// The serial and sharded tick engines produced bit-identical runs
    /// (event-log fingerprints and per-node query counters).
    ShardedIdentity,
    /// A mid-plan save/restore round trip did not change the run: the
    /// interrupted twin ends with the same event-log fingerprint and
    /// per-node query counters as the uninterrupted run (ROADMAP item 5's
    /// bit-identity contract). Abstains when no save/restore twin ran.
    SnapshotIdentity,
    /// LSM-only write-availability floor: no LSM master may spend more
    /// than [`MAX_LSM_STALL_FRAC`] of the run in compaction write-stall
    /// (L0 at or past `write_stall_l0`). Abstains on fleets with no LSM
    /// nodes — the compaction-debt failure mode does not exist on the
    /// page heap.
    CompactionStallFloor,
}

/// Largest tolerable write-stall fraction for the
/// [`Property::CompactionStallFloor`] oracle. Generated bursts (≤6× base
/// rate for ≤2 min) leave LSM stall exposure well under this; a service
/// past it has effectively lost write availability for a quarter of the
/// run, which no tuning outcome justifies.
pub const MAX_LSM_STALL_FRAC: f64 = 0.25;

impl Property {
    /// Every property, in check order.
    pub const ALL: [Property; 7] = [
        Property::AvailabilityFloor,
        Property::NoWedgedServices,
        Property::RollbackGuardCorrectness,
        Property::SampleHygiene,
        Property::ShardedIdentity,
        Property::SnapshotIdentity,
        Property::CompactionStallFloor,
    ];

    /// Stable snake_case name (the bug-base vocabulary).
    pub fn name(&self) -> &'static str {
        match self {
            Property::AvailabilityFloor => "availability_floor",
            Property::NoWedgedServices => "no_wedged_services",
            Property::RollbackGuardCorrectness => "rollback_guard_correctness",
            Property::SampleHygiene => "sample_hygiene",
            Property::ShardedIdentity => "sharded_identity",
            Property::SnapshotIdentity => "snapshot_identity",
            Property::CompactionStallFloor => "compaction_stall_floor",
        }
    }

    /// Inverse of [`Property::name`].
    pub fn from_name(name: &str) -> Option<Property> {
        Property::ALL.iter().copied().find(|p| p.name() == name)
    }

    /// Check this property against one finished run. `None` means it held;
    /// `Some(detail)` describes the violation.
    pub fn check(&self, profile: &Profile, out: &RunOutcome) -> Option<String> {
        match self {
            Property::AvailabilityFloor => {
                (out.availability < profile.availability_floor).then(|| {
                    format!(
                        "availability {:.4} below floor {:.4}",
                        out.availability, profile.availability_floor
                    )
                })
            }
            Property::NoWedgedServices => (!out.wedged.is_empty())
                .then(|| format!("nodes wedged after quiet tail: {:?}", out.wedged)),
            Property::RollbackGuardCorrectness => {
                if !out.guards_armed.is_empty() {
                    Some(format!(
                        "rollback guards still armed after quiet tail: {:?}",
                        out.guards_armed
                    ))
                } else if !out.drifted.is_empty() {
                    Some(format!(
                        "live config drifts from config of record: {:?}",
                        out.drifted
                    ))
                } else {
                    None
                }
            }
            Property::SampleHygiene => (out.online_low_samples > 0).then(|| {
                format!(
                    "{} low-quality samples leaked into online training",
                    out.online_low_samples
                )
            }),
            Property::ShardedIdentity => {
                let sharded_fp = out.fingerprint_sharded?;
                if sharded_fp != out.fingerprint_serial {
                    Some(format!(
                        "event-log fingerprints diverge: serial {:016x} vs sharded {:016x}",
                        out.fingerprint_serial, sharded_fp
                    ))
                } else if out.queries_sharded.as_ref() != Some(&out.queries_serial) {
                    Some("per-node query counters diverge between engines".to_string())
                } else {
                    None
                }
            }
            Property::SnapshotIdentity => {
                let resumed_fp = out.fingerprint_resumed?;
                if resumed_fp != out.fingerprint_serial {
                    Some(format!(
                        "event-log fingerprints diverge: uninterrupted {:016x} vs save/restore {:016x}",
                        out.fingerprint_serial, resumed_fp
                    ))
                } else if out.queries_resumed.as_ref() != Some(&out.queries_serial) {
                    Some(
                        "per-node query counters diverge across the snapshot round trip"
                            .to_string(),
                    )
                } else {
                    None
                }
            }
            Property::CompactionStallFloor => {
                let over: Vec<String> = out
                    .lsm_stall_frac
                    .iter()
                    .filter(|(_, frac)| *frac > MAX_LSM_STALL_FRAC)
                    .map(|(i, frac)| format!("node {i} stalled {:.1}% of the run", frac * 100.0))
                    .collect();
                (!over.is_empty()).then(|| {
                    format!(
                        "LSM write-stall budget {:.0}% exceeded: {}",
                        MAX_LSM_STALL_FRAC * 100.0,
                        over.join(", ")
                    )
                })
            }
        }
    }
}

/// A property that failed, with its evidence.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which invariant broke.
    pub property: Property,
    /// Human-readable evidence.
    pub detail: String,
}

/// Judge one finished run against the whole catalog, in catalog order.
pub fn check_all(profile: &Profile, out: &RunOutcome) -> Vec<Violation> {
    Property::ALL
        .iter()
        .filter_map(|p| {
            p.check(profile, out).map(|detail| Violation {
                property: *p,
                detail,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::profile;

    fn healthy() -> RunOutcome {
        RunOutcome {
            availability: 1.0,
            wedged: vec![],
            drifted: vec![],
            guards_armed: vec![],
            online_low_samples: 0,
            fingerprint_serial: 7,
            fingerprint_sharded: Some(7),
            queries_serial: vec![10, 20],
            queries_sharded: Some(vec![10, 20]),
            rollbacks: 0,
            lsm_stall_frac: vec![(1, 0.02)],
            fingerprint_resumed: Some(7),
            queries_resumed: Some(vec![10, 20]),
        }
    }

    #[test]
    fn names_round_trip() {
        for p in Property::ALL {
            assert_eq!(Property::from_name(p.name()), Some(p));
        }
        assert_eq!(Property::from_name("bogus"), None);
    }

    #[test]
    fn healthy_outcome_passes_every_property() {
        let p = profile("quiet").unwrap();
        assert!(check_all(p, &healthy()).is_empty());
    }

    #[test]
    fn each_defect_trips_exactly_its_property() {
        let p = profile("quiet").unwrap();
        let cases: Vec<(Property, RunOutcome)> = vec![
            (
                Property::AvailabilityFloor,
                RunOutcome {
                    availability: 0.5,
                    ..healthy()
                },
            ),
            (
                Property::NoWedgedServices,
                RunOutcome {
                    wedged: vec![2],
                    ..healthy()
                },
            ),
            (
                Property::RollbackGuardCorrectness,
                RunOutcome {
                    drifted: vec![0],
                    ..healthy()
                },
            ),
            (
                Property::RollbackGuardCorrectness,
                RunOutcome {
                    guards_armed: vec![1],
                    ..healthy()
                },
            ),
            (
                Property::SampleHygiene,
                RunOutcome {
                    online_low_samples: 3,
                    ..healthy()
                },
            ),
            (
                Property::ShardedIdentity,
                RunOutcome {
                    fingerprint_sharded: Some(8),
                    ..healthy()
                },
            ),
            (
                Property::ShardedIdentity,
                RunOutcome {
                    queries_sharded: Some(vec![10, 21]),
                    ..healthy()
                },
            ),
            (
                Property::SnapshotIdentity,
                RunOutcome {
                    fingerprint_resumed: Some(9),
                    ..healthy()
                },
            ),
            (
                Property::SnapshotIdentity,
                RunOutcome {
                    queries_resumed: Some(vec![10, 19]),
                    ..healthy()
                },
            ),
            (
                Property::CompactionStallFloor,
                RunOutcome {
                    lsm_stall_frac: vec![(1, 0.02), (3, MAX_LSM_STALL_FRAC + 0.1)],
                    ..healthy()
                },
            ),
        ];
        for (want, out) in cases {
            let violations = check_all(p, &out);
            assert_eq!(violations.len(), 1, "{want:?}");
            assert_eq!(violations[0].property, want);
        }
        // Without the doublecheck twins both identity oracles abstain.
        let solo = RunOutcome {
            fingerprint_sharded: None,
            queries_sharded: None,
            fingerprint_resumed: None,
            queries_resumed: None,
            ..healthy()
        };
        assert!(check_all(p, &solo).is_empty());
        // Without LSM nodes the compaction-stall oracle abstains.
        let all_pageheap = RunOutcome {
            lsm_stall_frac: vec![],
            ..healthy()
        };
        assert!(check_all(p, &all_pageheap).is_empty());
    }
}
