//! Deterministic delta-debugging over interaction plans.
//!
//! Given a failing plan and a predicate "does this plan still fail?", the
//! shrinker minimises in three phases: drop event *chunks* (classic ddmin,
//! geometric granularity), then drop *individual* events to a fixpoint —
//! which makes the result 1-minimal: removing any single remaining event
//! makes the plan pass — then *simplify parameters* toward neutral values
//! (shorter stalls, smaller factors, minute-aligned times). Everything is
//! RNG-free and iteration order is fixed, so the same failing plan shrinks
//! to the same counterexample on every machine.

use autodbaas_cloudsim::{FaultKind, InteractionPlan, PlanAction, PlanEvent};

/// What a shrink run did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShrinkStats {
    /// Events in the original plan.
    pub from_len: usize,
    /// Events in the shrunk plan.
    pub to_len: usize,
    /// Predicate evaluations spent.
    pub probes: usize,
}

/// Minimise `plan` against `fails` (which must return `true` for `plan`
/// itself — callers have already watched it fail). Returns the shrunk plan
/// and the work done. The result is 1-minimal under event removal; its
/// parameters are additionally simplified wherever simplification keeps
/// the failure.
pub fn shrink(
    plan: &InteractionPlan,
    mut fails: impl FnMut(&InteractionPlan) -> bool,
) -> (InteractionPlan, ShrinkStats) {
    let mut stats = ShrinkStats {
        from_len: plan.len(),
        to_len: plan.len(),
        probes: 0,
    };
    let mut events = plan.events().to_vec();
    let mut probe = |evs: &[PlanEvent], stats: &mut ShrinkStats| {
        stats.probes += 1;
        fails(&InteractionPlan::new(evs.to_vec()))
    };

    // Phase 1: ddmin chunk removal. Start at two chunks and double the
    // granularity when nothing can be dropped; whenever a complement still
    // fails, adopt it and re-coarsen.
    let mut n = 2usize;
    while events.len() >= 2 {
        let chunk = events.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0;
        while start < events.len() {
            let end = (start + chunk).min(events.len());
            let mut candidate = Vec::with_capacity(events.len() - (end - start));
            candidate.extend_from_slice(&events[..start]);
            candidate.extend_from_slice(&events[end..]);
            if !candidate.is_empty() && probe(&candidate, &mut stats) {
                events = candidate;
                n = (n.saturating_sub(1)).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if chunk <= 1 {
                break;
            }
            n = (n * 2).min(events.len());
        }
    }

    // Phase 2 + 3 to fixpoint: single-event removal (this is what makes
    // the result 1-minimal), then parameter simplification, repeating
    // while either finds anything — a simplified event can unlock a
    // removal and vice versa.
    loop {
        let mut changed = false;
        // Single-event removal.
        let mut i = 0;
        while i < events.len() && events.len() > 1 {
            let mut candidate = events.clone();
            candidate.remove(i);
            if probe(&candidate, &mut stats) {
                events = candidate;
                changed = true;
            } else {
                i += 1;
            }
        }
        // Parameter simplification, one candidate at a time.
        for i in 0..events.len() {
            for simpler in simplify(&events[i]) {
                if events[i] == simpler {
                    continue;
                }
                let mut candidate = events.clone();
                candidate[i] = simpler;
                if probe(&candidate, &mut stats) {
                    events = candidate;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    stats.to_len = events.len();
    (InteractionPlan::new(events), stats)
}

/// Candidate simplifications of one event, most aggressive first. Each is
/// only adopted if the plan still fails with it in place.
fn simplify(ev: &PlanEvent) -> Vec<PlanEvent> {
    let mut out = Vec::new();
    let mut push = |action: PlanAction| out.push(PlanEvent { action, ..*ev });
    match ev.action {
        PlanAction::Fault(kind) => match kind {
            FaultKind::TunerOutage { .. } => push(PlanAction::Fault(FaultKind::TunerOutage {
                duration_ms: 30_000,
            })),
            FaultKind::TelemetryDrop { .. } => push(PlanAction::Fault(FaultKind::TelemetryDrop {
                duration_ms: 60_000,
            })),
            FaultKind::DiskStall { .. } => push(PlanAction::Fault(FaultKind::DiskStall {
                duration_ms: 15_000,
                factor: 2.0,
            })),
            FaultKind::ReplicaLagSpike { .. } => {
                push(PlanAction::Fault(FaultKind::ReplicaLagSpike {
                    pause_ms: 30_000,
                }))
            }
            _ => {}
        },
        PlanAction::Burst { .. } => push(PlanAction::Burst {
            rate_qps: 400.0,
            duration_ms: 30_000,
        }),
        PlanAction::KnobPush { .. } => push(PlanAction::KnobPush { value: 0.5 }),
        PlanAction::Maintenance | PlanAction::AddReplica | PlanAction::RemoveReplica => {}
    }
    // Minute-align the timestamp — easier to read, and collapses the time
    // dimension for dedup across entries.
    if !ev.at.is_multiple_of(60_000) {
        out.push(PlanEvent {
            at: ev.at - ev.at % 60_000,
            ..*ev
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, node: usize, action: PlanAction) -> PlanEvent {
        PlanEvent { at, node, action }
    }

    fn big_plan() -> InteractionPlan {
        InteractionPlan::new(
            (0..50)
                .map(|i| {
                    ev(
                        (i as u64) * 7_001,
                        i % 4,
                        match i % 5 {
                            0 => PlanAction::Maintenance,
                            1 => PlanAction::Burst {
                                rate_qps: 900.0,
                                duration_ms: 60_000,
                            },
                            2 => PlanAction::Fault(FaultKind::VmCrash),
                            3 => PlanAction::KnobPush { value: 1.0 },
                            _ => PlanAction::Fault(FaultKind::DiskStall {
                                duration_ms: 45_000,
                                factor: 8.0,
                            }),
                        },
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn shrinks_a_single_culprit_to_one_event() {
        // The plan "fails" iff it still contains a KnobPush at full tilt —
        // the shrinker must find the 1-event counterexample (≥ 80% / here
        // 98% reduction) without knowing which event matters.
        let plan = big_plan();
        let fails = |p: &InteractionPlan| {
            p.events()
                .iter()
                .any(|e| matches!(e.action, PlanAction::KnobPush { value } if value >= 1.0))
        };
        assert!(fails(&plan), "the seeded plan must fail to begin with");
        let (shrunk, stats) = shrink(&plan, fails);
        assert_eq!(shrunk.len(), 1, "exactly the culprit survives");
        assert!(matches!(
            shrunk.events()[0].action,
            PlanAction::KnobPush { value } if value >= 1.0
        ));
        assert_eq!(stats.from_len, 50);
        assert_eq!(stats.to_len, 1);
        assert!(stats.to_len <= stats.from_len / 5, "≥ 80% reduction");
        // Timestamp got minute-aligned by the simplification phase.
        assert_eq!(shrunk.events()[0].at % 60_000, 0);
    }

    #[test]
    fn shrinking_is_deterministic() {
        let plan = big_plan();
        let fails = |p: &InteractionPlan| {
            p.events()
                .iter()
                .filter(|e| matches!(e.action, PlanAction::Fault(FaultKind::VmCrash)))
                .count()
                >= 2
        };
        let (a, sa) = shrink(&plan, fails);
        let (b, sb) = shrink(&plan, fails);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        assert_eq!(a.len(), 2, "two crashes are needed to keep failing");
    }

    #[test]
    fn parameters_simplify_toward_neutral_when_failure_is_kind_based() {
        let plan = InteractionPlan::new(vec![
            ev(
                77_777,
                0,
                PlanAction::Fault(FaultKind::DiskStall {
                    duration_ms: 45_000,
                    factor: 8.0,
                }),
            ),
            ev(10_000, 1, PlanAction::Maintenance),
        ]);
        // Fails whenever any disk stall exists at all.
        let fails = |p: &InteractionPlan| {
            p.events()
                .iter()
                .any(|e| matches!(e.action, PlanAction::Fault(FaultKind::DiskStall { .. })))
        };
        let (shrunk, _) = shrink(&plan, fails);
        assert_eq!(
            shrunk.events(),
            &[ev(
                60_000,
                0,
                PlanAction::Fault(FaultKind::DiskStall {
                    duration_ms: 15_000,
                    factor: 2.0,
                })
            )]
        );
    }
}
