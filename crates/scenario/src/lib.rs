//! Interaction-plan scenario simulator for the AutoDBaaS fleet.
//!
//! The chaos engine (`autodbaas-cloudsim::faults`) can *replay* seeded
//! fault plans; this crate *searches* for the conditions that break the
//! fleet, in the style of Turso's deterministic simulator and the safety
//! framing of OnlineTune:
//!
//! * [`profile`] — weighted, reusable scenario shapes (`quiet`,
//!   `diurnal-heavy`, `failover-storm`);
//! * [`gen`] — seeded generation of interaction plans (bursts, knob
//!   pushes, faults, maintenance, replica churn) from a profile's dice;
//! * [`run`] — drive a plan through the real [`FleetSim`] — serially,
//!   again on the sharded tick engine, and again interrupted by a
//!   mid-plan save/restore, as doublecheck twins;
//! * [`oracle`] — the named property catalog: availability floor, no
//!   wedged services, rollback-guard correctness, tuner-sample hygiene,
//!   serial-vs-sharded identity, snapshot identity;
//! * [`shrink`] — deterministic delta-debugging to a 1-minimal
//!   counterexample;
//! * [`bugbase`] — shrunk counterexamples persisted as TOML files that a
//!   tier-1 test replays forever;
//! * [`explore`] — the generate → run → judge → shrink → persist pipeline
//!   behind the `autodbaas-scenario` binary.
//!
//! Everything is deterministic given `(profile, seed)`: same inputs ⇒ same
//! plan fingerprint, same event-log fingerprint, same verdicts, on every
//! machine.
//!
//! [`FleetSim`]: autodbaas_cloudsim::FleetSim

pub mod bugbase;
pub mod explore;
pub mod gen;
pub mod oracle;
pub mod profile;
pub mod run;
pub mod shrink;

pub use bugbase::{format_event, load_dir, parse_event, BugEntry, BugStatus, ReplayVerdict};
pub use explore::{entry_from, explore_seed, shrink_violation, verdict_line, SeedVerdict};
pub use gen::generate;
pub use oracle::{check_all, Property, Violation};
pub use profile::{profile, ActionWeights, Profile, PROFILES};
pub use run::{run_plan, RunOutcome};
pub use shrink::{shrink, ShrinkStats};
