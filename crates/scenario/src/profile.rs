//! Weighted scenario profiles: reusable shapes of production trouble.
//!
//! A [`Profile`] describes one *kind* of day a managed fleet can have —
//! quiet drift, bursty diurnal load, a failover storm — as a set of weights
//! over the [`PlanAction`](autodbaas_cloudsim::PlanAction) classes plus the
//! fleet shape and the oracle thresholds a run of this profile must hold.
//! The generator turns `(profile, seed)` into a concrete interaction plan;
//! everything in the profile is data, so new profiles are one constant
//! away.

/// Relative weights over the generatable action classes. A weight of zero
/// removes the class from the profile's vocabulary entirely.
#[derive(Debug, Clone, Copy)]
pub struct ActionWeights {
    /// Chaos-engine faults (all eight [`FaultKind`](autodbaas_cloudsim::FaultKind)s).
    pub fault: u32,
    /// Traffic bursts.
    pub burst: u32,
    /// Adversarial whole-profile knob pushes.
    pub knob_push: u32,
    /// Maintenance-window rolling restarts.
    pub maintenance: u32,
    /// Replica adds.
    pub add_replica: u32,
    /// Replica removes.
    pub remove_replica: u32,
}

impl ActionWeights {
    /// Sum of all weights (the generator's dice size).
    pub fn total(&self) -> u32 {
        self.fault
            + self.burst
            + self.knob_push
            + self.maintenance
            + self.add_replica
            + self.remove_replica
    }
}

/// One reusable scenario shape.
#[derive(Debug, Clone, Copy)]
pub struct Profile {
    /// Stable name (`quiet`, `diurnal-heavy`, `failover-storm`); recorded
    /// in bug-base entries, so renaming one orphans its bugs.
    pub name: &'static str,
    /// One-line description for `autodbaas-scenario list`.
    pub blurb: &'static str,
    /// Fleet size.
    pub n_nodes: usize,
    /// Replicas each service starts with.
    pub n_slaves: usize,
    /// Per-tenant steady arrival rate, queries/second.
    pub base_qps: f64,
    /// Run length. Events are scheduled in the first 75% so the tail is
    /// quiet enough for every recovery, retry and guard to resolve.
    pub duration_ms: u64,
    /// Interactions per generated plan.
    pub n_events: usize,
    /// The dice.
    pub weights: ActionWeights,
    /// Fleet availability a run of this profile must keep (the
    /// `availability_floor` oracle).
    pub availability_floor: f64,
    /// Host a mixed-backend fleet: odd node indices run the LSM adapter,
    /// even ones the page heap, under the same control plane. Off, the
    /// whole fleet is page-heap Postgres. Mixed profiles are also judged
    /// by the LSM-only `compaction_stall_floor` oracle.
    pub mixed_backends: bool,
}

/// The built-in profile catalog.
pub const PROFILES: &[Profile] = &[
    Profile {
        name: "quiet",
        blurb: "light bursts and replica churn on a healthy fleet; near-full availability required",
        n_nodes: 3,
        n_slaves: 0,
        base_qps: 200.0,
        duration_ms: 8 * 60 * 1_000,
        n_events: 6,
        weights: ActionWeights {
            fault: 0,
            burst: 5,
            knob_push: 1,
            maintenance: 0,
            add_replica: 2,
            remove_replica: 2,
        },
        availability_floor: 0.999,
        mixed_backends: false,
    },
    Profile {
        name: "diurnal-heavy",
        blurb: "heavy bursts, adversarial knob pushes and occasional faults over a mixed page-heap/LSM tuning fleet",
        n_nodes: 4,
        n_slaves: 1,
        base_qps: 250.0,
        duration_ms: 12 * 60 * 1_000,
        n_events: 14,
        weights: ActionWeights {
            fault: 3,
            burst: 6,
            knob_push: 3,
            maintenance: 1,
            add_replica: 1,
            remove_replica: 1,
        },
        availability_floor: 0.95,
        mixed_backends: true,
    },
    Profile {
        name: "failover-storm",
        blurb: "crash-dominated: VM crashes, maintenance restarts and replica churn back to back",
        n_nodes: 4,
        n_slaves: 1,
        base_qps: 200.0,
        duration_ms: 12 * 60 * 1_000,
        n_events: 12,
        weights: ActionWeights {
            fault: 6,
            burst: 1,
            knob_push: 1,
            maintenance: 3,
            add_replica: 2,
            remove_replica: 2,
        },
        availability_floor: 0.80,
        mixed_backends: false,
    },
];

/// Look up a profile by name.
pub fn profile(name: &str) -> Option<&'static Profile> {
    PROFILES.iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_well_formed() {
        assert_eq!(PROFILES.len(), 3);
        for p in PROFILES {
            assert!(p.weights.total() > 0, "{}: dead dice", p.name);
            assert!(p.n_nodes > 0 && p.n_events > 0);
            assert!((0.0..=1.0).contains(&p.availability_floor));
            assert!(p.duration_ms >= 60_000);
            assert_eq!(profile(p.name).map(|q| q.name), Some(p.name));
        }
        assert!(profile("no-such-profile").is_none());
    }
}
