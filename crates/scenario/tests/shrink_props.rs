//! Property tests for the delta-debugging shrinker.
//!
//! The shrinker's contract has two halves, checked here over arbitrary
//! generated plans and an artificial (cheap, simulator-free) failure
//! predicate:
//!
//! 1. **soundness** — the shrunk plan still fails the same predicate the
//!    original failed;
//! 2. **1-minimality** — removing any single event from the shrunk plan
//!    makes the predicate pass, so every surviving event is load-bearing.
//!
//! Plus determinism: the same failing plan shrinks to the same
//! counterexample every time.
//!
//! The vendored proptest shim only generates scalars and vectors, so each
//! event is decoded from one generated word; every plan-action kind is
//! reachable.

use autodbaas_cloudsim::{FaultKind, InteractionPlan, PlanAction, PlanEvent};
use autodbaas_scenario::shrink;
use proptest::prelude::*;

/// Deterministically unpack one generated word into a plan event, covering
/// every action kind (and a parameter spread for the parametric ones).
fn decode_event(w: u64) -> PlanEvent {
    let at = (w % 600) * 1_000;
    let node = ((w >> 10) % 4) as usize;
    let action = match (w >> 16) % 9 {
        0 => PlanAction::Fault(FaultKind::VmCrash),
        1 => PlanAction::Fault(FaultKind::RequestLoss),
        2 => PlanAction::Fault(FaultKind::TunerOutage {
            duration_ms: 10_000 + (w >> 24) % 110_000,
        }),
        3 => PlanAction::Fault(FaultKind::DiskStall {
            duration_ms: 10_000 + (w >> 24) % 80_000,
            factor: 2.0 + ((w >> 40) % 8) as f64,
        }),
        4 => PlanAction::Burst {
            rate_qps: (200 + (w >> 24) % 1_000) as f64,
            duration_ms: 15_000 + (w >> 40) % 105_000,
        },
        5 => PlanAction::KnobPush {
            value: ((w >> 24) % 5) as f64 * 0.25,
        },
        6 => PlanAction::Maintenance,
        7 => PlanAction::AddReplica,
        _ => PlanAction::RemoveReplica,
    };
    PlanEvent { at, node, action }
}

/// Build a plan from generated words, then append `crashes` guaranteed
/// fault events so the counting predicate provably fails up front (the
/// shim has no `prop_assume`, so failure is made structural instead).
fn plan_with_crashes(raw: &[u64], crashes: &[u64]) -> InteractionPlan {
    let mut events: Vec<PlanEvent> = raw.iter().map(|&w| decode_event(w)).collect();
    events.extend(crashes.iter().map(|&w| PlanEvent {
        at: (w % 600) * 1_000,
        node: ((w >> 10) % 4) as usize,
        action: PlanAction::Fault(FaultKind::VmCrash),
    }));
    InteractionPlan::new(events)
}

/// The artificial property: "fails" while the plan still holds at least
/// `threshold` fault events. Kind-based, so the shrinker cannot cheat by
/// tweaking parameters, and cheap enough for thousands of probes.
fn fault_count(p: &InteractionPlan) -> usize {
    p.events()
        .iter()
        .filter(|e| matches!(e.action, PlanAction::Fault(_)))
        .count()
}

proptest! {
    /// Soundness + 1-minimality for the "any fault present" predicate: the
    /// shrunk plan must still contain a fault, and must contain *only*
    /// load-bearing events — dropping any one of them kills the failure.
    #[test]
    fn shrunk_plan_still_fails_and_is_one_minimal(
        raw in prop::collection::vec(0u64..u64::MAX, 0..=36),
        crash in 0u64..u64::MAX,
    ) {
        let plan = plan_with_crashes(&raw, &[crash]);
        let fails = |p: &InteractionPlan| fault_count(p) >= 1;
        prop_assert!(fails(&plan), "construction guarantees an initial failure");
        let (shrunk, stats) = shrink(&plan, fails);
        prop_assert!(fails(&shrunk), "shrinking lost the failure");
        prop_assert_eq!(stats.from_len, plan.len());
        prop_assert_eq!(stats.to_len, shrunk.len());
        prop_assert_eq!(shrunk.len(), 1, "one fault suffices, so one event survives");
        for i in 0..shrunk.len() {
            let mut fewer = shrunk.events().to_vec();
            fewer.remove(i);
            prop_assert!(
                !fails(&InteractionPlan::new(fewer)),
                "event {i} of the shrunk plan is not load-bearing"
            );
        }
    }

    /// Same contract at a higher threshold — minimality pins the surviving
    /// fault count from above, soundness from below, and no non-fault
    /// passenger may ride along.
    #[test]
    fn shrinking_preserves_a_counting_predicate_exactly(
        raw in prop::collection::vec(0u64..u64::MAX, 0..=36),
        crashes in prop::collection::vec(0u64..u64::MAX, 2..=3),
    ) {
        let threshold = crashes.len();
        let plan = plan_with_crashes(&raw, &crashes);
        let fails = |p: &InteractionPlan| fault_count(p) >= threshold;
        prop_assert!(fails(&plan));
        let (shrunk, _) = shrink(&plan, fails);
        prop_assert_eq!(fault_count(&shrunk), threshold);
        prop_assert_eq!(shrunk.len(), threshold, "non-fault passengers survived");
        for i in 0..shrunk.len() {
            let mut fewer = shrunk.events().to_vec();
            fewer.remove(i);
            prop_assert!(!fails(&InteractionPlan::new(fewer)));
        }
    }

    /// Determinism: two shrinks of the same plan agree bit-for-bit, probe
    /// counts and all.
    #[test]
    fn shrinking_is_reproducible(
        raw in prop::collection::vec(0u64..u64::MAX, 0..=36),
        crash in 0u64..u64::MAX,
    ) {
        let plan = plan_with_crashes(&raw, &[crash]);
        let fails = |p: &InteractionPlan| fault_count(p) >= 1;
        let (a, sa) = shrink(&plan, fails);
        let (b, sb) = shrink(&plan, fails);
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
        prop_assert_eq!(a, b);
        prop_assert_eq!(sa, sb);
    }
}
