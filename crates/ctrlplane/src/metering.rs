//! Recommendation-cost metering (§1: GPR training time "can also be
//! inferred as a cost for a BO style tuners — 'recommendation-cost' to
//! service-provider").
//!
//! A PaaS provider pays for tuner-instance compute whether or not a
//! recommendation was needed. This meter attributes tuner busy-time to the
//! requesting tenant, prices it against an hourly instance rate, and
//! reports per-tenant and fleet totals — the number the TDE's request
//! reduction directly shrinks.

use crate::orchestrator::ServiceId;
use autodbaas_simdb::BackendKind;
use std::collections::BTreeMap;

/// Hourly price of one tuner instance (the paper's m4.xlarge, on-demand
/// 2020 pricing ≈ $0.20/h).
pub const DEFAULT_TUNER_RATE_PER_HOUR: f64 = 0.20;

/// Per-tenant accumulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct TenantUsage {
    /// Recommendations computed for this tenant.
    pub recommendations: u64,
    /// Tuner busy-time consumed, ms.
    pub tuner_busy_ms: f64,
    /// Gateway requests admitted and served for this tenant.
    pub gateway_requests: u64,
    /// Gateway requests refused with `Busy` (admission-control shed).
    pub gateway_busy: u64,
    /// Request payload bytes received over the wire.
    pub gateway_bytes_in: u64,
    /// Response payload bytes sent over the wire.
    pub gateway_bytes_out: u64,
    /// Storage engine behind this tenant's service, once known. Billing
    /// reports split by engine: an LSM tenant's write-stall tuning profile
    /// prices differently from a page-heap tenant's checkpoint tuning.
    pub backend: Option<BackendKind>,
    /// Tuner candidates clamped into the learned safe region before apply.
    pub safety_clamps: u64,
    /// Observation windows that breached the tenant's safety SLO floor.
    pub slo_breaches: u64,
}

/// The fleet-level meter.
///
/// # Examples
///
/// ```
/// use autodbaas_ctrlplane::{RecommendationMeter, ServiceId};
///
/// let mut meter = RecommendationMeter::new(0.20);
/// meter.record(ServiceId(0), 110_000.0); // one 110 s GPR run
/// assert_eq!(meter.usage(ServiceId(0)).recommendations, 1);
/// assert!(meter.tenant_cost(ServiceId(0)) > 0.0);
/// ```
/// Tenants are kept in a `BTreeMap` so [`RecommendationMeter::totals`]
/// sums the f64 busy-time in service-id order — hash-order iteration would
/// make the low bits of the fleet total vary between processes.
#[derive(Debug, Clone)]
pub struct RecommendationMeter {
    rate_per_hour: f64,
    tenants: BTreeMap<ServiceId, TenantUsage>,
}

impl Default for RecommendationMeter {
    fn default() -> Self {
        Self::new(DEFAULT_TUNER_RATE_PER_HOUR)
    }
}

impl RecommendationMeter {
    /// Meter with an hourly tuner-instance rate.
    pub fn new(rate_per_hour: f64) -> Self {
        assert!(rate_per_hour >= 0.0);
        Self {
            rate_per_hour,
            tenants: BTreeMap::new(),
        }
    }

    /// Record one recommendation of `service_time_ms` tuner busy-time for
    /// `tenant`.
    pub fn record(&mut self, tenant: ServiceId, service_time_ms: f64) {
        let u = self.tenants.entry(tenant).or_default();
        u.recommendations += 1;
        u.tuner_busy_ms += service_time_ms.max(0.0);
    }

    /// Record one gateway request served for `tenant` and the payload
    /// bytes it moved. The TDE's request suppression shows up here: a
    /// suppressed tenant accrues gateway traffic but no `record` calls,
    /// so its metered tuner cost stays flat while its wire usage grows.
    pub fn record_gateway(&mut self, tenant: ServiceId, bytes_in: u64, bytes_out: u64) {
        let u = self.tenants.entry(tenant).or_default();
        u.gateway_requests += 1;
        u.gateway_bytes_in += bytes_in;
        u.gateway_bytes_out += bytes_out;
    }

    /// Record one gateway request shed with a `Busy` reply for `tenant`.
    pub fn record_gateway_busy(&mut self, tenant: ServiceId) {
        self.tenants.entry(tenant).or_default().gateway_busy += 1;
    }

    /// Record which storage engine serves `tenant` (idempotent; the last
    /// write wins, matching a plan migration).
    pub fn set_backend(&mut self, tenant: ServiceId, backend: BackendKind) {
        self.tenants.entry(tenant).or_default().backend = Some(backend);
    }

    /// Record one safety clamp: the safe-tuning layer pulled a tuner
    /// candidate back inside the learned safe region before it was applied.
    pub fn record_safety_clamp(&mut self, tenant: ServiceId) {
        self.tenants.entry(tenant).or_default().safety_clamps += 1;
    }

    /// Record one safety-SLO breach: an observation window whose objective
    /// fell below the tenant's contracted floor.
    pub fn record_slo_breach(&mut self, tenant: ServiceId) {
        self.tenants.entry(tenant).or_default().slo_breaches += 1;
    }

    /// Per-engine recommendation counts: `(pageheap, lsm, unattributed)`.
    /// Tenants whose backend was never reported land in the last bucket.
    pub fn backend_totals(&self) -> (u64, u64, u64) {
        let mut t = (0u64, 0u64, 0u64);
        for u in self.tenants.values() {
            match u.backend {
                Some(BackendKind::PageHeap) => t.0 += u.recommendations,
                Some(BackendKind::Lsm) => t.1 += u.recommendations,
                None => t.2 += u.recommendations,
            }
        }
        t
    }

    /// Fleet-wide safety totals: `(safety_clamps, slo_breaches)`.
    pub fn safety_totals(&self) -> (u64, u64) {
        let mut t = (0u64, 0u64);
        for u in self.tenants.values() {
            t.0 += u.safety_clamps;
            t.1 += u.slo_breaches;
        }
        t
    }

    /// Fleet-wide gateway totals: `(requests, busy, bytes_in, bytes_out)`.
    pub fn gateway_totals(&self) -> (u64, u64, u64, u64) {
        let mut t = (0u64, 0u64, 0u64, 0u64);
        for u in self.tenants.values() {
            t.0 += u.gateway_requests;
            t.1 += u.gateway_busy;
            t.2 += u.gateway_bytes_in;
            t.3 += u.gateway_bytes_out;
        }
        t
    }

    /// Usage for one tenant.
    pub fn usage(&self, tenant: ServiceId) -> TenantUsage {
        self.tenants.get(&tenant).copied().unwrap_or_default()
    }

    /// Cost attributed to one tenant, in dollars.
    pub fn tenant_cost(&self, tenant: ServiceId) -> f64 {
        self.usage(tenant).tuner_busy_ms / 3_600_000.0 * self.rate_per_hour
    }

    /// Fleet totals: `(recommendations, busy_ms, dollars)`.
    pub fn totals(&self) -> (u64, f64, f64) {
        let recs = self.tenants.values().map(|u| u.recommendations).sum();
        let busy: f64 = self.tenants.values().map(|u| u.tuner_busy_ms).sum();
        (recs, busy, busy / 3_600_000.0 * self.rate_per_hour)
    }

    /// Tuner instances needed to serve this load within `horizon_ms` of
    /// wall time — the §1 "one Ottertune deployment can be bound to a
    /// maximum of 3 to 4 service instances" arithmetic inverted.
    pub fn instances_needed(&self, horizon_ms: f64) -> u64 {
        if horizon_ms <= 0.0 {
            return 0;
        }
        let (_, busy, _) = self.totals();
        (busy / horizon_ms).ceil() as u64
    }
}

use autodbaas_snapshot::snap_struct;

snap_struct!(TenantUsage {
    recommendations,
    tuner_busy_ms,
    gateway_requests,
    gateway_busy,
    gateway_bytes_in,
    gateway_bytes_out,
    backend,
    safety_clamps,
    slo_breaches
});

snap_struct!(RecommendationMeter {
    rate_per_hour,
    tenants
});

#[cfg(test)]
mod tests {
    use super::*;

    fn svc(n: u64) -> ServiceId {
        ServiceId(n)
    }

    #[test]
    fn records_and_prices_per_tenant() {
        let mut m = RecommendationMeter::new(0.20);
        // Two 110 s GPR runs for tenant 0, one for tenant 1.
        m.record(svc(0), 110_000.0);
        m.record(svc(0), 110_000.0);
        m.record(svc(1), 110_000.0);
        assert_eq!(m.usage(svc(0)).recommendations, 2);
        let c0 = m.tenant_cost(svc(0));
        let c1 = m.tenant_cost(svc(1));
        assert!((c0 - 2.0 * c1).abs() < 1e-12);
        // 220 s at $0.20/h ≈ $0.0122.
        assert!((c0 - 220.0 / 3600.0 * 0.20).abs() < 1e-9);
    }

    #[test]
    fn totals_aggregate_the_fleet() {
        let mut m = RecommendationMeter::default();
        for i in 0..10 {
            m.record(svc(i), 60_000.0);
        }
        let (recs, busy, dollars) = m.totals();
        assert_eq!(recs, 10);
        assert!((busy - 600_000.0).abs() < 1e-9);
        assert!(dollars > 0.0);
    }

    #[test]
    fn instances_needed_reproduces_the_papers_bound() {
        // §1: 5-minute polling with ~110 s GPR time binds one deployment to
        // 3–4 databases. Check: over one hour, one database costs 12 × 110 s
        // = 1320 s of tuner time; 4 databases ≈ 5280 s ≈ 1.5 instances-hours
        // worth... i.e. >1 instance at 3600 s/h. So 3–4 DBs saturate ~1–2.
        let mut m = RecommendationMeter::default();
        for db in 0..4u64 {
            for _ in 0..12 {
                m.record(svc(db), 110_000.0);
            }
        }
        let needed = m.instances_needed(3_600_000.0);
        assert!(
            (1..=2).contains(&needed),
            "4 DBs at 5-min polling ≈ 1-2 tuners, got {needed}"
        );
        // 80 databases at the same cadence need ~20x that — the Fig. 9
        // scalability problem.
        let mut m80 = RecommendationMeter::default();
        for db in 0..80u64 {
            for _ in 0..12 {
                m80.record(svc(db), 110_000.0);
            }
        }
        assert!(m80.instances_needed(3_600_000.0) >= 25);
    }

    #[test]
    fn gateway_counters_accumulate_independently_of_tuner_cost() {
        let mut m = RecommendationMeter::new(0.20);
        // Tenant 0: all traffic suppressed at the gateway — wire usage
        // grows, tuner cost stays zero.
        m.record_gateway(svc(0), 64, 16);
        m.record_gateway(svc(0), 64, 16);
        m.record_gateway_busy(svc(0));
        // Tenant 1: one forwarded request that cost a recommendation.
        m.record_gateway(svc(1), 48, 24);
        m.record(svc(1), 110_000.0);

        let u0 = m.usage(svc(0));
        assert_eq!(u0.gateway_requests, 2);
        assert_eq!(u0.gateway_busy, 1);
        assert_eq!(u0.gateway_bytes_in, 128);
        assert_eq!(u0.gateway_bytes_out, 32);
        assert_eq!(u0.recommendations, 0);
        assert_eq!(m.tenant_cost(svc(0)), 0.0);

        let u1 = m.usage(svc(1));
        assert_eq!(u1.gateway_requests, 1);
        assert_eq!(u1.recommendations, 1);
        assert!(m.tenant_cost(svc(1)) > 0.0);

        assert_eq!(m.gateway_totals(), (3, 1, 176, 56));
    }

    #[test]
    fn backend_and_safety_totals_split_by_engine() {
        let mut m = RecommendationMeter::default();
        m.set_backend(svc(0), BackendKind::PageHeap);
        m.set_backend(svc(1), BackendKind::Lsm);
        m.record(svc(0), 1_000.0);
        m.record(svc(0), 1_000.0);
        m.record(svc(1), 1_000.0);
        m.record(svc(2), 1_000.0); // never attributed
        m.record_safety_clamp(svc(1));
        m.record_safety_clamp(svc(1));
        m.record_slo_breach(svc(2));
        assert_eq!(m.backend_totals(), (2, 1, 1));
        assert_eq!(m.safety_totals(), (2, 1));
        assert_eq!(m.usage(svc(1)).backend, Some(BackendKind::Lsm));
        // A plan migration re-attributes: last write wins.
        m.set_backend(svc(0), BackendKind::Lsm);
        assert_eq!(m.backend_totals(), (0, 3, 1));
    }

    #[test]
    fn unknown_tenant_is_zero() {
        let m = RecommendationMeter::default();
        assert_eq!(m.usage(svc(9)).recommendations, 0);
        assert_eq!(m.tenant_cost(svc(9)), 0.0);
        assert_eq!(m.instances_needed(0.0), 0);
    }
}
