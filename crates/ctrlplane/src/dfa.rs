//! Data Federation Agent (§2).
//!
//! "The DFA fetches the credentials from Service Orchestrator layer and
//! hits the APIs of TDE to apply configs to all nodes of the database
//! service … The DFA has multiple adapter implementations to get connected
//! to various kinds of database services."
//!
//! The adapter boundary is what lets one control plane speak to PostgreSQL
//! and MySQL services alike: a tuner emits a *normalised* config vector;
//! the flavor's adapter translates it into concrete knob changes and picks
//! the apply mode (reload when possible — §4 measures reload signals as the
//! low-jitter option).

use crate::apply::{ApplyError, ReplicaSet};
use crate::orchestrator::{Credentials, ServiceId, ServiceOrchestrator};
use autodbaas_simdb::{ApplyMode, ApplyReport, ConfigChange, DbFlavor, KnobProfile};
use autodbaas_tuner::denormalize_config;

/// Errors surfaced by the DFA.
#[derive(Debug, PartialEq, Eq)]
pub enum DfaError {
    /// No credentials for the service (not provisioned / deprovisioned).
    NoCredentials,
    /// No adapter registered for the flavor.
    NoAdapter(DbFlavor),
    /// The replica-set apply failed.
    Apply(ApplyError),
}

impl std::fmt::Display for DfaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DfaError::NoCredentials => write!(f, "no credentials for service"),
            DfaError::NoAdapter(fl) => write!(f, "no adapter for flavor {fl}"),
            DfaError::Apply(e) => write!(f, "apply failed: {e}"),
        }
    }
}

impl std::error::Error for DfaError {}

/// A flavor-specific adapter: translates a normalised config vector into
/// concrete knob changes.
pub trait DbAdapter: Send + Sync {
    /// The flavor this adapter speaks.
    fn flavor(&self) -> DbFlavor;

    /// Translate a normalised (`[0,1]` per knob) config vector.
    fn translate(&self, profile: &KnobProfile, unit_config: &[f64]) -> Vec<ConfigChange>;

    /// Preferred apply mode for a set of changes: reload unless a
    /// restart-bound knob changed *and* the caller allows restarts.
    fn pick_mode(
        &self,
        profile: &KnobProfile,
        changes: &[ConfigChange],
        allow_restart: bool,
    ) -> ApplyMode {
        let needs_restart = changes
            .iter()
            .any(|c| profile.spec(c.knob).restart_required);
        if needs_restart && allow_restart {
            ApplyMode::Restart
        } else {
            ApplyMode::Reload
        }
    }
}

/// PostgreSQL adapter.
#[derive(Debug, Default)]
pub struct PostgresAdapter;

/// MySQL adapter.
#[derive(Debug, Default)]
pub struct MySqlAdapter;

fn translate_common(profile: &KnobProfile, unit_config: &[f64]) -> Vec<ConfigChange> {
    let raw = denormalize_config(profile, unit_config);
    profile
        .iter()
        .zip(raw)
        .map(|((id, _), value)| ConfigChange { knob: id, value })
        .collect()
}

impl DbAdapter for PostgresAdapter {
    fn flavor(&self) -> DbFlavor {
        DbFlavor::Postgres
    }
    fn translate(&self, profile: &KnobProfile, unit_config: &[f64]) -> Vec<ConfigChange> {
        assert_eq!(profile.flavor(), DbFlavor::Postgres);
        translate_common(profile, unit_config)
    }
}

impl DbAdapter for MySqlAdapter {
    fn flavor(&self) -> DbFlavor {
        DbFlavor::MySql
    }
    fn translate(&self, profile: &KnobProfile, unit_config: &[f64]) -> Vec<ConfigChange> {
        assert_eq!(profile.flavor(), DbFlavor::MySql);
        translate_common(profile, unit_config)
    }
}

/// The DFA: adapter registry + apply entry point.
pub struct DataFederationAgent {
    adapters: Vec<Box<dyn DbAdapter>>,
}

impl Default for DataFederationAgent {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for DataFederationAgent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DataFederationAgent({} adapters)", self.adapters.len())
    }
}

impl DataFederationAgent {
    /// DFA with both built-in adapters registered.
    pub fn new() -> Self {
        Self {
            adapters: vec![Box::new(PostgresAdapter), Box::new(MySqlAdapter)],
        }
    }

    /// DFA with no adapters (register explicitly).
    pub fn empty() -> Self {
        Self {
            adapters: Vec::new(),
        }
    }

    /// Register an adapter.
    pub fn register(&mut self, adapter: Box<dyn DbAdapter>) {
        self.adapters.push(adapter);
    }

    fn adapter_for(&self, flavor: DbFlavor) -> Option<&dyn DbAdapter> {
        self.adapters
            .iter()
            .find(|a| a.flavor() == flavor)
            .map(|b| b.as_ref())
    }

    /// Apply a normalised recommendation to every node of a service:
    /// fetch credentials, translate via the flavor adapter, apply
    /// slave-first, and return the credentials used plus the report so the
    /// director can persist on success.
    pub fn apply_recommendation(
        &self,
        orchestrator: &ServiceOrchestrator,
        service: ServiceId,
        rs: &mut ReplicaSet,
        unit_config: &[f64],
        allow_restart: bool,
    ) -> Result<(Credentials, ApplyReport), DfaError> {
        let creds = orchestrator
            .credentials(service)
            .cloned()
            .ok_or(DfaError::NoCredentials)?;
        let flavor = rs.master().flavor();
        let adapter = self
            .adapter_for(flavor)
            .ok_or(DfaError::NoAdapter(flavor))?;
        let profile = rs.master().profile().clone();
        let changes = adapter.translate(&profile, unit_config);
        let mode = adapter.pick_mode(&profile, &changes, allow_restart);
        let report = rs.apply(&changes, mode).map_err(DfaError::Apply)?;
        Ok((creds, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orchestrator::ServiceSpec;
    use autodbaas_simdb::{Catalog, DiskKind, InstanceType};

    fn provision() -> (ServiceOrchestrator, ServiceId, ReplicaSet) {
        let mut orch = ServiceOrchestrator::new();
        let (id, rs) = orch.provision(ServiceSpec {
            flavor: DbFlavor::Postgres,
            instance: InstanceType::M4XLarge,
            disk: DiskKind::Ssd,
            catalog: Catalog::synthetic(4, 200_000_000, 150, 1),
            n_slaves: 1,
            seed: 9,
        });
        (orch, id, rs)
    }

    #[test]
    fn adapters_translate_full_config_vectors() {
        let profile = KnobProfile::postgres();
        let unit = vec![0.5; profile.len()];
        let changes = PostgresAdapter.translate(&profile, &unit);
        assert_eq!(changes.len(), profile.len());
        for c in &changes {
            let spec = profile.spec(c.knob);
            assert!((c.value - (spec.min + 0.5 * (spec.max - spec.min))).abs() < 1e-6);
        }
    }

    #[test]
    fn pick_mode_prefers_reload() {
        let profile = KnobProfile::postgres();
        let wm = profile.lookup("work_mem").unwrap();
        let sb = profile.lookup("shared_buffers").unwrap();
        let a = PostgresAdapter;
        let reloadable = [ConfigChange {
            knob: wm,
            value: 1e6,
        }];
        assert_eq!(a.pick_mode(&profile, &reloadable, true), ApplyMode::Reload);
        let restarty = [ConfigChange {
            knob: sb,
            value: 1e9,
        }];
        assert_eq!(a.pick_mode(&profile, &restarty, true), ApplyMode::Restart);
        // Restart disallowed outside maintenance: reload (staging the knob).
        assert_eq!(a.pick_mode(&profile, &restarty, false), ApplyMode::Reload);
    }

    #[test]
    fn apply_recommendation_happy_path() {
        let (orch, id, mut rs) = provision();
        let dfa = DataFederationAgent::new();
        let unit = vec![0.5; rs.master().profile().len()];
        let (creds, report) = dfa
            .apply_recommendation(&orch, id, &mut rs, &unit, false)
            .unwrap();
        assert!(creds.user.starts_with("admin-"));
        assert!(!report.applied.is_empty());
        // Restart-bound knobs were staged, not applied.
        assert!(!report.deferred.is_empty());
    }

    #[test]
    fn missing_credentials_is_an_error() {
        let (mut orch, id, mut rs) = provision();
        orch.deprovision(id);
        let dfa = DataFederationAgent::new();
        let unit = vec![0.5; rs.master().profile().len()];
        let err = dfa
            .apply_recommendation(&orch, id, &mut rs, &unit, false)
            .unwrap_err();
        assert_eq!(err, DfaError::NoCredentials);
    }

    #[test]
    fn missing_adapter_is_an_error() {
        let (orch, id, mut rs) = provision();
        let dfa = DataFederationAgent::empty();
        let unit = vec![0.5; rs.master().profile().len()];
        let err = dfa
            .apply_recommendation(&orch, id, &mut rs, &unit, false)
            .unwrap_err();
        assert_eq!(err, DfaError::NoAdapter(DbFlavor::Postgres));
    }

    #[test]
    fn slave_crash_propagates_as_apply_error() {
        let (orch, id, mut rs) = provision();
        rs.inject_slave_crash(0);
        let dfa = DataFederationAgent::new();
        let unit = vec![0.5; rs.master().profile().len()];
        let err = dfa
            .apply_recommendation(&orch, id, &mut rs, &unit, false)
            .unwrap_err();
        assert!(matches!(
            err,
            DfaError::Apply(ApplyError::SlaveCrashed { .. })
        ));
    }
}
