//! PaaS control plane for the AutoDBaaS reproduction (§2 and §4).
//!
//! The paper's architecture (Fig. 1) splits the service side into a
//! config director, service orchestrator, data federation agent, and
//! recovery machinery. This crate reproduces that control plane as a
//! library:
//!
//! * [`director`] — tuning-request load balancing over tuner instances and
//!   the config data repository (the Fig. 9 measurement point);
//! * [`orchestrator`] — lifecycle, credentials, and the persistence storage
//!   that makes tuned configs survive redeployments;
//! * [`dfa`] — flavor adapters translating normalised recommendations into
//!   knob changes, applied slave-first;
//! * [`apply`] — the replica-set apply protocol with fault injection;
//! * [`reconciler`] — watcher-timeout reconciliation back to the persisted
//!   config after partial failures;
//! * [`maintenance`] — scheduled windows and the §4 non-tunable
//!   (restart-bound) buffer-knob rule.

pub mod apply;
pub mod dfa;
pub mod director;
pub mod maintenance;
pub mod metering;
pub mod orchestrator;
pub mod reconciler;

pub use apply::{ApplyError, FailoverReport, ReplicaSet};
pub use dfa::{DataFederationAgent, DbAdapter, DfaError, MySqlAdapter, PostgresAdapter};
pub use director::{Assignment, ConfigDirector, TunerKind, TunerSlot, WindowStat};
pub use maintenance::{plan_buffer_update, MaintenanceSchedule};
pub use metering::{RecommendationMeter, TenantUsage, DEFAULT_TUNER_RATE_PER_HOUR};
pub use orchestrator::{Credentials, ServiceId, ServiceOrchestrator, ServiceSpec};
pub use reconciler::{ReconcileOutcome, Reconciler};
