//! Config director (§2).
//!
//! "The config director receives the metric data … from service instances
//! and triggers recommendation requests to tuner instances. The config
//! director performs load balancing of recommendation request tasks across
//! multiple tuner instances," and stores every accepted recommendation in
//! the config data repository.
//!
//! The director does not run ML itself; it *assigns* requests to tuner
//! instances, each of which is busy for the duration of its (modelled or
//! real) training time. The per-minute request log is the measurement
//! behind Fig. 9.

use crate::orchestrator::ServiceId;
use autodbaas_telemetry::{SimTime, MILLIS_PER_MIN};
use std::collections::HashMap;

/// Which tuner style an instance runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TunerKind {
    /// OtterTune-style BO (slow recommendations, experience transfer).
    Bo,
    /// CDBTune-style RL (fast recommendations, trial-and-error).
    Rl,
}

/// One tuner deployment tracked by the director.
#[derive(Debug, Clone, Copy)]
pub struct TunerSlot {
    /// Stable index.
    pub id: usize,
    /// Tuner style.
    pub kind: TunerKind,
    /// Busy until this sim time (work is serialised per instance).
    pub busy_until: SimTime,
    /// Requests served so far.
    pub requests_served: u64,
}

/// A request assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assignment {
    /// Chosen tuner instance.
    pub tuner: usize,
    /// When the recommendation will be ready.
    pub ready_at: SimTime,
}

/// One closed observation window, as reported to the director ("the config
/// director receives the metric data … from service instances").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowStat {
    /// Reporting service.
    pub service: ServiceId,
    /// Objective (queries/second) over the window.
    pub objective: f64,
}

/// The config director.
#[derive(Debug)]
pub struct ConfigDirector {
    tuners: Vec<TunerSlot>,
    request_log: Vec<SimTime>,
    config_repo: HashMap<ServiceId, Vec<(SimTime, Vec<f64>)>>,
    windows_ingested: u64,
    last_window_at: SimTime,
    last_window_mean_objective: f64,
}

impl ConfigDirector {
    /// Director over the given tuner fleet (the paper runs 12 instances
    /// behind 5 directors; one director object per director VM).
    pub fn new(kinds: &[TunerKind]) -> Self {
        assert!(!kinds.is_empty(), "a director needs at least one tuner");
        let tuners = kinds
            .iter()
            .enumerate()
            .map(|(id, &kind)| TunerSlot {
                id,
                kind,
                busy_until: 0,
                requests_served: 0,
            })
            .collect();
        Self {
            tuners,
            request_log: Vec::new(),
            config_repo: HashMap::new(),
            windows_ingested: 0,
            last_window_at: 0,
            last_window_mean_objective: 0.0,
        }
    }

    /// Ingest one batch of closed observation windows. The fleet simulator
    /// calls this once per TDE round with every node's window in node
    /// order, instead of a per-service telemetry call per window — the
    /// batched path the sharded tick engine feeds from a reusable scratch
    /// buffer. Pure observability: ingestion never influences assignments
    /// or recommendations.
    pub fn ingest_windows(&mut self, now: SimTime, windows: &[WindowStat]) {
        if windows.is_empty() {
            return;
        }
        self.windows_ingested += windows.len() as u64;
        self.last_window_at = now;
        self.last_window_mean_objective =
            windows.iter().map(|w| w.objective).sum::<f64>() / windows.len() as f64;
    }

    /// Observation windows received so far across all batches.
    pub fn windows_ingested(&self) -> u64 {
        self.windows_ingested
    }

    /// Fleet-mean objective over the most recent ingested batch, with its
    /// report time; `None` before the first batch.
    pub fn last_window_mean(&self) -> Option<(SimTime, f64)> {
        (self.windows_ingested > 0)
            .then_some((self.last_window_at, self.last_window_mean_objective))
    }

    /// Tuner fleet view.
    pub fn tuners(&self) -> &[TunerSlot] {
        &self.tuners
    }

    /// Assign a tuning request to the least-busy tuner. `service_time_ms`
    /// is how long this recommendation will occupy the instance (the BO
    /// training-cost model, or ~nothing for RL).
    pub fn submit_request(
        &mut self,
        _service: ServiceId,
        now: SimTime,
        service_time_ms: f64,
    ) -> Assignment {
        self.request_log.push(now);
        // First minimum by busy_until; the constructor guarantees at least
        // one tuner, so index 0 is always a valid starting candidate.
        let mut best = 0;
        for (i, t) in self.tuners.iter().enumerate().skip(1) {
            if t.busy_until < self.tuners[best].busy_until {
                best = i;
            }
        }
        let slot = &mut self.tuners[best];
        let start = slot.busy_until.max(now);
        let ready_at = start + service_time_ms.max(0.0) as u64;
        slot.busy_until = ready_at;
        slot.requests_served += 1;
        Assignment {
            tuner: slot.id,
            ready_at,
        }
    }

    /// Store an accepted recommendation in the config data repository.
    pub fn record_recommendation(
        &mut self,
        service: ServiceId,
        now: SimTime,
        unit_config: Vec<f64>,
    ) {
        self.config_repo
            .entry(service)
            .or_default()
            .push((now, unit_config));
    }

    /// Recommendation history for a service (used by the §4 maintenance
    /// logic: "99th percentile of this knob obtained during all last
    /// recommendations").
    pub fn recommendation_history(&self, service: ServiceId) -> &[(SimTime, Vec<f64>)] {
        self.config_repo
            .get(&service)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Total tuning requests received.
    pub fn total_requests(&self) -> usize {
        self.request_log.len()
    }

    /// Requests in `[since, until)`.
    pub fn requests_in_window(&self, since: SimTime, until: SimTime) -> usize {
        self.request_log
            .iter()
            .filter(|&&t| t >= since && t < until)
            .count()
    }

    /// Requests-per-minute series over `[t0, t1)` — the Fig. 9 curve.
    pub fn requests_per_minute(&self, t0: SimTime, t1: SimTime) -> Vec<f64> {
        assert!(t1 > t0);
        let minutes = ((t1 - t0) / MILLIS_PER_MIN).max(1) as usize;
        let mut out = vec![0.0; minutes];
        for &t in &self.request_log {
            if t >= t0 && t < t1 {
                let idx = ((t - t0) / MILLIS_PER_MIN) as usize;
                out[idx.min(minutes - 1)] += 1.0;
            }
        }
        out
    }

    /// Mean queueing delay a request submitted now would face — a direct
    /// scalability indicator: it explodes when request rate × service time
    /// exceeds fleet capacity.
    pub fn backlog_ms(&self, now: SimTime) -> f64 {
        let total: u64 = self
            .tuners
            .iter()
            .map(|t| t.busy_until.saturating_sub(now))
            .sum();
        total as f64 / self.tuners.len() as f64
    }
}

use autodbaas_snapshot::{snap_enum, snap_struct};

snap_enum!(TunerKind { Bo = 0, Rl = 1 });

snap_struct!(TunerSlot {
    id,
    kind,
    busy_until,
    requests_served
});

snap_struct!(ConfigDirector {
    tuners,
    request_log,
    config_repo,
    windows_ingested,
    last_window_at,
    last_window_mean_objective
});

#[cfg(test)]
mod tests {
    use super::*;

    fn svc(n: u64) -> ServiceId {
        ServiceId(n)
    }

    #[test]
    fn least_busy_tuner_wins() {
        let mut d = ConfigDirector::new(&[TunerKind::Bo, TunerKind::Bo]);
        let a = d.submit_request(svc(0), 0, 10_000.0);
        let b = d.submit_request(svc(1), 0, 10_000.0);
        assert_ne!(a.tuner, b.tuner, "second request must go to the idle tuner");
        // Third request queues behind whichever frees first.
        let c = d.submit_request(svc(2), 0, 10_000.0);
        assert_eq!(c.ready_at, 20_000);
    }

    #[test]
    fn rl_style_zero_service_time_is_instant() {
        let mut d = ConfigDirector::new(&[TunerKind::Rl]);
        let a = d.submit_request(svc(0), 5_000, 0.0);
        assert_eq!(a.ready_at, 5_000);
    }

    #[test]
    fn backlog_grows_when_fleet_is_saturated() {
        let mut d = ConfigDirector::new(&[TunerKind::Bo]);
        assert_eq!(d.backlog_ms(0), 0.0);
        for _ in 0..10 {
            d.submit_request(svc(0), 0, 100_000.0);
        }
        assert!(d.backlog_ms(0) >= 900_000.0);
    }

    #[test]
    fn requests_per_minute_buckets() {
        let mut d = ConfigDirector::new(&[TunerKind::Bo]);
        d.submit_request(svc(0), 10_000, 0.0); // minute 0
        d.submit_request(svc(0), 30_000, 0.0); // minute 0
        d.submit_request(svc(0), 70_000, 0.0); // minute 1
        let series = d.requests_per_minute(0, 3 * MILLIS_PER_MIN);
        assert_eq!(series, vec![2.0, 1.0, 0.0]);
        assert_eq!(d.total_requests(), 3);
        assert_eq!(d.requests_in_window(0, 60_000), 2);
    }

    #[test]
    fn recommendation_repository_accumulates_history() {
        let mut d = ConfigDirector::new(&[TunerKind::Bo]);
        assert!(d.recommendation_history(svc(7)).is_empty());
        d.record_recommendation(svc(7), 100, vec![0.1, 0.2]);
        d.record_recommendation(svc(7), 200, vec![0.3, 0.4]);
        let h = d.recommendation_history(svc(7));
        assert_eq!(h.len(), 2);
        assert_eq!(h[1].1, vec![0.3, 0.4]);
    }

    #[test]
    #[should_panic]
    fn empty_fleet_is_rejected() {
        let _ = ConfigDirector::new(&[]);
    }

    #[test]
    fn window_ingestion_counts_batches_and_tracks_the_mean() {
        let mut d = ConfigDirector::new(&[TunerKind::Bo]);
        assert_eq!(d.windows_ingested(), 0);
        assert_eq!(d.last_window_mean(), None);
        d.ingest_windows(60_000, &[]);
        assert_eq!(d.windows_ingested(), 0, "empty batches are no-ops");
        d.ingest_windows(
            60_000,
            &[
                WindowStat {
                    service: svc(0),
                    objective: 100.0,
                },
                WindowStat {
                    service: svc(1),
                    objective: 300.0,
                },
            ],
        );
        d.ingest_windows(
            120_000,
            &[WindowStat {
                service: svc(0),
                objective: 50.0,
            }],
        );
        assert_eq!(d.windows_ingested(), 3);
        assert_eq!(d.last_window_mean(), Some((120_000, 50.0)));
    }
}
