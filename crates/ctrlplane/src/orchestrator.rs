//! Service orchestrator (§2, §4).
//!
//! "The Service Orchestrator agent … is responsible for performing all
//! life-cycle operations of service instances and maintains credentials."
//! For the apply path it owns the *persistence storage*: the authoritative
//! config per service, re-applied on every redeployment so "a database
//! reset or re-deployment doesn't over-write the settings".

use crate::apply::ReplicaSet;
use autodbaas_simdb::{
    ApplyMode, Catalog, ConfigChange, DbFlavor, DiskKind, InstanceType, KnobSet,
};
use std::collections::HashMap;

/// Identifier of a managed service instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServiceId(pub u64);

/// Access credentials for a service (the DFA fetches these before hitting
/// the TDE apply API).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Credentials {
    /// Admin user.
    pub user: String,
    /// Token/password (opaque).
    pub secret: String,
}

/// Descriptor used to (re)provision a service.
#[derive(Debug, Clone)]
pub struct ServiceSpec {
    /// Database flavor.
    pub flavor: DbFlavor,
    /// VM plan.
    pub instance: InstanceType,
    /// Disk technology.
    pub disk: DiskKind,
    /// Dataset.
    pub catalog: Catalog,
    /// HA replicas.
    pub n_slaves: usize,
    /// Determinism seed.
    pub seed: u64,
}

/// The orchestrator: lifecycle + credentials + persisted configs.
#[derive(Debug, Default)]
pub struct ServiceOrchestrator {
    specs: HashMap<ServiceId, ServiceSpec>,
    credentials: HashMap<ServiceId, Credentials>,
    persisted: HashMap<ServiceId, KnobSet>,
    next_id: u64,
}

impl ServiceOrchestrator {
    /// Empty orchestrator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Provision a new service: spawns the replica set with vendor-default
    /// (instance-capped) knobs and mints credentials.
    pub fn provision(&mut self, spec: ServiceSpec) -> (ServiceId, ReplicaSet) {
        let id = ServiceId(self.next_id);
        self.next_id += 1;
        let rs = ReplicaSet::new(
            spec.flavor,
            spec.instance,
            spec.disk,
            spec.catalog.clone(),
            spec.n_slaves,
            spec.seed,
        );
        self.persisted.insert(id, rs.master().knobs().clone());
        self.credentials.insert(
            id,
            Credentials {
                user: format!("admin-{}", id.0),
                secret: format!("s3cr3t-{}", id.0),
            },
        );
        self.specs.insert(id, spec);
        (id, rs)
    }

    /// Credentials for a service (what the DFA fetches).
    pub fn credentials(&self, id: ServiceId) -> Option<&Credentials> {
        self.credentials.get(&id)
    }

    /// The persisted (authoritative) config.
    pub fn persisted_config(&self, id: ServiceId) -> Option<&KnobSet> {
        self.persisted.get(&id)
    }

    /// Persist a successfully applied config (the final step of §4's apply
    /// protocol).
    pub fn persist_config(&mut self, id: ServiceId, knobs: KnobSet) {
        self.persisted.insert(id, knobs);
    }

    /// Redeploy a service (system update, security patch, …): a fresh
    /// replica set is spawned and the *persisted* config applied to it, so
    /// tuning survives redeployment.
    pub fn redeploy(&mut self, id: ServiceId) -> Option<ReplicaSet> {
        let spec = self.specs.get(&id)?.clone();
        let mut rs = ReplicaSet::new(
            spec.flavor,
            spec.instance,
            spec.disk,
            spec.catalog,
            spec.n_slaves,
            spec.seed.wrapping_add(1),
        );
        if let Some(knobs) = self.persisted.get(&id) {
            let profile = rs.master().profile().clone();
            let changes: Vec<ConfigChange> = profile
                .iter()
                .map(|(kid, _)| ConfigChange {
                    knob: kid,
                    value: knobs.get(kid),
                })
                .collect();
            // A redeploy is a restart by definition, so restart-bound knobs
            // land too.
            let _ = rs.apply(&changes, ApplyMode::Restart);
        }
        Some(rs)
    }

    /// Deprovision: drop all records.
    pub fn deprovision(&mut self, id: ServiceId) {
        self.specs.remove(&id);
        self.credentials.remove(&id);
        self.persisted.remove(&id);
    }

    /// Number of managed services.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True when nothing is managed.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

use autodbaas_snapshot::{snap_struct, Snap, SnapError, SnapReader, SnapWriter};

impl Snap for ServiceId {
    fn encode(&self, w: &mut SnapWriter) {
        self.0.encode(w);
    }
    fn decode(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(ServiceId(u64::decode(r)?))
    }
}

snap_struct!(Credentials { user, secret });

snap_struct!(ServiceSpec {
    flavor,
    instance,
    disk,
    catalog,
    n_slaves,
    seed
});

snap_struct!(ServiceOrchestrator {
    specs,
    credentials,
    persisted,
    next_id
});

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ServiceSpec {
        ServiceSpec {
            flavor: DbFlavor::Postgres,
            instance: InstanceType::M4Large,
            disk: DiskKind::Ssd,
            catalog: Catalog::synthetic(4, 200_000_000, 150, 1),
            n_slaves: 1,
            seed: 5,
        }
    }

    #[test]
    fn provision_assigns_unique_ids_and_credentials() {
        let mut orch = ServiceOrchestrator::new();
        let (a, _) = orch.provision(spec());
        let (b, _) = orch.provision(spec());
        assert_ne!(a, b);
        assert_ne!(orch.credentials(a), orch.credentials(b));
        assert_eq!(orch.len(), 2);
    }

    #[test]
    fn persisted_config_survives_redeploy() {
        let mut orch = ServiceOrchestrator::new();
        let (id, mut rs) = orch.provision(spec());
        let profile = rs.master().profile().clone();
        let wm = profile.lookup("work_mem").unwrap();
        let sb = profile.lookup("shared_buffers").unwrap();
        // Tune, then persist (as the director would after a good apply).
        let changes = [
            ConfigChange {
                knob: wm,
                value: 64.0 * 1024.0 * 1024.0,
            },
            ConfigChange {
                knob: sb,
                value: 512.0 * 1024.0 * 1024.0,
            },
        ];
        rs.apply(&changes, ApplyMode::Restart).unwrap();
        orch.persist_config(id, rs.master().knobs().clone());

        let redeployed = orch.redeploy(id).unwrap();
        assert_eq!(redeployed.master().knobs().get(wm), 64.0 * 1024.0 * 1024.0);
        assert_eq!(redeployed.master().knobs().get(sb), 512.0 * 1024.0 * 1024.0);
    }

    #[test]
    fn redeploy_without_persist_restores_defaults() {
        let mut orch = ServiceOrchestrator::new();
        let (id, mut rs) = orch.provision(spec());
        let wm = rs.master().profile().lookup("work_mem").unwrap();
        let default = rs.master().knobs().get(wm);
        // Tune but do NOT persist.
        rs.apply(
            &[ConfigChange {
                knob: wm,
                value: 99.0 * 1024.0 * 1024.0,
            }],
            ApplyMode::Reload,
        )
        .unwrap();
        let redeployed = orch.redeploy(id).unwrap();
        assert_eq!(redeployed.master().knobs().get(wm), default);
    }

    #[test]
    fn deprovision_forgets_everything() {
        let mut orch = ServiceOrchestrator::new();
        let (id, _) = orch.provision(spec());
        orch.deprovision(id);
        assert!(orch.credentials(id).is_none());
        assert!(orch.persisted_config(id).is_none());
        assert!(orch.redeploy(id).is_none());
        assert!(orch.is_empty());
    }
}
