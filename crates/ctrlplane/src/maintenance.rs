//! Maintenance windows and non-tunable knobs (§4, "Applying Non-tunable
//! Knobs").
//!
//! Restart-bound knobs — canonically the buffer pool — only change during
//! scheduled downtime. The §4 decision rule at each window:
//!
//! * if the gauged working set fits under the buffer's upper limit, size
//!   the buffer to the working set (\[5\]);
//! * if it doesn't fit, take the 99th percentile of the buffer values
//!   recommended since the last window: when that is *below* the current
//!   value **and** at least one entropy hit occurred (other memory knobs
//!   are starved), shrink the buffer to make room; otherwise grow it toward
//!   the recommendation average, capped by the upper limit.

use autodbaas_telemetry::stats::{mean, percentile};
use autodbaas_telemetry::SimTime;

/// A recurring scheduled-downtime window.
#[derive(Debug, Clone, Copy)]
pub struct MaintenanceSchedule {
    /// Window period (e.g. weekly).
    pub every_ms: u64,
    /// Window length.
    pub duration_ms: u64,
    /// Offset of the first window.
    pub first_at: u64,
}

impl MaintenanceSchedule {
    /// Is `now` inside a scheduled window?
    pub fn in_window(&self, now: SimTime) -> bool {
        if now < self.first_at {
            return false;
        }
        let since = (now - self.first_at) % self.every_ms;
        since < self.duration_ms
    }

    /// Start time of the next window at or after `now`.
    pub fn next_window(&self, now: SimTime) -> SimTime {
        if now <= self.first_at {
            return self.first_at;
        }
        let since = (now - self.first_at) % self.every_ms;
        if since < self.duration_ms {
            now
        } else {
            now + (self.every_ms - since)
        }
    }
}

/// The §4 buffer-knob decision. Returns the new value, or `None` to keep
/// the current one.
///
/// * `current` — live buffer value;
/// * `working_set` — gauged working-set bytes;
/// * `upper_limit` — hard cap on the buffer out of the memory pool;
/// * `recommended_history` — buffer values from recommendations since the
///   last window;
/// * `entropy_hits` — count of entropy evaluations that found other memory
///   knobs starved.
pub fn plan_buffer_update(
    current: f64,
    working_set: f64,
    upper_limit: f64,
    recommended_history: &[f64],
    entropy_hits: u32,
) -> Option<f64> {
    assert!(upper_limit > 0.0);
    if working_set <= upper_limit {
        // The working set fits: size the buffer to it.
        let target = working_set.max(upper_limit * 0.05);
        return if (target - current).abs() / current.max(1.0) > 0.01 {
            Some(target)
        } else {
            None
        };
    }
    // Working set exceeds what we could ever cache.
    if recommended_history.is_empty() {
        return Some(upper_limit);
    }
    let p99 = percentile(recommended_history, 99.0);
    if p99 < current && entropy_hits >= 1 {
        // Tunable knobs raised throttles: shrink the buffer to make room.
        // (Still capped: history recorded against a different limit may
        // exceed the current one.)
        Some(p99.min(upper_limit))
    } else {
        // Grow toward the recommendation average, capped.
        let target = mean(recommended_history).min(upper_limit);
        if target > current {
            Some(target)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

    #[test]
    fn schedule_membership_and_next_window() {
        let s = MaintenanceSchedule {
            every_ms: 100,
            duration_ms: 10,
            first_at: 50,
        };
        assert!(!s.in_window(0));
        assert!(s.in_window(50));
        assert!(s.in_window(59));
        assert!(!s.in_window(60));
        assert!(s.in_window(150));
        assert_eq!(s.next_window(0), 50);
        assert_eq!(s.next_window(55), 55, "inside a window, now is the window");
        assert_eq!(s.next_window(70), 150);
    }

    #[test]
    fn fitting_working_set_sizes_buffer_to_it() {
        let new = plan_buffer_update(1.0 * GIB, 3.0 * GIB, 8.0 * GIB, &[], 0);
        assert_eq!(new, Some(3.0 * GIB));
    }

    #[test]
    fn unchanged_working_set_keeps_value() {
        assert_eq!(
            plan_buffer_update(3.0 * GIB, 3.0 * GIB, 8.0 * GIB, &[], 0),
            None
        );
    }

    #[test]
    fn oversized_working_set_with_entropy_hits_shrinks_to_p99() {
        // Recommendations kept asking for a smaller buffer (to make room
        // for work_mem), and entropy hits confirm starvation.
        let history = [2.0 * GIB, 2.2 * GIB, 2.4 * GIB];
        let new = plan_buffer_update(4.0 * GIB, 50.0 * GIB, 6.0 * GIB, &history, 2).unwrap();
        assert!(new < 4.0 * GIB);
        assert!(new <= 2.4 * GIB + 1.0);
    }

    #[test]
    fn oversized_working_set_without_entropy_hits_grows_toward_average() {
        let history = [5.0 * GIB, 5.5 * GIB];
        let new = plan_buffer_update(4.0 * GIB, 50.0 * GIB, 6.0 * GIB, &history, 0).unwrap();
        assert!((new - 5.25 * GIB).abs() < 1.0);
    }

    #[test]
    fn growth_is_capped_at_upper_limit() {
        let history = [20.0 * GIB];
        let new = plan_buffer_update(4.0 * GIB, 50.0 * GIB, 6.0 * GIB, &history, 0).unwrap();
        assert_eq!(new, 6.0 * GIB);
    }

    #[test]
    fn no_history_pins_to_upper_limit() {
        let new = plan_buffer_update(4.0 * GIB, 50.0 * GIB, 6.0 * GIB, &[], 0);
        assert_eq!(new, Some(6.0 * GIB));
    }
}
