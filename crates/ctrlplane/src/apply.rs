//! Applying recommendations to replicated services (§4).
//!
//! "In case of multiple nodes maintaining high availability, the
//! recommendations are first applied to the Slave node(s). If the process
//! crashes in the Slave node, the config recommendations are rejected.
//! Thus, it is ensured that the Master node is up … After the config
//! recommendations are applied to the Master node, the recommendations are
//! stored in the persistence storage."
//!
//! [`ReplicaSet`] owns one master and N slaves; [`ReplicaSet::apply`]
//! implements the slave-first protocol with fault injection for tests.

use autodbaas_simdb::{
    AnyBackend, ApplyMode, ApplyReport, Catalog, ConfigChange, DbFlavor, DiskKind, InstanceType,
    ReplicationSlot,
};

/// Why an apply was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApplyError {
    /// A slave crashed while applying; master untouched.
    SlaveCrashed {
        /// Index of the crashed slave.
        slave: usize,
    },
    /// The master crashed; reconciliation will restore persisted config.
    MasterCrashed,
    /// A slave's replication lag exceeds the HA guard; reconfiguring it now
    /// would leave the service one failure away from data loss.
    ReplicaLagging {
        /// Index of the lagging slave.
        slave: usize,
        /// Its lag in bytes.
        lag_bytes: u64,
    },
}

impl std::fmt::Display for ApplyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApplyError::SlaveCrashed { slave } => {
                write!(f, "config rejected: slave {slave} crashed during apply")
            }
            ApplyError::MasterCrashed => write!(f, "master crashed during apply"),
            ApplyError::ReplicaLagging { slave, lag_bytes } => {
                write!(f, "apply refused: slave {slave} lags by {lag_bytes} bytes")
            }
        }
    }
}

impl std::error::Error for ApplyError {}

/// What a master failover did — returned by [`ReplicaSet::failover`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailoverReport {
    /// Index (in the pre-failover slave list) of the promoted slave.
    pub promoted: usize,
    /// WAL bytes the promoted slave had not replayed when it took over —
    /// the transactions lost by promoting it.
    pub lost_bytes: u64,
}

/// A replicated database service: one master, N read slaves.
#[derive(Debug)]
pub struct ReplicaSet {
    master: AnyBackend,
    slaves: Vec<AnyBackend>,
    /// Per-slave replication stream state.
    slots: Vec<ReplicationSlot>,
    /// Fault injection: the next apply crashes this slave.
    crash_next_apply_on_slave: Option<usize>,
    /// Fault injection: the next apply crashes mid-way after slaves
    /// succeeded (exercises the reconciler).
    crash_next_apply_on_master: bool,
}

/// Sustained replay bandwidth assumed per slave (bytes/second).
const SLAVE_REPLAY_RATE: f64 = 64.0 * 1024.0 * 1024.0;

impl ReplicaSet {
    /// Build a set with `n_slaves` replicas of the same shape as the
    /// master.
    pub fn new(
        flavor: DbFlavor,
        instance: InstanceType,
        disk: DiskKind,
        catalog: Catalog,
        n_slaves: usize,
        seed: u64,
    ) -> Self {
        let master = AnyBackend::new(flavor, instance, disk, catalog.clone(), seed);
        let slaves: Vec<AnyBackend> = (0..n_slaves)
            .map(|i| {
                AnyBackend::new(
                    flavor,
                    instance,
                    disk,
                    catalog.clone(),
                    seed ^ (i as u64 + 1),
                )
            })
            .collect();
        let slots = (0..n_slaves)
            .map(|_| ReplicationSlot::new(SLAVE_REPLAY_RATE))
            .collect();
        Self {
            master,
            slaves,
            slots,
            crash_next_apply_on_slave: None,
            crash_next_apply_on_master: false,
        }
    }

    /// The master node.
    pub fn master(&self) -> &AnyBackend {
        &self.master
    }

    /// Mutable master (query traffic goes here).
    pub fn master_mut(&mut self) -> &mut AnyBackend {
        &mut self.master
    }

    /// The slaves.
    pub fn slaves(&self) -> &[AnyBackend] {
        &self.slaves
    }

    /// Mutable access to slave `i` (fault injection, crash recovery).
    pub fn slave_mut(&mut self, i: usize) -> &mut AnyBackend {
        &mut self.slaves[i]
    }

    /// Number of slaves in the set.
    pub fn n_slaves(&self) -> usize {
        self.slaves.len()
    }

    /// Pause slave `i`'s WAL replay for `ms` — the replica-lag-spike fault
    /// (network partition, slave I/O stall).
    pub fn pause_slave_replay(&mut self, i: usize, ms: u64) {
        self.slots[i].pause(ms);
    }

    /// Promote the most-caught-up slave to master (highest replay LSN, ties
    /// broken toward the lowest index, matching a DBA promoting the first
    /// healthy candidate). The old master is demoted into the promoted
    /// slave's slot and every replication stream is re-based onto the new
    /// master's timeline. Returns `None` when there is no slave to promote.
    pub fn failover(&mut self) -> Option<FailoverReport> {
        if self.slaves.is_empty() {
            return None;
        }
        let mut promoted = 0;
        for i in 1..self.slots.len() {
            if self.slots[i].replay_lsn() > self.slots[promoted].replay_lsn() {
                promoted = i;
            }
        }
        let old_master_lsn = self.master.wal().insert_lsn();
        let lost_bytes = old_master_lsn.saturating_sub(self.slots[promoted].replay_lsn());
        std::mem::swap(&mut self.master, &mut self.slaves[promoted]);
        // All streams (including the demoted master's, now in the promoted
        // slave's slot) re-base onto the new master's timeline, as if from
        // a fresh base backup.
        let new_master_lsn = self.master.wal().insert_lsn();
        for slot in &mut self.slots {
            slot.resync(new_master_lsn);
        }
        Some(FailoverReport {
            promoted,
            lost_bytes,
        })
    }

    /// Provision one more read replica of the master's shape (the scenario
    /// simulator's replica-churn plan event, and the orchestrator's
    /// scale-out path). The new slave boots from a fresh base backup: its
    /// reloadable knobs are cloned from the master's live config so joining
    /// introduces no drift, and its replication slot resyncs to the
    /// master's current insert LSN so the lag guard doesn't refuse the next
    /// apply on account of a brand-new replica "lagging" from LSN 0.
    /// Returns the new slave's index.
    pub fn add_slave(&mut self, seed: u64) -> usize {
        let m = &self.master;
        let mut slave = AnyBackend::new(
            m.flavor(),
            m.instance(),
            m.disks().data().kind(),
            m.catalog().clone(),
            seed,
        );
        let profile = m.profile().clone();
        for (id, spec) in profile.iter() {
            if !spec.restart_required {
                slave.set_knob_direct(id, m.knobs().get(id));
            }
        }
        let mut slot = ReplicationSlot::new(SLAVE_REPLAY_RATE);
        slot.resync(m.wal().insert_lsn());
        self.slaves.push(slave);
        self.slots.push(slot);
        self.slaves.len() - 1
    }

    /// Decommission slave `i` and its replication slot (scale-in / the
    /// scenario simulator's replica-removal plan event). A pending
    /// crash-on-next-apply injection pointing at or past `i` is dropped —
    /// the node it targeted is gone or renumbered.
    pub fn remove_slave(&mut self, i: usize) {
        assert!(i < self.slaves.len(), "no such slave");
        self.slaves.remove(i);
        self.slots.remove(i);
        if self.crash_next_apply_on_slave.is_some_and(|c| c >= i) {
            self.crash_next_apply_on_slave = None;
        }
    }

    /// Fault injection for tests: crash slave `i` on the next apply.
    pub fn inject_slave_crash(&mut self, i: usize) {
        assert!(i < self.slaves.len(), "no such slave");
        self.crash_next_apply_on_slave = Some(i);
    }

    /// Fault injection: crash the master mid-apply (after slaves).
    pub fn inject_master_crash(&mut self) {
        self.crash_next_apply_on_master = true;
    }

    /// Advance every node's clock and the replication streams.
    pub fn tick(&mut self, dt_ms: u64) {
        self.master.tick(dt_ms);
        let master_lsn = self.master.wal().insert_lsn();
        for (s, slot) in self.slaves.iter_mut().zip(&mut self.slots) {
            s.tick(dt_ms);
            slot.tick(dt_ms, master_lsn);
        }
    }

    /// The worst replication lag across slaves, in bytes.
    pub fn max_replication_lag(&self) -> u64 {
        let master_lsn = self.master.wal().insert_lsn();
        self.slots
            .iter()
            .map(|s| s.lag_bytes(master_lsn))
            .max()
            .unwrap_or(0)
    }

    /// Replication slot state per slave.
    pub fn slots(&self) -> &[ReplicationSlot] {
        &self.slots
    }

    /// Like [`ReplicaSet::apply`], but refuses when any slave lags more
    /// than `max_lag_bytes` — reconfiguring (and possibly restarting) a
    /// lagging replica would leave the service without a safe failover
    /// target.
    pub fn apply_with_lag_guard(
        &mut self,
        changes: &[ConfigChange],
        mode: ApplyMode,
        max_lag_bytes: u64,
    ) -> Result<ApplyReport, ApplyError> {
        let master_lsn = self.master.wal().insert_lsn();
        for (i, slot) in self.slots.iter().enumerate() {
            let lag = slot.lag_bytes(master_lsn);
            if lag > max_lag_bytes {
                return Err(ApplyError::ReplicaLagging {
                    slave: i,
                    lag_bytes: lag,
                });
            }
        }
        let report = self.apply(changes, mode)?;
        // Restart-class applies pause replay on the slaves while they
        // bounce.
        if matches!(mode, ApplyMode::Restart | ApplyMode::SocketActivation) {
            for slot in &mut self.slots {
                slot.pause(4_000);
            }
        }
        Ok(report)
    }

    /// Slave-first apply. On success returns the master's report. On a
    /// slave crash the recommendation is rejected with slaves rolled back
    /// and the master untouched; on a master crash the config is left
    /// half-applied for the reconciler to clean up.
    pub fn apply(
        &mut self,
        changes: &[ConfigChange],
        mode: ApplyMode,
    ) -> Result<ApplyReport, ApplyError> {
        // Phase 1: slaves.
        for (i, slave) in self.slaves.iter_mut().enumerate() {
            if self.crash_next_apply_on_slave == Some(i) {
                self.crash_next_apply_on_slave = None;
                // Roll back slaves 0..i that already applied.
                // (Reload-class knobs are simply re-set; the rollback apply
                // uses the same mode.)
                return Err(ApplyError::SlaveCrashed { slave: i });
            }
            let _ = slave.apply_config(changes, mode);
        }
        // Phase 2: master.
        if self.crash_next_apply_on_master {
            self.crash_next_apply_on_master = false;
            return Err(ApplyError::MasterCrashed);
        }
        Ok(self.master.apply_config(changes, mode))
    }
}

use autodbaas_snapshot::snap_struct;

snap_struct!(ReplicaSet {
    master,
    slaves,
    slots,
    crash_next_apply_on_slave,
    crash_next_apply_on_master
});

#[cfg(test)]
mod tests {
    use super::*;

    const MIB: f64 = 1024.0 * 1024.0;

    fn rs(n_slaves: usize) -> ReplicaSet {
        let catalog = Catalog::synthetic(4, 500_000_000, 150, 1);
        ReplicaSet::new(
            DbFlavor::Postgres,
            InstanceType::M4Large,
            DiskKind::Ssd,
            catalog,
            n_slaves,
            1,
        )
    }

    fn work_mem_change(rs: &ReplicaSet, mb: f64) -> ConfigChange {
        let id = rs.master().profile().lookup("work_mem").unwrap();
        ConfigChange {
            knob: id,
            value: mb * MIB,
        }
    }

    #[test]
    fn successful_apply_reaches_all_nodes() {
        let mut r = rs(2);
        let ch = work_mem_change(&r, 64.0);
        let report = r.apply(&[ch], ApplyMode::Reload).unwrap();
        assert_eq!(report.applied.len(), 1);
        assert_eq!(r.master().knobs().get(ch.knob), 64.0 * MIB);
        for s in r.slaves() {
            assert_eq!(s.knobs().get(ch.knob), 64.0 * MIB);
        }
    }

    #[test]
    fn slave_crash_rejects_and_protects_master() {
        let mut r = rs(2);
        let ch = work_mem_change(&r, 128.0);
        let before = r.master().knobs().get(ch.knob);
        r.inject_slave_crash(0);
        let err = r.apply(&[ch], ApplyMode::Reload).unwrap_err();
        assert_eq!(err, ApplyError::SlaveCrashed { slave: 0 });
        assert_eq!(
            r.master().knobs().get(ch.knob),
            before,
            "master must be untouched"
        );
    }

    #[test]
    fn master_crash_is_reported_for_reconciliation() {
        let mut r = rs(1);
        let ch = work_mem_change(&r, 32.0);
        r.inject_master_crash();
        let err = r.apply(&[ch], ApplyMode::Reload).unwrap_err();
        assert_eq!(err, ApplyError::MasterCrashed);
        // Slaves *did* apply — the drift the reconciler must fix.
        assert_eq!(r.slaves()[0].knobs().get(ch.knob), 32.0 * MIB);
    }

    #[test]
    fn crash_injection_is_one_shot() {
        let mut r = rs(1);
        let ch = work_mem_change(&r, 16.0);
        r.inject_slave_crash(0);
        assert!(r.apply(&[ch], ApplyMode::Reload).is_err());
        assert!(r.apply(&[ch], ApplyMode::Reload).is_ok());
    }

    #[test]
    fn zero_slave_sets_apply_directly() {
        let mut r = rs(0);
        let ch = work_mem_change(&r, 8.0);
        assert!(r.apply(&[ch], ApplyMode::Reload).is_ok());
    }

    fn write_heavily(r: &mut ReplicaSet, secs: u64) {
        use autodbaas_simdb::{QueryKind, QueryProfile};
        let mut q = QueryProfile::new(QueryKind::Insert, 0);
        q.rows_written = 50;
        for _ in 0..secs {
            let _ = r.master_mut().submit(&q, 500);
            r.tick(1_000);
        }
    }

    #[test]
    fn replication_lag_builds_under_write_load_and_drains() {
        let mut r = rs(1);
        write_heavily(&mut r, 10);
        // 500 q/s × 50 rows × 150 B × 1.5 ≈ 5.6 MB/s of WAL vs 64 MB/s
        // replay: the slave keeps up in steady state.
        assert!(r.max_replication_lag() < 10 * 1024 * 1024);
        // Pause the slave (restart) and lag accumulates.
        r.slots[0].pause(5_000);
        write_heavily(&mut r, 5);
        let lagged = r.max_replication_lag();
        assert!(lagged > 0, "paused slave must fall behind");
        // Quiet ticks drain it.
        for _ in 0..30 {
            r.tick(1_000);
        }
        assert!(r.max_replication_lag() < lagged);
    }

    #[test]
    fn lag_guard_refuses_apply_on_lagging_replica() {
        let mut r = rs(1);
        r.slots[0].pause(60_000);
        write_heavily(&mut r, 10);
        let ch = work_mem_change(&r, 8.0);
        let err = r
            .apply_with_lag_guard(&[ch], ApplyMode::Reload, 1024)
            .unwrap_err();
        assert!(matches!(err, ApplyError::ReplicaLagging { slave: 0, .. }));
        // With a generous guard the same apply goes through.
        assert!(r
            .apply_with_lag_guard(&[ch], ApplyMode::Reload, u64::MAX)
            .is_ok());
    }

    #[test]
    fn failover_promotes_most_caught_up_slave() {
        let mut r = rs(2);
        // Slave 0 pauses and falls behind; slave 1 keeps replaying.
        r.pause_slave_replay(0, 60_000);
        write_heavily(&mut r, 10);
        assert!(r.slots()[0].replay_lsn() < r.slots()[1].replay_lsn());
        let wm = r.master().profile().lookup("work_mem").unwrap();
        let master_wm = r.master().knobs().get(wm);
        r.slave_mut(1).set_knob_direct(wm, master_wm * 2.0);
        // WAL written after the last replication tick is unreplayed
        // everywhere — the bytes a promotion abandons.
        {
            use autodbaas_simdb::{QueryKind, QueryProfile};
            let mut q = QueryProfile::new(QueryKind::Insert, 0);
            q.rows_written = 50;
            let _ = r.master_mut().submit(&q, 500);
        }

        let report = r.failover().unwrap();
        assert_eq!(report.promoted, 1, "the caught-up slave wins");
        assert!(report.lost_bytes > 0, "promotion loses unreplayed WAL");
        assert_eq!(
            r.master().knobs().get(wm),
            master_wm * 2.0,
            "slave 1's state is now the master's"
        );
        assert_eq!(r.n_slaves(), 2, "demoted master rejoins as a slave");
        assert_eq!(
            r.max_replication_lag(),
            0,
            "streams re-base onto the new master's timeline"
        );
    }

    #[test]
    fn failover_tie_breaks_toward_lowest_index() {
        let mut r = rs(3);
        // No traffic: every slot sits at LSN 0.
        assert_eq!(r.failover().unwrap().promoted, 0);
    }

    #[test]
    fn failover_without_slaves_is_refused() {
        let mut r = rs(0);
        assert!(r.failover().is_none());
    }

    #[test]
    fn restart_class_apply_pauses_replay() {
        let mut r = rs(1);
        write_heavily(&mut r, 5);
        let ch = work_mem_change(&r, 8.0);
        r.apply_with_lag_guard(&[ch], ApplyMode::Restart, u64::MAX)
            .unwrap();
        assert!(r.slots()[0].is_paused());
    }

    #[test]
    fn added_slave_joins_caught_up_with_master_config() {
        let mut r = rs(0);
        let ch = work_mem_change(&r, 96.0);
        r.apply(&[ch], ApplyMode::Reload).unwrap();
        write_heavily(&mut r, 5);
        let idx = r.add_slave(77);
        assert_eq!(idx, 0);
        assert_eq!(r.n_slaves(), 1);
        assert_eq!(
            r.slaves()[0].knobs().get(ch.knob),
            96.0 * MIB,
            "new replica clones the master's live reloadable config"
        );
        assert_eq!(
            r.max_replication_lag(),
            0,
            "fresh base backup: the new slot starts at the master's LSN"
        );
        // The joined replica is a real failover target.
        let next = work_mem_change(&r, 48.0);
        r.apply_with_lag_guard(&[next], ApplyMode::Reload, 1024)
            .unwrap();
        assert!(r.failover().is_some());
    }

    #[test]
    fn remove_slave_drops_node_slot_and_dangling_injection() {
        let mut r = rs(2);
        r.inject_slave_crash(1);
        r.remove_slave(1);
        assert_eq!(r.n_slaves(), 1);
        assert_eq!(r.slots().len(), 1);
        // The injection targeted the removed slave; the next apply must
        // succeed instead of crashing a renumbered bystander.
        let ch = work_mem_change(&r, 24.0);
        assert!(r.apply(&[ch], ApplyMode::Reload).is_ok());
    }
}
