//! Config reconciler (§4).
//!
//! The apply pipeline is not atomic; a crash can leave the master, slaves
//! and persistence storage disagreeing. "A reconciler process is defined
//! that keeps a watch on config of the database system running on the
//! Master node. If the difference in config is observed for a threshold
//! time-period (watcher timeout), the reconciliation occurs and the config
//! stored in the persistence storage is applied to all nodes" — i.e. a
//! failed recommendation is eventually *rejected* back to the persisted
//! state.

use crate::apply::ReplicaSet;
use crate::orchestrator::{ServiceId, ServiceOrchestrator};
use autodbaas_simdb::{ApplyMode, ConfigChange};
use autodbaas_telemetry::SimTime;

/// What a reconciler check concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconcileOutcome {
    /// Configs agree; nothing to do.
    InSync,
    /// Drift seen, watcher timer running.
    DriftObserved {
        /// How long the drift has persisted, ms.
        for_ms: u64,
    },
    /// Watcher timeout elapsed: persisted config re-applied to all nodes.
    Reconciled,
}

/// Watches one service's live config — master and slaves — against the
/// persisted config.
#[derive(Debug, Clone)]
pub struct Reconciler {
    service: ServiceId,
    watcher_timeout_ms: u64,
    drift_since: Option<SimTime>,
    reconciliations: u64,
}

impl Reconciler {
    /// Reconciler for `service` with the given watcher timeout.
    pub fn new(service: ServiceId, watcher_timeout_ms: u64) -> Self {
        Self {
            service,
            watcher_timeout_ms,
            drift_since: None,
            reconciliations: 0,
        }
    }

    /// Total reconciliations performed.
    pub fn reconciliations(&self) -> u64 {
        self.reconciliations
    }

    /// One watch iteration at time `now`.
    pub fn check(
        &mut self,
        orchestrator: &ServiceOrchestrator,
        rs: &mut ReplicaSet,
        now: SimTime,
    ) -> ReconcileOutcome {
        let Some(persisted) = orchestrator.persisted_config(self.service) else {
            return ReconcileOutcome::InSync; // unmanaged: nothing to enforce
        };
        // Compare only reloadable knobs: restart-bound knobs legitimately
        // lag behind the persisted value until the next maintenance window.
        // Every node in the set is watched — after a failover or a partial
        // slave-first apply the master can be clean while a slave drifts.
        let profile = rs.master().profile().clone();
        let drifted = std::iter::once(rs.master())
            .chain(rs.slaves().iter())
            .any(|node| {
                let live = node.knobs();
                profile.iter().any(|(id, spec)| {
                    !spec.restart_required && (live.get(id) - persisted.get(id)).abs() > 1e-9
                })
            });

        if !drifted {
            self.drift_since = None;
            return ReconcileOutcome::InSync;
        }
        let since = *self.drift_since.get_or_insert(now);
        let for_ms = now.saturating_sub(since);
        if for_ms < self.watcher_timeout_ms {
            return ReconcileOutcome::DriftObserved { for_ms };
        }
        // Timeout: enforce persisted config on all nodes.
        let changes: Vec<ConfigChange> = profile
            .iter()
            .filter(|(_, spec)| !spec.restart_required)
            .map(|(id, _)| ConfigChange {
                knob: id,
                value: persisted.get(id),
            })
            .collect();
        // Reconciliation must succeed even if a crash was injected for the
        // *recommendation* path; a second attempt next tick is fine, so
        // ignore one-shot errors here.
        let _ = rs.apply(&changes, ApplyMode::Reload);
        self.drift_since = None;
        self.reconciliations += 1;
        ReconcileOutcome::Reconciled
    }
}

use autodbaas_snapshot::snap_struct;

snap_struct!(Reconciler {
    service,
    watcher_timeout_ms,
    drift_since,
    reconciliations
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orchestrator::ServiceSpec;
    use autodbaas_simdb::{Catalog, DbFlavor, DiskKind, InstanceType};

    fn setup() -> (ServiceOrchestrator, ServiceId, ReplicaSet) {
        let mut orch = ServiceOrchestrator::new();
        let (id, rs) = orch.provision(ServiceSpec {
            flavor: DbFlavor::Postgres,
            instance: InstanceType::M4Large,
            disk: DiskKind::Ssd,
            catalog: Catalog::synthetic(3, 100_000_000, 150, 1),
            n_slaves: 1,
            seed: 11,
        });
        (orch, id, rs)
    }

    #[test]
    fn in_sync_stays_quiet() {
        let (orch, id, mut rs) = setup();
        let mut rec = Reconciler::new(id, 10_000);
        assert_eq!(rec.check(&orch, &mut rs, 1_000), ReconcileOutcome::InSync);
        assert_eq!(rec.reconciliations(), 0);
    }

    #[test]
    fn drift_is_observed_then_reconciled_after_timeout() {
        let (orch, id, mut rs) = setup();
        let wm = rs.master().profile().lookup("work_mem").unwrap();
        let persisted_value = orch.persisted_config(id).unwrap().get(wm);
        // A half-applied recommendation drifts the master without being
        // persisted.
        rs.master_mut().set_knob_direct(wm, persisted_value * 2.0);

        let mut rec = Reconciler::new(id, 10_000);
        assert!(matches!(
            rec.check(&orch, &mut rs, 1_000),
            ReconcileOutcome::DriftObserved { .. }
        ));
        assert!(matches!(
            rec.check(&orch, &mut rs, 5_000),
            ReconcileOutcome::DriftObserved { for_ms: 4_000 }
        ));
        assert_eq!(
            rec.check(&orch, &mut rs, 11_001),
            ReconcileOutcome::Reconciled
        );
        assert_eq!(rs.master().knobs().get(wm), persisted_value);
        assert_eq!(rec.reconciliations(), 1);
    }

    #[test]
    fn drift_healing_itself_resets_the_watcher() {
        let (orch, id, mut rs) = setup();
        let wm = rs.master().profile().lookup("work_mem").unwrap();
        let persisted_value = orch.persisted_config(id).unwrap().get(wm);
        rs.master_mut().set_knob_direct(wm, persisted_value * 2.0);
        let mut rec = Reconciler::new(id, 10_000);
        let _ = rec.check(&orch, &mut rs, 1_000);
        // The recommendation completes (persist catches up): set back.
        rs.master_mut().set_knob_direct(wm, persisted_value);
        assert_eq!(rec.check(&orch, &mut rs, 5_000), ReconcileOutcome::InSync);
        // New drift later needs its own full timeout.
        rs.master_mut().set_knob_direct(wm, persisted_value * 3.0);
        assert!(matches!(
            rec.check(&orch, &mut rs, 6_000),
            ReconcileOutcome::DriftObserved { for_ms: 0 }
        ));
    }

    #[test]
    fn staged_restart_knobs_do_not_count_as_drift() {
        let (mut orch, id, mut rs) = setup();
        let sb = rs.master().profile().lookup("shared_buffers").unwrap();
        // Persist a bigger buffer (e.g. decided for the next maintenance
        // window) while the live value lags.
        let mut persisted = rs.master().knobs().clone();
        persisted.set(&rs.master().profile().clone(), sb, 1024.0 * 1024.0 * 1024.0);
        orch.persist_config(id, persisted);
        let mut rec = Reconciler::new(id, 1_000);
        assert_eq!(rec.check(&orch, &mut rs, 5_000), ReconcileOutcome::InSync);
    }

    #[test]
    fn reconciler_fixes_slave_only_drift_via_full_apply() {
        let (orch, id, mut rs) = setup();
        let wm = rs.master().profile().lookup("work_mem").unwrap();
        let persisted_value = orch.persisted_config(id).unwrap().get(wm);
        // Master crashed mid-apply: slaves drifted, master clean.
        rs.master_mut().set_knob_direct(wm, persisted_value * 2.0);
        let mut rec = Reconciler::new(id, 0);
        assert_eq!(rec.check(&orch, &mut rs, 1), ReconcileOutcome::Reconciled);
        for s in rs.slaves() {
            assert_eq!(s.knobs().get(wm), persisted_value);
        }
    }

    #[test]
    fn slave_drift_with_clean_master_is_detected_and_reconciled() {
        let (orch, id, mut rs) = setup();
        let wm = rs.master().profile().lookup("work_mem").unwrap();
        let persisted_value = orch.persisted_config(id).unwrap().get(wm);
        // Only the slave drifts (e.g. a slave-side apply that the master
        // crash then aborted): the master watch alone would never see it.
        rs.slave_mut(0).set_knob_direct(wm, persisted_value * 4.0);
        assert_eq!(rs.master().knobs().get(wm), persisted_value);

        let mut rec = Reconciler::new(id, 10_000);
        assert!(matches!(
            rec.check(&orch, &mut rs, 1_000),
            ReconcileOutcome::DriftObserved { .. }
        ));
        assert_eq!(
            rec.check(&orch, &mut rs, 11_001),
            ReconcileOutcome::Reconciled
        );
        assert_eq!(rs.slaves()[0].knobs().get(wm), persisted_value);
        assert_eq!(rs.master().knobs().get(wm), persisted_value);
    }

    #[test]
    fn drift_promoted_by_failover_is_reconciled() {
        let (orch, id, mut rs) = setup();
        let wm = rs.master().profile().lookup("work_mem").unwrap();
        let persisted_value = orch.persisted_config(id).unwrap().get(wm);
        // The slave drifts, then a failover makes the drifted node master.
        rs.slave_mut(0).set_knob_direct(wm, persisted_value * 2.0);
        rs.failover().unwrap();
        assert_eq!(rs.master().knobs().get(wm), persisted_value * 2.0);

        let mut rec = Reconciler::new(id, 0);
        assert_eq!(rec.check(&orch, &mut rs, 1), ReconcileOutcome::Reconciled);
        assert_eq!(rs.master().knobs().get(wm), persisted_value);
        for s in rs.slaves() {
            assert_eq!(s.knobs().get(wm), persisted_value);
        }
    }
}
