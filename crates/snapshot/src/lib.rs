//! Versioned, checksummed, zero-dependency binary persistence for
//! deterministic fleet snapshots.
//!
//! This crate sits at the bottom of the workspace dependency graph (like
//! `autodbaas-telemetry`) and defines three layers:
//!
//! * the [`Snap`] trait — exact binary encode/decode for a value. Every
//!   number is little-endian; `f64`/`f32` round-trip through raw bits so
//!   restore is bit-identical, never "close". Hash containers encode in
//!   sorted key order so the byte stream is independent of hash seeds and
//!   insertion history.
//! * the [`snap_struct!`] / [`snap_enum!`] macros — invoked *inside the
//!   defining module* of each state-bearing crate so private fields stay
//!   private. `snap_struct!` lists the persisted fields (decode uses an
//!   exhaustive struct literal, so adding a field without updating the
//!   snapshot impl is a compile error); rebuildable scratch goes in the
//!   `defaults { .. }` arm.
//! * the frame layer ([`FrameWriter`] / [`FrameReader`]) — the same
//!   discipline as the gateway wire codec: an 8-byte magic, a format
//!   version, then tagged length-prefixed frames each sealed with an
//!   FNV-1a checksum, closed by a whole-file trailer hash. Any flipped
//!   bit, truncation, or splice is a typed [`SnapError`], never a panic
//!   and never a silently wrong fleet.
//!
//! Versioning rules: `VERSION` bumps whenever any frame's byte layout
//! changes; readers reject other versions outright (snapshots are
//! reproducibility artifacts, not archival interchange — cross-version
//! migration is explicitly out of scope). Frame tags are allocated by the
//! owning crate and never reused.

use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap, HashSet, VecDeque};
use std::fmt;

/// File magic: "AutoDBaaS SNAPshot", format generation 1.
pub const MAGIC: [u8; 8] = *b"ADBSNAP1";

/// Snapshot format version. Bump on any layout change; readers reject
/// mismatches with [`SnapError::UnsupportedVersion`].
pub const VERSION: u32 = 1;

/// Reserved tag closing every snapshot file; its payload is the running
/// FNV-1a hash of all preceding bytes.
pub const TRAILER_TAG: u16 = 0xFFFF;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over `bytes`, continuing from `state` (seed with [`FNV_OFFSET`]
/// via [`fnv1a_start`]).
pub fn fnv1a(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// Fresh FNV-1a state.
pub fn fnv1a_start() -> u64 {
    FNV_OFFSET
}

/// Typed decode / integrity failure. Snapshots are untrusted input: every
/// malformation maps here, nothing panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// Fewer bytes remain than the value needs.
    Truncated { needed: usize, have: usize },
    /// File does not start with [`MAGIC`].
    BadMagic,
    /// File was written by a different format generation.
    UnsupportedVersion(u32),
    /// A frame's FNV-1a seal does not match its bytes.
    ChecksumMismatch { tag: u16 },
    /// The whole-file trailer hash does not match the preceding bytes.
    TrailerMismatch,
    /// The file ended without a trailer frame.
    MissingTrailer,
    /// An enum/frame tag outside the known vocabulary.
    UnknownTag { what: &'static str, tag: u32 },
    /// A structurally invalid value (bad bool byte, oversize usize, …).
    Malformed(&'static str),
    /// Decode succeeded but bytes were left over.
    TrailingBytes { extra: usize },
    /// Filesystem error while reading or writing a snapshot file.
    Io {
        kind: std::io::ErrorKind,
        path: String,
    },
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated { needed, have } => {
                write!(f, "truncated snapshot: needed {needed} bytes, have {have}")
            }
            Self::BadMagic => write!(f, "bad snapshot magic"),
            Self::UnsupportedVersion(v) => write!(f, "unsupported snapshot version {v}"),
            Self::ChecksumMismatch { tag } => {
                write!(f, "frame 0x{tag:04x} failed its checksum")
            }
            Self::TrailerMismatch => write!(f, "whole-file trailer hash mismatch"),
            Self::MissingTrailer => write!(f, "snapshot ended without a trailer frame"),
            Self::UnknownTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            Self::Malformed(what) => write!(f, "malformed {what}"),
            Self::TrailingBytes { extra } => {
                write!(f, "{extra} unconsumed bytes after decode")
            }
            Self::Io { kind, path } => write!(f, "snapshot io error ({kind:?}) on {path}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// Append-only byte sink for [`Snap::encode`].
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing was written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian u16.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian i64.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an f64 as its raw bit pattern (exact round-trip, NaN included).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append raw bytes with a u64 length prefix.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Append a UTF-8 string with a u64 length prefix.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// Cursor over encoded bytes for [`Snap::decode`].
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Truncated {
                needed: n,
                have: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian u16.
    pub fn get_u16(&mut self) -> Result<u16, SnapError> {
        let s = self.take(2)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    /// Read a little-endian u32.
    pub fn get_u32(&mut self) -> Result<u32, SnapError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Read a little-endian u64.
    pub fn get_u64(&mut self) -> Result<u64, SnapError> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    /// Read a little-endian i64.
    pub fn get_i64(&mut self) -> Result<i64, SnapError> {
        Ok(self.get_u64()? as i64)
    }

    /// Read an f64 from its raw bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a u64-length-prefixed byte slice.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let len = self.get_len()?;
        self.take(len)
    }

    /// Read a u64-length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str, SnapError> {
        std::str::from_utf8(self.get_bytes()?).map_err(|_| SnapError::Malformed("utf-8 string"))
    }

    /// Read a u64 length and bound it to the remaining bytes (every element
    /// occupies at least one byte, so a larger claim is corruption — this
    /// keeps a flipped length bit from asking the allocator for exabytes).
    pub fn get_len(&mut self) -> Result<usize, SnapError> {
        let raw = self.get_u64()?;
        let len = usize::try_from(raw).map_err(|_| SnapError::Malformed("length"))?;
        if len > self.remaining() {
            return Err(SnapError::Truncated {
                needed: len,
                have: self.remaining(),
            });
        }
        Ok(len)
    }
}

/// Exact binary persistence: `decode(encode(x)) == x`, bit for bit.
pub trait Snap: Sized {
    /// Append this value's canonical encoding.
    fn encode(&self, w: &mut SnapWriter);
    /// Rebuild a value from its encoding.
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError>;
}

/// Encode a value to a standalone byte vector.
pub fn encode_to_vec<T: Snap>(value: &T) -> Vec<u8> {
    let mut w = SnapWriter::new();
    value.encode(&mut w);
    w.into_bytes()
}

/// Decode a value from a standalone byte slice, requiring full consumption.
pub fn decode_from_slice<T: Snap>(bytes: &[u8]) -> Result<T, SnapError> {
    let mut r = SnapReader::new(bytes);
    let v = T::decode(&mut r)?;
    if r.remaining() != 0 {
        return Err(SnapError::TrailingBytes {
            extra: r.remaining(),
        });
    }
    Ok(v)
}

macro_rules! snap_prim {
    ($ty:ty, $put:ident, $get:ident) => {
        impl Snap for $ty {
            fn encode(&self, w: &mut SnapWriter) {
                w.$put(*self);
            }
            fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
                r.$get()
            }
        }
    };
}

snap_prim!(u8, put_u8, get_u8);
snap_prim!(u16, put_u16, get_u16);
snap_prim!(u32, put_u32, get_u32);
snap_prim!(u64, put_u64, get_u64);
snap_prim!(i64, put_i64, get_i64);
snap_prim!(f64, put_f64, get_f64);

impl Snap for i32 {
    fn encode(&self, w: &mut SnapWriter) {
        w.put_u32(*self as u32);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(r.get_u32()? as i32)
    }
}

impl Snap for f32 {
    fn encode(&self, w: &mut SnapWriter) {
        w.put_u32(self.to_bits());
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(f32::from_bits(r.get_u32()?))
    }
}

impl Snap for bool {
    fn encode(&self, w: &mut SnapWriter) {
        w.put_u8(u8::from(*self));
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::Malformed("bool")),
        }
    }
}

impl Snap for usize {
    fn encode(&self, w: &mut SnapWriter) {
        w.put_u64(*self as u64);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        usize::try_from(r.get_u64()?).map_err(|_| SnapError::Malformed("usize"))
    }
}

impl Snap for String {
    fn encode(&self, w: &mut SnapWriter) {
        w.put_str(self);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(r.get_str()?.to_owned())
    }
}

impl<T: Snap> Snap for Option<T> {
    fn encode(&self, w: &mut SnapWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(SnapError::Malformed("option")),
        }
    }
}

impl<T: Snap> Snap for Box<T> {
    fn encode(&self, w: &mut SnapWriter) {
        (**self).encode(w);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Box::new(T::decode(r)?))
    }
}

impl<T: Snap> Snap for std::cmp::Reverse<T> {
    fn encode(&self, w: &mut SnapWriter) {
        self.0.encode(w);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(std::cmp::Reverse(T::decode(r)?))
    }
}

impl<T: Snap> Snap for Vec<T> {
    fn encode(&self, w: &mut SnapWriter) {
        w.put_u64(self.len() as u64);
        for v in self {
            v.encode(w);
        }
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let len = r.get_len()?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Snap> Snap for VecDeque<T> {
    fn encode(&self, w: &mut SnapWriter) {
        w.put_u64(self.len() as u64);
        for v in self {
            v.encode(w);
        }
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let len = r.get_len()?;
        let mut out = VecDeque::with_capacity(len);
        for _ in 0..len {
            out.push_back(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Snap, const N: usize> Snap for [T; N] {
    fn encode(&self, w: &mut SnapWriter) {
        for v in self {
            v.encode(w);
        }
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::decode(r)?);
        }
        out.try_into().map_err(|_| SnapError::Malformed("array"))
    }
}

impl<A: Snap, B: Snap> Snap for (A, B) {
    fn encode(&self, w: &mut SnapWriter) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Snap, B: Snap, C: Snap> Snap for (A, B, C) {
    fn encode(&self, w: &mut SnapWriter) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

impl<A: Snap, B: Snap, C: Snap, D: Snap> Snap for (A, B, C, D) {
    fn encode(&self, w: &mut SnapWriter) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
        self.3.encode(w);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?, D::decode(r)?))
    }
}

impl<K: Snap + Ord, V: Snap> Snap for BTreeMap<K, V> {
    fn encode(&self, w: &mut SnapWriter) {
        w.put_u64(self.len() as u64);
        for (k, v) in self {
            k.encode(w);
            v.encode(w);
        }
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let len = r.get_len()?;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<T: Snap + Ord> Snap for BTreeSet<T> {
    fn encode(&self, w: &mut SnapWriter) {
        w.put_u64(self.len() as u64);
        for v in self {
            v.encode(w);
        }
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let len = r.get_len()?;
        let mut out = BTreeSet::new();
        for _ in 0..len {
            out.insert(T::decode(r)?);
        }
        Ok(out)
    }
}

/// Hash maps encode in sorted key order — the byte stream must not depend
/// on hash seeds or insertion history.
impl<K, V> Snap for HashMap<K, V>
where
    K: Snap + Ord + Eq + std::hash::Hash,
    V: Snap,
{
    fn encode(&self, w: &mut SnapWriter) {
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        w.put_u64(entries.len() as u64);
        for (k, v) in entries {
            k.encode(w);
            v.encode(w);
        }
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let len = r.get_len()?;
        let mut out = HashMap::with_capacity(len);
        for _ in 0..len {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

/// Hash sets encode in sorted order, like [`HashMap`].
impl<T> Snap for HashSet<T>
where
    T: Snap + Ord + Eq + std::hash::Hash,
{
    fn encode(&self, w: &mut SnapWriter) {
        let mut entries: Vec<&T> = self.iter().collect();
        entries.sort();
        w.put_u64(entries.len() as u64);
        for v in entries {
            v.encode(w);
        }
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let len = r.get_len()?;
        let mut out = HashSet::with_capacity(len);
        for _ in 0..len {
            out.insert(T::decode(r)?);
        }
        Ok(out)
    }
}

/// Binary heaps encode as their sorted element sequence (heap layout is an
/// implementation detail; the sorted order is canonical and the rebuilt
/// heap is observationally identical).
impl<T: Snap + Ord> Snap for BinaryHeap<T> {
    fn encode(&self, w: &mut SnapWriter) {
        let mut entries: Vec<&T> = self.iter().collect();
        entries.sort();
        w.put_u64(entries.len() as u64);
        for v in entries {
            v.encode(w);
        }
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let len = r.get_len()?;
        let mut out = BinaryHeap::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

/// Implement [`Snap`] for a struct by listing its persisted fields in
/// order; rebuildable scratch goes in the `defaults { field: expr }` arm.
/// Decode uses an exhaustive struct literal, so a newly added field that
/// is neither persisted nor defaulted fails to compile — the snapshot impl
/// can't silently fall behind the struct.
#[macro_export]
macro_rules! snap_struct {
    ($ty:ty { $($field:ident),* $(,)? }) => {
        $crate::snap_struct!($ty { $($field),* } defaults {});
    };
    ($ty:ty { $($field:ident),* $(,)? } defaults { $($dfield:ident: $dval:expr),* $(,)? }) => {
        impl $crate::Snap for $ty {
            fn encode(&self, w: &mut $crate::SnapWriter) {
                $( $crate::Snap::encode(&self.$field, w); )*
            }
            fn decode(
                r: &mut $crate::SnapReader<'_>,
            ) -> ::std::result::Result<Self, $crate::SnapError> {
                ::std::result::Result::Ok(Self {
                    $( $field: $crate::Snap::decode(r)?, )*
                    $( $dfield: $dval, )*
                })
            }
        }
    };
}

/// Implement [`Snap`] for a fieldless enum with explicit, stable tags.
/// Tags are part of the format: never renumber, only append.
#[macro_export]
macro_rules! snap_enum {
    ($ty:ty { $($variant:ident = $tag:literal),+ $(,)? }) => {
        impl $crate::Snap for $ty {
            fn encode(&self, w: &mut $crate::SnapWriter) {
                let tag: u16 = match self {
                    $( Self::$variant => $tag, )+
                };
                w.put_u16(tag);
            }
            fn decode(
                r: &mut $crate::SnapReader<'_>,
            ) -> ::std::result::Result<Self, $crate::SnapError> {
                let tag = r.get_u16()?;
                match tag {
                    $( $tag => ::std::result::Result::Ok(Self::$variant), )+
                    _ => ::std::result::Result::Err($crate::SnapError::UnknownTag {
                        what: stringify!($ty),
                        tag: u32::from(tag),
                    }),
                }
            }
        }
    };
}

/// Builder for a complete snapshot file: magic + version header, tagged
/// checksummed frames, whole-file trailer.
#[derive(Debug)]
pub struct FrameWriter {
    out: Vec<u8>,
}

impl Default for FrameWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameWriter {
    /// Start a snapshot file (writes the magic + version header).
    pub fn new() -> Self {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        Self { out }
    }

    /// Append one frame: `[tag u16][len u64][payload][fnv u64]`, where the
    /// seal hashes tag, length and payload. [`TRAILER_TAG`] is reserved and
    /// silently remapped would be corruption — it is a caller contract that
    /// domain tags stay below it.
    pub fn frame(&mut self, tag: u16, payload: &[u8]) {
        debug_assert!(tag != TRAILER_TAG, "trailer tag is reserved");
        let mut h = fnv1a_start();
        h = fnv1a(h, &tag.to_le_bytes());
        h = fnv1a(h, &(payload.len() as u64).to_le_bytes());
        h = fnv1a(h, payload);
        self.out.extend_from_slice(&tag.to_le_bytes());
        self.out
            .extend_from_slice(&(payload.len() as u64).to_le_bytes());
        self.out.extend_from_slice(payload);
        self.out.extend_from_slice(&h.to_le_bytes());
    }

    /// Encode a [`Snap`] value directly into a frame.
    pub fn frame_snap<T: Snap>(&mut self, tag: u16, value: &T) {
        let bytes = encode_to_vec(value);
        self.frame(tag, &bytes);
    }

    /// Seal the file with the trailer frame and return the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        let file_hash = fnv1a(fnv1a_start(), &self.out);
        let payload = file_hash.to_le_bytes();
        let tag = TRAILER_TAG;
        let mut h = fnv1a_start();
        h = fnv1a(h, &tag.to_le_bytes());
        h = fnv1a(h, &(payload.len() as u64).to_le_bytes());
        h = fnv1a(h, &payload);
        self.out.extend_from_slice(&tag.to_le_bytes());
        self.out
            .extend_from_slice(&(payload.len() as u64).to_le_bytes());
        self.out.extend_from_slice(&payload);
        self.out.extend_from_slice(&h.to_le_bytes());
        self.out
    }
}

/// Streaming reader over a snapshot file produced by [`FrameWriter`].
/// Verifies the header eagerly, each frame's seal as it is yielded, and
/// the whole-file trailer when the last frame is consumed.
#[derive(Debug)]
pub struct FrameReader<'a> {
    buf: &'a [u8],
    pos: usize,
    finished: bool,
}

impl<'a> FrameReader<'a> {
    /// Open a snapshot byte stream, checking magic and version.
    pub fn new(data: &'a [u8]) -> Result<Self, SnapError> {
        if data.len() < MAGIC.len() + 4 {
            return Err(SnapError::Truncated {
                needed: MAGIC.len() + 4,
                have: data.len(),
            });
        }
        if data[..MAGIC.len()] != MAGIC {
            return Err(SnapError::BadMagic);
        }
        let mut vb = [0u8; 4];
        vb.copy_from_slice(&data[MAGIC.len()..MAGIC.len() + 4]);
        let version = u32::from_le_bytes(vb);
        if version != VERSION {
            return Err(SnapError::UnsupportedVersion(version));
        }
        Ok(Self {
            buf: data,
            pos: MAGIC.len() + 4,
            finished: false,
        })
    }

    fn read_raw_frame(&mut self) -> Result<(u16, &'a [u8]), SnapError> {
        let remaining = self.buf.len() - self.pos;
        if remaining < 2 + 8 + 8 {
            return Err(SnapError::MissingTrailer);
        }
        let tag = u16::from_le_bytes([self.buf[self.pos], self.buf[self.pos + 1]]);
        let mut lb = [0u8; 8];
        lb.copy_from_slice(&self.buf[self.pos + 2..self.pos + 10]);
        let len = usize::try_from(u64::from_le_bytes(lb))
            .map_err(|_| SnapError::Malformed("frame length"))?;
        if remaining < 2 + 8 + len + 8 {
            return Err(SnapError::Truncated {
                needed: 2 + 8 + len + 8,
                have: remaining,
            });
        }
        let payload = &self.buf[self.pos + 10..self.pos + 10 + len];
        let mut cb = [0u8; 8];
        cb.copy_from_slice(&self.buf[self.pos + 10 + len..self.pos + 10 + len + 8]);
        let stored = u64::from_le_bytes(cb);
        let mut h = fnv1a_start();
        h = fnv1a(h, &tag.to_le_bytes());
        h = fnv1a(h, &(len as u64).to_le_bytes());
        h = fnv1a(h, payload);
        if h != stored {
            return Err(SnapError::ChecksumMismatch { tag });
        }
        self.pos += 2 + 8 + len + 8;
        Ok((tag, payload))
    }

    /// Yield the next domain frame, or `None` once the trailer has been
    /// reached and verified (including the no-bytes-after-trailer check).
    pub fn next_frame(&mut self) -> Result<Option<(u16, &'a [u8])>, SnapError> {
        if self.finished {
            return Ok(None);
        }
        let body_end = self.pos;
        let (tag, payload) = self.read_raw_frame()?;
        if tag != TRAILER_TAG {
            return Ok(Some((tag, payload)));
        }
        if payload.len() != 8 {
            return Err(SnapError::Malformed("trailer payload"));
        }
        let mut hb = [0u8; 8];
        hb.copy_from_slice(payload);
        let stored = u64::from_le_bytes(hb);
        let actual = fnv1a(fnv1a_start(), &self.buf[..body_end]);
        if stored != actual {
            return Err(SnapError::TrailerMismatch);
        }
        if self.pos != self.buf.len() {
            return Err(SnapError::TrailingBytes {
                extra: self.buf.len() - self.pos,
            });
        }
        self.finished = true;
        Ok(None)
    }

    /// Collect all domain frames, verifying every seal and the trailer.
    pub fn read_all(mut self) -> Result<Vec<(u16, &'a [u8])>, SnapError> {
        let mut out = Vec::new();
        while let Some(f) = self.next_frame()? {
            out.push(f);
        }
        Ok(out)
    }
}

/// Write snapshot bytes to `path` atomically-enough for a single writer:
/// a `.tmp` sibling is written first, then renamed over the target, so a
/// crash mid-write never leaves a half-written file under the final name.
pub fn write_snapshot_file(path: &std::path::Path, bytes: &[u8]) -> Result<(), SnapError> {
    let io = |e: std::io::Error| SnapError::Io {
        kind: e.kind(),
        path: path.display().to_string(),
    };
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes).map_err(io)?;
    std::fs::rename(&tmp, path).map_err(io)
}

/// Read snapshot bytes from `path`.
pub fn read_snapshot_file(path: &std::path::Path) -> Result<Vec<u8>, SnapError> {
    std::fs::read(path).map_err(|e| SnapError::Io {
        kind: e.kind(),
        path: path.display().to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = SnapWriter::new();
        0xdeadbeefu32.encode(&mut w);
        (-42i64).encode(&mut w);
        1.5f64.encode(&mut w);
        f64::NAN.encode(&mut w);
        true.encode(&mut w);
        "héllo".to_string().encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(u32::decode(&mut r).unwrap(), 0xdeadbeef);
        assert_eq!(i64::decode(&mut r).unwrap(), -42);
        assert_eq!(f64::decode(&mut r).unwrap(), 1.5);
        assert!(f64::decode(&mut r).unwrap().is_nan());
        assert!(bool::decode(&mut r).unwrap());
        assert_eq!(String::decode(&mut r).unwrap(), "héllo");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn containers_round_trip() {
        use std::cmp::Reverse;
        let v: Vec<u64> = vec![1, 2, 3];
        let mut m = HashMap::new();
        m.insert(3u64, 9u64);
        m.insert(1, 7);
        let mut s = HashSet::new();
        s.insert(5u32);
        s.insert(2);
        let mut h = BinaryHeap::new();
        h.push(Reverse((4u64, 1usize)));
        h.push(Reverse((2u64, 9usize)));
        let o: Option<Vec<f64>> = Some(vec![0.25, -0.5]);
        let d: VecDeque<u8> = VecDeque::from(vec![9, 8]);

        assert_eq!(
            decode_from_slice::<Vec<u64>>(&encode_to_vec(&v)).unwrap(),
            v
        );
        assert_eq!(
            decode_from_slice::<HashMap<u64, u64>>(&encode_to_vec(&m)).unwrap(),
            m
        );
        assert_eq!(
            decode_from_slice::<HashSet<u32>>(&encode_to_vec(&s)).unwrap(),
            s
        );
        let h2: BinaryHeap<Reverse<(u64, usize)>> = decode_from_slice(&encode_to_vec(&h)).unwrap();
        assert_eq!(h2.into_sorted_vec(), h.into_sorted_vec());
        assert_eq!(
            decode_from_slice::<Option<Vec<f64>>>(&encode_to_vec(&o)).unwrap(),
            o
        );
        assert_eq!(
            decode_from_slice::<VecDeque<u8>>(&encode_to_vec(&d)).unwrap(),
            d
        );
        let arr = [1u64, 2, 3];
        assert_eq!(
            decode_from_slice::<[u64; 3]>(&encode_to_vec(&arr)).unwrap(),
            arr
        );
    }

    #[test]
    fn hashmap_encoding_is_insertion_order_independent() {
        let mut a = HashMap::new();
        let mut b = HashMap::new();
        for i in 0..64u64 {
            a.insert(i, i * 3);
        }
        for i in (0..64u64).rev() {
            b.insert(i, i * 3);
        }
        assert_eq!(encode_to_vec(&a), encode_to_vec(&b));
    }

    #[test]
    fn bad_bool_and_trailing_bytes_are_typed_errors() {
        assert_eq!(
            decode_from_slice::<bool>(&[7]),
            Err(SnapError::Malformed("bool"))
        );
        assert_eq!(
            decode_from_slice::<u8>(&[1, 2]),
            Err(SnapError::TrailingBytes { extra: 1 })
        );
        assert!(matches!(
            decode_from_slice::<u64>(&[1, 2]),
            Err(SnapError::Truncated { .. })
        ));
    }

    #[test]
    fn oversize_length_claim_is_truncation_not_allocation() {
        let mut w = SnapWriter::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        assert!(matches!(
            decode_from_slice::<Vec<u8>>(&bytes),
            Err(SnapError::Truncated { .. })
        ));
    }

    #[test]
    fn frame_file_round_trips() {
        let mut fw = FrameWriter::new();
        fw.frame(1, b"alpha");
        fw.frame(2, b"");
        fw.frame_snap(3, &vec![1u64, 2, 3]);
        let bytes = fw.finish();
        let fr = FrameReader::new(&bytes).unwrap();
        let frames = fr.read_all().unwrap();
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0], (1, b"alpha".as_slice()));
        assert_eq!(frames[1].1.len(), 0);
        let v: Vec<u64> = decode_from_slice(frames[2].1).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let mut fw = FrameWriter::new();
        fw.frame(1, b"payload-bytes");
        fw.frame(7, &[0u8; 16]);
        let bytes = fw.finish();
        for i in 0..bytes.len() {
            for bit in [1u8, 0x80] {
                let mut bad = bytes.clone();
                bad[i] ^= bit;
                let outcome = FrameReader::new(&bad).and_then(|fr| fr.read_all());
                assert!(
                    outcome.is_err(),
                    "flipping bit {bit:#x} of byte {i} went undetected"
                );
            }
        }
    }

    #[test]
    fn truncation_anywhere_is_detected() {
        let mut fw = FrameWriter::new();
        fw.frame(1, b"abcdef");
        let bytes = fw.finish();
        for cut in 0..bytes.len() {
            let outcome = FrameReader::new(&bytes[..cut]).and_then(|fr| fr.read_all());
            assert!(outcome.is_err(), "truncation at {cut} went undetected");
        }
    }

    #[test]
    fn version_and_magic_are_enforced() {
        let mut fw = FrameWriter::new();
        fw.frame(1, b"x");
        let bytes = fw.finish();
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] ^= 0xff;
        assert_eq!(
            FrameReader::new(&wrong_magic).err(),
            Some(SnapError::BadMagic)
        );
        let mut wrong_version = bytes;
        wrong_version[8] = 0xfe;
        assert!(matches!(
            FrameReader::new(&wrong_version).err(),
            Some(SnapError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn bytes_appended_after_trailer_are_rejected() {
        let mut fw = FrameWriter::new();
        fw.frame(1, b"x");
        let mut bytes = fw.finish();
        bytes.push(0);
        let err = FrameReader::new(&bytes).and_then(|fr| fr.read_all());
        assert_eq!(err, Err(SnapError::TrailingBytes { extra: 1 }));
    }

    #[test]
    fn snap_macros_work_on_struct_and_enum() {
        #[derive(Debug, PartialEq)]
        struct Demo {
            a: u64,
            b: Vec<f64>,
            scratch: Vec<u8>,
        }
        crate::snap_struct!(Demo { a, b } defaults { scratch: Vec::new() });

        #[derive(Debug, PartialEq)]
        enum Kind {
            X,
            Y,
        }
        crate::snap_enum!(Kind { X = 0, Y = 1 });

        let d = Demo {
            a: 9,
            b: vec![1.0, 2.5],
            scratch: vec![1, 2, 3],
        };
        let d2: Demo = decode_from_slice(&encode_to_vec(&d)).unwrap();
        assert_eq!(d2.a, 9);
        assert_eq!(d2.b, vec![1.0, 2.5]);
        assert!(d2.scratch.is_empty());

        let k: Kind = decode_from_slice(&encode_to_vec(&Kind::Y)).unwrap();
        assert_eq!(k, Kind::Y);
        assert!(matches!(
            decode_from_slice::<Kind>(&encode_to_vec(&9u16)),
            Err(SnapError::UnknownTag { .. })
        ));
    }

    #[test]
    fn file_helpers_round_trip() {
        let dir = std::env::temp_dir().join("adbs-snap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("demo.snap");
        let mut fw = FrameWriter::new();
        fw.frame(4, b"persisted");
        let bytes = fw.finish();
        write_snapshot_file(&path, &bytes).unwrap();
        let back = read_snapshot_file(&path).unwrap();
        assert_eq!(back, bytes);
        assert!(matches!(
            read_snapshot_file(&dir.join("missing.snap")),
            Err(SnapError::Io { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }
}
