//! Property tests for the snapshot codec: encode∘decode = id for every
//! value shape, decode totality on byte soup, and corruption detection at
//! the frame layer for arbitrary frame sets.

use autodbaas_snapshot::{
    decode_from_slice, encode_to_vec, FrameReader, FrameWriter, Snap, SnapReader,
};
use proptest::prelude::*;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

fn round_trip<T: Snap + PartialEq + std::fmt::Debug>(v: &T) {
    let bytes = encode_to_vec(v);
    let back: T = decode_from_slice(&bytes).expect("decode of freshly encoded value");
    prop_assert_eq!(&back, v);
    // Canonical form: re-encoding the decoded value is byte-identical.
    prop_assert_eq!(encode_to_vec(&back), bytes);
}

proptest! {
    #[test]
    fn scalars_round_trip(a in 0u64..u64::MAX, b in i64::MIN..i64::MAX, c in 0u32..u32::MAX,
                          d in 0u8..=1, e in 0u8..=255, f in 0u16..u16::MAX) {
        round_trip(&a);
        round_trip(&b);
        round_trip(&c);
        round_trip(&(d == 1));
        round_trip(&e);
        round_trip(&f);
    }

    /// f64 round-trips through raw bits — including negative zero, infs
    /// and arbitrary NaN payloads (compared as bits).
    #[test]
    fn f64_bits_round_trip(bits in 0u64..u64::MAX) {
        let v = f64::from_bits(bits);
        let back: f64 = decode_from_slice(&encode_to_vec(&v)).unwrap();
        prop_assert_eq!(back.to_bits(), bits);
    }

    #[test]
    fn strings_and_vecs_round_trip(
        chars in prop::collection::vec(32u8..127, 0..40),
        v in prop::collection::vec(0u64..u64::MAX, 0..32),
        fbits in prop::collection::vec(0u64..u64::MAX, 0..32),
    ) {
        let s = String::from_utf8(chars).expect("ascii");
        round_trip(&s);
        round_trip(&v);
        let fv: Vec<f64> = fbits.iter().map(|b| f64::from_bits(*b)).collect();
        let back: Vec<f64> = decode_from_slice(&encode_to_vec(&fv)).unwrap();
        prop_assert_eq!(back.len(), fv.len());
        for (a, b) in back.iter().zip(&fv) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn containers_round_trip(
        keys in prop::collection::vec(0u64..u64::MAX, 0..24),
        vals in prop::collection::vec(i64::MIN..i64::MAX, 24),
        set in prop::collection::vec(0u32..u32::MAX, 0..24),
        dq in prop::collection::vec(0u16..u16::MAX, 0..24),
        opt_tag in 0u8..=1, opt_val in 0u64..u64::MAX,
    ) {
        let pairs: Vec<(u64, i64)> = keys.iter().copied().zip(vals.iter().copied()).collect();
        let hm: HashMap<u64, i64> = pairs.iter().copied().collect();
        let bm: BTreeMap<u64, i64> = pairs.iter().copied().collect();
        let hs: HashSet<u32> = set.iter().copied().collect();
        let vd: VecDeque<u16> = dq.into_iter().collect();
        let opt: Option<u64> = (opt_tag == 1).then_some(opt_val);
        round_trip(&hm);
        round_trip(&bm);
        round_trip(&hs);
        round_trip(&vd);
        round_trip(&opt);
        round_trip(&(pairs.clone(), opt));
    }

    /// Decode totality: arbitrary byte soup produces a value or a typed
    /// error — never a panic, never an absurd allocation.
    #[test]
    fn decode_never_panics_on_soup(bytes in prop::collection::vec(0u8..=255, 0..256)) {
        let _ = decode_from_slice::<Vec<u64>>(&bytes);
        let _ = decode_from_slice::<HashMap<u64, u64>>(&bytes);
        let _ = decode_from_slice::<Vec<(u64, String)>>(&bytes);
        let _ = decode_from_slice::<Option<Vec<f64>>>(&bytes);
        let mut r = SnapReader::new(&bytes);
        let _ = r.get_str();
        let _ = FrameReader::new(&bytes).and_then(|fr| fr.read_all());
    }

    /// Frame-layer integrity: any single-byte XOR of a sealed multi-frame
    /// file is detected.
    #[test]
    fn frame_corruption_always_detected(
        payloads in prop::collection::vec(prop::collection::vec(0u8..=255, 0..48), 1..5),
        flip in 0usize..usize::MAX,
        xor in 1u8..=255,
    ) {
        let mut fw = FrameWriter::new();
        for (i, p) in payloads.iter().enumerate() {
            fw.frame(i as u16, p);
        }
        let mut bytes = fw.finish();
        let idx = flip % bytes.len();
        bytes[idx] ^= xor;
        let outcome = FrameReader::new(&bytes).and_then(|fr| fr.read_all());
        prop_assert!(outcome.is_err(), "corrupting byte {} went undetected", idx);
    }

    /// The typed multi-frame layout the fleet-pair checkpoints use
    /// (`frame_snap` per arm, `next_frame` + `decode_from_slice` back):
    /// both payloads survive, in order, under arbitrary tags and values.
    #[test]
    fn typed_frame_pairs_round_trip(
        tag_a in 0u16..u16::MAX, tag_b in 0u16..u16::MAX,
        a in prop::collection::vec(0u64..u64::MAX, 0..32),
        b_keys in prop::collection::vec(0u32..u32::MAX, 0..32),
        b_vals in prop::collection::vec(i64::MIN..i64::MAX, 32),
    ) {
        let b: Vec<(u32, i64)> = b_keys.iter().copied().zip(b_vals.iter().copied()).collect();
        let mut fw = FrameWriter::new();
        fw.frame_snap(tag_a, &a);
        fw.frame_snap(tag_b, &b);
        let bytes = fw.finish();
        let mut fr = FrameReader::new(&bytes).expect("header");
        let (t, payload) = fr.next_frame().expect("frame").expect("first frame");
        prop_assert_eq!(t, tag_a);
        prop_assert_eq!(decode_from_slice::<Vec<u64>>(payload).expect("arm A"), a);
        let (t, payload) = fr.next_frame().expect("frame").expect("second frame");
        prop_assert_eq!(t, tag_b);
        prop_assert_eq!(decode_from_slice::<Vec<(u32, i64)>>(payload).expect("arm B"), b);
        prop_assert!(fr.next_frame().expect("tail").is_none());
    }

    /// Truncating a sealed file anywhere is detected.
    #[test]
    fn frame_truncation_always_detected(
        payload in prop::collection::vec(0u8..=255, 0..64),
        cut in 0usize..usize::MAX,
    ) {
        let mut fw = FrameWriter::new();
        fw.frame(1, &payload);
        let bytes = fw.finish();
        let cut = cut % bytes.len();
        let outcome = FrameReader::new(&bytes[..cut]).and_then(|fr| fr.read_all());
        prop_assert!(outcome.is_err(), "truncation at {} went undetected", cut);
    }
}
