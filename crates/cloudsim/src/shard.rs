//! The sharded fleet tick engine: persistent worker shards behind a
//! generation-counter barrier.
//!
//! The original parallel drive spawned one `std::thread::scope` fan-out per
//! tick — a thread spawn, a stack, and a join for every shard on every tick
//! of the run. At fleet scale that overhead dominates idle nodes. This
//! module replaces it with a [`ShardPool`]: the fleet is partitioned *once*
//! into `W` contiguous shards; shards `1..W` are owned by long-lived worker
//! threads that park between ticks, and shard `0` is driven by the calling
//! thread itself, so `W = 1` degenerates to the plain serial loop with zero
//! synchronisation.
//!
//! # Barrier protocol
//!
//! Per tick the caller publishes `(base, tick_ms)`, resets the `done`
//! counter, bumps the `generation` counter (Release) and unparks every
//! worker. A worker wakes, Acquire-loads the generation, drives its node
//! range, writes its [`ShardOutput`] into its slot, and announces with
//! `done.fetch_add(1, Release)`. The caller drives shard 0 meanwhile, then
//! waits for `done == W - 1` (Acquire) — that pairing makes every worker
//! write happen-before the caller's merge. Outputs are merged in ascending
//! shard order; since shards are contiguous ascending index ranges, the
//! merged order equals the serial drive order and the engines are
//! bit-identical for any shard count.
//!
//! # Determinism witness
//!
//! Every shard owns an RNG seeded with
//! `master_seed ^ (shard × 0x9e3779b97f4a7c15)` (see
//! [`derived_shard_seed`]). The stream never touches simulation state; each
//! epoch draws one probe value that the caller checks against a mirrored
//! stream, so a worker that ever missed or replayed an epoch — a barrier
//! protocol violation — fails loudly instead of silently diverging.

use crate::node::ManagedDatabase;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Golden-ratio increment decorrelating per-shard seed streams.
const SEED_GAMMA: u64 = 0x9e3779b97f4a7c15;

/// The seed of shard `shard`'s private RNG stream under `master_seed`.
/// Shard 0 (the calling thread) gets the master seed itself.
pub fn derived_shard_seed(master_seed: u64, shard: usize) -> u64 {
    master_seed ^ (shard as u64).wrapping_mul(SEED_GAMMA)
}

/// Cumulative fleet drive statistics, merged from per-shard outputs in
/// shard order every tick.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriveStats {
    /// Node-ticks driven (nodes × ticks).
    pub node_ticks: u64,
    /// Queries accepted across the fleet.
    pub submitted: u64,
    /// Node-ticks spent hard-down.
    pub down_ticks: u64,
}

impl DriveStats {
    /// Fold one tick's merged stats into a running total.
    pub fn accumulate(&mut self, tick: &DriveStats) {
        self.node_ticks += tick.node_ticks;
        self.submitted += tick.submitted;
        self.down_ticks += tick.down_ticks;
    }
}

/// What one worker shard produced in one epoch.
#[derive(Debug, Clone, Copy, Default)]
struct ShardOutput {
    submitted: u64,
    down: u64,
    probe: u64,
}

/// Shared control block between the caller and the workers.
struct Ctl {
    /// Epoch counter; a change is the "go" signal.
    generation: AtomicU64,
    /// Workers finished with the current epoch.
    done: AtomicU64,
    /// Terminal: workers exit instead of driving.
    shutdown: AtomicBool,
    /// A worker panicked mid-epoch; the caller re-raises.
    poisoned: AtomicBool,
    /// Tick length for the current epoch.
    tick_ms: AtomicU64,
    /// Base of the fleet's node slice for the current epoch. Only valid
    /// between the generation bump and the matching `done` barrier.
    base: AtomicPtr<ManagedDatabase>,
}

/// One worker's output slot. The `done` Release/Acquire pairing already
/// orders the write before the caller's read; the mutex is belt and braces
/// that keeps the slot access trivially race-free.
struct Slot {
    out: Mutex<ShardOutput>,
}

/// Persistent sharded tick engine over a fleet of [`ManagedDatabase`]s.
pub struct ShardPool {
    ctl: Arc<Ctl>,
    slots: Vec<Arc<Slot>>,
    handles: Vec<JoinHandle<()>>,
    /// Contiguous ascending node ranges, one per shard (shard 0 first).
    ranges: Vec<Range<usize>>,
    /// Caller-side mirrors of the worker shards' RNG streams (shards
    /// `1..W`), used to verify the per-epoch probes.
    mirrors: Vec<StdRng>,
    n_nodes: usize,
    generation: u64,
}

impl ShardPool {
    /// Build a pool of `shards` shards (clamped to `[1, n_nodes]`) over a
    /// fleet of `n_nodes` nodes. Spawns `shards − 1` worker threads; the
    /// caller drives shard 0 inside [`ShardPool::drive_tick`].
    pub fn new(shards: usize, n_nodes: usize, master_seed: u64) -> Self {
        let shards = shards.clamp(1, n_nodes.max(1));
        let chunk = n_nodes.div_ceil(shards).max(1);
        let ranges: Vec<Range<usize>> = (0..shards)
            .map(|i| (i * chunk).min(n_nodes)..((i + 1) * chunk).min(n_nodes))
            .collect();
        let ctl = Arc::new(Ctl {
            generation: AtomicU64::new(0),
            done: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
            tick_ms: AtomicU64::new(0),
            base: AtomicPtr::new(std::ptr::null_mut()),
        });
        let mut slots = Vec::with_capacity(shards - 1);
        let mut handles = Vec::with_capacity(shards - 1);
        let mut mirrors = Vec::with_capacity(shards - 1);
        // One worker per shard, built once and parked between ticks — this
        // loop is what replaces the old per-tick spawn fan-out.
        for (shard, range) in ranges.iter().enumerate().skip(1) {
            let slot = Arc::new(Slot {
                out: Mutex::new(ShardOutput::default()),
            });
            let seed = derived_shard_seed(master_seed, shard);
            mirrors.push(StdRng::seed_from_u64(seed));
            let handle = std::thread::Builder::new()
                .name(format!("fleet-shard-{shard}"))
                // detlint-allow: D005 one-time pool build; workers persist across every tick
                .spawn({
                    let ctl = Arc::clone(&ctl);
                    let slot = Arc::clone(&slot);
                    let range = range.clone();
                    move || worker_main(&ctl, &slot, range, seed)
                })
                // detlint-allow: R003 spawn failure at pool construction is unrecoverable; fires once at startup, never in the tick path
                .expect("spawn fleet shard worker");
            slots.push(slot);
            handles.push(handle);
        }
        Self {
            ctl,
            slots,
            handles,
            ranges,
            mirrors,
            n_nodes,
            generation: 0,
        }
    }

    /// Shard count (including the caller's shard 0).
    pub fn shards(&self) -> usize {
        self.ranges.len()
    }

    /// Fleet size this pool was partitioned for.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Drive one tick across every shard and merge the outputs in shard
    /// order. `nodes` must be the same fleet (same length) the pool was
    /// built for.
    pub fn drive_tick(&mut self, nodes: &mut [ManagedDatabase], tick_ms: u64) -> DriveStats {
        assert_eq!(
            nodes.len(),
            self.n_nodes,
            "pool partitioned for a different fleet size"
        );
        let mut total = DriveStats {
            node_ticks: self.n_nodes as u64,
            ..DriveStats::default()
        };
        if self.handles.is_empty() {
            // Single shard: the plain serial loop, no synchronisation.
            for node in nodes {
                let t = node.drive(tick_ms);
                total.submitted += t.submitted;
                total.down_ticks += u64::from(t.down);
            }
            return total;
        }

        // Publish the epoch. The Release on `generation` orders the
        // base/tick/done stores before any worker's Acquire load.
        let base = nodes.as_mut_ptr();
        self.ctl.base.store(base, Ordering::Relaxed);
        self.ctl.tick_ms.store(tick_ms, Ordering::Relaxed);
        self.ctl.done.store(0, Ordering::Relaxed);
        self.generation += 1;
        self.ctl
            .generation
            .store(self.generation, Ordering::Release);
        for h in &self.handles {
            h.thread().unpark();
        }

        for i in self.ranges[0].clone() {
            // SAFETY: `base` points at `nodes[0]` for this whole epoch and
            // `i` stays inside `ranges[0]`, which is disjoint from every
            // worker shard's range; `nodes` is not reborrowed until the
            // barrier below retires the epoch, so this is the only live
            // `&mut` to `nodes[i]`.
            let node = unsafe { &mut *base.add(i) };
            let t = node.drive(tick_ms);
            total.submitted += t.submitted;
            total.down_ticks += u64::from(t.down);
        }

        // Barrier: every worker's `done` increment (Release) pairs with
        // this Acquire, so their node mutations and slot writes are visible.
        let workers = self.handles.len() as u64;
        let mut spins = 0u32;
        while self.ctl.done.load(Ordering::Acquire) < workers {
            spins = spins.wrapping_add(1);
            if spins < 128 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        if self.ctl.poisoned.load(Ordering::Acquire) {
            // detlint-allow: R003 deliberately re-raises a worker panic on the driver thread; swallowing it would hand back a corrupt fleet state
            panic!("a fleet shard worker panicked while driving its nodes");
        }

        // Merge in ascending shard order — the serial drive order.
        for (w, slot) in self.slots.iter().enumerate() {
            let out = *slot.out.lock();
            let expected = self.mirrors[w].gen::<u64>();
            assert_eq!(
                out.probe,
                expected,
                "shard {} epoch probe mismatch: missed or replayed a tick",
                w + 1
            );
            total.submitted += out.submitted;
            total.down_ticks += out.down;
        }
        total
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        self.ctl.shutdown.store(true, Ordering::Release);
        // Bump the generation too, so a worker that just observed the old
        // value and is about to park still wakes and sees the shutdown.
        self.ctl.generation.fetch_add(1, Ordering::Release);
        for h in &self.handles {
            h.thread().unpark();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Worker loop for one shard: park until the generation moves, drive the
/// owned node range, publish the output, announce on the barrier.
fn worker_main(ctl: &Ctl, slot: &Slot, range: Range<usize>, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = 0u64;
    loop {
        loop {
            if ctl.shutdown.load(Ordering::Acquire) {
                return;
            }
            let g = ctl.generation.load(Ordering::Acquire);
            if g != seen {
                seen = g;
                break;
            }
            std::thread::park();
        }
        let base = ctl.base.load(Ordering::Relaxed);
        let tick_ms = ctl.tick_ms.load(Ordering::Relaxed);
        let probe = rng.gen::<u64>();
        let driven = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut submitted = 0u64;
            let mut down = 0u64;
            for i in range.clone() {
                // SAFETY: `i` stays inside this worker's `range`, disjoint
                // from every other shard's range, and `base` stays valid
                // for the whole epoch because the caller blocks on the
                // barrier before touching `nodes` again — so this is the
                // only live `&mut` to `nodes[i]`.
                let node = unsafe { &mut *base.add(i) };
                let t = node.drive(tick_ms);
                submitted += t.submitted;
                down += u64::from(t.down);
            }
            (submitted, down)
        }));
        match driven {
            Ok((submitted, down)) => {
                *slot.out.lock() = ShardOutput {
                    submitted,
                    down,
                    probe,
                };
            }
            Err(_) => ctl.poisoned.store(true, Ordering::Release),
        }
        let poisoned = ctl.poisoned.load(Ordering::Relaxed);
        ctl.done.fetch_add(1, Ordering::Release);
        if poisoned {
            return;
        }
    }
}

/// Structure-of-arrays hot state for the fleet's per-tick scans.
///
/// The control-plane scan and the recovery flush each need one question
/// answered per tick — "is anything due yet?" — but answering it out of the
/// node structs means touching every node's cache-cold control fields every
/// tick. This keeps the earliest due time per node in one dense array (and
/// the earliest pending recovery as a single scalar), so the scans are
/// gated by a linear walk over `8 × n` bytes instead of `n` scattered
/// struct reads.
///
/// Every entry is a *lower bound*: it must never exceed the node's true
/// earliest due time (a too-early entry costs one no-op scan; a too-late
/// one would skip real work). The fleet refreshes a node's entry after
/// every mutation of its control fields.
#[derive(Debug, Clone, Default)]
pub struct HotState {
    control_due: Vec<u64>,
    next_recovery_at: u64,
}

impl HotState {
    /// Empty hot state (no nodes, no pending recoveries).
    pub fn new() -> Self {
        Self {
            control_due: Vec::new(),
            next_recovery_at: u64::MAX,
        }
    }

    /// Register one more node (nothing due).
    pub fn push_node(&mut self) {
        self.control_due.push(u64::MAX);
    }

    /// Earliest time node `idx`'s control scan can act (`u64::MAX` = never).
    pub fn control_due(&self, idx: usize) -> u64 {
        self.control_due[idx]
    }

    /// Record node `idx`'s recomputed earliest control-due time.
    pub fn set_control_due(&mut self, idx: usize, at: u64) {
        self.control_due[idx] = at;
    }

    /// A crash recovery will complete at `at`.
    pub fn note_recovery(&mut self, at: u64) {
        self.next_recovery_at = self.next_recovery_at.min(at);
    }

    /// Earliest pending recovery completion (`u64::MAX` = none).
    pub fn next_recovery_at(&self) -> u64 {
        self.next_recovery_at
    }

    /// Replace the earliest-recovery bound after a flush.
    pub fn set_next_recovery(&mut self, at: u64) {
        self.next_recovery_at = at;
    }
}

use autodbaas_snapshot::snap_struct;

snap_struct!(DriveStats {
    node_ticks,
    submitted,
    down_ticks
});

snap_struct!(HotState {
    control_due,
    next_recovery_at
});

#[cfg(test)]
mod tests {
    use super::*;
    use autodbaas_core::{TdeConfig, TuningPolicy};
    use autodbaas_simdb::{DbFlavor, DiskKind, InstanceType, MetricId};
    use autodbaas_tuner::WorkloadId;
    use autodbaas_workload::{tpcc, ArrivalProcess};

    fn fleet(n: usize) -> Vec<ManagedDatabase> {
        (0..n)
            .map(|i| {
                let wl = tpcc(0.5);
                let catalog = wl.catalog().clone();
                ManagedDatabase::new(
                    DbFlavor::Postgres,
                    InstanceType::M4Large,
                    DiskKind::Ssd,
                    catalog,
                    Box::new(wl),
                    ArrivalProcess::Constant(80.0),
                    TuningPolicy::TdeDriven,
                    WorkloadId(0),
                    TdeConfig::default(),
                    100 + i as u64,
                )
            })
            .collect()
    }

    #[test]
    fn derived_seeds_are_distinct_and_shard0_is_master() {
        assert_eq!(derived_shard_seed(42, 0), 42);
        let seeds: Vec<u64> = (0..16).map(|i| derived_shard_seed(42, i)).collect();
        for (i, a) in seeds.iter().enumerate() {
            for b in &seeds[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn any_shard_count_matches_the_serial_drive_bit_for_bit() {
        let ticks = 30u64;
        let mut serial = fleet(13);
        let mut serial_stats = DriveStats::default();
        for _ in 0..ticks {
            serial_stats.node_ticks += serial.len() as u64;
            for node in &mut serial {
                let t = node.drive(1_000);
                serial_stats.submitted += t.submitted;
                serial_stats.down_ticks += u64::from(t.down);
            }
        }
        let reference: Vec<(u64, f64)> = serial
            .iter()
            .map(|n| {
                (
                    n.queries_submitted,
                    n.db().metrics().get(MetricId::QueriesExecuted),
                )
            })
            .collect();
        for shards in [1usize, 2, 3, 5, 13, 64] {
            let mut nodes = fleet(13);
            let mut pool = ShardPool::new(shards, nodes.len(), 0x5eed ^ 7);
            let mut stats = DriveStats::default();
            for _ in 0..ticks {
                stats.accumulate(&pool.drive_tick(&mut nodes, 1_000));
            }
            assert_eq!(stats, serial_stats, "shards={shards}");
            let got: Vec<(u64, f64)> = nodes
                .iter()
                .map(|n| {
                    (
                        n.queries_submitted,
                        n.db().metrics().get(MetricId::QueriesExecuted),
                    )
                })
                .collect();
            assert_eq!(got, reference, "shards={shards}");
        }
    }

    #[test]
    fn pool_survives_many_epochs_and_rebuild() {
        let mut nodes = fleet(6);
        {
            let mut pool = ShardPool::new(3, 6, 9);
            assert_eq!(pool.shards(), 3);
            for _ in 0..200 {
                pool.drive_tick(&mut nodes, 250);
            }
        } // drop joins the workers
        let mut pool = ShardPool::new(2, 6, 9);
        let stats = pool.drive_tick(&mut nodes, 250);
        assert_eq!(stats.node_ticks, 6);
    }

    #[test]
    fn shard_count_is_clamped_to_fleet_size() {
        let pool = ShardPool::new(64, 3, 1);
        assert!(pool.shards() <= 3);
        let pool = ShardPool::new(0, 3, 1);
        assert_eq!(pool.shards(), 1);
    }

    #[test]
    #[should_panic(expected = "different fleet size")]
    fn driving_a_resized_fleet_is_rejected() {
        let mut nodes = fleet(4);
        let mut pool = ShardPool::new(2, 5, 1);
        pool.drive_tick(&mut nodes, 1_000);
    }

    #[test]
    fn hot_state_tracks_lower_bounds() {
        let mut hot = HotState::new();
        hot.push_node();
        hot.push_node();
        assert_eq!(hot.control_due(0), u64::MAX);
        hot.set_control_due(1, 5_000);
        assert_eq!(hot.control_due(1), 5_000);
        assert_eq!(hot.next_recovery_at(), u64::MAX);
        hot.note_recovery(9_000);
        hot.note_recovery(7_000);
        assert_eq!(hot.next_recovery_at(), 7_000);
        hot.set_next_recovery(u64::MAX);
        assert_eq!(hot.next_recovery_at(), u64::MAX);
    }
}
