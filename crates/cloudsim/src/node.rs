//! One managed database inside the fleet simulation: the database engine,
//! its TDE plugin, its workload, and its tuning-request policy.

use autodbaas_core::{Tde, TdeConfig, TdeReport, TuningPolicy};
use autodbaas_simdb::{
    Catalog, DbFlavor, DiskKind, InstanceType, MetricsSnapshot, SimDatabase, SubmitResult,
};
use autodbaas_telemetry::SimTime;
use autodbaas_tuner::WorkloadId;
use autodbaas_workload::{ArrivalProcess, QuerySource};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-database bookkeeping the fleet simulator needs.
pub struct ManagedDatabase {
    /// The engine (master node; the fleet sim skips HA replicas for speed —
    /// the replica protocol is exercised by `autodbaas-ctrlplane` itself).
    pub db: SimDatabase,
    /// The TDE plugin running on the VM.
    pub tde: Tde,
    /// Query generator.
    pub workload: Box<dyn QuerySource + Send>,
    /// Arrival-rate model.
    pub arrival: ArrivalProcess,
    /// Tuning-request policy (TDE-driven vs. periodic).
    pub policy: TuningPolicy,
    /// This database's workload id in the tuner repository.
    pub workload_id: WorkloadId,
    /// Last tuning request time (for periodic policies).
    pub last_request_at: SimTime,
    /// Metric snapshot at the start of the current observation window.
    pub window_start_snapshot: MetricsSnapshot,
    /// Last TDE report (drives sample gating).
    pub last_report: TdeReport,
    /// Objective (qps) over the previous window — RL reward baseline.
    pub prev_objective: f64,
    /// Normalised config applied in the previous window (RL action echo).
    pub prev_action: Option<Vec<f64>>,
    /// RL state observed when the previous action was applied.
    pub prev_rl_state: Option<Vec<f64>>,
    /// RNG for workload sampling.
    pub rng: StdRng,
    /// Queries submitted this simulation (for reports).
    pub queries_submitted: u64,
    /// Plan-upgrade requests raised.
    pub plan_upgrades: u64,
    /// True while a tuning request is in flight (no re-request until the
    /// recommendation lands — the request/response flow of Fig. 1).
    pub pending_request: bool,
    /// Observation windows to skip after a recommendation was applied, so
    /// the new configuration gets a chance to show its effect before the
    /// TDE can indict it.
    pub cooldown_windows: u32,
}

/// How many distinct query instances are materialised per tick; the rest of
/// the arrival count is replayed as batches of these.
const QUERY_SHAPES_PER_TICK: u64 = 24;

impl ManagedDatabase {
    /// Assemble a managed database.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        flavor: DbFlavor,
        instance: InstanceType,
        disk: DiskKind,
        catalog: Catalog,
        workload: Box<dyn QuerySource + Send>,
        arrival: ArrivalProcess,
        policy: TuningPolicy,
        workload_id: WorkloadId,
        tde_config: TdeConfig,
        seed: u64,
    ) -> Self {
        let db = SimDatabase::new(flavor, instance, disk, catalog, seed);
        let tde = Tde::new(&db.profile().clone(), tde_config, seed ^ 0x7de);
        let window_start_snapshot = db.metrics_snapshot();
        Self {
            db,
            tde,
            workload,
            arrival,
            policy,
            workload_id,
            last_request_at: 0,
            window_start_snapshot,
            last_report: TdeReport::default(),
            prev_objective: 0.0,
            prev_action: None,
            prev_rl_state: None,
            rng: StdRng::seed_from_u64(seed ^ 0xfeed),
            queries_submitted: 0,
            plan_upgrades: 0,
            pending_request: false,
            cooldown_windows: 0,
        }
    }

    /// Drive one tick of traffic: Poisson arrivals from the workload,
    /// batched into a bounded number of distinct shapes, then the engine
    /// tick.
    pub fn drive(&mut self, tick_ms: u64) {
        let now = self.db.now();
        let n = self.arrival.sample_count(&mut self.rng, now, tick_ms);
        if n > 0 {
            let shapes = n.min(QUERY_SHAPES_PER_TICK);
            let per_shape = n / shapes;
            let remainder = n - per_shape * shapes;
            for i in 0..shapes {
                let q = self.workload.next_query(&mut self.rng);
                let count = per_shape + u64::from(i < remainder);
                if count > 0 {
                    match self.db.submit(&q, count) {
                        SubmitResult::Done(_) | SubmitResult::Queued => {
                            self.queries_submitted += count;
                        }
                        SubmitResult::Refused | SubmitResult::Saturated { .. } => {}
                    }
                }
            }
        }
        self.db.tick(tick_ms);
    }

    /// Swap the workload (the Fig. 14 switch), resetting TDE workload
    /// state.
    pub fn switch_workload(
        &mut self,
        workload: Box<dyn QuerySource + Send>,
        arrival: ArrivalProcess,
    ) {
        self.workload = workload;
        self.arrival = arrival;
        self.tde.reset_workload_state();
    }

    /// Objective over the window that just closed: completed queries per
    /// second. Reads the one counter it needs instead of materialising a
    /// full snapshot + delta vector.
    pub fn window_objective(&self, window_ms: u64) -> f64 {
        let executed = self
            .db
            .metrics()
            .get(autodbaas_simdb::MetricId::QueriesExecuted)
            - self
                .window_start_snapshot
                .get(autodbaas_simdb::MetricId::QueriesExecuted);
        executed * 1000.0 / window_ms.max(1) as f64
    }

    /// [`ManagedDatabase::window_objective`] from an already-taken snapshot
    /// (the fleet TDE round snapshots once and derives everything from it).
    pub fn window_objective_from(&self, snap: &MetricsSnapshot, window_ms: u64) -> f64 {
        let executed = snap.delta_of(
            &self.window_start_snapshot,
            autodbaas_simdb::MetricId::QueriesExecuted,
        );
        executed * 1000.0 / window_ms.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autodbaas_workload::{tpcc, ArrivalProcess};

    fn node(policy: TuningPolicy) -> ManagedDatabase {
        let wl = tpcc(1.0);
        let catalog = wl.catalog().clone();
        ManagedDatabase::new(
            DbFlavor::Postgres,
            InstanceType::M4Large,
            DiskKind::Ssd,
            catalog,
            Box::new(wl),
            ArrivalProcess::Constant(500.0),
            policy,
            WorkloadId(0),
            TdeConfig::default(),
            42,
        )
    }

    #[test]
    fn drive_produces_traffic() {
        let mut n = node(TuningPolicy::TdeDriven);
        for _ in 0..10 {
            n.drive(1_000);
        }
        // ~500 qps for 10 s.
        assert!(
            n.queries_submitted > 3_000,
            "submitted {}",
            n.queries_submitted
        );
        assert!(
            n.db.metrics()
                .get(autodbaas_simdb::MetricId::QueriesExecuted)
                > 3_000.0
        );
    }

    #[test]
    fn window_objective_tracks_arrival_rate() {
        let mut n = node(TuningPolicy::TdeDriven);
        n.window_start_snapshot = n.db.metrics_snapshot();
        for _ in 0..20 {
            n.drive(1_000);
        }
        let qps = n.window_objective(20_000);
        assert!((300.0..700.0).contains(&qps), "qps {qps}");
    }

    #[test]
    fn switch_workload_resets_tde_state() {
        let mut n = node(TuningPolicy::TdeDriven);
        for _ in 0..5 {
            n.drive(1_000);
        }
        let _ = n.tde.run(&mut n.db, None);
        n.switch_workload(
            Box::new(autodbaas_workload::ycsb(1.0)),
            ArrivalProcess::Constant(100.0),
        );
        assert_eq!(n.tde.templates().len(), 0);
    }
}
