//! One managed database inside the fleet simulation: the replicated
//! service, its TDE plugin, its workload, and its tuning-request policy.

use autodbaas_core::{Tde, TdeConfig, TdeReport, TuningPolicy};
use autodbaas_ctrlplane::ReplicaSet;
use autodbaas_simdb::{
    AnyBackend, Catalog, DbFlavor, DiskKind, InstanceType, KnobSet, MetricsSnapshot, SubmitResult,
};
use autodbaas_telemetry::SimTime;
use autodbaas_tuner::WorkloadId;
use autodbaas_workload::{ArrivalProcess, QuerySource};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A tuning request awaiting its recommendation. Responses are matched by
/// sequence number so a late delivery for a request that already timed out
/// (and was retried) is dropped instead of double-applying.
#[derive(Debug, Clone, Copy)]
pub struct InFlightRequest {
    /// Give up and retry when `now` passes this.
    pub deadline: SimTime,
    /// Request sequence number (monotonic per node).
    pub seq: u64,
    /// Fault injection: the response was lost in transit; delivery drops it
    /// and only the deadline can clear the request.
    pub lost: bool,
}

/// A recommendation refused by the replica-lag guard, parked for a
/// backoff-retry instead of being thrown away.
#[derive(Debug, Clone)]
pub struct DeferredApply {
    /// The unit-cube config still waiting to land.
    pub unit: Vec<f64>,
    /// Next attempt time.
    pub next_try_at: SimTime,
    /// Attempts already made.
    pub attempts: u32,
}

/// Post-apply safety guard: if the observation windows after an applied
/// recommendation regress the objective beyond the configured threshold,
/// the service is rolled back to `revert_to` and the window's sample is
/// quarantined.
#[derive(Debug, Clone)]
pub struct RollbackGuard {
    /// Objective over the window preceding the apply.
    pub baseline: f64,
    /// Config to restore (and re-persist) on regression.
    pub revert_to: KnobSet,
    /// Observation windows left before the new config is accepted.
    pub windows_left: u32,
}

/// Per-database bookkeeping the fleet simulator needs.
pub struct ManagedDatabase {
    /// The replicated service: master plus optional HA slaves (built with
    /// [`ManagedDatabase::with_slaves`]); query traffic runs on the master.
    pub service: ReplicaSet,
    /// The TDE plugin running on the VM.
    pub tde: Tde,
    /// Query generator.
    pub workload: Box<dyn QuerySource + Send>,
    /// Arrival-rate model.
    pub arrival: ArrivalProcess,
    /// Tuning-request policy (TDE-driven vs. periodic).
    pub policy: TuningPolicy,
    /// This database's workload id in the tuner repository.
    pub workload_id: WorkloadId,
    /// Last tuning request time (for periodic policies).
    pub last_request_at: SimTime,
    /// Metric snapshot at the start of the current observation window.
    pub window_start_snapshot: MetricsSnapshot,
    /// Last TDE report (drives sample gating).
    pub last_report: TdeReport,
    /// Objective (qps) over the previous window — RL reward baseline.
    pub prev_objective: f64,
    /// Normalised config applied in the previous window (RL action echo).
    pub prev_action: Option<Vec<f64>>,
    /// RL state observed when the previous action was applied.
    pub prev_rl_state: Option<Vec<f64>>,
    /// RNG for workload sampling (and retry-backoff jitter under chaos).
    pub rng: StdRng,
    /// Queries submitted this simulation (for reports).
    pub queries_submitted: u64,
    /// Plan-upgrade requests raised.
    pub plan_upgrades: u64,
    /// The tuning request in flight, if any. Replaces the old
    /// `pending_request` flag, whose lost-response failure mode wedged the
    /// node forever; the deadline here guarantees progress.
    pub in_flight: Option<InFlightRequest>,
    /// Next request sequence number.
    pub request_seq: u64,
    /// When a timed-out request retries (exponential backoff + jitter).
    pub retry_at: Option<SimTime>,
    /// Consecutive timeouts for the current request.
    pub retry_attempt: u32,
    /// Lag-refused recommendation awaiting a backoff-retry.
    pub deferred_apply: Option<DeferredApply>,
    /// Post-apply regression guard, when the fleet's rollback policy is on.
    pub guard: Option<RollbackGuard>,
    /// A fault hit this observation window; its sample is not trustworthy
    /// and is quarantined.
    pub window_tainted: bool,
    /// Monitoring-agent blackout: TDE windows before this are skipped.
    pub telemetry_blackout_until: SimTime,
    /// Ticks the master spent hard-down (availability numerator).
    pub down_ticks: u64,
    /// Ticks driven in total (availability denominator).
    pub total_ticks: u64,
    /// Observation windows to skip after a recommendation was applied, so
    /// the new configuration gets a chance to show its effect before the
    /// TDE can indict it.
    pub cooldown_windows: u32,
    /// Construction seed (HA slaves added later derive theirs from it).
    seed: u64,
}

/// How many distinct query instances are materialised per tick; the rest of
/// the arrival count is replayed as batches of these.
const QUERY_SHAPES_PER_TICK: u64 = 24;

/// What one [`ManagedDatabase::drive`] tick did — the per-node output the
/// sharded tick engine folds into its per-shard accumulators instead of
/// reading fleet counters back out of every node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriveTick {
    /// Queries accepted by the master this tick.
    pub submitted: u64,
    /// The master spent this tick hard-down (crash recovery).
    pub down: bool,
}

impl ManagedDatabase {
    /// Assemble a managed database (no HA slaves; chain
    /// [`ManagedDatabase::with_slaves`] to add them).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        flavor: DbFlavor,
        instance: InstanceType,
        disk: DiskKind,
        catalog: Catalog,
        workload: Box<dyn QuerySource + Send>,
        arrival: ArrivalProcess,
        policy: TuningPolicy,
        workload_id: WorkloadId,
        tde_config: TdeConfig,
        seed: u64,
    ) -> Self {
        let service = ReplicaSet::new(flavor, instance, disk, catalog, 0, seed);
        let tde = Tde::new(
            &service.master().profile().clone(),
            tde_config,
            seed ^ 0x7de,
        );
        let window_start_snapshot = service.master().metrics_snapshot();
        Self {
            service,
            tde,
            workload,
            arrival,
            policy,
            workload_id,
            last_request_at: 0,
            window_start_snapshot,
            last_report: TdeReport::default(),
            prev_objective: 0.0,
            prev_action: None,
            prev_rl_state: None,
            rng: StdRng::seed_from_u64(seed ^ 0xfeed),
            queries_submitted: 0,
            plan_upgrades: 0,
            in_flight: None,
            request_seq: 0,
            retry_at: None,
            retry_attempt: 0,
            deferred_apply: None,
            guard: None,
            window_tainted: false,
            telemetry_blackout_until: 0,
            down_ticks: 0,
            total_ticks: 0,
            cooldown_windows: 0,
            seed,
        }
    }

    /// Rebuild the service with `n` HA slaves of the master's shape. Only
    /// meaningful before the simulation starts (the replicas boot fresh).
    pub fn with_slaves(mut self, n: usize) -> Self {
        let m = self.service.master();
        self.service = ReplicaSet::new(
            m.flavor(),
            m.instance(),
            m.disks().data().kind(),
            m.catalog().clone(),
            n,
            self.seed,
        );
        self.window_start_snapshot = self.service.master().metrics_snapshot();
        self
    }

    /// The master node (where traffic and tuning act). Any [`AnyBackend`]
    /// adapter — page-heap and LSM masters coexist in one fleet.
    pub fn db(&self) -> &AnyBackend {
        self.service.master()
    }

    /// Mutable master.
    pub fn db_mut(&mut self) -> &mut AnyBackend {
        self.service.master_mut()
    }

    /// Fraction of driven ticks the master was serving (1.0 before any
    /// tick).
    pub fn availability(&self) -> f64 {
        if self.total_ticks == 0 {
            return 1.0;
        }
        1.0 - self.down_ticks as f64 / self.total_ticks as f64
    }

    /// Drive one tick of traffic: Poisson arrivals from the workload,
    /// batched into a bounded number of distinct shapes, then the service
    /// tick (master, slaves, replication streams).
    pub fn drive(&mut self, tick_ms: u64) -> DriveTick {
        self.total_ticks += 1;
        let down = self.service.master().is_down();
        if down {
            self.down_ticks += 1;
        }
        let now = self.service.master().now();
        let n = self.arrival.sample_count(&mut self.rng, now, tick_ms);
        let mut submitted = 0u64;
        if n > 0 {
            let shapes = n.min(QUERY_SHAPES_PER_TICK);
            let per_shape = n / shapes;
            let remainder = n - per_shape * shapes;
            for i in 0..shapes {
                let q = self.workload.next_query(&mut self.rng);
                let count = per_shape + u64::from(i < remainder);
                if count > 0 {
                    match self.service.master_mut().submit(&q, count) {
                        SubmitResult::Done(_) | SubmitResult::Queued => {
                            submitted += count;
                        }
                        SubmitResult::Refused | SubmitResult::Saturated { .. } => {}
                    }
                }
            }
        }
        self.queries_submitted += submitted;
        self.service.tick(tick_ms);
        DriveTick { submitted, down }
    }

    /// Swap the workload (the Fig. 14 switch), resetting TDE workload
    /// state.
    pub fn switch_workload(
        &mut self,
        workload: Box<dyn QuerySource + Send>,
        arrival: ArrivalProcess,
    ) {
        self.workload = workload;
        self.arrival = arrival;
        self.tde.reset_workload_state();
    }

    /// Objective over the window that just closed: completed queries per
    /// second. Reads the one counter it needs instead of materialising a
    /// full snapshot + delta vector.
    pub fn window_objective(&self, window_ms: u64) -> f64 {
        let executed = self
            .db()
            .metrics()
            .get(autodbaas_simdb::MetricId::QueriesExecuted)
            - self
                .window_start_snapshot
                .get(autodbaas_simdb::MetricId::QueriesExecuted);
        executed * 1000.0 / window_ms.max(1) as f64
    }

    /// [`ManagedDatabase::window_objective`] from an already-taken snapshot
    /// (the fleet TDE round snapshots once and derives everything from it).
    pub fn window_objective_from(&self, snap: &MetricsSnapshot, window_ms: u64) -> f64 {
        let executed = snap.delta_of(
            &self.window_start_snapshot,
            autodbaas_simdb::MetricId::QueriesExecuted,
        );
        executed * 1000.0 / window_ms.max(1) as f64
    }
}

use autodbaas_snapshot::{snap_struct, Snap, SnapError, SnapReader, SnapWriter};
use autodbaas_workload::WorkloadSnap;

snap_struct!(InFlightRequest {
    deadline,
    seq,
    lost
});
snap_struct!(DeferredApply {
    unit,
    next_try_at,
    attempts
});
snap_struct!(RollbackGuard {
    baseline,
    revert_to,
    windows_left
});

// The boxed `dyn QuerySource` is the one field that cannot go through
// `snap_struct!`: it round-trips through [`WorkloadSnap`], the closed
// enumeration of every concrete workload the fleet can host.
impl Snap for ManagedDatabase {
    fn encode(&self, w: &mut SnapWriter) {
        self.service.encode(w);
        self.tde.encode(w);
        self.workload.to_snap().encode(w);
        self.arrival.encode(w);
        self.policy.encode(w);
        self.workload_id.encode(w);
        self.last_request_at.encode(w);
        self.window_start_snapshot.encode(w);
        self.last_report.encode(w);
        self.prev_objective.encode(w);
        self.prev_action.encode(w);
        self.prev_rl_state.encode(w);
        self.rng.encode(w);
        self.queries_submitted.encode(w);
        self.plan_upgrades.encode(w);
        self.in_flight.encode(w);
        self.request_seq.encode(w);
        self.retry_at.encode(w);
        self.retry_attempt.encode(w);
        self.deferred_apply.encode(w);
        self.guard.encode(w);
        self.window_tainted.encode(w);
        self.telemetry_blackout_until.encode(w);
        self.down_ticks.encode(w);
        self.total_ticks.encode(w);
        self.cooldown_windows.encode(w);
        self.seed.encode(w);
    }
    fn decode(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(ManagedDatabase {
            service: Snap::decode(r)?,
            tde: Snap::decode(r)?,
            workload: WorkloadSnap::decode(r)?.into_source(),
            arrival: Snap::decode(r)?,
            policy: Snap::decode(r)?,
            workload_id: Snap::decode(r)?,
            last_request_at: Snap::decode(r)?,
            window_start_snapshot: Snap::decode(r)?,
            last_report: Snap::decode(r)?,
            prev_objective: Snap::decode(r)?,
            prev_action: Snap::decode(r)?,
            prev_rl_state: Snap::decode(r)?,
            rng: Snap::decode(r)?,
            queries_submitted: Snap::decode(r)?,
            plan_upgrades: Snap::decode(r)?,
            in_flight: Snap::decode(r)?,
            request_seq: Snap::decode(r)?,
            retry_at: Snap::decode(r)?,
            retry_attempt: Snap::decode(r)?,
            deferred_apply: Snap::decode(r)?,
            guard: Snap::decode(r)?,
            window_tainted: Snap::decode(r)?,
            telemetry_blackout_until: Snap::decode(r)?,
            down_ticks: Snap::decode(r)?,
            total_ticks: Snap::decode(r)?,
            cooldown_windows: Snap::decode(r)?,
            seed: Snap::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autodbaas_workload::{tpcc, ArrivalProcess};

    fn node(policy: TuningPolicy) -> ManagedDatabase {
        let wl = tpcc(1.0);
        let catalog = wl.catalog().clone();
        ManagedDatabase::new(
            DbFlavor::Postgres,
            InstanceType::M4Large,
            DiskKind::Ssd,
            catalog,
            Box::new(wl),
            ArrivalProcess::Constant(500.0),
            policy,
            WorkloadId(0),
            TdeConfig::default(),
            42,
        )
    }

    #[test]
    fn drive_produces_traffic() {
        let mut n = node(TuningPolicy::TdeDriven);
        for _ in 0..10 {
            n.drive(1_000);
        }
        // ~500 qps for 10 s.
        assert!(
            n.queries_submitted > 3_000,
            "submitted {}",
            n.queries_submitted
        );
        assert!(
            n.db()
                .metrics()
                .get(autodbaas_simdb::MetricId::QueriesExecuted)
                > 3_000.0
        );
        assert!((n.availability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn window_objective_tracks_arrival_rate() {
        let mut n = node(TuningPolicy::TdeDriven);
        n.window_start_snapshot = n.db().metrics_snapshot();
        for _ in 0..20 {
            n.drive(1_000);
        }
        let qps = n.window_objective(20_000);
        assert!((300.0..700.0).contains(&qps), "qps {qps}");
    }

    #[test]
    fn switch_workload_resets_tde_state() {
        let mut n = node(TuningPolicy::TdeDriven);
        for _ in 0..5 {
            n.drive(1_000);
        }
        let _ = n.tde.run(n.service.master_mut(), None);
        n.switch_workload(
            Box::new(autodbaas_workload::ycsb(1.0)),
            ArrivalProcess::Constant(100.0),
        );
        assert_eq!(n.tde.templates().len(), 0);
    }

    #[test]
    fn with_slaves_builds_replicas_and_keeps_determinism() {
        let mk = || node(TuningPolicy::TdeDriven).with_slaves(2);
        let mut a = mk();
        let mut b = mk();
        assert_eq!(a.service.n_slaves(), 2);
        for _ in 0..10 {
            a.drive(1_000);
            b.drive(1_000);
        }
        assert_eq!(a.queries_submitted, b.queries_submitted);
        assert_eq!(
            a.service.max_replication_lag(),
            b.service.max_replication_lag()
        );
    }

    #[test]
    fn down_master_ticks_count_against_availability() {
        let mut n = node(TuningPolicy::TdeDriven);
        n.drive(1_000);
        let report = n.db_mut().crash();
        let down_ticks_expected = report.recovery_ms.div_ceil(1_000);
        for _ in 0..30 {
            n.drive(1_000);
        }
        assert!(n.down_ticks >= down_ticks_expected.min(2));
        assert!(n.availability() < 1.0);
        assert!(!n.db().is_down());
    }
}
