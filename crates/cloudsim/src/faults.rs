//! Deterministic, seeded fault injection for the fleet simulator.
//!
//! A [`FaultPlan`] is an immutable, time-sorted schedule of [`FaultEvent`]s
//! decided *before* the run — either the canonical [`FaultPlan::standard`]
//! mix or a seeded random [`FaultPlan::generate`]. The [`FaultEngine`]
//! hands events to [`crate::FleetSim`] as simulation time passes them.
//! Nothing here draws randomness at injection time, so the same plan against
//! the same fleet seed produces a bit-for-bit identical run (pinned by the
//! chaos tests via the telemetry event-log fingerprint).

use autodbaas_telemetry::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One kind of injected failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The master VM dies now: failover if the service has slaves, WAL
    /// crash recovery either way.
    VmCrash,
    /// Arm the §4 mid-apply master crash: the *next* apply on this service
    /// fails after the slaves succeeded, leaving drift for the reconciler.
    MasterCrashMidApply,
    /// Arm a slave crash during the next apply: the recommendation is
    /// rejected slave-first, master untouched.
    SlaveCrashMidApply,
    /// The tuner service is unreachable; recommendation deliveries stall
    /// until the window ends (in-flight requests may time out and retry).
    TunerOutage {
        /// Outage length.
        duration_ms: u64,
    },
    /// The monitoring agent goes dark on this node: TDE windows during the
    /// blackout are skipped and never become samples.
    TelemetryDrop {
        /// Blackout length.
        duration_ms: u64,
    },
    /// Disk latency inflates by `factor` for `duration_ms` (noisy
    /// neighbor / EBS degradation).
    DiskStall {
        /// Stall length.
        duration_ms: u64,
        /// Latency multiplier, ≥ 1.
        factor: f64,
    },
    /// Replication replay stalls on every slave for `pause_ms` — lag builds
    /// and the apply lag-guard starts refusing.
    ReplicaLagSpike {
        /// Replay pause.
        pause_ms: u64,
    },
    /// The in-flight tuning request's response is lost in transit; only the
    /// deadline/retry machinery can recover the node's tuning loop.
    RequestLoss,
}

impl FaultKind {
    /// Total order over fault kinds for stable plan sorting: a discriminant
    /// rank plus the kind's parameters (`f64`s via `to_bits`, which is a
    /// total order here because no generator produces NaN or negative
    /// factors). Two equal-`(at, node)` events therefore sort the same way
    /// on every run, which is what keeps shrinking reproducible.
    pub(crate) fn sort_key(&self) -> (u8, u64, u64) {
        match *self {
            FaultKind::VmCrash => (0, 0, 0),
            FaultKind::MasterCrashMidApply => (1, 0, 0),
            FaultKind::SlaveCrashMidApply => (2, 0, 0),
            FaultKind::TunerOutage { duration_ms } => (3, duration_ms, 0),
            FaultKind::TelemetryDrop { duration_ms } => (4, duration_ms, 0),
            FaultKind::DiskStall {
                duration_ms,
                factor,
            } => (5, duration_ms, factor.to_bits()),
            FaultKind::ReplicaLagSpike { pause_ms } => (6, pause_ms, 0),
            FaultKind::RequestLoss => (7, 0, 0),
        }
    }
}

/// A scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When to inject.
    pub at: SimTime,
    /// Which fleet node (index into `FleetSim::nodes`).
    pub node: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// A time-sorted fault schedule.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

/// The rotation [`FaultPlan::standard`] deals faults from.
const STANDARD_ROTATION: [FaultKind; 8] = [
    FaultKind::VmCrash,
    FaultKind::DiskStall {
        duration_ms: 30_000,
        factor: 4.0,
    },
    FaultKind::RequestLoss,
    FaultKind::MasterCrashMidApply,
    FaultKind::TelemetryDrop {
        duration_ms: 90_000,
    },
    FaultKind::ReplicaLagSpike { pause_ms: 45_000 },
    FaultKind::SlaveCrashMidApply,
    FaultKind::TunerOutage {
        duration_ms: 120_000,
    },
];

impl FaultPlan {
    /// A plan from explicit events; sorted by `(at, node, kind)` so
    /// injection order never depends on construction order — even for
    /// events landing on the same node at the same tick, which matters when
    /// the shrinker removes events and re-sorts the remainder.
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| (e.at, e.node, e.kind.sort_key()));
        Self { events }
    }

    /// The canonical chaos mix used by fig16 and the smoke tests: two
    /// rotations of the eight fault kinds dealt round-robin across the
    /// fleet, evenly spaced over the first 75% of the run so the tail is
    /// quiet enough for every recovery and reconciliation to land. Fully
    /// deterministic — no RNG.
    pub fn standard(n_nodes: usize, duration_ms: u64) -> Self {
        assert!(n_nodes > 0);
        let n_events = STANDARD_ROTATION.len() * 2;
        let window = duration_ms * 3 / 4;
        let events = (0..n_events)
            .map(|i| FaultEvent {
                at: window * (i as u64 + 1) / (n_events as u64 + 1),
                node: i % n_nodes,
                kind: STANDARD_ROTATION[i % STANDARD_ROTATION.len()],
            })
            .collect();
        Self::new(events)
    }

    /// A seeded random plan: `n_events` faults at uniform times in the
    /// first 75% of the run, uniform nodes, kinds drawn from the standard
    /// rotation. Same `(seed, n_nodes, duration_ms, n_events)` ⇒ same plan.
    pub fn generate(seed: u64, n_nodes: usize, duration_ms: u64, n_events: usize) -> Self {
        assert!(n_nodes > 0);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xfa017);
        let window = (duration_ms * 3 / 4).max(1);
        let events = (0..n_events)
            .map(|_| FaultEvent {
                at: rng.gen_range(0..window),
                node: rng.gen_range(0..n_nodes),
                kind: STANDARD_ROTATION[rng.gen_range(0..STANDARD_ROTATION.len())],
            })
            .collect();
        Self::new(events)
    }

    /// The schedule, time-sorted.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Time of the last scheduled fault (0 for an empty plan).
    pub fn last_at(&self) -> SimTime {
        self.events.last().map_or(0, |e| e.at)
    }
}

/// Cursor over a [`FaultPlan`] during a run.
#[derive(Debug, Clone)]
pub struct FaultEngine {
    plan: FaultPlan,
    cursor: usize,
}

impl FaultEngine {
    /// Engine over `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        Self { plan, cursor: 0 }
    }

    /// Drain the events that have come due by `now`, in schedule order, into
    /// a caller-owned scratch buffer. Each event is handed out exactly once.
    /// `out` is cleared first; the per-tick callers reuse one buffer so the
    /// hot path never allocates after warm-up, and because nothing borrows
    /// from `self` at return the caller is free to inject against the same
    /// struct that owns this engine.
    pub fn take_due_into(&mut self, now: SimTime, out: &mut Vec<FaultEvent>) {
        out.clear();
        let start = self.cursor;
        while self.cursor < self.plan.events.len() && self.plan.events[self.cursor].at <= now {
            self.cursor += 1;
        }
        out.extend_from_slice(&self.plan.events[start..self.cursor]);
    }

    /// Faults not yet injected.
    pub fn remaining(&self) -> usize {
        self.plan.events.len() - self.cursor
    }

    /// The full plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

use autodbaas_snapshot::{snap_struct, Snap, SnapError, SnapReader, SnapWriter};

impl Snap for FaultKind {
    fn encode(&self, w: &mut SnapWriter) {
        match *self {
            FaultKind::VmCrash => 0u16.encode(w),
            FaultKind::MasterCrashMidApply => 1u16.encode(w),
            FaultKind::SlaveCrashMidApply => 2u16.encode(w),
            FaultKind::TunerOutage { duration_ms } => {
                3u16.encode(w);
                duration_ms.encode(w);
            }
            FaultKind::TelemetryDrop { duration_ms } => {
                4u16.encode(w);
                duration_ms.encode(w);
            }
            FaultKind::DiskStall {
                duration_ms,
                factor,
            } => {
                5u16.encode(w);
                duration_ms.encode(w);
                factor.encode(w);
            }
            FaultKind::ReplicaLagSpike { pause_ms } => {
                6u16.encode(w);
                pause_ms.encode(w);
            }
            FaultKind::RequestLoss => 7u16.encode(w),
        }
    }
    fn decode(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(match u16::decode(r)? {
            0 => FaultKind::VmCrash,
            1 => FaultKind::MasterCrashMidApply,
            2 => FaultKind::SlaveCrashMidApply,
            3 => FaultKind::TunerOutage {
                duration_ms: u64::decode(r)?,
            },
            4 => FaultKind::TelemetryDrop {
                duration_ms: u64::decode(r)?,
            },
            5 => FaultKind::DiskStall {
                duration_ms: u64::decode(r)?,
                factor: f64::decode(r)?,
            },
            6 => FaultKind::ReplicaLagSpike {
                pause_ms: u64::decode(r)?,
            },
            7 => FaultKind::RequestLoss,
            t => {
                return Err(SnapError::UnknownTag {
                    what: "FaultKind",
                    tag: t.into(),
                })
            }
        })
    }
}

snap_struct!(FaultEvent { at, node, kind });
snap_struct!(FaultPlan { events });
snap_struct!(FaultEngine { plan, cursor });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_time_sorted() {
        let plan = FaultPlan::new(vec![
            FaultEvent {
                at: 500,
                node: 1,
                kind: FaultKind::VmCrash,
            },
            FaultEvent {
                at: 100,
                node: 0,
                kind: FaultKind::RequestLoss,
            },
        ]);
        assert_eq!(plan.events()[0].at, 100);
        assert_eq!(plan.last_at(), 500);
    }

    #[test]
    fn standard_plan_is_deterministic_and_covers_all_kinds() {
        let a = FaultPlan::standard(4, 1_000_000);
        let b = FaultPlan::standard(4, 1_000_000);
        assert_eq!(a.events(), b.events());
        assert_eq!(a.len(), 16);
        for kind in STANDARD_ROTATION {
            assert!(a.events().iter().any(|e| e.kind == kind));
        }
        // A quiet tail: nothing in the last quarter of the run.
        assert!(a.last_at() <= 750_000);
        // Every node gets hit.
        for n in 0..4 {
            assert!(a.events().iter().any(|e| e.node == n));
        }
    }

    #[test]
    fn generated_plans_reproduce_under_the_same_seed() {
        let a = FaultPlan::generate(7, 3, 600_000, 20);
        let b = FaultPlan::generate(7, 3, 600_000, 20);
        let c = FaultPlan::generate(8, 3, 600_000, 20);
        assert_eq!(a.events(), b.events());
        assert_ne!(a.events(), c.events());
        assert!(a.events().iter().all(|e| e.node < 3 && e.at < 450_000));
    }

    #[test]
    fn engine_hands_out_each_event_once_in_order() {
        let plan = FaultPlan::standard(2, 100_000);
        let total = plan.len();
        let mut engine = FaultEngine::new(plan);
        let mut first = vec![FaultEvent {
            at: 0,
            node: 9,
            kind: FaultKind::VmCrash,
        }];
        engine.take_due_into(40_000, &mut first);
        assert!(!first.is_empty(), "stale contents must be cleared first");
        assert!(first.iter().all(|e| e.node < 2));
        assert!(first.windows(2).all(|w| w[0].at <= w[1].at));
        let mut again = Vec::new();
        engine.take_due_into(40_000, &mut again);
        assert!(again.is_empty(), "events must not repeat");
        let mut rest = Vec::new();
        engine.take_due_into(u64::MAX, &mut rest);
        assert_eq!(first.len() + rest.len(), total);
        assert_eq!(engine.remaining(), 0);
    }

    #[test]
    fn equal_timestamp_events_sort_by_node_then_kind() {
        // Three events at the same tick, same node, inserted in three
        // different orders — the plan must come out identical every time,
        // so shrink steps that rebuild plans stay reproducible.
        let e = |kind| FaultEvent {
            at: 500,
            node: 1,
            kind,
        };
        let kinds = [
            FaultKind::RequestLoss,
            FaultKind::VmCrash,
            FaultKind::DiskStall {
                duration_ms: 30_000,
                factor: 4.0,
            },
        ];
        let a = FaultPlan::new(vec![e(kinds[0]), e(kinds[1]), e(kinds[2])]);
        let b = FaultPlan::new(vec![e(kinds[2]), e(kinds[0]), e(kinds[1])]);
        let c = FaultPlan::new(vec![e(kinds[1]), e(kinds[2]), e(kinds[0])]);
        assert_eq!(a.events(), b.events());
        assert_eq!(b.events(), c.events());
        // Rank order: VmCrash < DiskStall < RequestLoss.
        assert_eq!(a.events()[0].kind, FaultKind::VmCrash);
        assert_eq!(a.events()[2].kind, FaultKind::RequestLoss);
        // Same kind, different parameters: sorted by parameter bits.
        let stall = |factor| FaultKind::DiskStall {
            duration_ms: 10_000,
            factor,
        };
        let p = FaultPlan::new(vec![e(stall(8.0)), e(stall(2.0))]);
        let q = FaultPlan::new(vec![e(stall(2.0)), e(stall(8.0))]);
        assert_eq!(p.events(), q.events());
        assert_eq!(p.events()[0].kind, stall(2.0));
        // Node is a stronger tiebreak than kind.
        let n = FaultPlan::new(vec![
            FaultEvent {
                at: 500,
                node: 2,
                kind: FaultKind::VmCrash,
            },
            FaultEvent {
                at: 500,
                node: 0,
                kind: FaultKind::RequestLoss,
            },
        ]);
        assert_eq!(n.events()[0].node, 0);
    }
}
