//! The fleet simulator: N managed databases, a config director, a tuner
//! backend and the shared workload repository, advanced in lockstep ticks
//! with an event queue for recommendation completions.
//!
//! This is the machinery behind the paper's §5 experiments: the 80-database
//! scalability run (Fig. 9), the throttle censuses (Figs. 10/11/14), and
//! the throughput-with/without-TDE comparisons (Figs. 12/13).

use crate::node::ManagedDatabase;

use autodbaas_ctrlplane::{ConfigDirector, RecommendationMeter, ServiceId, TunerKind};
use autodbaas_simdb::{ConfigChange, MetricId, SimDatabase};
use autodbaas_telemetry::SimTime;
use autodbaas_tuner::{
    assess_quality, denormalize_config, normalize_config, BoConfig, BoTuner, RlConfig, RlTuner,
    Sample, SampleQuality, Transition, WorkloadRepository,
};
use autodbaas_workload::MixWorkload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Fleet-level configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Simulation tick.
    pub tick_ms: u64,
    /// TDE cadence = observation-window length.
    pub tde_period_ms: u64,
    /// When true, samples enter the repository only from windows in which
    /// the TDE raised a throttle — "Ottertune only captures high quality
    /// samples from TDE" (Fig. 12's gated mode).
    pub gate_samples_with_tde: bool,
    /// Tuner style behind the director.
    pub tuner: TunerKind,
    /// BO tuner settings.
    pub bo: BoConfig,
    /// RL tuner settings.
    pub rl: RlConfig,
    /// When false, recommendations are computed but never applied (the
    /// Fig. 10/11 throttle census runs without tuning sessions).
    pub apply_recommendations: bool,
    /// Master seed.
    pub seed: u64,
    /// Minimum fleet size before [`FleetSim::set_parallel`] actually fans
    /// ticks out to worker threads — below this the spawn overhead exceeds
    /// the win. Also the minimum number of nodes handed to each worker:
    /// threads are spawned per tick, so the drive never uses more than
    /// `nodes / parallel_threshold` of them regardless of
    /// [`drive_threads`](Self::drive_threads).
    pub parallel_threshold: usize,
    /// Worker threads for the parallel drive; `0` means "use the machine's
    /// available parallelism". Node order and RNG streams are per-node, so
    /// serial and parallel drives produce bit-identical fleets for any
    /// thread count (pinned by `parallel_drive_is_deterministic_and_equivalent`).
    pub drive_threads: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            tick_ms: 1_000,
            tde_period_ms: 60_000,
            gate_samples_with_tde: true,
            tuner: TunerKind::Bo,
            bo: BoConfig::default(),
            rl: RlConfig::default(),
            apply_recommendations: true,
            seed: 0,
            parallel_threshold: 8,
            drive_threads: 0,
        }
    }
}

/// The tuner backend actually computing recommendations.
enum Backend {
    Bo(Box<BoTuner>),
    Rl(Box<RlTuner>),
}

/// The fleet simulator.
///
/// # Examples
///
/// ```
/// use autodbaas_cloudsim::{FleetConfig, FleetSim, ManagedDatabase};
/// use autodbaas_core::{TdeConfig, TuningPolicy};
/// use autodbaas_simdb::{DbFlavor, DiskKind, InstanceType};
/// use autodbaas_tuner::WorkloadId;
/// use autodbaas_workload::{tpcc, ArrivalProcess};
///
/// let mut sim = FleetSim::new(FleetConfig::default(), 2);
/// let wl = tpcc(0.2);
/// let catalog = wl.catalog().clone();
/// let node = ManagedDatabase::new(
///     DbFlavor::Postgres, InstanceType::M4Large, DiskKind::Ssd, catalog,
///     Box::new(wl), ArrivalProcess::Constant(100.0),
///     TuningPolicy::TdeDriven, WorkloadId(0), TdeConfig::default(), 1,
/// );
/// sim.add_node(node, "db-0");
/// sim.run_for(120_000); // two minutes
/// assert!(sim.nodes[0].queries_submitted > 0);
/// ```
pub struct FleetSim {
    cfg: FleetConfig,
    /// Managed databases (public for experiment harnesses).
    pub nodes: Vec<ManagedDatabase>,
    /// The config director.
    pub director: ConfigDirector,
    /// Per-tenant recommendation-cost metering (§1's "recommendation-cost
    /// to service-provider").
    pub meter: RecommendationMeter,
    /// The central data repository.
    pub repo: WorkloadRepository,
    backend: Backend,
    pending: BinaryHeap<Reverse<(SimTime, usize)>>,
    now: SimTime,
    last_tde_run: SimTime,
    rng: StdRng,
    parallel: bool,
}

impl FleetSim {
    /// Build a fleet with `n_tuner_instances` tuner slots behind the
    /// director (the paper deploys 12).
    pub fn new(cfg: FleetConfig, n_tuner_instances: usize) -> Self {
        let kinds = vec![cfg.tuner; n_tuner_instances.max(1)];
        let backend = match cfg.tuner {
            TunerKind::Bo => Backend::Bo(Box::new(BoTuner::new(cfg.bo.clone(), cfg.seed ^ 0xb0))),
            TunerKind::Rl => Backend::Rl(Box::new(RlTuner::new(
                MetricId::ALL.len(),
                autodbaas_simdb::KnobProfile::postgres().len(),
                cfg.rl.clone(),
                cfg.seed ^ 0x71,
            ))),
        };
        Self {
            rng: StdRng::seed_from_u64(cfg.seed ^ 0xf1ee7),
            cfg,
            nodes: Vec::new(),
            director: ConfigDirector::new(&kinds),
            meter: RecommendationMeter::default(),
            repo: WorkloadRepository::new(),
            backend,
            pending: BinaryHeap::new(),
            now: 0,
            last_tde_run: 0,
            parallel: false,
        }
    }

    /// Drive the fleet's per-tick traffic on worker threads. Per-node
    /// determinism is unchanged (each node owns its RNG); only wall-clock
    /// speed differs. Off by default.
    pub fn set_parallel(&mut self, on: bool) {
        self.parallel = on;
    }

    /// Current sim time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// Register a managed database built by the caller. Its workload gets a
    /// repository entry.
    pub fn add_node(&mut self, mut node: ManagedDatabase, name: &str) -> usize {
        node.workload_id = self.repo.register(name, false);
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Offline bootstrap (§5: "Before evaluating … we perform training of
    /// the tuners as per their standard ways"): execute `n_samples` random
    /// configurations of `workload` on a scratch instance and store the
    /// resulting high-quality samples as an offline workload.
    pub fn seed_offline_training(
        &mut self,
        workload: &MixWorkload,
        flavor: autodbaas_simdb::DbFlavor,
        n_samples: usize,
    ) -> autodbaas_tuner::WorkloadId {
        let id = self
            .repo
            .register(format!("{}-offline", workload.name()), true);
        let profile = autodbaas_simdb::KnobProfile::for_flavor(flavor);
        for s in 0..n_samples {
            let mut db = SimDatabase::new(
                flavor,
                autodbaas_simdb::InstanceType::M4XLarge,
                autodbaas_simdb::DiskKind::Ssd,
                workload.catalog().clone(),
                self.cfg.seed ^ (s as u64).wrapping_mul(0x9e3779b9),
            );
            // Random reloadable configuration.
            let unit: Vec<f64> = (0..profile.len()).map(|_| self.rng.gen::<f64>()).collect();
            let raw = denormalize_config(&profile, &unit);
            for (i, (kid, spec)) in profile.iter().enumerate() {
                if !spec.restart_required {
                    db.set_knob_direct(kid, raw[i]);
                }
            }
            // A 60 s benchmark run — the sample window matches the TDE's
            // default observation window so baselines convert correctly.
            let before = db.metrics_snapshot();
            let rate = match workload.default_arrival() {
                autodbaas_workload::ArrivalProcess::Constant(r) => *r,
                _ => 1_000.0,
            };
            for _ in 0..60 {
                let q = workload.next_query(&mut self.rng);
                db.submit(&q, (rate / 60.0).max(1.0) as u64);
                db.tick(1_000);
            }
            let after = db.metrics_snapshot();
            let delta = after.delta(&before);
            let objective = delta[MetricId::QueriesExecuted.index()] / 60.0;
            self.repo.add_sample(
                id,
                Sample {
                    config: normalize_config(&profile, db.knobs().as_vec()),
                    metrics: delta,
                    objective,
                    quality: SampleQuality::High,
                },
            );
        }
        id
    }

    /// Advance one tick.
    pub fn step(&mut self) {
        self.now += self.cfg.tick_ms;

        // 1. Traffic. Databases are independent within a tick, so a big
        // fleet is driven on worker threads (std scoped threads; no 'static
        // bound needed on the nodes). Threshold and fan-out are
        // configurable via `FleetConfig::{parallel_threshold, drive_threads}`.
        if self.parallel && self.nodes.len() >= self.cfg.parallel_threshold.max(2) {
            let tick_ms = self.cfg.tick_ms;
            let threads = if self.cfg.drive_threads > 0 {
                self.cfg.drive_threads
            } else {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4)
            };
            // Never hand a worker fewer than `parallel_threshold` nodes:
            // threads are spawned per tick, so oversubscribing a small
            // fleet buys only spawn overhead.
            let threads = threads
                .min(
                    self.nodes
                        .len()
                        .div_ceil(self.cfg.parallel_threshold.max(1)),
                )
                .max(1);
            let chunk = self.nodes.len().div_ceil(threads);
            std::thread::scope(|scope| {
                for nodes in self.nodes.chunks_mut(chunk) {
                    scope.spawn(move || {
                        for node in nodes {
                            node.drive(tick_ms);
                        }
                    });
                }
            });
        } else {
            for node in &mut self.nodes {
                node.drive(self.cfg.tick_ms);
            }
        }

        // 2. Deliver due recommendations.
        while let Some(&Reverse((ready, idx))) = self.pending.peek() {
            if ready > self.now {
                break;
            }
            self.pending.pop();
            self.deliver_recommendation(idx);
        }

        // 3. TDE cadence.
        if self.now - self.last_tde_run >= self.cfg.tde_period_ms {
            let window_ms = self.now - self.last_tde_run;
            self.last_tde_run = self.now;
            self.run_tde_round(window_ms);
        }
    }

    /// Run for `duration_ms` of simulated time.
    pub fn run_for(&mut self, duration_ms: u64) {
        let end = self.now + duration_ms;
        while self.now < end {
            self.step();
        }
    }

    fn rl_state(delta: &[f64]) -> Vec<f64> {
        delta.iter().map(|&x| (1.0 + x.abs()).ln() / 20.0).collect()
    }

    fn run_tde_round(&mut self, window_ms: u64) {
        for idx in 0..self.nodes.len() {
            let node = &mut self.nodes[idx];
            // Close the observation window: one snapshot and one delta
            // vector serve the objective, the RL transition and the
            // captured sample (which takes the vector by value below).
            let snap = node.db.metrics_snapshot();
            let objective = node.window_objective_from(&snap, window_ms);
            let delta = snap.delta(&node.window_start_snapshot);

            // TDE run.
            let report = node.tde.run(&mut node.db, Some(&self.repo));
            if report.plan_upgrade {
                node.plan_upgrades += 1;
            }

            // Sample capture (gated or not).
            let throttled_window = report.tuning_request;
            let capture = !self.cfg.gate_samples_with_tde || throttled_window;

            // RL experience: reward is the relative throughput change since
            // the action was applied. Gated mode only feeds the agent
            // TDE-certified windows — the corruption shield Fig. 13 tests.
            if capture {
                if let (Backend::Rl(rl), Some(action), Some(prev_state)) = (
                    &mut self.backend,
                    node.prev_action.clone(),
                    node.prev_rl_state.clone(),
                ) {
                    let reward = (objective - node.prev_objective) / node.prev_objective.max(1.0);
                    rl.observe(Transition {
                        state: prev_state,
                        action,
                        reward: reward.clamp(-2.0, 2.0),
                        next_state: Self::rl_state(&delta),
                    });
                }
            }

            if capture {
                let quality = if self.cfg.gate_samples_with_tde {
                    // TDE-certified windows are high quality by construction.
                    SampleQuality::High
                } else {
                    assess_quality(&delta, objective)
                };
                self.repo.add_sample(
                    node.workload_id,
                    Sample {
                        config: normalize_config(node.db.profile(), node.db.knobs().as_vec()),
                        metrics: delta,
                        objective,
                        quality,
                    },
                );
            }

            // Policy decision.
            let in_cooldown = node.cooldown_windows > 0;
            if in_cooldown {
                node.cooldown_windows -= 1;
            }
            let should = !node.pending_request
                && !in_cooldown
                && node
                    .policy
                    .should_request(&report, self.now, node.last_request_at);
            node.last_report = report;
            node.prev_objective = objective;
            node.window_start_snapshot = snap;
            if should {
                node.last_request_at = self.now;
                node.pending_request = true;
                let service_ms = match self.cfg.tuner {
                    TunerKind::Bo => BoTuner::train_cost_ms(self.repo.total_samples()),
                    TunerKind::Rl => 50.0,
                };
                let assignment =
                    self.director
                        .submit_request(ServiceId(idx as u64), self.now, service_ms);
                self.meter.record(ServiceId(idx as u64), service_ms);
                self.pending.push(Reverse((assignment.ready_at, idx)));
            }
        }
    }

    fn deliver_recommendation(&mut self, idx: usize) {
        let node = &mut self.nodes[idx];
        node.pending_request = false;
        let profile = node.db.profile();
        let unit = match &mut self.backend {
            Backend::Bo(bo) => {
                // The tuning request carries the indicted knobs (the TDE
                // sends metric data and query context with the request);
                // focus the acquisition on them.
                let focus: Vec<usize> = node
                    .last_report
                    .throttles
                    .iter()
                    .map(|t| t.knob.0 as usize)
                    .collect();
                match bo.recommend_focused(&self.repo, node.workload_id, &focus) {
                    Some(rec) => {
                        if std::env::var("AUTODBAAS_DEBUG_MAPPING").is_ok() {
                            eprintln!(
                                "map: node={} -> {:?} train={} ",
                                node.workload_id.0, rec.mapped_from, rec.train_samples
                            );
                        }
                        rec.config
                    }
                    None => return, // nothing learned yet
                }
            }
            Backend::Rl(rl) => {
                let snap = node.db.metrics_snapshot();
                let delta = snap.delta(&node.window_start_snapshot);
                let state = Self::rl_state(&delta);
                node.prev_rl_state = Some(state.clone());
                let mut action = rl.recommend(&state);
                action.truncate(profile.len());
                while action.len() < profile.len() {
                    action.push(0.5);
                }
                action
            }
        };
        self.director
            .record_recommendation(ServiceId(idx as u64), self.now, unit.clone());
        if !self.cfg.apply_recommendations {
            return;
        }
        // §4 budget vetting: the config director checks `A+B+C+D < X`
        // before shipping a recommendation — an oversubscribed config would
        // swap the instance to death, so memory knobs are rescaled to fit.
        // The vetted budget is the config *as it will run*: reloadable
        // knobs take the recommended values, restart-bound ones keep their
        // live values (they are deferred to the maintenance window).
        let raw = denormalize_config(profile, &unit);
        let mut vetted = node.db.knobs().clone();
        for (i, (kid, spec)) in profile.iter().enumerate() {
            if !spec.restart_required {
                vetted.set(profile, kid, raw[i]);
            }
        }
        autodbaas_simdb::instance::enforce_memory_cap(profile, &mut vetted, node.db.instance());
        let raw: Vec<f64> = profile.iter().map(|(kid, _)| vetted.get(kid)).collect();
        let changes: Vec<ConfigChange> = profile
            .iter()
            .zip(&raw)
            .filter(|((_, spec), _)| !spec.restart_required)
            .map(|((kid, _), &value)| ConfigChange { knob: kid, value })
            .collect();
        let _ = node
            .db
            .apply_config(&changes, autodbaas_simdb::ApplyMode::Reload);
        node.prev_action = Some(unit);
        node.cooldown_windows = 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::ManagedDatabase;
    use autodbaas_core::{TdeConfig, TuningPolicy};
    use autodbaas_simdb::{DbFlavor, DiskKind, InstanceType};
    use autodbaas_telemetry::MILLIS_PER_MIN;
    use autodbaas_tuner::WorkloadId;
    use autodbaas_workload::{tpcc, ArrivalProcess};

    fn make_node(policy: TuningPolicy, seed: u64) -> ManagedDatabase {
        let wl = tpcc(0.5);
        let catalog = wl.catalog().clone();
        ManagedDatabase::new(
            DbFlavor::Postgres,
            InstanceType::M4Large,
            DiskKind::Ssd,
            catalog,
            Box::new(wl),
            ArrivalProcess::Constant(300.0),
            policy,
            WorkloadId(0),
            TdeConfig::default(),
            seed,
        )
    }

    #[test]
    fn fleet_runs_and_time_advances() {
        let mut sim = FleetSim::new(FleetConfig::default(), 2);
        sim.add_node(make_node(TuningPolicy::TdeDriven, 1), "db-0");
        sim.run_for(3 * MILLIS_PER_MIN);
        assert_eq!(sim.now(), 3 * MILLIS_PER_MIN);
        assert!(sim.nodes[0].queries_submitted > 10_000);
    }

    #[test]
    fn periodic_policy_fires_on_schedule() {
        let mut sim = FleetSim::new(
            FleetConfig {
                gate_samples_with_tde: false,
                ..FleetConfig::default()
            },
            2,
        );
        sim.add_node(
            make_node(TuningPolicy::Periodic(5 * MILLIS_PER_MIN), 2),
            "db-0",
        );
        sim.run_for(31 * MILLIS_PER_MIN);
        // ~6 requests over 31 min at a 5-min period.
        let total = sim.director.total_requests();
        assert!((4..=8).contains(&total), "requests {total}");
    }

    #[test]
    fn tde_policy_on_healthy_workload_requests_less_than_periodic() {
        // TPCC at defaults only throttles work_mem occasionally; a 5-min
        // periodic policy fires unconditionally.
        let mk = |policy| {
            let mut sim = FleetSim::new(FleetConfig::default(), 2);
            sim.add_node(make_node(policy, 3), "db");
            sim.run_for(40 * MILLIS_PER_MIN);
            sim.director.total_requests()
        };
        let tde = mk(TuningPolicy::TdeDriven);
        let periodic = mk(TuningPolicy::Periodic(5 * MILLIS_PER_MIN));
        assert!(
            tde <= periodic,
            "TDE-driven ({tde}) must not exceed periodic ({periodic})"
        );
    }

    #[test]
    fn offline_seeding_populates_repository() {
        let mut sim = FleetSim::new(FleetConfig::default(), 1);
        let wl = tpcc(0.5);
        let id = sim.seed_offline_training(&wl, DbFlavor::Postgres, 5);
        assert_eq!(sim.repo.workload(id).samples.len(), 5);
        assert!(sim.repo.workload(id).offline);
        assert!(sim
            .repo
            .workload(id)
            .samples
            .iter()
            .all(|s| s.objective > 0.0));
    }

    #[test]
    fn recommendations_eventually_get_applied() {
        let mut sim = FleetSim::new(
            FleetConfig {
                tde_period_ms: MILLIS_PER_MIN,
                gate_samples_with_tde: false,
                ..FleetConfig::default()
            },
            2,
        );
        let wl = tpcc(0.5);
        sim.seed_offline_training(&wl, DbFlavor::Postgres, 8);
        sim.add_node(
            make_node(TuningPolicy::Periodic(2 * MILLIS_PER_MIN), 4),
            "db",
        );
        let default_knobs = sim.nodes[0].db.knobs().clone();
        sim.run_for(20 * MILLIS_PER_MIN);
        assert!(
            sim.nodes[0].prev_action.is_some(),
            "a recommendation should have been applied"
        );
        assert_ne!(
            sim.nodes[0].db.knobs(),
            &default_knobs,
            "knobs should have moved off defaults"
        );
    }

    #[test]
    fn parallel_drive_is_deterministic_and_equivalent() {
        let build = |parallel: bool| {
            let mut sim = FleetSim::new(
                FleetConfig {
                    gate_samples_with_tde: false,
                    ..FleetConfig::default()
                },
                2,
            );
            sim.set_parallel(parallel);
            for i in 0..10 {
                sim.add_node(
                    make_node(TuningPolicy::TdeDriven, 100 + i),
                    &format!("db-{i}"),
                );
            }
            sim.run_for(5 * MILLIS_PER_MIN);
            sim.nodes
                .iter()
                .map(|n| n.queries_submitted)
                .collect::<Vec<_>>()
        };
        assert_eq!(
            build(false),
            build(true),
            "threading must not change results"
        );
    }

    #[test]
    fn rl_backend_runs_end_to_end() {
        let mut sim = FleetSim::new(
            FleetConfig {
                tuner: TunerKind::Rl,
                gate_samples_with_tde: false,
                ..FleetConfig::default()
            },
            1,
        );
        sim.add_node(
            make_node(TuningPolicy::Periodic(2 * MILLIS_PER_MIN), 5),
            "db",
        );
        sim.run_for(10 * MILLIS_PER_MIN);
        assert!(sim.director.total_requests() >= 3);
        assert!(sim.nodes[0].prev_action.is_some());
    }
}
