//! The fleet simulator: N managed databases, a config director, a tuner
//! backend and the shared workload repository, advanced in lockstep ticks
//! with an event queue for recommendation completions.
//!
//! This is the machinery behind the paper's §5 experiments: the 80-database
//! scalability run (Fig. 9), the throttle censuses (Figs. 10/11/14), and
//! the throughput-with/without-TDE comparisons (Figs. 12/13).

use crate::faults::{FaultEngine, FaultEvent, FaultKind, FaultPlan};
use crate::node::{DeferredApply, InFlightRequest, ManagedDatabase, RollbackGuard};
use crate::plan::{InteractionPlan, PlanAction, PlanEngine, PlanEvent};
use crate::safety::{SafetyConfig, SafetyGovernor};
use crate::shard::{DriveStats, HotState, ShardPool};

use autodbaas_ctrlplane::{
    ApplyError, ConfigDirector, RecommendationMeter, ReconcileOutcome, Reconciler, ServiceId,
    ServiceOrchestrator, TunerKind, WindowStat,
};
use autodbaas_simdb::{AnyBackend, ApplyMode, ConfigChange, MetricId};
use autodbaas_telemetry::{EventLog, SimTime};
use autodbaas_tuner::{
    assess_quality, denormalize_config, normalize_config, BoConfig, BoTuner, RlConfig, RlTuner,
    Sample, SampleQuality, Transition, WorkloadRepository,
};
use autodbaas_workload::{ArrivalProcess, MixWorkload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Fleet-level configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Simulation tick.
    pub tick_ms: u64,
    /// TDE cadence = observation-window length.
    pub tde_period_ms: u64,
    /// When true, samples enter the repository only from windows in which
    /// the TDE raised a throttle — "Ottertune only captures high quality
    /// samples from TDE" (Fig. 12's gated mode).
    pub gate_samples_with_tde: bool,
    /// Tuner style behind the director.
    pub tuner: TunerKind,
    /// BO tuner settings.
    pub bo: BoConfig,
    /// RL tuner settings.
    pub rl: RlConfig,
    /// When false, recommendations are computed but never applied (the
    /// Fig. 10/11 throttle census runs without tuning sessions).
    pub apply_recommendations: bool,
    /// Master seed.
    pub seed: u64,
    /// Shard count for the sharded tick engine ([`FleetSim::set_parallel`]):
    /// `0` resolves automatically — [`drive_threads`](Self::drive_threads)
    /// if set, else the machine's available parallelism, capped so no shard
    /// owns fewer than [`parallel_threshold`](Self::parallel_threshold)
    /// nodes. An explicit count is taken as-is (clamped to `[1, nodes]`),
    /// cap skipped. Shard 0 runs on the stepping thread itself, so one
    /// shard is exactly the serial loop.
    pub shards: usize,
    /// Minimum nodes per worker shard under automatic shard resolution —
    /// below this the coordination overhead exceeds the win. Ignored when
    /// [`shards`](Self::shards) is explicit.
    pub parallel_threshold: usize,
    /// Automatic shard resolution's thread budget; `0` means "use the
    /// machine's available parallelism". Node order and RNG streams are
    /// per-node, so serial and sharded drives produce bit-identical fleets
    /// for any shard count (pinned by
    /// `parallel_drive_is_deterministic_and_equivalent` and the
    /// `serial_and_sharded_fleets_are_bit_identical` property test).
    pub drive_threads: usize,
    /// How long past its promised `ready_at` a tuning request may wait for
    /// its recommendation before the node gives up and retries. Counted
    /// from `ready_at` (not submission) so director backlog under
    /// saturation never triggers spurious retries.
    pub request_timeout_ms: u64,
    /// Base of the exponential retry backoff for timed-out requests.
    pub retry_base_ms: u64,
    /// Retries (of a timed-out request, or of a lag-refused apply) before
    /// the recommendation is abandoned cleanly.
    pub retry_max_attempts: u32,
    /// Reconciler watcher timeout (§4): drift older than this is forced
    /// back to the persisted config.
    pub watcher_timeout_ms: u64,
    /// Replica-lag guard for applies: a recommendation is deferred (with
    /// backoff) while any slave lags more than this many bytes.
    pub max_apply_lag_bytes: u64,
    /// Post-apply safety rollback; `None` disables the guard.
    pub rollback: Option<RollbackPolicy>,
}

/// Safe-tuning rollback guard settings (OnlineTune-style safety).
#[derive(Debug, Clone, Copy)]
pub struct RollbackPolicy {
    /// Roll back when a post-apply window's objective drops below
    /// `baseline × (1 − regression_frac)`.
    pub regression_frac: f64,
    /// Clean observation windows before the applied config is accepted and
    /// the guard disarms.
    pub observe_windows: u32,
}

impl Default for RollbackPolicy {
    fn default() -> Self {
        Self {
            regression_frac: 0.25,
            observe_windows: 3,
        }
    }
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            tick_ms: 1_000,
            tde_period_ms: 60_000,
            gate_samples_with_tde: true,
            tuner: TunerKind::Bo,
            bo: BoConfig::default(),
            rl: RlConfig::default(),
            apply_recommendations: true,
            seed: 0,
            shards: 0,
            parallel_threshold: 8,
            drive_threads: 0,
            request_timeout_ms: 5 * 60 * 1_000,
            retry_base_ms: 30_000,
            retry_max_attempts: 6,
            watcher_timeout_ms: 2 * 60 * 1_000,
            max_apply_lag_bytes: 64 * 1024 * 1024,
            rollback: None,
        }
    }
}

/// The tuner backend actually computing recommendations.
enum TunerBackend {
    Bo(Box<BoTuner>),
    Rl(Box<RlTuner>),
}

/// The fleet simulator.
///
/// # Examples
///
/// ```
/// use autodbaas_cloudsim::{FleetConfig, FleetSim, ManagedDatabase};
/// use autodbaas_core::{TdeConfig, TuningPolicy};
/// use autodbaas_simdb::{DbFlavor, DiskKind, InstanceType};
/// use autodbaas_tuner::WorkloadId;
/// use autodbaas_workload::{tpcc, ArrivalProcess};
///
/// let mut sim = FleetSim::new(FleetConfig::default(), 2);
/// let wl = tpcc(0.2);
/// let catalog = wl.catalog().clone();
/// let node = ManagedDatabase::new(
///     DbFlavor::Postgres, InstanceType::M4Large, DiskKind::Ssd, catalog,
///     Box::new(wl), ArrivalProcess::Constant(100.0),
///     TuningPolicy::TdeDriven, WorkloadId(0), TdeConfig::default(), 1,
/// );
/// sim.add_node(node, "db-0");
/// sim.run_for(120_000); // two minutes
/// assert!(sim.nodes[0].queries_submitted > 0);
/// ```
pub struct FleetSim {
    cfg: FleetConfig,
    /// Managed databases (public for experiment harnesses).
    pub nodes: Vec<ManagedDatabase>,
    /// The config director.
    pub director: ConfigDirector,
    /// Per-tenant recommendation-cost metering (§1's "recommendation-cost
    /// to service-provider").
    pub meter: RecommendationMeter,
    /// The central data repository.
    pub repo: WorkloadRepository,
    /// The service orchestrator's persistence storage: the config of record
    /// each service reconciles back to after a partial failure (§4).
    pub orch: ServiceOrchestrator,
    /// Every fault injected and every recovery action taken, in order. The
    /// log's fingerprint pins bit-for-bit reproducibility of chaos runs.
    pub events: EventLog,
    backend: TunerBackend,
    /// One §4 reconciler per node, watching live config against [`Self::orch`].
    reconcilers: Vec<Reconciler>,
    /// Scheduled fault injection, when armed via [`FleetSim::enable_chaos`].
    chaos: Option<FaultEngine>,
    /// Scheduled interaction plan, when armed via [`FleetSim::enable_plan`].
    plan: Option<PlanEngine>,
    /// Arrival processes to restore when running bursts end:
    /// `(revert_at, node, saved_arrival)`.
    burst_revert: Vec<(SimTime, usize, ArrivalProcess)>,
    /// Recommendation deliveries stall until this time (tuner outage fault).
    tuner_outage_until: SimTime,
    /// Crash recoveries in progress: (done_at, node, event to emit).
    recovery_due: Vec<(SimTime, usize, &'static str)>,
    /// Due tuning responses: (ready_at, node, request seq). The seq lets a
    /// late response for an already-retried request be dropped as stale.
    pending: BinaryHeap<Reverse<(SimTime, usize, u64)>>,
    /// Persistent sharded tick engine; built lazily on the first sharded
    /// step and rebuilt when the fleet size or shard count changes.
    pool: Option<ShardPool>,
    /// SoA per-node due times gating the control scan and recovery flush.
    hot: HotState,
    /// Cached machine thread budget for auto shard resolution. Querying
    /// `available_parallelism` reads procfs/cgroup state (~12µs a call) —
    /// per tick that dwarfs small fleets, so it is resolved exactly once.
    thread_budget: Option<usize>,
    /// Fleet drive totals merged from the shard outputs (sharded drives
    /// only; the serial engine is the untouched reference path).
    drive_stats: DriveStats,
    /// Reusable scratch for the per-tick chaos drain.
    fault_scratch: Vec<FaultEvent>,
    /// Reusable scratch for the per-tick plan drain.
    plan_scratch: Vec<PlanEvent>,
    /// Reusable scratch for the per-round batched window ingestion.
    window_scratch: Vec<WindowStat>,
    now: SimTime,
    last_tde_run: SimTime,
    rng: StdRng,
    parallel: bool,
    /// Safe-tuning governor ([`FleetSim::enable_safety`]); `None` leaves
    /// every existing run's fingerprint untouched.
    safety: Option<SafetyGovernor>,
}

impl FleetSim {
    /// Build a fleet with `n_tuner_instances` tuner slots behind the
    /// director (the paper deploys 12).
    pub fn new(cfg: FleetConfig, n_tuner_instances: usize) -> Self {
        let kinds = vec![cfg.tuner; n_tuner_instances.max(1)];
        let backend = match cfg.tuner {
            TunerKind::Bo => {
                TunerBackend::Bo(Box::new(BoTuner::new(cfg.bo.clone(), cfg.seed ^ 0xb0)))
            }
            TunerKind::Rl => TunerBackend::Rl(Box::new(RlTuner::new(
                MetricId::ALL.len(),
                autodbaas_simdb::KnobProfile::postgres().len(),
                cfg.rl.clone(),
                cfg.seed ^ 0x71,
            ))),
        };
        Self {
            rng: StdRng::seed_from_u64(cfg.seed ^ 0xf1ee7),
            cfg,
            nodes: Vec::new(),
            director: ConfigDirector::new(&kinds),
            meter: RecommendationMeter::default(),
            repo: WorkloadRepository::new(),
            orch: ServiceOrchestrator::new(),
            events: EventLog::default(),
            backend,
            reconcilers: Vec::new(),
            chaos: None,
            plan: None,
            burst_revert: Vec::new(),
            tuner_outage_until: 0,
            recovery_due: Vec::new(),
            pending: BinaryHeap::new(),
            pool: None,
            hot: HotState::new(),
            thread_budget: None,
            drive_stats: DriveStats::default(),
            fault_scratch: Vec::new(),
            plan_scratch: Vec::new(),
            window_scratch: Vec::new(),
            now: 0,
            last_tde_run: 0,
            parallel: false,
            safety: None,
        }
    }

    /// Arm the chaos engine: `plan`'s faults inject themselves as simulated
    /// time passes them, and the reconcilers switch to continuous watching.
    pub fn enable_chaos(&mut self, plan: FaultPlan) {
        self.chaos = Some(FaultEngine::new(plan));
    }

    /// Scheduled faults not yet injected (0 when chaos is off).
    pub fn faults_remaining(&self) -> usize {
        self.chaos.as_ref().map_or(0, |e| e.remaining())
    }

    /// Arm an interaction plan (the scenario simulator's chaos superset):
    /// bursts, knob pushes, maintenance windows, replica churn and faults
    /// inject themselves as simulated time passes them, and the reconcilers
    /// switch to continuous watching, exactly as under
    /// [`FleetSim::enable_chaos`].
    pub fn enable_plan(&mut self, plan: InteractionPlan) {
        self.plan = Some(PlanEngine::new(plan));
    }

    /// Scheduled interactions not yet delivered (0 when no plan is armed).
    pub fn plan_remaining(&self) -> usize {
        self.plan.as_ref().map_or(0, |e| e.remaining())
    }

    /// Stop (or resume) landing new recommendations while the simulation
    /// keeps running. The scenario harness flips this off for its settle
    /// phase — "quiesce, then audit": in-flight guards, retries and parked
    /// applies drain to completion, but no *new* applies arm fresh guards,
    /// so the terminal oracles judge a fleet that had a fair chance to
    /// finish its work.
    pub fn set_apply_recommendations(&mut self, on: bool) {
        self.cfg.apply_recommendations = on;
    }

    /// Nodes whose post-apply rollback guard is still armed — i.e. an
    /// applied config not yet accepted or reverted. After a run's quiet
    /// tail every guard must have resolved one way or the other; the
    /// scenario simulator's rollback-correctness oracle asserts exactly
    /// that.
    pub fn guard_armed_nodes(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&idx| self.nodes[idx].guard.is_some())
            .collect()
    }

    /// Fleet-wide availability: fraction of driven node-ticks with the
    /// master serving.
    pub fn availability(&self) -> f64 {
        let (down, total) = self.nodes.iter().fold((0u64, 0u64), |(d, t), n| {
            (d + n.down_ticks, t + n.total_ticks)
        });
        if total == 0 {
            1.0
        } else {
            1.0 - down as f64 / total as f64
        }
    }

    /// Total reconciliations performed across the fleet.
    pub fn reconciliations(&self) -> u64 {
        self.reconcilers.iter().map(|r| r.reconciliations()).sum()
    }

    /// Nodes whose live reloadable config (master or any slave) currently
    /// differs from the persisted config of record.
    pub fn drifted_nodes(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&idx| {
                let Some(persisted) = self.orch.persisted_config(ServiceId(idx as u64)) else {
                    return false;
                };
                let rs = &self.nodes[idx].service;
                let profile = rs.master().profile();
                std::iter::once(rs.master())
                    .chain(rs.slaves().iter())
                    .any(|db| {
                        let live = db.knobs();
                        profile.iter().any(|(id, spec)| {
                            !spec.restart_required
                                && (live.get(id) - persisted.get(id)).abs() > 1e-9
                        })
                    })
            })
            .collect()
    }

    /// Nodes with stalled control-plane work: a master still in crash
    /// recovery, a request past its deadline, or a parked retry past its
    /// due time. Each of these clears on a subsequent [`FleetSim::step`],
    /// so after a run's quiet tail this must be empty — the no-wedge
    /// invariant the chaos tests pin.
    pub fn wedged_nodes(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&idx| {
                let n = &self.nodes[idx];
                n.db().is_down()
                    || n.in_flight.is_some_and(|r| self.now > r.deadline)
                    || n.retry_at.is_some_and(|at| self.now > at)
                    || n.deferred_apply
                        .as_ref()
                        .is_some_and(|d| self.now > d.next_try_at)
            })
            .collect()
    }

    /// Drive the fleet's per-tick traffic on the sharded tick engine:
    /// persistent worker shards behind a generation barrier (see
    /// [`crate::shard`]), with the control scan gated by the SoA hot state.
    /// Per-node determinism is unchanged (each node owns its RNG) and the
    /// shard merge order equals the serial order, so results are
    /// bit-identical to the serial engine; only wall-clock speed differs.
    /// Off by default.
    /// Arm the OnlineTune-style safety layer: every tenant gets a safe
    /// region seeded at its current config, and every tuner candidate is
    /// clamped into it before the vetted apply. Late-joining nodes are
    /// seeded as they are added.
    pub fn enable_safety(&mut self, cfg: SafetyConfig) {
        let mut gov = SafetyGovernor::new(cfg);
        for node in &self.nodes {
            let profile = node.service.master().profile();
            gov.push_node(normalize_config(
                profile,
                node.service.master().knobs().as_vec(),
            ));
        }
        self.safety = Some(gov);
    }

    /// The safe-tuning governor, when armed.
    pub fn safety(&self) -> Option<&SafetyGovernor> {
        self.safety.as_ref()
    }

    pub fn set_parallel(&mut self, on: bool) {
        self.parallel = on;
        if !on {
            self.pool = None; // joins the workers
        }
    }

    /// Fleet drive totals (node-ticks, accepted queries, down node-ticks)
    /// accumulated by the sharded engine. Zero while driving serially.
    pub fn drive_stats(&self) -> DriveStats {
        self.drive_stats
    }

    /// Shard count of the live pool (1 when driving serially or before the
    /// first sharded step builds the pool). Benchmarks report this next to
    /// wall-clock numbers so a figure regenerated on a different machine
    /// records how wide the drive actually ran.
    pub fn shard_count(&self) -> usize {
        self.pool.as_ref().map_or(1, |p| p.shards())
    }

    /// Current sim time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// Register a managed database built by the caller. Its workload gets a
    /// repository entry, its boot config becomes the first persisted config
    /// of record, and a reconciler starts watching it.
    pub fn add_node(&mut self, mut node: ManagedDatabase, name: &str) -> usize {
        node.workload_id = self.repo.register(name, false);
        let idx = self.nodes.len();
        self.orch
            .persist_config(ServiceId(idx as u64), node.db().knobs().clone());
        self.reconcilers.push(Reconciler::new(
            ServiceId(idx as u64),
            self.cfg.watcher_timeout_ms,
        ));
        self.meter
            .set_backend(ServiceId(idx as u64), node.db().kind());
        if let Some(gov) = &mut self.safety {
            let profile = node.service.master().profile();
            gov.push_node(normalize_config(
                profile,
                node.service.master().knobs().as_vec(),
            ));
        }
        self.nodes.push(node);
        self.hot.push_node();
        idx
    }

    /// Offline bootstrap (§5: "Before evaluating … we perform training of
    /// the tuners as per their standard ways"): execute `n_samples` random
    /// configurations of `workload` on a scratch instance and store the
    /// resulting high-quality samples as an offline workload.
    pub fn seed_offline_training(
        &mut self,
        workload: &MixWorkload,
        flavor: autodbaas_simdb::DbFlavor,
        n_samples: usize,
    ) -> autodbaas_tuner::WorkloadId {
        let id = self
            .repo
            .register(format!("{}-offline", workload.name()), true);
        let profile = autodbaas_simdb::KnobProfile::for_flavor(flavor);
        for s in 0..n_samples {
            let mut db = AnyBackend::new(
                flavor,
                autodbaas_simdb::InstanceType::M4XLarge,
                autodbaas_simdb::DiskKind::Ssd,
                workload.catalog().clone(),
                self.cfg.seed ^ (s as u64).wrapping_mul(0x9e3779b9),
            );
            // Random reloadable configuration.
            let unit: Vec<f64> = (0..profile.len()).map(|_| self.rng.gen::<f64>()).collect();
            let raw = denormalize_config(&profile, &unit);
            for (i, (kid, spec)) in profile.iter().enumerate() {
                if !spec.restart_required {
                    db.set_knob_direct(kid, raw[i]);
                }
            }
            // A 60 s benchmark run — the sample window matches the TDE's
            // default observation window so baselines convert correctly.
            let before = db.metrics_snapshot();
            let rate = match workload.default_arrival() {
                autodbaas_workload::ArrivalProcess::Constant(r) => *r,
                _ => 1_000.0,
            };
            for _ in 0..60 {
                let q = workload.next_query(&mut self.rng);
                db.submit(&q, (rate / 60.0).max(1.0) as u64);
                db.tick(1_000);
            }
            let after = db.metrics_snapshot();
            let delta = after.delta(&before);
            let objective = delta[MetricId::QueriesExecuted.index()] / 60.0;
            self.repo.add_sample(
                id,
                Sample {
                    config: normalize_config(&profile, db.knobs().as_vec()),
                    metrics: delta,
                    objective,
                    quality: SampleQuality::High,
                },
            );
        }
        id
    }

    /// Advance one tick.
    pub fn step(&mut self) {
        self.now += self.cfg.tick_ms;

        // 0. Chaos: inject every scheduled fault that came due this tick,
        // drained through a reusable scratch buffer (the per-tick `to_vec`
        // this replaces allocated on every tick of every chaos run).
        if self.chaos.is_some() {
            let mut due = std::mem::take(&mut self.fault_scratch);
            self.chaos
                .as_mut()
                .expect("checked above")
                .take_due_into(self.now, &mut due);
            for &ev in &due {
                self.inject(ev);
            }
            self.fault_scratch = due;
        }

        // 0b. Interaction plan: revert ended bursts, then deliver every
        // scheduled interaction that came due this tick. Both run before
        // the traffic phase, so a serial and a sharded drive of the same
        // plan see identical node state at every tick.
        if !self.burst_revert.is_empty() || self.plan.is_some() {
            self.plan_tick();
        }

        // 1. Traffic. Databases are independent within a tick. The sharded
        // engine partitions them once over persistent worker shards (shard
        // 0 is this thread); the serial engine is the untouched reference
        // loop the property tests compare against.
        if self.parallel {
            self.drive_sharded();
        } else {
            for node in &mut self.nodes {
                node.drive(self.cfg.tick_ms);
            }
        }

        // 2. Crash recoveries that completed this tick.
        self.flush_recoveries();

        // 3. Request timeouts, retries and parked applies.
        self.control_scan();

        // 4. Deliver due recommendations — unless the tuner service is in
        // an outage, in which case responses sit until it returns (and may
        // go stale if the node times out and retries meanwhile).
        if self.now >= self.tuner_outage_until {
            while let Some(&Reverse((ready, idx, seq))) = self.pending.peek() {
                if ready > self.now {
                    break;
                }
                self.pending.pop();
                self.deliver_recommendation(idx, seq);
            }
        }

        // 5. Reconcilers watch continuously while chaos or a plan is
        // active (faults create drift at arbitrary times); in quiet runs a
        // per-window check after the TDE round is equivalent and cheaper.
        let adversarial = self.chaos.is_some() || self.plan.is_some();
        if adversarial {
            self.reconcile_all();
        }

        // 6. TDE cadence.
        if self.now - self.last_tde_run >= self.cfg.tde_period_ms {
            let window_ms = self.now - self.last_tde_run;
            self.last_tde_run = self.now;
            self.run_tde_round(window_ms);
            if !adversarial {
                self.reconcile_all();
            }
        }
    }

    /// Shard count the sharded engine should run with right now.
    fn resolve_shards(&mut self) -> usize {
        let n = self.nodes.len();
        if n == 0 {
            return 1;
        }
        if self.cfg.shards > 0 {
            // Explicit: trusted as-is (clamped to the fleet), no
            // nodes-per-shard cap — the determinism property tests sweep
            // shard counts far beyond what auto resolution would pick.
            return self.cfg.shards.min(n);
        }
        let budget = if self.cfg.drive_threads > 0 {
            self.cfg.drive_threads
        } else {
            *self.thread_budget.get_or_insert_with(|| {
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(4)
            })
        };
        // Never give a worker shard fewer than `parallel_threshold` nodes:
        // below that the barrier costs more than the shard contributes.
        budget
            .min(n.div_ceil(self.cfg.parallel_threshold.max(1)))
            .max(1)
    }

    /// Drive one tick on the sharded engine, (re)building the pool when the
    /// fleet size or resolved shard count changed.
    fn drive_sharded(&mut self) {
        let want = self.resolve_shards();
        let stale = self
            .pool
            .as_ref()
            .is_none_or(|p| p.shards() != want || p.n_nodes() != self.nodes.len());
        if stale {
            self.pool = Some(ShardPool::new(want, self.nodes.len(), self.cfg.seed));
        }
        let tick = self
            .pool
            .as_mut()
            .expect("built above")
            .drive_tick(&mut self.nodes, self.cfg.tick_ms);
        self.drive_stats.accumulate(&tick);
    }

    /// Recompute node `idx`'s SoA control-due entry: the earliest of its
    /// in-flight deadline, retry time, and parked-apply time. Called after
    /// every mutation of those fields so the entry is always a valid lower
    /// bound for the gated control scan.
    fn refresh_hot(&mut self, idx: usize) {
        let node = &self.nodes[idx];
        let mut due = u64::MAX;
        if let Some(req) = node.in_flight {
            due = due.min(req.deadline);
        }
        if let Some(at) = node.retry_at {
            due = due.min(at);
        }
        if let Some(d) = &node.deferred_apply {
            due = due.min(d.next_try_at);
        }
        self.hot.set_control_due(idx, due);
    }

    /// Inject one scheduled fault.
    fn inject(&mut self, ev: FaultEvent) {
        if ev.node >= self.nodes.len() {
            return; // plan generated for a bigger fleet: ignore
        }
        let idx = ev.node;
        let target = idx as u64;
        match ev.kind {
            FaultKind::VmCrash => {
                self.events.emit(self.now, "fault.vm_crash", target);
                self.handle_master_crash(idx);
            }
            FaultKind::MasterCrashMidApply => {
                self.events
                    .emit(self.now, "fault.master_crash_mid_apply", target);
                self.nodes[idx].service.inject_master_crash();
            }
            FaultKind::SlaveCrashMidApply => {
                if self.nodes[idx].service.n_slaves() > 0 {
                    self.events
                        .emit(self.now, "fault.slave_crash_mid_apply", target);
                    self.nodes[idx].service.inject_slave_crash(0);
                }
            }
            FaultKind::TunerOutage { duration_ms } => {
                self.events.emit(self.now, "fault.tuner_outage", u64::MAX);
                self.tuner_outage_until = self.tuner_outage_until.max(self.now + duration_ms);
            }
            FaultKind::TelemetryDrop { duration_ms } => {
                self.events.emit(self.now, "fault.telemetry_drop", target);
                let node = &mut self.nodes[idx];
                node.telemetry_blackout_until =
                    node.telemetry_blackout_until.max(self.now + duration_ms);
            }
            FaultKind::DiskStall {
                duration_ms,
                factor,
            } => {
                self.events.emit(self.now, "fault.disk_stall", target);
                let node = &mut self.nodes[idx];
                node.db_mut().degrade(duration_ms, factor);
                node.window_tainted = true;
            }
            FaultKind::ReplicaLagSpike { pause_ms } => {
                let node = &mut self.nodes[idx];
                if node.service.n_slaves() > 0 {
                    self.events
                        .emit(self.now, "fault.replica_lag_spike", target);
                    for i in 0..node.service.n_slaves() {
                        node.service.pause_slave_replay(i, pause_ms);
                    }
                }
            }
            FaultKind::RequestLoss => {
                let node = &mut self.nodes[idx];
                if let Some(req) = node.in_flight.as_mut() {
                    if !req.lost {
                        req.lost = true;
                        self.events.emit(self.now, "fault.request_loss", target);
                    }
                }
            }
        }
    }

    /// One tick of interaction-plan machinery: restore the arrival process
    /// of every burst that ended, then deliver the plan events that came
    /// due. Reverts run first so a burst ending exactly as another begins
    /// hands the new burst the *pre-burst* arrival to save.
    fn plan_tick(&mut self) {
        let now = self.now;
        let mut i = 0;
        while i < self.burst_revert.len() {
            if self.burst_revert[i].0 <= now {
                let (_, idx, arrival) = self.burst_revert.remove(i);
                self.nodes[idx].arrival = arrival;
                self.events.emit(now, "plan.burst_end", idx as u64);
            } else {
                i += 1;
            }
        }
        if self.plan.is_some() {
            let mut due = std::mem::take(&mut self.plan_scratch);
            self.plan
                .as_mut()
                .expect("checked above")
                .take_due_into(self.now, &mut due);
            for &ev in &due {
                self.apply_plan_event(ev);
            }
            self.plan_scratch = due;
        }
    }

    /// Deliver one scheduled interaction.
    fn apply_plan_event(&mut self, ev: PlanEvent) {
        if ev.node >= self.nodes.len() {
            return; // plan generated for a bigger fleet: ignore
        }
        let idx = ev.node;
        let target = idx as u64;
        match ev.action {
            PlanAction::Fault(kind) => self.inject(FaultEvent {
                at: ev.at,
                node: idx,
                kind,
            }),
            PlanAction::Burst {
                rate_qps,
                duration_ms,
            } => {
                let revert_at = self.now + duration_ms;
                if let Some(entry) = self.burst_revert.iter_mut().find(|e| e.1 == idx) {
                    // Overlapping burst: the first one already saved the
                    // pre-burst arrival; the new rate and later end win.
                    entry.0 = entry.0.max(revert_at);
                } else {
                    self.burst_revert
                        .push((revert_at, idx, self.nodes[idx].arrival.clone()));
                }
                self.nodes[idx].arrival = ArrivalProcess::Constant(rate_qps);
                self.events.emit(self.now, "plan.burst", target);
            }
            PlanAction::KnobPush { value } => {
                self.events.emit(self.now, "plan.knob_push", target);
                let dims = self.nodes[idx].service.master().profile().len();
                self.apply_unit(idx, vec![value; dims], 0);
            }
            PlanAction::Maintenance => {
                self.events.emit(self.now, "plan.maintenance", target);
                self.handle_master_crash(idx);
            }
            PlanAction::AddReplica => {
                self.events.emit(self.now, "plan.replica_add", target);
                let seed = self.cfg.seed ^ target.wrapping_mul(0x9e3779b97f4a7c15) ^ self.now;
                self.nodes[idx].service.add_slave(seed);
            }
            PlanAction::RemoveReplica => {
                let node = &mut self.nodes[idx];
                let n = node.service.n_slaves();
                if n > 0 {
                    node.service.remove_slave(n - 1);
                    self.events.emit(self.now, "plan.replica_remove", target);
                }
            }
        }
    }

    /// The master VM of node `idx` just died. With HA slaves the most
    /// caught-up one is promoted immediately (the service stays up, modulo
    /// the unreplayed WAL the report counts as lost) and the demoted master
    /// runs WAL crash recovery before rejoining as a replica. Without
    /// slaves the single node is down for its full recovery time.
    fn handle_master_crash(&mut self, idx: usize) {
        let node = &mut self.nodes[idx];
        node.window_tainted = true;
        if node.service.n_slaves() > 0 {
            if let Some(fo) = node.service.failover() {
                let report = node.service.slave_mut(fo.promoted).crash();
                self.events.emit(self.now, "recover.failover", idx as u64);
                self.recovery_due
                    .push((self.now + report.recovery_ms, idx, "recover.rejoined"));
                self.hot.note_recovery(self.now + report.recovery_ms);
                return;
            }
        }
        let report = node.service.master_mut().crash();
        self.recovery_due
            .push((self.now + report.recovery_ms, idx, "recover.restarted"));
        self.hot.note_recovery(self.now + report.recovery_ms);
    }

    /// Emit the recovery events whose crash-recovery intervals ended.
    /// Gated on the cached earliest completion time: with nothing due this
    /// is one scalar compare per tick (and `u64::MAX` — the empty list —
    /// reproduces the old is-empty early return exactly).
    fn flush_recoveries(&mut self) {
        if self.now < self.hot.next_recovery_at() {
            return;
        }
        let now = self.now;
        let mut done: Vec<(SimTime, usize, &'static str)> = Vec::new();
        self.recovery_due.retain(|&(at, idx, kind)| {
            if at <= now {
                done.push((at, idx, kind));
                false
            } else {
                true
            }
        });
        done.sort_by_key(|&(at, idx, _)| (at, idx));
        self.events.emit_batch(
            self.now,
            done.iter().map(|&(_, idx, kind)| (kind, idx as u64)),
        );
        self.hot.set_next_recovery(
            self.recovery_due
                .iter()
                .map(|&(at, _, _)| at)
                .min()
                .unwrap_or(u64::MAX),
        );
    }

    /// Per-node control-plane scan: expire timed-out requests into
    /// exponential-backoff retries, fire due retries, and re-attempt
    /// lag-deferred applies.
    ///
    /// The sharded engine gates each node behind its SoA due time — a node
    /// whose earliest possible action lies in the future is provably a
    /// no-op, so the scan walks one dense `u64` per node instead of the
    /// node structs. The serial engine keeps the legacy full scan; both
    /// visit actionable nodes in the same ascending order, so the emitted
    /// events (and therefore the log fingerprint) are identical.
    fn control_scan(&mut self) {
        if self.parallel {
            for idx in 0..self.nodes.len() {
                if self.hot.control_due(idx) <= self.now {
                    self.control_node(idx);
                }
            }
        } else {
            for idx in 0..self.nodes.len() {
                self.control_node(idx);
            }
        }
    }

    /// One node's control-plane scan (see [`FleetSim::control_scan`]).
    fn control_node(&mut self, idx: usize) {
        let retry_base = self.cfg.retry_base_ms.max(1);
        let max_attempts = self.cfg.retry_max_attempts;
        let node = &mut self.nodes[idx];
        if let Some(req) = node.in_flight {
            if self.now >= req.deadline {
                node.in_flight = None;
                node.retry_attempt += 1;
                if node.retry_attempt > max_attempts {
                    node.retry_attempt = 0;
                    self.events.emit(self.now, "request.abandoned", idx as u64);
                } else {
                    // Backoff doubles per consecutive timeout; jitter
                    // desynchronises a fleet retrying into the same
                    // recovering tuner. This path draws node RNG only
                    // under faults, so fault-free streams are unchanged.
                    let backoff = retry_base << (node.retry_attempt - 1).min(6);
                    let jitter = node.rng.gen_range(0..retry_base);
                    node.retry_at = Some(self.now + backoff + jitter);
                    self.events.emit(self.now, "request.timeout", idx as u64);
                }
            }
        }
        if self.nodes[idx].retry_at.is_some_and(|at| self.now >= at) {
            self.nodes[idx].retry_at = None;
            self.events.emit(self.now, "request.retry", idx as u64);
            self.submit_tuning_request(idx);
        }
        let node = &mut self.nodes[idx];
        if node
            .deferred_apply
            .as_ref()
            .is_some_and(|d| self.now >= d.next_try_at)
        {
            let d = node.deferred_apply.take().expect("checked above");
            self.apply_unit(idx, d.unit, d.attempts);
        }
        self.refresh_hot(idx);
    }

    /// Reconcile every service whose master is reachable.
    pub fn reconcile_all(&mut self) {
        for idx in 0..self.nodes.len() {
            let node = &mut self.nodes[idx];
            if node.service.master().is_down() {
                continue; // nothing to watch until recovery completes
            }
            let outcome = self.reconcilers[idx].check(&self.orch, &mut node.service, self.now);
            if outcome == ReconcileOutcome::Reconciled {
                self.events.emit(self.now, "recover.reconciled", idx as u64);
            }
        }
    }

    /// Submit a tuning request for node `idx` to the config director and
    /// start its in-flight deadline clock.
    fn submit_tuning_request(&mut self, idx: usize) {
        let service_ms = match self.cfg.tuner {
            TunerKind::Bo => BoTuner::train_cost_ms(self.repo.total_samples()),
            TunerKind::Rl => 50.0,
        };
        let assignment = self
            .director
            .submit_request(ServiceId(idx as u64), self.now, service_ms);
        self.meter.record(ServiceId(idx as u64), service_ms);
        let node = &mut self.nodes[idx];
        node.last_request_at = self.now;
        let seq = node.request_seq;
        node.request_seq += 1;
        // The deadline counts from the *promised* completion, not the
        // submission: director backlog under fleet saturation (Fig. 9) is
        // expected latency, not a fault.
        node.in_flight = Some(InFlightRequest {
            deadline: assignment.ready_at + self.cfg.request_timeout_ms,
            seq,
            lost: false,
        });
        self.pending.push(Reverse((assignment.ready_at, idx, seq)));
        self.refresh_hot(idx);
    }

    /// Run for `duration_ms` of simulated time.
    pub fn run_for(&mut self, duration_ms: u64) {
        let end = self.now + duration_ms;
        while self.now < end {
            self.step();
        }
    }

    fn rl_state(delta: &[f64]) -> Vec<f64> {
        delta.iter().map(|&x| (1.0 + x.abs()).ln() / 20.0).collect()
    }

    fn run_tde_round(&mut self, window_ms: u64) {
        let rollback = self.cfg.rollback;
        let mut windows = std::mem::take(&mut self.window_scratch);
        windows.clear();
        for idx in 0..self.nodes.len() {
            let node = &mut self.nodes[idx];
            // A monitoring-agent blackout or a master still in crash
            // recovery means no usable window: reset and move on — no
            // sample, no RL transition, no tuning request.
            if self.now < node.telemetry_blackout_until || node.service.master().is_down() {
                node.window_start_snapshot = node.service.master().metrics_snapshot();
                node.window_tainted = false;
                continue;
            }
            // Close the observation window: one snapshot and one delta
            // vector serve the objective, the RL transition and the
            // captured sample (which takes the vector by value below).
            let snap = node.service.master().metrics_snapshot();
            let objective = node.window_objective_from(&snap, window_ms);
            let delta = snap.delta(&node.window_start_snapshot);
            windows.push(WindowStat {
                service: ServiceId(idx as u64),
                objective,
            });
            if let Some(gov) = &mut self.safety {
                // The safety SLO is demand-normalized: the fraction of
                // offered queries the service actually executed this
                // window. Raw throughput would charge the tuner for every
                // diurnal/weekend demand swing; the completion ratio only
                // moves when the service fails offered load — which is
                // what a config can cause and an SLO is about.
                let executed = delta[MetricId::QueriesExecuted.index()];
                let dropped = delta[MetricId::QueriesDropped.index()];
                let offered = executed + dropped;
                let slo_objective = if offered > 0.0 {
                    executed / offered
                } else {
                    1.0
                };
                let verdict = gov.observe_window(idx, slo_objective, window_ms as f64 / 1_000.0);
                if verdict.breach {
                    self.events.emit(self.now, "safe.slo_breach", idx as u64);
                    self.meter.record_slo_breach(ServiceId(idx as u64));
                }
            }

            // TDE run. The TDE's MDP detector applies accepted planner-knob
            // probes directly to the live master; those local moves are
            // authoritative (the plugin owns them), so fold them into the
            // persisted config of record — otherwise the reconciler would
            // fight the TDE, rejecting each accepted probe as drift.
            let pre_tde = node.service.master().knobs().clone();
            let report = node.tde.run(node.service.master_mut(), Some(&self.repo));
            if report.plan_upgrade {
                node.plan_upgrades += 1;
            }
            if node.service.master().knobs() != &pre_tde {
                let live = node.service.master().knobs().clone();
                let profile = node.service.master().profile().clone();
                let mut persisted = self
                    .orch
                    .persisted_config(ServiceId(idx as u64))
                    .cloned()
                    .unwrap_or_else(|| live.clone());
                for (id, _) in profile.iter() {
                    if live.get(id) != pre_tde.get(id) {
                        persisted.set(&profile, id, live.get(id));
                        // Replicas take the accepted move too, so an HA set
                        // never drifts (and never fails over) away from it.
                        for s in 0..node.service.n_slaves() {
                            node.service.slave_mut(s).set_knob_direct(id, live.get(id));
                        }
                    }
                }
                self.orch.persist_config(ServiceId(idx as u64), persisted);
            }

            // Cooldown bookkeeping (a window must pass after an apply
            // before the TDE can indict the new config).
            let in_cooldown = node.cooldown_windows > 0;
            if in_cooldown {
                node.cooldown_windows -= 1;
            }

            // Safe-tuning guard: judge the window that just closed against
            // the pre-apply baseline. Fault-tainted windows are skipped —
            // a disk stall is not the config's fault.
            let mut quarantined = node.window_tainted;
            if let Some(policy) = rollback {
                if let Some(guard) = node.guard.take() {
                    if in_cooldown || node.window_tainted {
                        node.guard = Some(guard); // not judgeable; keep waiting
                    } else if objective < guard.baseline * (1.0 - policy.regression_frac) {
                        // Regression: restore the pre-apply config on every
                        // node and re-persist it as the config of record.
                        let profile = node.service.master().profile().clone();
                        let changes: Vec<ConfigChange> = profile
                            .iter()
                            .filter(|(_, spec)| !spec.restart_required)
                            .map(|(kid, _)| ConfigChange {
                                knob: kid,
                                value: guard.revert_to.get(kid),
                            })
                            .collect();
                        let _ = node.service.apply(&changes, ApplyMode::Reload);
                        self.orch.persist_config(
                            ServiceId(idx as u64),
                            node.service.master().knobs().clone(),
                        );
                        node.cooldown_windows = 1;
                        // The regressed window would poison the repository
                        // (and the RL reward) with the bad config's blame.
                        quarantined = true;
                        self.events.emit(self.now, "tune.rollback", idx as u64);
                    } else if guard.windows_left > 1 {
                        node.guard = Some(RollbackGuard {
                            windows_left: guard.windows_left - 1,
                            ..guard
                        });
                    } // else: enough clean windows — the config is accepted
                }
            }

            // Sample capture (gated or not); fault-tainted and rolled-back
            // windows never become samples.
            let throttled_window = report.tuning_request;
            let capture = (!self.cfg.gate_samples_with_tde || throttled_window) && !quarantined;

            // RL experience: reward is the relative throughput change since
            // the action was applied. Gated mode only feeds the agent
            // TDE-certified windows — the corruption shield Fig. 13 tests.
            if capture {
                if let (TunerBackend::Rl(rl), Some(action), Some(prev_state)) = (
                    &mut self.backend,
                    node.prev_action.clone(),
                    node.prev_rl_state.clone(),
                ) {
                    let reward = (objective - node.prev_objective) / node.prev_objective.max(1.0);
                    rl.observe(Transition {
                        state: prev_state,
                        action,
                        reward: reward.clamp(-2.0, 2.0),
                        next_state: Self::rl_state(&delta),
                    });
                }
            }

            if capture {
                let quality = if self.cfg.gate_samples_with_tde {
                    // TDE-certified windows are high quality by construction.
                    SampleQuality::High
                } else {
                    assess_quality(&delta, objective)
                };
                self.repo.add_sample(
                    node.workload_id,
                    Sample {
                        config: normalize_config(
                            node.service.master().profile(),
                            node.service.master().knobs().as_vec(),
                        ),
                        metrics: delta,
                        objective,
                        quality,
                    },
                );
            }

            // Policy decision. A node with an open request, a pending
            // retry, or a parked apply never stacks a second request.
            let should = node.in_flight.is_none()
                && node.retry_at.is_none()
                && node.deferred_apply.is_none()
                && !in_cooldown
                && node
                    .policy
                    .should_request(&report, self.now, node.last_request_at);
            node.last_report = report;
            node.prev_objective = objective;
            node.window_start_snapshot = snap;
            node.window_tainted = false;
            if should {
                self.submit_tuning_request(idx);
            }
        }
        // One batched metric-data report per round ("the config director
        // receives the metric data … from service instances") instead of a
        // per-node telemetry call; the buffer is kept and reused.
        self.director.ingest_windows(self.now, &windows);
        self.window_scratch = windows;
    }

    fn deliver_recommendation(&mut self, idx: usize, seq: u64) {
        let node = &mut self.nodes[idx];
        match node.in_flight {
            Some(req) if req.seq == seq => {
                if req.lost {
                    // The response vanished in transit; only the deadline
                    // machinery clears this request.
                    return;
                }
                node.in_flight = None;
                node.retry_attempt = 0;
            }
            _ => {
                // A late response to a request that already timed out and
                // was retried or abandoned: applying it now would race the
                // retry's own response, so drop it.
                self.events
                    .emit(self.now, "request.stale_dropped", idx as u64);
                return;
            }
        }
        self.refresh_hot(idx);
        let node = &mut self.nodes[idx];
        let profile = node.service.master().profile();
        let unit = match &mut self.backend {
            TunerBackend::Bo(bo) => {
                // The tuning request carries the indicted knobs (the TDE
                // sends metric data and query context with the request);
                // focus the acquisition on them.
                let focus: Vec<usize> = node
                    .last_report
                    .throttles
                    .iter()
                    .map(|t| t.knob.0 as usize)
                    .collect();
                match bo.recommend_focused(&self.repo, node.workload_id, &focus) {
                    Some(rec) => {
                        if std::env::var("AUTODBAAS_DEBUG_MAPPING").is_ok() {
                            eprintln!(
                                "map: node={} -> {:?} train={} ",
                                node.workload_id.0, rec.mapped_from, rec.train_samples
                            );
                        }
                        rec.config
                    }
                    None => return, // nothing learned yet
                }
            }
            TunerBackend::Rl(rl) => {
                let snap = node.service.master().metrics_snapshot();
                let delta = snap.delta(&node.window_start_snapshot);
                let state = Self::rl_state(&delta);
                node.prev_rl_state = Some(state.clone());
                let mut action = rl.recommend(&state);
                action.truncate(profile.len());
                while action.len() < profile.len() {
                    action.push(0.5);
                }
                action
            }
        };
        let mut unit = unit;
        if let Some(gov) = &mut self.safety {
            if gov.constrain(idx, &mut unit) {
                self.events.emit(self.now, "safe.clamped", idx as u64);
                self.meter.record_safety_clamp(ServiceId(idx as u64));
            }
        }
        self.director
            .record_recommendation(ServiceId(idx as u64), self.now, unit.clone());
        if !self.cfg.apply_recommendations {
            return;
        }
        self.apply_unit(idx, unit, 0);
    }

    /// Vet a unit-cube recommendation and land it on service `idx` through
    /// the slave-first protocol; `attempts` counts lag-guard refusals this
    /// recommendation already suffered.
    fn apply_unit(&mut self, idx: usize, unit: Vec<f64>, attempts: u32) {
        let node = &mut self.nodes[idx];
        // §4 budget vetting: the config director checks `A+B+C+D < X`
        // before shipping a recommendation — an oversubscribed config would
        // swap the instance to death, so memory knobs are rescaled to fit.
        // The vetted budget is the config *as it will run*: reloadable
        // knobs take the recommended values, restart-bound ones keep their
        // live values (they are deferred to the maintenance window).
        let profile = node.service.master().profile().clone();
        let raw = denormalize_config(&profile, &unit);
        let mut vetted = node.service.master().knobs().clone();
        for (i, (kid, spec)) in profile.iter().enumerate() {
            if !spec.restart_required {
                vetted.set(&profile, kid, raw[i]);
            }
        }
        autodbaas_simdb::instance::enforce_memory_cap(
            &profile,
            &mut vetted,
            node.service.master().instance(),
        );
        let raw: Vec<f64> = profile.iter().map(|(kid, _)| vetted.get(kid)).collect();
        let changes: Vec<ConfigChange> = profile
            .iter()
            .zip(&raw)
            .filter(|((_, spec), _)| !spec.restart_required)
            .map(|((kid, _), &value)| ConfigChange { knob: kid, value })
            .collect();
        let pre_apply = node.service.master().knobs().clone();
        match node.service.apply_with_lag_guard(
            &changes,
            ApplyMode::Reload,
            self.cfg.max_apply_lag_bytes,
        ) {
            Ok(_) => {
                // Persisting right after the master apply (§4) is what
                // keeps the reconciler quiet about *successful* tuning.
                self.orch
                    .persist_config(ServiceId(idx as u64), node.service.master().knobs().clone());
                if let Some(policy) = self.cfg.rollback {
                    node.guard = Some(RollbackGuard {
                        baseline: node.prev_objective,
                        revert_to: pre_apply,
                        windows_left: policy.observe_windows.max(1),
                    });
                }
                node.prev_action = Some(unit);
                node.cooldown_windows = 1;
                self.events.emit(self.now, "apply.ok", idx as u64);
            }
            Err(ApplyError::ReplicaLagging { .. }) => {
                if attempts + 1 >= self.cfg.retry_max_attempts {
                    self.events.emit(self.now, "apply.abandoned", idx as u64);
                } else {
                    let base = self.cfg.retry_base_ms.max(1);
                    let backoff = base << attempts.min(6);
                    let jitter = node.rng.gen_range(0..base);
                    node.deferred_apply = Some(DeferredApply {
                        unit,
                        next_try_at: self.now + backoff + jitter,
                        attempts: attempts + 1,
                    });
                    self.events.emit(self.now, "apply.lag_deferred", idx as u64);
                }
            }
            Err(ApplyError::SlaveCrashed { slave }) => {
                // §4: rejected slave-first — the master is untouched and
                // the recommendation is simply dropped. The crashed slave
                // runs WAL recovery and rejoins.
                self.events
                    .emit(self.now, "apply.rejected_slave_crash", idx as u64);
                let report = node.service.slave_mut(slave).crash();
                self.recovery_due.push((
                    self.now + report.recovery_ms,
                    idx,
                    "recover.slave_restarted",
                ));
                self.hot.note_recovery(self.now + report.recovery_ms);
            }
            Err(ApplyError::MasterCrashed) => {
                // Slaves applied, master didn't: drift the reconciler will
                // reject back to the persisted config, on top of the crash
                // recovery itself.
                self.events
                    .emit(self.now, "apply.master_crashed", idx as u64);
                self.handle_master_crash(idx);
            }
        }
        self.refresh_hot(idx);
    }
}

use autodbaas_snapshot::{
    snap_struct, FrameReader, FrameWriter, Snap, SnapError, SnapReader, SnapWriter,
};

snap_struct!(RollbackPolicy {
    regression_frac,
    observe_windows
});

snap_struct!(FleetConfig {
    tick_ms,
    tde_period_ms,
    gate_samples_with_tde,
    tuner,
    bo,
    rl,
    apply_recommendations,
    seed,
    shards,
    parallel_threshold,
    drive_threads,
    request_timeout_ms,
    retry_base_ms,
    retry_max_attempts,
    watcher_timeout_ms,
    max_apply_lag_bytes,
    rollback
});

impl Snap for TunerBackend {
    fn encode(&self, w: &mut SnapWriter) {
        match self {
            TunerBackend::Bo(t) => {
                0u16.encode(w);
                t.encode(w);
            }
            TunerBackend::Rl(t) => {
                1u16.encode(w);
                t.encode(w);
            }
        }
    }
    fn decode(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(match u16::decode(r)? {
            0 => TunerBackend::Bo(Snap::decode(r)?),
            1 => TunerBackend::Rl(Snap::decode(r)?),
            t => {
                return Err(SnapError::UnknownTag {
                    what: "TunerBackend",
                    tag: t.into(),
                })
            }
        })
    }
}

// The fleet's complete deterministic state. Scratch that the next tick
// rebuilds (shard pool threads, thread-budget cache, drain buffers) is
// deliberately absent: a restored fleet re-resolves them lazily, exactly
// as a freshly built one does, so serial/sharded equivalence carries over.
// `recovery_due` holds `&'static str` labels and round-trips through the
// bounded telemetry interner.
impl Snap for FleetSim {
    fn encode(&self, w: &mut SnapWriter) {
        self.cfg.encode(w);
        self.nodes.encode(w);
        self.director.encode(w);
        self.meter.encode(w);
        self.repo.encode(w);
        self.orch.encode(w);
        self.events.encode(w);
        self.backend.encode(w);
        self.reconcilers.encode(w);
        self.chaos.encode(w);
        self.plan.encode(w);
        self.burst_revert.encode(w);
        self.tuner_outage_until.encode(w);
        w.put_u64(self.recovery_due.len() as u64);
        for (at, node, label) in &self.recovery_due {
            at.encode(w);
            node.encode(w);
            w.put_str(label);
        }
        self.pending.encode(w);
        self.drive_stats.encode(w);
        self.hot.encode(w);
        self.now.encode(w);
        self.last_tde_run.encode(w);
        self.rng.encode(w);
        self.parallel.encode(w);
        self.safety.encode(w);
    }
    fn decode(r: &mut SnapReader) -> Result<Self, SnapError> {
        let cfg = FleetConfig::decode(r)?;
        let nodes = Vec::<ManagedDatabase>::decode(r)?;
        let director = ConfigDirector::decode(r)?;
        let meter = RecommendationMeter::decode(r)?;
        let repo = WorkloadRepository::decode(r)?;
        let orch = ServiceOrchestrator::decode(r)?;
        let events = EventLog::decode(r)?;
        let backend = TunerBackend::decode(r)?;
        let reconcilers = Vec::<Reconciler>::decode(r)?;
        let chaos = Option::<FaultEngine>::decode(r)?;
        let plan = Option::<PlanEngine>::decode(r)?;
        let burst_revert = Vec::<(SimTime, usize, ArrivalProcess)>::decode(r)?;
        let tuner_outage_until = SimTime::decode(r)?;
        let n_recovery = r.get_len()?;
        let mut recovery_due = Vec::with_capacity(n_recovery);
        for _ in 0..n_recovery {
            let at = SimTime::decode(r)?;
            let node = usize::decode(r)?;
            let label = autodbaas_telemetry::intern_kind(r.get_str()?);
            recovery_due.push((at, node, label));
        }
        let pending = BinaryHeap::<Reverse<(SimTime, usize, u64)>>::decode(r)?;
        let drive_stats = DriveStats::decode(r)?;
        let hot = HotState::decode(r)?;
        let now = SimTime::decode(r)?;
        let last_tde_run = SimTime::decode(r)?;
        let rng = Snap::decode(r)?;
        let parallel = bool::decode(r)?;
        let safety = Option::<SafetyGovernor>::decode(r)?;
        Ok(FleetSim {
            cfg,
            nodes,
            director,
            meter,
            repo,
            orch,
            events,
            backend,
            reconcilers,
            chaos,
            plan,
            burst_revert,
            tuner_outage_until,
            recovery_due,
            pending,
            pool: None,
            hot,
            thread_budget: None,
            drive_stats,
            fault_scratch: Vec::new(),
            plan_scratch: Vec::new(),
            window_scratch: Vec::new(),
            now,
            last_tde_run,
            rng,
            parallel,
            safety,
        })
    }
}

/// Frame tag for one serialized [`FleetSim`] inside a snapshot file.
pub const FRAME_FLEET: u16 = 0x0001;

impl FleetSim {
    /// Serialize the fleet into a sealed snapshot file image (magic,
    /// version, one [`FRAME_FLEET`] frame, trailer).
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let mut fw = FrameWriter::new();
        fw.frame_snap(FRAME_FLEET, self);
        fw.finish()
    }

    /// Restore a fleet from a snapshot file image produced by
    /// [`FleetSim::snapshot_bytes`]. Every frame seal and the whole-file
    /// trailer are verified; any flipped bit surfaces as a [`SnapError`].
    pub fn from_snapshot_bytes(data: &[u8]) -> Result<Self, SnapError> {
        let mut fr = FrameReader::new(data)?;
        let mut fleet = None;
        while let Some((tag, payload)) = fr.next_frame()? {
            if tag == FRAME_FLEET && fleet.is_none() {
                fleet = Some(autodbaas_snapshot::decode_from_slice::<FleetSim>(payload)?);
            }
        }
        fleet.ok_or(SnapError::Malformed("no fleet frame"))
    }

    /// Write the fleet snapshot to `path` atomically (temp file + rename),
    /// so a crash mid-write never leaves a half-snapshot behind.
    pub fn save_snapshot(&self, path: &std::path::Path) -> std::io::Result<()> {
        let bytes = self.snapshot_bytes();
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, path)
    }

    /// Read and restore a fleet snapshot from `path`.
    pub fn load_snapshot(path: &std::path::Path) -> std::io::Result<Self> {
        let bytes = std::fs::read(path)?;
        Self::from_snapshot_bytes(&bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{e:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::ManagedDatabase;
    use autodbaas_core::{TdeConfig, TuningPolicy};
    use autodbaas_simdb::{DbFlavor, DiskKind, InstanceType};
    use autodbaas_telemetry::MILLIS_PER_MIN;
    use autodbaas_tuner::WorkloadId;
    use autodbaas_workload::{tpcc, ArrivalProcess};

    fn make_node(policy: TuningPolicy, seed: u64) -> ManagedDatabase {
        let wl = tpcc(0.5);
        let catalog = wl.catalog().clone();
        ManagedDatabase::new(
            DbFlavor::Postgres,
            InstanceType::M4Large,
            DiskKind::Ssd,
            catalog,
            Box::new(wl),
            ArrivalProcess::Constant(300.0),
            policy,
            WorkloadId(0),
            TdeConfig::default(),
            seed,
        )
    }

    #[test]
    fn fleet_runs_and_time_advances() {
        let mut sim = FleetSim::new(FleetConfig::default(), 2);
        sim.add_node(make_node(TuningPolicy::TdeDriven, 1), "db-0");
        sim.run_for(3 * MILLIS_PER_MIN);
        assert_eq!(sim.now(), 3 * MILLIS_PER_MIN);
        assert!(sim.nodes[0].queries_submitted > 10_000);
    }

    #[test]
    fn periodic_policy_fires_on_schedule() {
        let mut sim = FleetSim::new(
            FleetConfig {
                gate_samples_with_tde: false,
                ..FleetConfig::default()
            },
            2,
        );
        sim.add_node(
            make_node(TuningPolicy::Periodic(5 * MILLIS_PER_MIN), 2),
            "db-0",
        );
        sim.run_for(31 * MILLIS_PER_MIN);
        // ~6 requests over 31 min at a 5-min period.
        let total = sim.director.total_requests();
        assert!((4..=8).contains(&total), "requests {total}");
    }

    #[test]
    fn tde_policy_on_healthy_workload_requests_less_than_periodic() {
        // TPCC at defaults only throttles work_mem occasionally; a 5-min
        // periodic policy fires unconditionally.
        let mk = |policy| {
            let mut sim = FleetSim::new(FleetConfig::default(), 2);
            sim.add_node(make_node(policy, 3), "db");
            sim.run_for(40 * MILLIS_PER_MIN);
            sim.director.total_requests()
        };
        let tde = mk(TuningPolicy::TdeDriven);
        let periodic = mk(TuningPolicy::Periodic(5 * MILLIS_PER_MIN));
        assert!(
            tde <= periodic,
            "TDE-driven ({tde}) must not exceed periodic ({periodic})"
        );
    }

    #[test]
    fn offline_seeding_populates_repository() {
        let mut sim = FleetSim::new(FleetConfig::default(), 1);
        let wl = tpcc(0.5);
        let id = sim.seed_offline_training(&wl, DbFlavor::Postgres, 5);
        assert_eq!(sim.repo.workload(id).samples.len(), 5);
        assert!(sim.repo.workload(id).offline);
        assert!(sim
            .repo
            .workload(id)
            .samples
            .iter()
            .all(|s| s.objective > 0.0));
    }

    #[test]
    fn recommendations_eventually_get_applied() {
        let mut sim = FleetSim::new(
            FleetConfig {
                tde_period_ms: MILLIS_PER_MIN,
                gate_samples_with_tde: false,
                ..FleetConfig::default()
            },
            2,
        );
        let wl = tpcc(0.5);
        sim.seed_offline_training(&wl, DbFlavor::Postgres, 8);
        sim.add_node(
            make_node(TuningPolicy::Periodic(2 * MILLIS_PER_MIN), 4),
            "db",
        );
        let default_knobs = sim.nodes[0].db().knobs().clone();
        sim.run_for(20 * MILLIS_PER_MIN);
        assert!(
            sim.nodes[0].prev_action.is_some(),
            "a recommendation should have been applied"
        );
        assert_ne!(
            sim.nodes[0].db().knobs(),
            &default_knobs,
            "knobs should have moved off defaults"
        );
    }

    #[test]
    fn parallel_drive_is_deterministic_and_equivalent() {
        // `shards: 4` forces real worker threads even on a single-core
        // machine, where auto resolution would fall back to one shard.
        let build = |shards: Option<usize>| {
            let mut sim = FleetSim::new(
                FleetConfig {
                    gate_samples_with_tde: false,
                    shards: shards.unwrap_or(0),
                    ..FleetConfig::default()
                },
                2,
            );
            sim.set_parallel(shards.is_some());
            for i in 0..10 {
                sim.add_node(
                    make_node(TuningPolicy::TdeDriven, 100 + i),
                    &format!("db-{i}"),
                );
            }
            sim.run_for(5 * MILLIS_PER_MIN);
            (
                sim.nodes
                    .iter()
                    .map(|n| n.queries_submitted)
                    .collect::<Vec<_>>(),
                sim.events.fingerprint(),
                sim.drive_stats(),
            )
        };
        let serial = build(None);
        assert_eq!(serial.2, crate::shard::DriveStats::default());
        for shards in [1, 4] {
            let sharded = build(Some(shards));
            assert_eq!(serial.0, sharded.0, "sharding must not change results");
            assert_eq!(serial.1, sharded.1, "event logs must match");
            assert_eq!(
                sharded.2.node_ticks,
                10 * 5 * 60,
                "sharded drives meter node-ticks"
            );
            assert_eq!(
                sharded.2.submitted,
                sharded.0.iter().sum::<u64>(),
                "merged submit totals must equal the per-node counters"
            );
        }
    }

    #[test]
    fn interaction_plan_drives_fleet_and_is_shard_invariant() {
        use crate::plan::{InteractionPlan, PlanAction, PlanEvent};
        let plan_events = || {
            vec![
                PlanEvent {
                    at: 30_000,
                    node: 0,
                    action: PlanAction::Burst {
                        rate_qps: 900.0,
                        duration_ms: 60_000,
                    },
                },
                PlanEvent {
                    at: 45_000,
                    node: 1,
                    action: PlanAction::AddReplica,
                },
                PlanEvent {
                    at: 60_000,
                    node: 1,
                    action: PlanAction::Fault(FaultKind::VmCrash),
                },
                PlanEvent {
                    at: 90_000,
                    node: 2,
                    action: PlanAction::KnobPush { value: 1.0 },
                },
                PlanEvent {
                    at: 120_000,
                    node: 3,
                    action: PlanAction::Maintenance,
                },
                PlanEvent {
                    at: 150_000,
                    node: 1,
                    action: PlanAction::RemoveReplica,
                },
            ]
        };
        let build = |shards: Option<usize>| {
            let mut sim = FleetSim::new(
                FleetConfig {
                    gate_samples_with_tde: false,
                    shards: shards.unwrap_or(0),
                    rollback: Some(RollbackPolicy::default()),
                    ..FleetConfig::default()
                },
                2,
            );
            sim.set_parallel(shards.is_some());
            for i in 0..6 {
                sim.add_node(
                    make_node(TuningPolicy::TdeDriven, 200 + i),
                    &format!("db-{i}"),
                );
            }
            sim.enable_plan(InteractionPlan::new(plan_events()));
            sim.run_for(6 * MILLIS_PER_MIN);
            sim
        };
        let serial = build(None);
        assert_eq!(serial.plan_remaining(), 0);
        for label in [
            "plan.burst",
            "plan.burst_end",
            "plan.replica_add",
            "fault.vm_crash",
            "plan.knob_push",
            "plan.maintenance",
            "plan.replica_remove",
        ] {
            assert_eq!(serial.events.count(label), 1, "{label}");
        }
        // The VmCrash at 60s hits a service that grew a replica at 45s, so
        // it fails over instead of going fully down; the replica-less
        // maintenance restart on node 3 must cost real downtime.
        assert_eq!(serial.events.count("recover.failover"), 1);
        assert!(serial.nodes[3].down_ticks > 0);
        assert_eq!(serial.nodes[1].service.n_slaves(), 0, "removed at 150s");
        // The burst tripled node 0's arrivals for a minute.
        assert!(serial.nodes[0].queries_submitted > serial.nodes[4].queries_submitted);
        // Bit-identical under the sharded tick engine.
        let sharded = build(Some(3));
        assert_eq!(
            serial
                .nodes
                .iter()
                .map(|n| n.queries_submitted)
                .collect::<Vec<_>>(),
            sharded
                .nodes
                .iter()
                .map(|n| n.queries_submitted)
                .collect::<Vec<_>>()
        );
        assert_eq!(serial.events.fingerprint(), sharded.events.fingerprint());
    }

    #[test]
    fn rl_backend_runs_end_to_end() {
        let mut sim = FleetSim::new(
            FleetConfig {
                tuner: TunerKind::Rl,
                gate_samples_with_tde: false,
                ..FleetConfig::default()
            },
            1,
        );
        sim.add_node(
            make_node(TuningPolicy::Periodic(2 * MILLIS_PER_MIN), 5),
            "db",
        );
        sim.run_for(10 * MILLIS_PER_MIN);
        assert!(sim.director.total_requests() >= 3);
        assert!(sim.nodes[0].prev_action.is_some());
    }
}
