//! Interaction plans: the scenario simulator's superset of fault plans.
//!
//! A [`FaultPlan`](crate::FaultPlan) schedules *failures*; an
//! [`InteractionPlan`] schedules everything that can happen to a managed
//! fleet — workload bursts, operator knob pushes, maintenance windows,
//! replica churn, *and* every [`FaultKind`] — as one time-sorted script.
//! The scenario crate generates these from weighted profiles, drives them
//! through [`FleetSim`](crate::FleetSim) via
//! [`FleetSim::enable_plan`](crate::FleetSim::enable_plan), and shrinks the
//! failing ones; everything here is deterministic and RNG-free so a shrunk
//! plan replays bit-for-bit.

use crate::faults::FaultKind;
use autodbaas_telemetry::{Fingerprint, SimTime};

/// One thing that can happen to a fleet node at a scheduled time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlanAction {
    /// Inject one chaos-engine fault (the [`FaultKind`] vocabulary).
    Fault(FaultKind),
    /// The tenant's traffic jumps to `rate_qps` for `duration_ms`, then
    /// reverts to whatever arrival process was running before the burst.
    Burst {
        /// Burst arrival rate, queries/second.
        rate_qps: f64,
        /// Burst length.
        duration_ms: u64,
    },
    /// An operator (or a buggy tuner) pushes every reloadable knob to the
    /// same unit-cube coordinate `value` through the normal vetted apply
    /// path — the adversarial input the rollback guard exists for.
    KnobPush {
        /// Unit-cube coordinate in `[0, 1]` for every knob dimension.
        value: f64,
    },
    /// A maintenance window: rolling restart of the master (failover when
    /// the service has replicas, full crash recovery otherwise).
    Maintenance,
    /// Grow the service by one caught-up replica.
    AddReplica,
    /// Shrink the service by one replica (no-op on a replica-less service).
    RemoveReplica,
}

impl PlanAction {
    /// Total order for stable plan sorting, mirroring
    /// [`FaultKind::sort_key`]: discriminant rank plus parameter bits
    /// (`f64` via `to_bits`; no generator produces NaN or negatives).
    fn sort_key(&self) -> (u8, u64, u64, u64) {
        match *self {
            PlanAction::Fault(kind) => {
                let (r, a, b) = kind.sort_key();
                (0, r as u64, a, b)
            }
            PlanAction::Burst {
                rate_qps,
                duration_ms,
            } => (1, rate_qps.to_bits(), duration_ms, 0),
            PlanAction::KnobPush { value } => (2, value.to_bits(), 0, 0),
            PlanAction::Maintenance => (3, 0, 0, 0),
            PlanAction::AddReplica => (4, 0, 0, 0),
            PlanAction::RemoveReplica => (5, 0, 0, 0),
        }
    }

    /// Static dotted label, used for event logs and fingerprints.
    pub fn label(&self) -> &'static str {
        match self {
            PlanAction::Fault(kind) => match kind {
                FaultKind::VmCrash => "fault.vm_crash",
                FaultKind::MasterCrashMidApply => "fault.master_crash_mid_apply",
                FaultKind::SlaveCrashMidApply => "fault.slave_crash_mid_apply",
                FaultKind::TunerOutage { .. } => "fault.tuner_outage",
                FaultKind::TelemetryDrop { .. } => "fault.telemetry_drop",
                FaultKind::DiskStall { .. } => "fault.disk_stall",
                FaultKind::ReplicaLagSpike { .. } => "fault.replica_lag_spike",
                FaultKind::RequestLoss => "fault.request_loss",
            },
            PlanAction::Burst { .. } => "plan.burst",
            PlanAction::KnobPush { .. } => "plan.knob_push",
            PlanAction::Maintenance => "plan.maintenance",
            PlanAction::AddReplica => "plan.replica_add",
            PlanAction::RemoveReplica => "plan.replica_remove",
        }
    }
}

/// A scheduled interaction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanEvent {
    /// When it happens.
    pub at: SimTime,
    /// Which fleet node (index into `FleetSim::nodes`).
    pub node: usize,
    /// What happens.
    pub action: PlanAction,
}

/// A time-sorted interaction schedule.
///
/// # Examples
///
/// ```
/// use autodbaas_cloudsim::{FaultKind, InteractionPlan, PlanAction, PlanEvent};
///
/// let plan = InteractionPlan::new(vec![
///     PlanEvent { at: 60_000, node: 0, action: PlanAction::Maintenance },
///     PlanEvent { at: 30_000, node: 1, action: PlanAction::Fault(FaultKind::VmCrash) },
/// ]);
/// assert_eq!(plan.events()[0].at, 30_000);
/// assert_eq!(plan.fingerprint(), plan.clone().fingerprint());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InteractionPlan {
    events: Vec<PlanEvent>,
}

impl InteractionPlan {
    /// A plan from explicit events; sorted by `(at, node, action)` with the
    /// same stable tiebreak as [`crate::FaultPlan::new`], so plans rebuilt
    /// by the shrinker sort identically on every run.
    pub fn new(mut events: Vec<PlanEvent>) -> Self {
        events.sort_by_key(|e| (e.at, e.node, e.action.sort_key()));
        Self { events }
    }

    /// The schedule, time-sorted.
    pub fn events(&self) -> &[PlanEvent] {
        &self.events
    }

    /// Number of scheduled interactions.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Time of the last scheduled interaction (0 for an empty plan).
    pub fn last_at(&self) -> SimTime {
        self.events.last().map_or(0, |e| e.at)
    }

    /// FNV-1a fingerprint of the whole schedule — the identity a bug-base
    /// entry records so a replayed plan can prove it is the same plan.
    /// Shares [`Fingerprint`] with the telemetry event log.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fingerprint::new();
        for e in &self.events {
            h.mix_u64(e.at);
            h.mix_u64(e.node as u64);
            h.mix(e.action.label().as_bytes());
            let (r, a, b, c) = e.action.sort_key();
            h.mix_u64(r as u64);
            h.mix_u64(a);
            h.mix_u64(b);
            h.mix_u64(c);
        }
        h.finish()
    }
}

/// Cursor over an [`InteractionPlan`] during a run; same contract as
/// [`crate::FaultEngine`].
#[derive(Debug, Clone)]
pub struct PlanEngine {
    plan: InteractionPlan,
    cursor: usize,
}

impl PlanEngine {
    /// Engine over `plan`.
    pub fn new(plan: InteractionPlan) -> Self {
        Self { plan, cursor: 0 }
    }

    /// Drain the events due by `now`, in schedule order, into a caller-owned
    /// scratch buffer (cleared first). Each event is handed out exactly once.
    pub fn take_due_into(&mut self, now: SimTime, out: &mut Vec<PlanEvent>) {
        out.clear();
        let start = self.cursor;
        while self.cursor < self.plan.events.len() && self.plan.events[self.cursor].at <= now {
            self.cursor += 1;
        }
        out.extend_from_slice(&self.plan.events[start..self.cursor]);
    }

    /// Interactions not yet delivered.
    pub fn remaining(&self) -> usize {
        self.plan.events.len() - self.cursor
    }

    /// The full plan.
    pub fn plan(&self) -> &InteractionPlan {
        &self.plan
    }
}

use autodbaas_snapshot::{snap_struct, Snap, SnapError, SnapReader, SnapWriter};

impl Snap for PlanAction {
    fn encode(&self, w: &mut SnapWriter) {
        match *self {
            PlanAction::Fault(kind) => {
                0u16.encode(w);
                kind.encode(w);
            }
            PlanAction::Burst {
                rate_qps,
                duration_ms,
            } => {
                1u16.encode(w);
                rate_qps.encode(w);
                duration_ms.encode(w);
            }
            PlanAction::KnobPush { value } => {
                2u16.encode(w);
                value.encode(w);
            }
            PlanAction::Maintenance => 3u16.encode(w),
            PlanAction::AddReplica => 4u16.encode(w),
            PlanAction::RemoveReplica => 5u16.encode(w),
        }
    }
    fn decode(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(match u16::decode(r)? {
            0 => PlanAction::Fault(Snap::decode(r)?),
            1 => PlanAction::Burst {
                rate_qps: f64::decode(r)?,
                duration_ms: u64::decode(r)?,
            },
            2 => PlanAction::KnobPush {
                value: f64::decode(r)?,
            },
            3 => PlanAction::Maintenance,
            4 => PlanAction::AddReplica,
            5 => PlanAction::RemoveReplica,
            t => {
                return Err(SnapError::UnknownTag {
                    what: "PlanAction",
                    tag: t.into(),
                })
            }
        })
    }
}

snap_struct!(PlanEvent { at, node, action });
snap_struct!(InteractionPlan { events });
snap_struct!(PlanEngine { plan, cursor });

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: SimTime, node: usize, action: PlanAction) -> PlanEvent {
        PlanEvent { at, node, action }
    }

    #[test]
    fn plans_sort_stably_regardless_of_insertion_order() {
        let actions = [
            PlanAction::Maintenance,
            PlanAction::Fault(FaultKind::VmCrash),
            PlanAction::Burst {
                rate_qps: 900.0,
                duration_ms: 60_000,
            },
            PlanAction::KnobPush { value: 1.0 },
        ];
        let a = InteractionPlan::new(actions.iter().map(|&x| ev(500, 1, x)).collect());
        let b = InteractionPlan::new(actions.iter().rev().map(|&x| ev(500, 1, x)).collect());
        assert_eq!(a.events(), b.events());
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Faults rank before non-fault interactions at the same instant.
        assert_eq!(a.events()[0].action, PlanAction::Fault(FaultKind::VmCrash));
        // Time dominates node dominates action.
        let c = InteractionPlan::new(vec![
            ev(600, 0, PlanAction::Maintenance),
            ev(500, 2, PlanAction::Maintenance),
            ev(500, 1, PlanAction::AddReplica),
        ]);
        assert_eq!(c.events()[0].node, 1);
        assert_eq!(c.events()[2].at, 600);
        assert_eq!(c.last_at(), 600);
    }

    #[test]
    fn fingerprint_distinguishes_parameters_and_order() {
        let base = InteractionPlan::new(vec![ev(100, 0, PlanAction::KnobPush { value: 0.5 })]);
        let other = InteractionPlan::new(vec![ev(100, 0, PlanAction::KnobPush { value: 0.9 })]);
        assert_ne!(base.fingerprint(), other.fingerprint());
        let moved = InteractionPlan::new(vec![ev(200, 0, PlanAction::KnobPush { value: 0.5 })]);
        assert_ne!(base.fingerprint(), moved.fingerprint());
        let renoded = InteractionPlan::new(vec![ev(100, 1, PlanAction::KnobPush { value: 0.5 })]);
        assert_ne!(base.fingerprint(), renoded.fingerprint());
        assert_eq!(
            InteractionPlan::default().fingerprint(),
            InteractionPlan::new(Vec::new()).fingerprint()
        );
    }

    #[test]
    fn engine_hands_out_each_event_once_in_order() {
        let plan = InteractionPlan::new(
            (0..10)
                .map(|i| ev(i * 1_000, i as usize % 3, PlanAction::Maintenance))
                .collect(),
        );
        let mut engine = PlanEngine::new(plan);
        let mut due = vec![ev(0, 9, PlanAction::Maintenance)];
        engine.take_due_into(4_000, &mut due);
        assert_eq!(due.len(), 5, "events at 0..=4000 inclusive");
        assert!(due.windows(2).all(|w| w[0].at <= w[1].at));
        engine.take_due_into(4_000, &mut due);
        assert!(due.is_empty(), "events must not repeat");
        assert_eq!(engine.remaining(), 5);
        engine.take_due_into(u64::MAX, &mut due);
        assert_eq!(due.len(), 5);
        assert_eq!(engine.remaining(), 0);
    }
}
