//! Single-database experiment helpers shared by the figure harnesses:
//! drive one workload against one instance for a fixed duration and return
//! the series the paper plots.

use autodbaas_simdb::{MetricId, SimDatabase};
use autodbaas_telemetry::SimTime;
use autodbaas_workload::{ArrivalProcess, QuerySource};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Series captured by [`drive_workload`].
#[derive(Debug, Clone)]
pub struct DriveResult {
    /// End time of the drive.
    pub ended_at: SimTime,
    /// Queries completed.
    pub queries: u64,
    /// Mean throughput over the drive, queries/second.
    pub mean_qps: f64,
    /// Mean disk write latency over the drive, ms.
    pub mean_disk_latency_ms: f64,
}

/// Drive `workload` at `arrival` against `db` for `duration_ms`,
/// with `tick_ms` resolution. Traffic is batched like the fleet simulator.
pub fn drive_workload(
    db: &mut SimDatabase,
    workload: &dyn QuerySource,
    arrival: &ArrivalProcess,
    duration_ms: u64,
    tick_ms: u64,
    seed: u64,
) -> DriveResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let start = db.now();
    let start_exec = db.metrics().get(MetricId::QueriesExecuted);
    let latency_start = db.now();
    let end = start + duration_ms;
    const SHAPES: u64 = 24;
    while db.now() < end {
        let n = arrival.sample_count(&mut rng, db.now(), tick_ms);
        if n > 0 {
            let shapes = n.min(SHAPES);
            let per = n / shapes;
            let rem = n - per * shapes;
            for i in 0..shapes {
                let q = workload.next_query(&mut rng);
                let count = per + u64::from(i < rem);
                if count > 0 {
                    let _ = db.submit(&q, count);
                }
            }
        }
        db.tick(tick_ms);
    }
    let queries = (db.metrics().get(MetricId::QueriesExecuted) - start_exec) as u64;
    let mean_qps = queries as f64 * 1000.0 / duration_ms.max(1) as f64;
    let mean_disk_latency_ms = db.disks().data().latency_series().mean_since(latency_start);
    DriveResult {
        ended_at: db.now(),
        queries,
        mean_qps,
        mean_disk_latency_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autodbaas_simdb::{DbFlavor, DiskKind, InstanceType};
    use autodbaas_workload::tpcc;

    #[test]
    fn drive_reports_consistent_numbers() {
        let wl = tpcc(0.5);
        let mut db = SimDatabase::new(
            DbFlavor::Postgres,
            InstanceType::M4Large,
            DiskKind::Ssd,
            wl.catalog().clone(),
            7,
        );
        let res = drive_workload(
            &mut db,
            &wl,
            &ArrivalProcess::Constant(500.0),
            30_000,
            1_000,
            1,
        );
        assert_eq!(res.ended_at, 30_000);
        assert!((res.mean_qps - 500.0).abs() < 100.0, "qps {}", res.mean_qps);
        assert!(res.mean_disk_latency_ms > 0.0);
    }
}
