//! Single-database experiment helpers shared by the figure harnesses:
//! drive one workload against one instance for a fixed duration and return
//! the series the paper plots.

use crate::faults::{FaultEngine, FaultKind, FaultPlan};

use autodbaas_simdb::{Backend, MetricId};
use autodbaas_telemetry::SimTime;
use autodbaas_workload::{ArrivalProcess, QuerySource};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Series captured by [`drive_workload`].
#[derive(Debug, Clone)]
pub struct DriveResult {
    /// End time of the drive.
    pub ended_at: SimTime,
    /// Queries completed.
    pub queries: u64,
    /// Mean throughput over the drive, queries/second.
    pub mean_qps: f64,
    /// Mean disk write latency over the drive, ms.
    pub mean_disk_latency_ms: f64,
}

/// Drive `workload` at `arrival` against `db` for `duration_ms`,
/// with `tick_ms` resolution. Traffic is batched like the fleet simulator.
pub fn drive_workload<B: Backend>(
    db: &mut B,
    workload: &dyn QuerySource,
    arrival: &ArrivalProcess,
    duration_ms: u64,
    tick_ms: u64,
    seed: u64,
) -> DriveResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let start = db.now();
    let start_exec = db.metrics().get(MetricId::QueriesExecuted);
    let latency_start = db.now();
    let end = start + duration_ms;
    const SHAPES: u64 = 24;
    while db.now() < end {
        let n = arrival.sample_count(&mut rng, db.now(), tick_ms);
        if n > 0 {
            let shapes = n.min(SHAPES);
            let per = n / shapes;
            let rem = n - per * shapes;
            for i in 0..shapes {
                let q = workload.next_query(&mut rng);
                let count = per + u64::from(i < rem);
                if count > 0 {
                    let _ = db.submit(&q, count);
                }
            }
        }
        db.tick(tick_ms);
    }
    let queries = (db.metrics().get(MetricId::QueriesExecuted) - start_exec) as u64;
    let mean_qps = queries as f64 * 1000.0 / duration_ms.max(1) as f64;
    let mean_disk_latency_ms = db.disks().data().latency_series().mean_since(latency_start);
    DriveResult {
        ended_at: db.now(),
        queries,
        mean_qps,
        mean_disk_latency_ms,
    }
}

/// What a chaos-enabled drive observed on top of [`DriveResult`].
#[derive(Debug, Clone)]
pub struct ChaosDriveResult {
    /// The plain drive series.
    pub drive: DriveResult,
    /// Faults actually injected (node-level kinds only; control-plane
    /// faults in the plan are skipped by this single-database harness).
    pub faults_injected: usize,
    /// Ticks the database spent in crash recovery.
    pub down_ticks: u64,
    /// Fraction of ticks the database was serving.
    pub availability: f64,
}

/// [`drive_workload`], but with a [`FaultPlan`] applied along the way.
/// Only the faults meaningful to a single unmanaged database are injected:
/// `VmCrash` runs WAL crash recovery, `DiskStall` degrades the disks. The
/// control-plane kinds (mid-apply crashes, tuner outages, request loss,
/// replica lag) need the fleet simulator and are ignored here.
pub fn drive_workload_with_faults<B: Backend>(
    db: &mut B,
    workload: &dyn QuerySource,
    arrival: &ArrivalProcess,
    duration_ms: u64,
    tick_ms: u64,
    seed: u64,
    plan: FaultPlan,
) -> ChaosDriveResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut engine = FaultEngine::new(plan);
    let start = db.now();
    let start_exec = db.metrics().get(MetricId::QueriesExecuted);
    let latency_start = db.now();
    let end = start + duration_ms;
    const SHAPES: u64 = 24;
    let mut faults_injected = 0usize;
    let mut down_ticks = 0u64;
    let mut total_ticks = 0u64;
    // One scratch buffer for the whole run; `take_due_into` clears it per
    // tick, so the hot path never allocates after the first drain.
    let mut due = Vec::new();
    while db.now() < end {
        engine.take_due_into(db.now().saturating_sub(start), &mut due);
        for ev in &due {
            match ev.kind {
                FaultKind::VmCrash => {
                    let _ = db.crash();
                    faults_injected += 1;
                }
                FaultKind::DiskStall {
                    duration_ms: stall_ms,
                    factor,
                } => {
                    db.degrade(stall_ms, factor);
                    faults_injected += 1;
                }
                _ => {} // control-plane faults: fleet-sim only
            }
        }
        total_ticks += 1;
        if db.is_down() {
            down_ticks += 1;
        }
        let n = arrival.sample_count(&mut rng, db.now(), tick_ms);
        if n > 0 {
            let shapes = n.min(SHAPES);
            let per = n / shapes;
            let rem = n - per * shapes;
            for i in 0..shapes {
                let q = workload.next_query(&mut rng);
                let count = per + u64::from(i < rem);
                if count > 0 {
                    let _ = db.submit(&q, count);
                }
            }
        }
        db.tick(tick_ms);
    }
    let queries = (db.metrics().get(MetricId::QueriesExecuted) - start_exec) as u64;
    let mean_qps = queries as f64 * 1000.0 / duration_ms.max(1) as f64;
    let mean_disk_latency_ms = db.disks().data().latency_series().mean_since(latency_start);
    ChaosDriveResult {
        drive: DriveResult {
            ended_at: db.now(),
            queries,
            mean_qps,
            mean_disk_latency_ms,
        },
        faults_injected,
        down_ticks,
        availability: if total_ticks == 0 {
            1.0
        } else {
            1.0 - down_ticks as f64 / total_ticks as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autodbaas_simdb::{DbFlavor, DiskKind, InstanceType, SimDatabase};
    use autodbaas_workload::tpcc;

    #[test]
    fn drive_reports_consistent_numbers() {
        let wl = tpcc(0.5);
        let mut db = SimDatabase::new(
            DbFlavor::Postgres,
            InstanceType::M4Large,
            DiskKind::Ssd,
            wl.catalog().clone(),
            7,
        );
        let res = drive_workload(
            &mut db,
            &wl,
            &ArrivalProcess::Constant(500.0),
            30_000,
            1_000,
            1,
        );
        assert_eq!(res.ended_at, 30_000);
        assert!((res.mean_qps - 500.0).abs() < 100.0, "qps {}", res.mean_qps);
        assert!(res.mean_disk_latency_ms > 0.0);
    }

    #[test]
    fn faulty_drive_loses_throughput_to_downtime() {
        use crate::faults::{FaultEvent, FaultKind, FaultPlan};
        let wl = tpcc(0.5);
        let mk = || {
            SimDatabase::new(
                DbFlavor::Postgres,
                InstanceType::M4Large,
                DiskKind::Ssd,
                wl.catalog().clone(),
                7,
            )
        };
        let arrival = ArrivalProcess::Constant(500.0);
        let mut clean_db = mk();
        let clean = drive_workload(&mut clean_db, &wl, &arrival, 60_000, 1_000, 1);
        let plan = FaultPlan::new(vec![FaultEvent {
            at: 20_000,
            node: 0,
            kind: FaultKind::VmCrash,
        }]);
        let mut db = mk();
        let res = drive_workload_with_faults(&mut db, &wl, &arrival, 60_000, 1_000, 1, plan);
        assert_eq!(res.faults_injected, 1);
        assert!(res.down_ticks >= 2, "down {} ticks", res.down_ticks);
        assert!(res.availability < 1.0);
        assert!(!db.is_down(), "recovery must complete within the run");
        assert!(res.drive.queries < clean.queries);
    }
}
