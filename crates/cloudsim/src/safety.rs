//! OnlineTune-style safe online tuning (tentpole, ROADMAP item 5): a
//! learned safe region constrains every tuner candidate before it reaches
//! the apply path, and a baseline-relative regret ledger prices what the
//! tuner's exploration cost each tenant.
//!
//! The governor sits between the tuner backend and [`crate::FleetSim`]'s
//! vetted apply: candidates outside the tenant's current safe region are
//! clamped to its surface (counted, metered, and logged as
//! `"safe.clamped"`), the region expands while observation windows stay
//! above the tenant's SLO floor and contracts multiplicatively on a
//! breach, and every window accrues `max(0, baseline − objective)` into
//! the cumulative-regret account the fig. 18 harness reports. Everything
//! here is deterministic and RNG-free, and the whole governor round-trips
//! through the snapshot subsystem, so a checkpointed 33-day run resumes
//! with its safe regions and regret accounts intact.

use autodbaas_snapshot::snap_struct;

/// Safe-tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct SafetyConfig {
    /// Initial half-width of the safe hyper-cube around the boot config,
    /// in unit-cube coordinates.
    pub initial_radius: f64,
    /// Fraction of the remaining headroom the radius gains after each
    /// clean (non-breach) observation window.
    pub expand_step: f64,
    /// Multiplicative radius contraction on an SLO breach.
    pub shrink_factor: f64,
    /// Smallest radius a breach can leave behind — the region never
    /// collapses to a point, so tuning can resume after recovery.
    pub min_radius: f64,
    /// Largest radius expansion can reach. The trust region stays bounded
    /// forever; long-run coverage of the knob space comes from the center
    /// *migrating* toward configs that survive their windows, not from
    /// the region swallowing the whole cube — so one bad candidate can
    /// never be worse than `max_radius` away from a proven-good config.
    pub max_radius: f64,
    /// SLO floor as a fraction of the rolling baseline: a window whose
    /// objective drops below `baseline × slo_floor_frac` is a breach.
    pub slo_floor_frac: f64,
    /// EWMA weight for the rolling baseline objective.
    pub baseline_alpha: f64,
    /// Windows observed before the baseline is trusted enough to charge
    /// regret or call breaches (the fleet boots untuned and cold).
    pub warmup_windows: u64,
}

impl Default for SafetyConfig {
    fn default() -> Self {
        Self {
            initial_radius: 0.15,
            expand_step: 0.01,
            shrink_factor: 0.5,
            min_radius: 0.02,
            max_radius: 0.3,
            slo_floor_frac: 0.7,
            baseline_alpha: 0.2,
            warmup_windows: 5,
        }
    }
}

snap_struct!(SafetyConfig {
    initial_radius,
    expand_step,
    shrink_factor,
    min_radius,
    max_radius,
    slo_floor_frac,
    baseline_alpha,
    warmup_windows
});

/// A per-tenant safe hyper-cube in unit-knob space.
#[derive(Debug, Clone)]
pub struct SafeRegion {
    /// Region center — starts at the boot config, drifts toward configs
    /// that survived their observation windows.
    pub center: Vec<f64>,
    /// Half-width of the cube on every dimension.
    pub radius: f64,
}

impl SafeRegion {
    /// A fresh region around `center`.
    pub fn new(center: Vec<f64>, radius: f64) -> Self {
        Self { center, radius }
    }

    /// Clamp `unit` into the region, coordinate by coordinate. Returns
    /// `true` when any coordinate had to move.
    pub fn constrain(&self, unit: &mut [f64]) -> bool {
        let mut clamped = false;
        for (u, &c) in unit.iter_mut().zip(&self.center) {
            let lo = (c - self.radius).max(0.0);
            let hi = (c + self.radius).min(1.0);
            let v = u.clamp(lo, hi);
            if (v - *u).abs() > f64::EPSILON {
                clamped = true;
            }
            *u = v;
        }
        clamped
    }

    /// A clean window on `applied`: grow the radius by `expand_step` of
    /// the remaining headroom (never past `max_radius`) and drift the
    /// center halfway toward the applied config — the OnlineTune region
    /// walk. The bounded radius plus the migrating center is what lets
    /// the region eventually reach anywhere in the cube while keeping
    /// every single step's blast radius capped.
    pub fn expand_toward(&mut self, applied: &[f64], expand_step: f64, max_radius: f64) {
        self.radius = (self.radius + expand_step * (1.0 - self.radius)).min(max_radius);
        for (c, &a) in self.center.iter_mut().zip(applied) {
            *c += 0.5 * (a - *c);
        }
    }

    /// An SLO breach: contract multiplicatively, never below `min_radius`.
    pub fn shrink(&mut self, shrink_factor: f64, min_radius: f64) {
        self.radius = (self.radius * shrink_factor).max(min_radius);
    }
}

snap_struct!(SafeRegion { center, radius });

/// Baseline-relative regret accounting for one tenant.
#[derive(Debug, Clone, Copy, Default)]
pub struct RegretLedger {
    /// Rolling EWMA of the window objective (queries/second).
    pub baseline: f64,
    /// `Σ max(0, baseline − objective) × window_s` over all charged
    /// windows — throughput the tenant lost to exploration, in queries.
    pub cumulative_regret: f64,
    /// Observation windows folded in.
    pub windows: u64,
    /// Windows that breached the SLO floor.
    pub violations: u64,
    /// Deepest single-window shortfall seen after warmup, as a fraction
    /// of the then-current baseline (`1 - objective/baseline`, floored at
    /// zero) — where the SLO floor would have had to sit to catch it.
    pub worst_shortfall: f64,
}

snap_struct!(RegretLedger {
    baseline,
    cumulative_regret,
    windows,
    violations,
    worst_shortfall
});

/// One window's verdict from [`SafetyGovernor::observe_window`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowVerdict {
    /// The window fell below the SLO floor.
    pub breach: bool,
    /// Regret charged for this window (queries).
    pub regret: f64,
}

/// Per-tenant safety state: the region plus the ledger plus the last
/// config the governor let through.
#[derive(Debug, Clone)]
struct TenantSafety {
    region: SafeRegion,
    ledger: RegretLedger,
    /// Last constrained candidate that went to the apply path; a clean
    /// window expands the region toward it.
    last_applied: Option<Vec<f64>>,
}

snap_struct!(TenantSafety {
    region,
    ledger,
    last_applied
});

/// The fleet's safe-tuning layer: one region + ledger per tenant.
///
/// # Examples
///
/// ```
/// use autodbaas_cloudsim::safety::{SafetyConfig, SafetyGovernor};
///
/// let mut gov = SafetyGovernor::new(SafetyConfig::default());
/// gov.push_node(vec![0.5, 0.5]);
/// let mut candidate = vec![0.95, 0.5]; // far outside the initial region
/// assert!(gov.constrain(0, &mut candidate));
/// assert!(candidate[0] <= 0.5 + gov.config().initial_radius + 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct SafetyGovernor {
    cfg: SafetyConfig,
    tenants: Vec<TenantSafety>,
}

snap_struct!(SafetyGovernor { cfg, tenants });

impl SafetyGovernor {
    /// A governor with no tenants yet.
    pub fn new(cfg: SafetyConfig) -> Self {
        Self {
            cfg,
            tenants: Vec::new(),
        }
    }

    /// The governor's configuration.
    pub fn config(&self) -> &SafetyConfig {
        &self.cfg
    }

    /// Register one more tenant whose boot config (unit-cube coordinates)
    /// seeds its safe region.
    pub fn push_node(&mut self, boot_unit: Vec<f64>) {
        self.tenants.push(TenantSafety {
            region: SafeRegion::new(boot_unit, self.cfg.initial_radius),
            ledger: RegretLedger::default(),
            last_applied: None,
        });
    }

    /// Tenants registered.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// No tenants registered yet.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Constrain a tuner candidate for tenant `idx` into its safe region.
    /// Returns `true` when the candidate had to be clamped.
    pub fn constrain(&mut self, idx: usize, unit: &mut [f64]) -> bool {
        let t = &mut self.tenants[idx];
        let clamped = t.region.constrain(unit);
        t.last_applied = Some(unit.to_vec());
        clamped
    }

    /// Fold one closed observation window into tenant `idx`'s ledger and
    /// region. `window_s` converts the throughput gap into lost queries.
    pub fn observe_window(&mut self, idx: usize, objective: f64, window_s: f64) -> WindowVerdict {
        let cfg = self.cfg;
        let t = &mut self.tenants[idx];
        let led = &mut t.ledger;
        led.windows += 1;
        let warm = led.windows > cfg.warmup_windows;
        let mut verdict = WindowVerdict {
            breach: false,
            regret: 0.0,
        };
        if warm {
            if objective < led.baseline * cfg.slo_floor_frac {
                verdict.breach = true;
                led.violations += 1;
                t.region.shrink(cfg.shrink_factor, cfg.min_radius);
            }
            let gap = (led.baseline - objective).max(0.0) * window_s;
            verdict.regret = gap;
            led.cumulative_regret += gap;
            if led.baseline > 0.0 {
                led.worst_shortfall = led.worst_shortfall.max(1.0 - objective / led.baseline);
            }
        }
        if !verdict.breach {
            if let Some(applied) = t.last_applied.take() {
                t.region
                    .expand_toward(&applied, cfg.expand_step, cfg.max_radius);
            }
        }
        // EWMA after judging, so a window is scored against the past, not
        // against itself.
        led.baseline = if led.windows == 1 {
            objective
        } else {
            (1.0 - cfg.baseline_alpha) * led.baseline + cfg.baseline_alpha * objective
        };
        verdict
    }

    /// Tenant `idx`'s ledger.
    pub fn ledger(&self, idx: usize) -> RegretLedger {
        self.tenants[idx].ledger
    }

    /// Tenant `idx`'s current safe region.
    pub fn region(&self, idx: usize) -> &SafeRegion {
        &self.tenants[idx].region
    }

    /// Fleet-wide cumulative regret (queries lost to exploration).
    pub fn cumulative_regret(&self) -> f64 {
        self.tenants
            .iter()
            .map(|t| t.ledger.cumulative_regret)
            .sum()
    }

    /// Fleet-wide SLO-floor breach count.
    pub fn total_violations(&self) -> u64 {
        self.tenants.iter().map(|t| t.ledger.violations).sum()
    }

    /// Deepest post-warmup window shortfall across the fleet (fraction of
    /// baseline) — the calibration headroom between the worst window the
    /// fleet produced and the configured SLO floor.
    pub fn worst_shortfall(&self) -> f64 {
        self.tenants
            .iter()
            .map(|t| t.ledger.worst_shortfall)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constrain_clamps_into_the_cube_and_counts() {
        let mut gov = SafetyGovernor::new(SafetyConfig::default());
        gov.push_node(vec![0.5; 3]);
        let mut unit = vec![0.95, 0.5, 0.1];
        assert!(gov.constrain(0, &mut unit));
        for v in &unit {
            assert!((*v - 0.5).abs() <= gov.config().initial_radius + 1e-12);
        }
        // Inside the region: untouched, not counted as a clamp.
        let mut inside = vec![0.55, 0.5, 0.45];
        assert!(!gov.constrain(0, &mut inside));
        assert_eq!(inside, vec![0.55, 0.5, 0.45]);
    }

    #[test]
    fn clean_windows_expand_breaches_shrink() {
        let cfg = SafetyConfig {
            warmup_windows: 1,
            ..SafetyConfig::default()
        };
        let mut gov = SafetyGovernor::new(cfg);
        gov.push_node(vec![0.5; 2]);
        let r0 = gov.region(0).radius;
        let mut unit = vec![0.9, 0.1];
        gov.constrain(0, &mut unit);
        // Warmup window then a clean one: region grows.
        gov.observe_window(0, 100.0, 60.0);
        gov.constrain(0, &mut unit.clone());
        gov.observe_window(0, 100.0, 60.0);
        assert!(gov.region(0).radius > r0);
        // A deep breach: region contracts and the violation is booked.
        let grown = gov.region(0).radius;
        let v = gov.observe_window(0, 1.0, 60.0);
        assert!(v.breach);
        assert!(gov.region(0).radius < grown);
        assert_eq!(gov.total_violations(), 1);
        assert!(gov.cumulative_regret() > 0.0);
    }

    #[test]
    fn warmup_windows_never_breach_or_charge() {
        let mut gov = SafetyGovernor::new(SafetyConfig::default());
        gov.push_node(vec![0.5; 2]);
        for _ in 0..5 {
            let v = gov.observe_window(0, 0.0, 60.0);
            assert!(!v.breach);
            assert_eq!(v.regret, 0.0);
        }
        assert_eq!(gov.cumulative_regret(), 0.0);
        assert_eq!(gov.total_violations(), 0);
    }

    #[test]
    fn governor_round_trips_through_snap() {
        let mut gov = SafetyGovernor::new(SafetyConfig::default());
        gov.push_node(vec![0.3, 0.7]);
        gov.push_node(vec![0.5, 0.5]);
        let mut unit = vec![0.99, 0.01];
        gov.constrain(0, &mut unit);
        for w in 0..8 {
            gov.observe_window(0, if w == 6 { 1.0 } else { 90.0 }, 60.0);
            gov.observe_window(1, 50.0, 60.0);
        }
        let bytes = autodbaas_snapshot::encode_to_vec(&gov);
        let back: SafetyGovernor = autodbaas_snapshot::decode_from_slice(&bytes).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.cumulative_regret(), gov.cumulative_regret());
        assert_eq!(back.total_violations(), gov.total_violations());
        assert_eq!(back.region(0).center, gov.region(0).center);
        assert_eq!(back.region(0).radius, gov.region(0).radius);
    }
}
