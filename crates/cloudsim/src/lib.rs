//! Discrete-event fleet simulator for the AutoDBaaS reproduction.
//!
//! The paper evaluates on an AWS fleet: 80 live databases across five VM
//! plans, 12 tuner instances, 5 config directors, one shared central data
//! repository (§5). This crate reproduces that topology in simulation:
//!
//! * [`node::ManagedDatabase`] — one database + its TDE plugin + workload;
//! * [`sim::FleetSim`] — lockstep fleet advance with an event queue for
//!   recommendation completions, TDE-gated sample capture, and both tuner
//!   backends;
//! * [`runner`] — single-database drive helpers for the figure harnesses.

pub mod node;
pub mod runner;
pub mod sim;

pub use node::ManagedDatabase;
pub use runner::{drive_workload, DriveResult};
pub use sim::{FleetConfig, FleetSim};
