//! Discrete-event fleet simulator for the AutoDBaaS reproduction.
//!
//! The paper evaluates on an AWS fleet: 80 live databases across five VM
//! plans, 12 tuner instances, 5 config directors, one shared central data
//! repository (§5). This crate reproduces that topology in simulation:
//!
//! * [`node::ManagedDatabase`] — one replicated service + its TDE plugin +
//!   workload, with the in-flight/retry/rollback control state;
//! * [`sim::FleetSim`] — lockstep fleet advance with an event queue for
//!   recommendation completions, TDE-gated sample capture, both tuner
//!   backends, and the self-healing control plane (failover, crash
//!   recovery, retry/backoff, reconciliation, safe rollback);
//! * [`shard`] — the persistent sharded tick engine: long-lived worker
//!   shards behind a generation barrier, bit-identical to the serial drive
//!   for any shard count;
//! * [`faults`] — the deterministic seeded chaos engine driving the
//!   robustness experiments (Fig. 16);
//! * [`plan`] — interaction plans: the scenario simulator's superset of
//!   fault plans (bursts, knob pushes, maintenance, replica churn);
//! * [`runner`] — single-database drive helpers for the figure harnesses.

pub mod faults;
pub mod node;
pub mod plan;
pub mod runner;
pub mod safety;
pub mod shard;
pub mod sim;

pub use faults::{FaultEngine, FaultEvent, FaultKind, FaultPlan};
pub use node::{DeferredApply, DriveTick, InFlightRequest, ManagedDatabase, RollbackGuard};
pub use plan::{InteractionPlan, PlanAction, PlanEngine, PlanEvent};
pub use runner::{drive_workload, drive_workload_with_faults, ChaosDriveResult, DriveResult};
pub use safety::{RegretLedger, SafeRegion, SafetyConfig, SafetyGovernor, WindowVerdict};
pub use shard::{derived_shard_seed, DriveStats, HotState, ShardPool};
pub use sim::{FleetConfig, FleetSim, RollbackPolicy, FRAME_FLEET};
