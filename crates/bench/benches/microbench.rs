//! Criterion micro-benchmarks for the moving parts of the reproduction.
//!
//! The headline curve is `gpr_train`: §1's scalability argument rests on
//! GPR training being cubic in the sample count ("a GPR training [takes]
//! around 100 to 120 seconds" at production sizes, binding one OtterTune
//! deployment to 3–4 service instances under 5-minute polling). The other
//! groups size the TDE's own overhead — it runs on the database VM, so it
//! must be cheap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use autodbaas_core::{normalize_sql, ClassHistogram, Reservoir, Tde, TdeConfig};
use autodbaas_simdb::{DbFlavor, DiskKind, InstanceType, SimDatabase};
use autodbaas_telemetry::entropy::normalized_entropy;
use autodbaas_tuner::{
    map_workload, GaussianProcess, GpParams, Sample, SampleQuality, WorkloadRepository,
};
use autodbaas_workload::tpcc;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn gp_data(n: usize, dim: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..dim).map(|_| rng.gen()).collect())
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| x.iter().sum::<f64>() + rng.gen::<f64>() * 0.1)
        .collect();
    (xs, ys)
}

/// GPR training cost vs sample count — the §1 scalability curve.
fn bench_gpr_train(c: &mut Criterion) {
    let mut group = c.benchmark_group("gpr_train");
    group.sample_size(10);
    for &n in &[50usize, 100, 200, 400] {
        let (xs, ys) = gp_data(n, 15, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let gp = GaussianProcess::fit(black_box(&xs), black_box(&ys), GpParams::default());
                black_box(gp.map(|g| g.len()))
            })
        });
    }
    group.finish();
}

/// Random SPD matrix (kernel-like: Gram matrix plus diagonal dominance).
fn spd(n: usize, seed: u64) -> autodbaas_tuner::linalg::Matrix {
    use autodbaas_tuner::linalg::Matrix;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            g[(i, j)] = rng.gen::<f64>() - 0.5;
        }
    }
    let mut k = g.matmul_transpose(&g);
    for i in 0..n {
        k[(i, i)] += n as f64 * 0.1 + 1.0;
    }
    k
}

/// Blocked vs reference Cholesky — the factorisation at the core of every
/// GP fit.
fn bench_cholesky(c: &mut Criterion) {
    let mut group = c.benchmark_group("cholesky");
    group.sample_size(10);
    for &n in &[50usize, 100, 200, 400] {
        let k = spd(n, 2);
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |b, _| {
            b.iter(|| black_box(black_box(&k).cholesky().unwrap().rows()))
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| black_box(black_box(&k).cholesky_naive().unwrap().rows()))
        });
    }
    group.finish();
}

/// Appending one sample: O(n²) incremental `extend` vs the O(n³) full refit
/// it replaces in the steady-state tuner loop.
fn bench_gp_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("gp_incremental");
    group.sample_size(10);
    for &n in &[50usize, 100, 200, 400] {
        let (xs, ys) = gp_data(n + 1, 15, 3);
        let base = GaussianProcess::fit(&xs[..n], &ys[..n], GpParams::default()).unwrap();
        group.bench_with_input(BenchmarkId::new("extend", n), &n, |b, _| {
            b.iter(|| {
                let mut gp = base.clone();
                assert!(gp.extend(black_box(&xs[n]), black_box(ys[n])));
                black_box(gp.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("full_fit", n), &n, |b, _| {
            b.iter(|| {
                let gp = GaussianProcess::fit(black_box(&xs), black_box(&ys), GpParams::default());
                black_box(gp.map(|g| g.len()))
            })
        });
    }
    group.finish();
}

/// One full TDE run over a busy database — the plugin's periodic overhead.
fn bench_tde_run(c: &mut Criterion) {
    let wl = tpcc(1.0);
    let mut db = SimDatabase::new(
        DbFlavor::Postgres,
        InstanceType::M4XLarge,
        DiskKind::Ssd,
        wl.catalog().clone(),
        3,
    );
    let mut rng = StdRng::seed_from_u64(4);
    let mut tde = Tde::new(&db.profile().clone(), TdeConfig::default(), 5);
    c.bench_function("tde_run_busy_window", |b| {
        b.iter(|| {
            // Refill the log so every run ingests a realistic window.
            for _ in 0..64 {
                let q = wl.next_query(&mut rng);
                let _ = db.submit(&q, 10);
            }
            db.tick(1_000);
            black_box(tde.run(&mut db, None).throttles.len())
        })
    });
}

/// Entropy + histogram + reservoir + templating — the §3.1 primitives.
fn bench_tde_primitives(c: &mut Criterion) {
    let wl = tpcc(1.0);
    let mut rng = StdRng::seed_from_u64(6);
    let queries: Vec<_> = (0..1_000).map(|_| wl.next_query(&mut rng)).collect();

    c.bench_function("class_histogram_1k_queries", |b| {
        b.iter(|| {
            let mut h = ClassHistogram::new();
            for q in &queries {
                h.record(black_box(q));
            }
            black_box(normalized_entropy(h.counts()))
        })
    });

    c.bench_function("reservoir_offer_1k", |b| {
        b.iter(|| {
            let mut r = Reservoir::new(64);
            for q in &queries {
                r.offer(black_box(q.clone()), &mut rng);
            }
            black_box(r.items().len())
        })
    });

    c.bench_function("sql_template_normalize", |b| {
        let sql = queries[0].render_sql();
        b.iter(|| black_box(normalize_sql(black_box(&sql))))
    });
}

/// Simulated-database submit throughput (the fleet simulator's hot loop).
fn bench_executor(c: &mut Criterion) {
    let wl = tpcc(1.0);
    let mut db = SimDatabase::new(
        DbFlavor::Postgres,
        InstanceType::M4XLarge,
        DiskKind::Ssd,
        wl.catalog().clone(),
        7,
    );
    let mut rng = StdRng::seed_from_u64(8);
    c.bench_function("simdb_submit_batch_100", |b| {
        b.iter(|| {
            let q = wl.next_query(&mut rng);
            let r = db.submit(black_box(&q), 100);
            db.tick(1_000);
            black_box(r)
        })
    });
}

/// Workload mapping over a populated repository.
fn bench_mapping(c: &mut Criterion) {
    let mut repo = WorkloadRepository::new();
    let mut rng = StdRng::seed_from_u64(9);
    for w in 0..20 {
        let id = repo.register(format!("w{w}"), true);
        for _ in 0..30 {
            let metrics: Vec<f64> = (0..31).map(|_| rng.gen::<f64>() * 1_000.0).collect();
            repo.add_sample(
                id,
                Sample {
                    config: vec![0.5; 15],
                    metrics,
                    objective: rng.gen::<f64>() * 500.0,
                    quality: SampleQuality::High,
                },
            );
        }
    }
    let target: Vec<f64> = (0..31).map(|_| rng.gen::<f64>() * 1_000.0).collect();
    c.bench_function("workload_mapping_20x30", |b| {
        b.iter(|| black_box(map_workload(&repo, black_box(&target), None)))
    });
}

criterion_group!(
    benches,
    bench_gpr_train,
    bench_cholesky,
    bench_gp_incremental,
    bench_tde_run,
    bench_tde_primitives,
    bench_executor,
    bench_mapping
);
criterion_main!(benches);
