//! Shared rig for the safe-online-tuning experiments: the fig18 harness
//! and the perf-baseline `safetune` stage drive the same two arms, so the
//! nightly gate and the headline figure can never drift apart.
//!
//! One arm is **guarded** — the [`SafetyGovernor`] clamps every BO
//! candidate into a learned safe region around the booted config; the
//! other is **observe-only** — identical window accounting (same baseline
//! EWMA, same SLO floor, same regret ledger) over a region spanning the
//! whole unit cube, so nothing is ever clamped. Identical fleets, seeds
//! and acquisition settings; only the region geometry differs.
//!
//! [`SafetyGovernor`]: autodbaas_cloudsim::SafetyGovernor

use crate::NodeSpec;
use autodbaas_cloudsim::{FleetConfig, FleetSim, SafetyConfig};
use autodbaas_core::{TdeConfig, TuningPolicy};
use autodbaas_ctrlplane::TunerKind;
use autodbaas_simdb::{DbFlavor, InstanceType};
use autodbaas_telemetry::MILLIS_PER_MIN;
use autodbaas_tuner::{BoConfig, WorkloadId};
use autodbaas_workload::{production, AdulteratedWorkload};

/// The guarded arm's config: library defaults, with the SLO floor pulled
/// up to 82% of baseline — a window serving less than 82% of what the
/// rolling baseline says this service can serve is a violation. The
/// floor is calibrated from the ledger's worst-shortfall diagnostic over
/// the full 33-day trace: the guarded arm's deepest clamped excursion
/// bottoms out near 16% below baseline while the unguarded arm's reach
/// past 40%, so 18% of headroom separates "exploring inside the region"
/// from "the region failed". Both arms judge windows identically; only
/// the region geometry differs.
pub fn guarded_config() -> SafetyConfig {
    SafetyConfig {
        slo_floor_frac: 0.82,
        ..SafetyConfig::default()
    }
}

/// Observe-only safety config: the whole unit cube is "safe", so no
/// candidate is ever clamped — but every window is still scored with the
/// same baseline EWMA and SLO floor as the guarded arm, which is what
/// makes the two regret ledgers comparable.
pub fn observe_only() -> SafetyConfig {
    SafetyConfig {
        initial_radius: 1.0,
        expand_step: 0.0,
        shrink_factor: 1.0,
        min_radius: 1.0,
        max_radius: 1.0,
        ..guarded_config()
    }
}

/// One arm of the experiment: `dbs` production services (page-heap and
/// LSM alternating) under a cold-started BO tuner — no offline training,
/// so early candidates are genuine exploration. That cold start is the
/// situation a safety layer exists for.
pub fn production_arm(guarded: bool, dbs: usize, seed: u64) -> FleetSim {
    let mut sim = FleetSim::new(
        FleetConfig {
            tick_ms: 1_000,
            tde_period_ms: 5 * MILLIS_PER_MIN,
            gate_samples_with_tde: true,
            tuner: TunerKind::Bo,
            // An aggressively exploratory acquisition (high UCB kappa,
            // no anchoring to the best-known config) — the adversary the
            // OnlineTune framing worries about: an optimizer happy to
            // probe far-out configs against live traffic. Identical in
            // both arms; only the safe region differs.
            bo: BoConfig {
                kappa: 4.0,
                anchored_candidates: false,
                ..BoConfig::default()
            },
            seed,
            ..FleetConfig::default()
        },
        4,
    );
    for i in 0..dbs {
        // The production trace with its documented analytic tail
        // emphasized (workload::production keeps the §3.1 reporting
        // queries at trace proportions; the adulteration mixes more of
        // them in) — a config surface the tuner can actually win or lose
        // on, per the fig12 sizing rationale.
        let wl = AdulteratedWorkload::new(production(), 0.05);
        let catalog = wl.base().catalog().clone();
        let arrival = wl.base().default_arrival().clone();
        let flavor = if i % 2 == 0 {
            DbFlavor::Postgres
        } else {
            DbFlavor::Lsm
        };
        let node = NodeSpec::new(flavor, InstanceType::M4XLarge).managed(
            catalog,
            Box::new(wl),
            arrival,
            TuningPolicy::Periodic(10 * MILLIS_PER_MIN),
            WorkloadId(0),
            TdeConfig::default(),
            seed ^ (i as u64).wrapping_mul(0x9e37),
        );
        sim.add_node(node, &format!("prod-{i}"));
    }
    sim.enable_safety(if guarded {
        guarded_config()
    } else {
        observe_only()
    });
    sim
}
