//! Benchmark harness for the AutoDBaaS reproduction.
//!
//! Two kinds of targets live here:
//!
//! * **Figure binaries** (`src/bin/fig*.rs`) — one per table/figure in the
//!   paper's evaluation (§3–§5). Each regenerates the rows/series the
//!   paper plots, scaled to laptop wall-time, and prints them with the
//!   paper's expectation alongside. `EXPERIMENTS.md` records paper-vs-
//!   measured for all of them.
//! * **Criterion micro-benches** (`benches/`) — cost curves for the moving
//!   parts (GPR training vs. sample count, TDE run overhead, entropy,
//!   reservoir sampling, the simulated executor, MDP steps).
//!
//! This library crate holds the shared helpers the binaries use.

pub mod figures;
pub mod fleet_setup;
pub mod safetune;

pub use figures::*;
pub use fleet_setup::{
    backend_arg, backend_from_arg, checkpoint_roundtrip, fleet_or_resume, load_fleet_pair,
    resume_arg, save_fleet_pair, NodeSpec,
};
