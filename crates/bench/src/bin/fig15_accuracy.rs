//! Fig. 15 — "Accuracy of performance throttles on Postgresql".
//!
//! The paper validates TDE throttles against a trained OtterTune: a
//! throttle is *accurate* if the majority of the tuner's top-5 ranked
//! knobs belong to the throttled class (human verification being slow and
//! biased). Trained on the same workloads it is tested with (TPCC, YCSB,
//! Wikipedia, Twitter), with exploration minimised. Expectation: high
//! accuracy for memory and background-writer throttles, lower for
//! async/planner — "ottertune fails to understand such throttles mainly
//! because of absence of planner estimates in the metric set".

use autodbaas_bench::{header, seed_offline, Rig};
use autodbaas_core::{Tde, TdeConfig};
use autodbaas_simdb::{DbFlavor, InstanceType, KnobClass, KnobProfile};
use autodbaas_telemetry::outln;
use autodbaas_tuner::{rank_knobs, WorkloadRepository};
use autodbaas_workload::by_name;

/// Class counts among the top-5 ranked knobs of a trained workload. A
/// throttle of class X validates when at least 2 of the tuner's top-5
/// knobs belong to X ("recommends a majority of knob (say out of top 5
/// ranked knobs) whose class is same as the class of throttle").
fn top5_class_votes(
    repo: &WorkloadRepository,
    wid: autodbaas_tuner::WorkloadId,
    profile: &KnobProfile,
) -> [usize; 3] {
    let ranked = rank_knobs(&repo.workload(wid).samples);
    let mut votes = [0usize; 3];
    for r in ranked.iter().take(5) {
        let class = profile.spec(autodbaas_simdb::KnobId(r.knob as u16)).class;
        votes[class.index()] += 1;
    }
    votes
}

fn main() {
    header(
        "Fig. 15",
        "accuracy of performance throttles, validated against trained OtterTune",
        "memory and background-writer throttles validate at high accuracy; \
         async/planner lower (no planner estimates in OtterTune's metrics)",
    );
    let profile = KnobProfile::postgres();
    let mut repo = WorkloadRepository::new();

    // Train on the evaluation workloads themselves ("as for the same
    // trained data accuracy would be very high"), 40 samples each.
    let names = ["tpcc", "ycsb", "wikipedia", "twitter"];
    let mut trained = Vec::new();
    for (i, name) in names.iter().enumerate() {
        let wl = by_name(name).unwrap();
        let wid = seed_offline(&mut repo, &wl, DbFlavor::Postgres, 40, 100 + i as u64);
        trained.push((*name, wid));
    }

    // Per-class accuracy accumulators: [matched, total].
    let mut acc = [[0u64; 2]; 3];
    for (name, wid) in &trained {
        let wl = by_name(name).unwrap();
        let rate = match *name {
            "tpcc" => 1_600,
            "ycsb" => 2_500,
            "twitter" => 4_000,
            _ => 800,
        };
        // The tuner's view of what matters for this workload.
        let votes = top5_class_votes(&repo, *wid, &profile);

        let mut rig = Rig::new(
            DbFlavor::Postgres,
            InstanceType::M4XLarge,
            wl.catalog().clone(),
            77,
        );
        let roles = rig.db.planner().roles().clone();
        rig.db
            .set_knob_direct(roles.buffer_pool, InstanceType::M4XLarge.mem_bytes() * 0.25);
        let mut tde = Tde::new(&profile, TdeConfig::default(), 55);
        // Warm, then observe.
        for _ in 0..8 {
            rig.drive(&wl, rate, 60, 24);
            let _ = tde.run(&mut rig.db, Some(&repo));
        }
        for _ in 0..15 {
            rig.drive(&wl, rate, 60, 24);
            let report = tde.run(&mut rig.db, Some(&repo));
            for t in &report.throttles {
                let k = t.class.index();
                acc[k][1] += 1;
                // Accurate when ≥2 of the tuner's top-5 knobs share the
                // throttle's class.
                if votes[k] >= 2 {
                    acc[k][0] += 1;
                }
            }
        }
        outln!(
            "{name:<12} top-5 knob classes: memory={} bgwriter={} async={}",
            votes[0],
            votes[1],
            votes[2]
        );
    }

    outln!(
        "\n{:<22} {:>10} {:>10} {:>10}",
        "throttle class",
        "matched",
        "total",
        "accuracy"
    );
    let mut accuracy = [0.0f64; 3];
    for class in KnobClass::ALL {
        let k = class.index();
        accuracy[k] = if acc[k][1] == 0 {
            0.0
        } else {
            acc[k][0] as f64 / acc[k][1] as f64
        };
        outln!(
            "{:<22} {:>10} {:>10} {:>9.0}%",
            class.to_string(),
            acc[k][0],
            acc[k][1],
            accuracy[k] * 100.0
        );
    }
    outln!(
        "\nnote: as in the paper, async/planner accuracy under-reports because \
         the tuner's metric set carries no planner estimates; the throttle \
         points themselves showed cost/benefit improvement."
    );
    assert!(
        accuracy[KnobClass::Memory.index()] >= accuracy[KnobClass::AsyncPlanner.index()],
        "memory accuracy must dominate async/planner accuracy"
    );
    outln!("\nresult: accuracy ordering (memory/bgwriter high, async low) — shape reproduced.");
}
