//! Fig. 8 — "Production workload query arrival rate".
//!
//! The paper plots the captured customer service's arrival curve: a
//! diurnal shape with the surge in the 8–11 AM window ("when most of the
//! microservice usages surge"), low nights, weekend dips, averaging 42.13M
//! queries/day. The synthetic trace reproduces those statistics.

use autodbaas_bench::{header, sparkline};
use autodbaas_telemetry::outln;
use autodbaas_telemetry::{MILLIS_PER_DAY, MILLIS_PER_HOUR};
use autodbaas_workload::production;

fn main() {
    header(
        "Fig. 8",
        "production workload query arrival rate (synthetic 33-day trace)",
        "diurnal curve peaking between 8 and 11 AM, weekend dip, \
         ~42.13M queries/day average",
    );
    let wl = production();
    let arrival = wl.default_arrival();

    // One week, hourly resolution.
    let mut week = Vec::new();
    for h in 0..(7 * 24) {
        week.push(arrival.rate_at(h * MILLIS_PER_HOUR + MILLIS_PER_HOUR / 2));
    }
    outln!("\nrequests/second, one week at hourly resolution:");
    sparkline("week (Mon..Sun)", &week);

    // One weekday, and the peak location.
    let day: Vec<f64> = (0..24)
        .map(|h| arrival.rate_at(h * MILLIS_PER_HOUR + MILLIS_PER_HOUR / 2))
        .collect();
    sparkline("weekday by hour", &day);
    let peak_hour = day
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(h, _)| h)
        .unwrap_or(0);
    outln!("\npeak hour: {peak_hour}:00 (paper: inside the 8–11 AM surge)");

    // Daily volume across the 33-day trace.
    let mut volumes = Vec::new();
    for d in 0..autodbaas_workload::production::TRACE_DAYS {
        let mut total = 0.0;
        let step = MILLIS_PER_HOUR / 4;
        let mut t = d * MILLIS_PER_DAY;
        while t < (d + 1) * MILLIS_PER_DAY {
            total += arrival.rate_at(t) * (step as f64 / 1000.0);
            t += step;
        }
        volumes.push(total / 1e6);
    }
    sparkline("daily volume (M queries)", &volumes);
    let avg = volumes.iter().sum::<f64>() / volumes.len() as f64;
    outln!("\naverage daily volume: {avg:.2}M queries/day (paper: 42.13M)");

    assert!(
        (8..=11).contains(&peak_hour),
        "peak must sit in the surge window"
    );
    assert!(
        (25.0..70.0).contains(&avg),
        "daily volume in the plausible band"
    );
    outln!("\nresult: diurnal shape with 8–11 AM surge reproduced.");
}
