//! Persistent performance baseline: runs a fixed, seeded workload through
//! the hot paths this repo optimises and writes `BENCH_perf.json` so
//! regressions show up as a diff, not an anecdote.
//!
//! Stages:
//!
//! 1. **GP fit sweep** — full O(n³) fit vs the O(n²) incremental extend at
//!    n ∈ {50, 100, 200, 400}.
//! 2. **Repeated recommend at n≈200** — the steady-state tuner loop
//!    (recommend → one new observation → recommend …) in three variants:
//!    `legacy` (full refit + per-candidate scalar sweep, the pre-
//!    optimisation code path, reconstructed here), `full` (refit each round
//!    but batched sweep: `BoConfig { incremental: false }`), and
//!    `incremental` (the default). The headline number is
//!    `legacy_ms / incremental_ms`, asserted ≥ 5×.
//! 3. **Fleet drive** — a 48-database fleet, serial vs the sharded tick
//!    engine, in interleaved one-minute chunks (fastest chunk per engine);
//!    node-ticks/second plus a determinism witness (event-log fingerprint
//!    and total queries must be bit-identical across both engines).
//! 4. **Backend drive** — a 16-database fleet per backend adapter
//!    (page-heap and LSM) on the serial engine, recording the relative
//!    per-tick cost of each engine profile plus a per-backend determinism
//!    witness (event-log fingerprint equal across a same-seed replay).
//! 5. **Fleet scaling** — the same head-to-head over a long-tail tenant
//!    fleet at {48, 512, 2048, 10_000} services. Fails if the sharded
//!    engine loses to serial at ≥512 nodes or the 10k fleet drops below
//!    1M node-ticks/s.
//! 6. **Safe tuning** — one simulated day of the fig18 rig: a guarded
//!    and an observe-only arm cold-start a BO tuner against the
//!    production trace. Gates: the guarded arm finishes with zero
//!    SLO-floor breaches and strictly lower cumulative regret, the
//!    observe-only arm never clamps, and the guarded region clamps at
//!    least once (i.e. it did real work).
//!
//! All seeds are fixed; every non-timing field in the JSON is
//! deterministic. Timing fields are medians or fastest-reps over several
//! repetitions.
//!
//! The file starts with `"schema_version": 4`; v3 added the per-backend
//! `backends` section, v4 the `safetune` regret/SLO section. Consumers
//! must check the version field and refuse older/newer files rather than
//! guess (the detlint `--json` v2 bump set the precedent).
//!
//! Flags: `--rounds 24 --out BENCH_perf.json`.

use autodbaas_bench::{arg_value, longtail_fleet, race_engines, safetune, NodeSpec};
use autodbaas_cloudsim::{FleetConfig, FleetSim};
use autodbaas_core::{TdeConfig, TuningPolicy};
use autodbaas_simdb::{DbFlavor, InstanceType};
use autodbaas_telemetry::outln;
use autodbaas_telemetry::{MILLIS_PER_HOUR, MILLIS_PER_MIN};
use autodbaas_tuner::{
    top_k_xy, BoConfig, BoStats, BoTuner, GaussianProcess, GpParams, Sample, SampleQuality,
    WorkloadId, WorkloadRepository,
};
use autodbaas_workload::{tpcc, ArrivalProcess};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

const DIM: usize = 15;
const CANDIDATES: usize = 400;
const KAPPA: f64 = 0.8;

/// Median wall-clock of `reps` runs, in milliseconds.
fn median_ms<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Smooth synthetic objective over the unit cube.
fn objective(c: &[f64]) -> f64 {
    let d2: f64 = c
        .iter()
        .enumerate()
        .map(|(i, &x)| {
            let opt = 0.3 + 0.4 * (i as f64 / DIM as f64);
            (x - opt) * (x - opt)
        })
        .sum();
    1000.0 * (-d2 * 2.0).exp()
}

fn gp_data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..DIM).map(|_| rng.gen()).collect())
        .collect();
    let ys: Vec<f64> = xs.iter().map(|x| objective(x)).collect();
    (xs, ys)
}

/// Stage 1: full-fit vs extend-one at each training size.
fn gp_fit_sweep(out: &mut String) {
    out.push_str("  \"gp_fit\": [\n");
    for (i, &n) in [50usize, 100, 200, 400].iter().enumerate() {
        let (xs, ys) = gp_data(n + 1, 0xf17 + n as u64);
        let full_ms = median_ms(7, || {
            GaussianProcess::fit(&xs[..n], &ys[..n], GpParams::default()).map(|g| g.len())
        });
        let base = GaussianProcess::fit(&xs[..n], &ys[..n], GpParams::default()).expect("SPD");
        let extend_ms = median_ms(7, || {
            let mut g = base.clone();
            assert!(g.extend(&xs[n], ys[n]));
            g.len()
        });
        let line = format!(
            "    {{\"n\": {n}, \"full_fit_ms\": {full_ms:.3}, \"extend_one_ms\": {extend_ms:.3}, \"speedup\": {:.1}}}{}\n",
            full_ms / extend_ms.max(1e-6),
            if i == 3 { "" } else { "," },
        );
        out.push_str(&line);
        outln!("gp_fit n={n:3}  full={full_ms:8.3} ms  extend={extend_ms:8.3} ms");
    }
    out.push_str("  ],\n");
}

/// Faithful reconstruction of the pre-optimisation GP path, preserved here
/// so the baseline keeps measuring what this PR replaced: `Vec<Vec<f64>>`
/// training-row storage (pointer-chasing per kernel row), per-pair
/// libm-`exp` RBF with a redundant sqrt, unblocked Cholesky, and
/// allocating triangular solves on every per-candidate prediction.
mod legacy {
    use autodbaas_tuner::linalg::{euclidean, Matrix};
    use autodbaas_tuner::GpParams;

    pub struct LegacyGp {
        params: GpParams,
        x: Vec<Vec<f64>>,
        alpha: Vec<f64>,
        chol: Matrix,
        y_mean: f64,
        y_scale: f64,
    }

    fn rbf(a: &[f64], b: &[f64], p: GpParams) -> f64 {
        let d = euclidean(a, b);
        p.signal_variance * (-(d * d) / (2.0 * p.length_scale * p.length_scale)).exp()
    }

    impl LegacyGp {
        pub fn fit(x: &[Vec<f64>], y: &[f64], params: GpParams) -> Option<Self> {
            if x.is_empty() || x.len() != y.len() {
                return None;
            }
            let n = x.len();
            let y_mean = y.iter().sum::<f64>() / n as f64;
            let var = y.iter().map(|v| (v - y_mean) * (v - y_mean)).sum::<f64>() / n as f64;
            let y_scale = var.sqrt().max(1e-9);
            let yn: Vec<f64> = y.iter().map(|v| (v - y_mean) / y_scale).collect();

            let mut jitter = params.noise.max(1e-9);
            for _ in 0..6 {
                let mut k = Matrix::zeros(n, n);
                for i in 0..n {
                    for j in 0..=i {
                        let v = rbf(&x[i], &x[j], params);
                        k[(i, j)] = v;
                        k[(j, i)] = v;
                    }
                    k[(i, i)] += jitter;
                }
                if let Some(chol) = k.cholesky_naive() {
                    let z = chol.solve_lower(&yn);
                    let alpha = chol.solve_lower_transpose(&z);
                    return Some(Self {
                        params,
                        x: x.to_vec(),
                        alpha,
                        chol,
                        y_mean,
                        y_scale,
                    });
                }
                jitter *= 10.0;
            }
            None
        }

        pub fn predict(&self, q: &[f64]) -> (f64, f64) {
            let n = self.x.len();
            let mut kstar = vec![0.0; n];
            for (i, xi) in self.x.iter().enumerate() {
                kstar[i] = rbf(q, xi, self.params);
            }
            let mean_n: f64 = kstar.iter().zip(&self.alpha).map(|(k, a)| k * a).sum();
            let v = self.chol.solve_lower(&kstar);
            let kqq = self.params.signal_variance + self.params.noise;
            let var_n = (kqq - v.iter().map(|t| t * t).sum::<f64>()).max(1e-12);
            (
                mean_n * self.y_scale + self.y_mean,
                var_n * self.y_scale * self.y_scale,
            )
        }

        pub fn ucb(&self, q: &[f64], kappa: f64) -> f64 {
            let (m, v) = self.predict(q);
            m + kappa * v.sqrt()
        }
    }
}

/// The seed implementation of one recommendation: full GP refit plus a
/// per-candidate scalar UCB sweep (allocating kernel rows per candidate).
fn legacy_recommend(xs: &[Vec<f64>], ys: &[f64], rng: &mut StdRng) -> Vec<f64> {
    let gp = legacy::LegacyGp::fit(xs, ys, GpParams::default()).expect("fit");
    let dims = top_k_xy(xs, ys, 6);
    let best_idx = ys
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN"))
        .map(|(i, _)| i)
        .unwrap_or(0);
    let best_known = &xs[best_idx];
    let mut best_cfg = best_known.clone();
    let mut best_ucb = gp.ucb(best_known, KAPPA);
    for c in 0..CANDIDATES {
        let mut cand = best_known.clone();
        for &d in &dims {
            cand[d] = if c % 2 == 0 {
                rng.gen::<f64>()
            } else {
                (best_known[d] + rng.gen_range(-0.15..0.15)).clamp(0.0, 1.0)
            };
        }
        let u = gp.ucb(&cand, KAPPA);
        if u > best_ucb {
            best_ucb = u;
            best_cfg = cand;
        }
    }
    best_cfg
}

fn seeded_repo(n: usize) -> (WorkloadRepository, WorkloadId) {
    let mut repo = WorkloadRepository::new();
    let id = repo.register("perf-target", false);
    let (xs, ys) = gp_data(n, 0x5eed);
    for (x, &y) in xs.iter().zip(&ys) {
        repo.add_sample(
            id,
            Sample {
                config: x.clone(),
                metrics: Vec::new(),
                objective: y,
                quality: SampleQuality::High,
            },
        );
    }
    (repo, id)
}

/// Stage 2: the steady-state tuner loop, three ways.
fn repeated_recommend(rounds: usize, out: &mut String) {
    let n0 = 200;
    // Fresh observations arriving between recommendations (identical
    // stream for every variant).
    let (new_xs, new_ys) = gp_data(rounds, 0xadd);

    let run_tuner = |cfg: BoConfig| {
        let (mut repo, id) = seeded_repo(n0);
        let mut tuner = BoTuner::new(cfg, 17);
        let t = Instant::now();
        for r in 0..rounds {
            black_box(tuner.recommend(&repo, id).expect("recommendation"));
            repo.add_sample(
                id,
                Sample {
                    config: new_xs[r].clone(),
                    metrics: Vec::new(),
                    objective: new_ys[r],
                    quality: SampleQuality::High,
                },
            );
        }
        (t.elapsed().as_secs_f64() * 1e3, tuner.stats())
    };

    let run_legacy = || {
        let (xs0, ys0) = gp_data(n0, 0x5eed);
        let mut xs = xs0;
        let mut ys = ys0;
        let mut rng = StdRng::seed_from_u64(17);
        let t = Instant::now();
        for r in 0..rounds {
            black_box(legacy_recommend(&xs, &ys, &mut rng));
            xs.push(new_xs[r].clone());
            ys.push(new_ys[r]);
        }
        t.elapsed().as_secs_f64() * 1e3
    };

    let cfg = BoConfig {
        candidates: CANDIDATES,
        kappa: KAPPA,
        ..BoConfig::default()
    };
    let full_cfg = BoConfig {
        incremental: false,
        ..cfg.clone()
    };
    // Warm up (page in code/data), then measure. Reps are *interleaved*
    // across the three variants so slow phases of a shared host hit each
    // variant equally, and each variant reports its *fastest* rep — the
    // least-interference estimate of its true cost.
    run_tuner(cfg.clone());
    run_legacy();
    const REPS: usize = 5;
    let mut legacy_reps = Vec::with_capacity(REPS);
    let mut full_reps = Vec::with_capacity(REPS);
    let mut inc_reps = Vec::with_capacity(REPS);
    let mut inc_stats = BoStats::default();
    let mut full_stats = BoStats::default();
    for _ in 0..REPS {
        legacy_reps.push(run_legacy());
        let (ms, stats) = run_tuner(full_cfg.clone());
        full_reps.push(ms);
        full_stats = stats;
        let (ms, stats) = run_tuner(cfg.clone());
        inc_reps.push(ms);
        inc_stats = stats;
    }
    let fastest = |v: Vec<f64>| v.into_iter().fold(f64::INFINITY, f64::min);
    let legacy_ms = fastest(legacy_reps);
    let full_ms = fastest(full_reps);
    let incremental_ms = fastest(inc_reps);

    let speedup_vs_legacy = legacy_ms / incremental_ms.max(1e-6);
    let speedup_vs_full = full_ms / incremental_ms.max(1e-6);
    outln!(
        "recommend x{rounds} @ n={n0}: legacy={legacy_ms:.1} ms  full={full_ms:.1} ms  \
         incremental={incremental_ms:.1} ms  speedup(legacy)={speedup_vs_legacy:.1}x  \
         speedup(full)={speedup_vs_full:.1}x"
    );
    outln!(
        "  maintenance: incremental {{fits: {}, extends: {}}}, full {{fits: {}, extends: {}}}",
        inc_stats.full_fits,
        inc_stats.incremental_extends,
        full_stats.full_fits,
        full_stats.incremental_extends
    );
    out.push_str(&format!(
        "  \"repeated_recommend\": {{\n    \"n_start\": {n0},\n    \"rounds\": {rounds},\n    \
         \"legacy_ms\": {legacy_ms:.2},\n    \"full_refit_ms\": {full_ms:.2},\n    \
         \"incremental_ms\": {incremental_ms:.2},\n    \
         \"speedup_vs_legacy\": {speedup_vs_legacy:.2},\n    \
         \"speedup_vs_full\": {speedup_vs_full:.2},\n    \"target_speedup\": 5.0,\n    \
         \"meets_target\": {},\n    \"incremental_full_fits\": {},\n    \
         \"incremental_extends\": {}\n  }},\n",
        speedup_vs_legacy >= 5.0,
        inc_stats.full_fits,
        inc_stats.incremental_extends,
    ));
}

fn build_fleet(parallel: bool) -> FleetSim {
    let mut sim = FleetSim::new(
        FleetConfig {
            gate_samples_with_tde: false,
            seed: 0xf1ee7,
            ..FleetConfig::default()
        },
        2,
    );
    sim.set_parallel(parallel);
    for i in 0..48 {
        let wl = tpcc(0.5);
        let catalog = wl.catalog().clone();
        let node = NodeSpec::new(DbFlavor::Postgres, InstanceType::M4Large).managed(
            catalog,
            Box::new(wl),
            ArrivalProcess::Constant(250.0),
            TuningPolicy::TdeDriven,
            WorkloadId(0),
            TdeConfig::default(),
            1000 + i,
        );
        sim.add_node(node, &format!("db-{i}"));
    }
    sim
}

/// Stage 3: fleet ticks/second on the 48-database rig the seed regression
/// was measured on (230 ms parallel vs 204 ms serial), serial vs the
/// sharded engine, plus the determinism witness.
fn fleet_drive(out: &mut String) {
    let mut serial = build_fleet(false);
    let mut sharded = build_fleet(true);
    serial.run_for(MILLIS_PER_MIN); // warm both engines and the host caches
    sharded.run_for(MILLIS_PER_MIN);
    let (serial_ms, sharded_ms) = race_engines(&mut serial, &mut sharded, MILLIS_PER_MIN, 7);
    let queries: u64 = serial.nodes.iter().map(|n| n.queries_submitted).sum();
    let node_ticks = 48.0 * 60.0;
    let shards = sharded.shard_count();
    outln!(
        "fleet 48 dbs, 1-min chunks: serial={serial_ms:.1} ms ({:.0} node-ticks/s)  \
         sharded={sharded_ms:.1} ms ({:.0} node-ticks/s, {shards} shard(s))  queries={queries}",
        node_ticks * 1e3 / serial_ms,
        node_ticks * 1e3 / sharded_ms,
    );
    out.push_str(&format!(
        "  \"fleet\": {{\n    \"nodes\": 48,\n    \"chunk_sim_minutes\": 1,\n    \
         \"total_queries\": {queries},\n    \
         \"serial\": {{\"wall_ms\": {serial_ms:.1}, \"node_ticks_per_sec\": {:.1}}},\n    \
         \"sharded\": {{\"wall_ms\": {sharded_ms:.1}, \"node_ticks_per_sec\": {:.1}, \
         \"shards\": {shards}}}\n  }},\n",
        node_ticks * 1e3 / serial_ms,
        node_ticks * 1e3 / sharded_ms,
    ));
}

/// A 16-node single-backend fleet for the per-backend dimension; smaller
/// than the stage-3 rig so the section stays cheap, serial engine so the
/// numbers isolate engine-profile cost from sharding.
fn backend_fleet(flavor: DbFlavor, seed: u64) -> FleetSim {
    let mut sim = FleetSim::new(
        FleetConfig {
            gate_samples_with_tde: false,
            seed,
            ..FleetConfig::default()
        },
        2,
    );
    for i in 0..16 {
        let wl = tpcc(0.5);
        let catalog = wl.catalog().clone();
        let node = NodeSpec::new(flavor, InstanceType::M4Large).managed(
            catalog,
            Box::new(wl),
            ArrivalProcess::Constant(250.0),
            TuningPolicy::TdeDriven,
            WorkloadId(0),
            TdeConfig::default(),
            3_000 + i,
        );
        sim.add_node(node, &format!("db-{i}"));
    }
    sim
}

/// Stage 4: the backend dimension (schema v3). The same drive loop per
/// engine profile — the page-heap adapter and the LSM adapter — so an
/// engine-profile regression (say, compaction scheduling going quadratic)
/// shows up as its own diff line instead of being averaged into the
/// all-Postgres fleet numbers. Each backend also carries a determinism
/// witness: a same-seed replay must reproduce the event-log fingerprint.
fn backend_drive(out: &mut String) {
    out.push_str("  \"backends\": [\n");
    let backends = [(DbFlavor::Postgres, "pageheap"), (DbFlavor::Lsm, "lsm")];
    for (bi, &(flavor, name)) in backends.iter().enumerate() {
        let mut sim = backend_fleet(flavor, 0xbac4e7d);
        sim.run_for(MILLIS_PER_MIN); // warm-up
        let t = Instant::now();
        sim.run_for(2 * MILLIS_PER_MIN);
        let wall_ms = t.elapsed().as_secs_f64() * 1e3;
        let queries: u64 = sim.nodes.iter().map(|n| n.queries_submitted).sum();
        assert!(queries > 0, "{name} backend fleet executed no queries");

        let mut replay = backend_fleet(flavor, 0xbac4e7d);
        replay.run_for(3 * MILLIS_PER_MIN);
        assert_eq!(
            sim.events.fingerprint(),
            replay.events.fingerprint(),
            "{name} backend drive must replay bit-identically"
        );

        let node_ticks = 16.0 * 120.0;
        let tps = node_ticks * 1e3 / wall_ms;
        outln!(
            "backend {name:<8}: 16 dbs, 2-min drive = {wall_ms:>7.1} ms \
             ({tps:>8.0} node-ticks/s)  queries={queries}"
        );
        out.push_str(&format!(
            "    {{\"backend\": \"{name}\", \"nodes\": 16, \"drive_sim_minutes\": 2, \
             \"wall_ms\": {wall_ms:.1}, \"node_ticks_per_sec\": {tps:.0}, \
             \"total_queries\": {queries}, \"replay_deterministic\": true}}{}\n",
            if bi == backends.len() - 1 { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
}

/// Stage 5: the fleet-size sweep (ROADMAP item 1). A long-tail tenant
/// fleet at {48, 512, 2048, 10_000} services, serial vs sharded, one-minute
/// interleaved chunks. Hard gates: the sharded engine must not lose to
/// serial at ≥512 nodes, and the 10k fleet must sustain ≥1M node-ticks/s
/// on the sharded engine. A losing/slow size gets up to two appeal rounds
/// of extra chunks before the gate fires, so a single noise burst on a
/// shared host doesn't fail the bin.
///
/// Both parallel gates apply only when the host can actually parallelize
/// (≥2 cores): on a single-core host the pool resolves to one worker shard
/// and the head-to-head degenerates to serial-plus-thread-handoff, so the
/// strict gates are replaced by a 2× overhead ceiling (a genuinely
/// pathological sharded engine still fails) and the JSON records
/// `host_parallelism` so readers know why the timings look the way they do.
fn fleet_scaling(out: &mut String) {
    const FLOOR_10K: f64 = 1_000_000.0; // node-ticks/s, ROADMAP item 1
    let host_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let parallel_host = host_threads >= 2;
    if !parallel_host {
        outln!(
            "fleet_scaling: single-core host ({host_threads} thread) — \
             parallel win/floor gates relaxed to a 2x overhead ceiling"
        );
    }
    out.push_str(&format!("  \"host_parallelism\": {host_threads},\n"));
    out.push_str("  \"fleet_scaling\": [\n");
    let sizes = [48usize, 512, 2048, 10_000];
    for (si, &n) in sizes.iter().enumerate() {
        let reps = if n >= 2048 { 3 } else { 5 };
        let mut serial = longtail_fleet(n, false, 0, 0xf1ee7);
        let mut sharded = longtail_fleet(n, true, 0, 0xf1ee7);
        serial.run_for(MILLIS_PER_MIN);
        sharded.run_for(MILLIS_PER_MIN);
        let (mut serial_ms, mut sharded_ms) =
            race_engines(&mut serial, &mut sharded, MILLIS_PER_MIN, reps);
        let node_ticks = (n * 60) as f64;
        let mut appeals = 0;
        while appeals < 2
            && parallel_host
            && ((n >= 512 && sharded_ms > serial_ms)
                || (n >= 10_000 && node_ticks * 1e3 / sharded_ms < FLOOR_10K))
        {
            let (s, p) = race_engines(&mut serial, &mut sharded, MILLIS_PER_MIN, 2);
            serial_ms = serial_ms.min(s);
            sharded_ms = sharded_ms.min(p);
            appeals += 1;
        }
        let serial_tps = node_ticks * 1e3 / serial_ms;
        let sharded_tps = node_ticks * 1e3 / sharded_ms;
        let shards = sharded.shard_count();
        outln!(
            "fleet_scaling n={n:>6}: serial={serial_ms:>8.1} ms ({serial_tps:>9.0} t/s)  \
             sharded={sharded_ms:>8.1} ms ({sharded_tps:>9.0} t/s, {shards} shard(s))"
        );
        if parallel_host {
            assert!(
                n < 512 || sharded_ms <= serial_ms,
                "sharded drive slower than serial at {n} nodes \
                 ({sharded_ms:.1} ms vs {serial_ms:.1} ms)"
            );
            assert!(
                n < 10_000 || sharded_tps >= FLOOR_10K,
                "10k fleet below the 1M node-ticks/s floor: {sharded_tps:.0}"
            );
        } else {
            assert!(
                sharded_ms <= serial_ms * 2.0,
                "sharded overhead ceiling breached on single-core host at {n} \
                 nodes ({sharded_ms:.1} ms vs {serial_ms:.1} ms serial)"
            );
        }
        out.push_str(&format!(
            "    {{\"nodes\": {n}, \
             \"serial\": {{\"wall_ms\": {serial_ms:.1}, \"node_ticks_per_sec\": {serial_tps:.0}}}, \
             \"sharded\": {{\"wall_ms\": {sharded_ms:.1}, \"node_ticks_per_sec\": {sharded_tps:.0}, \
             \"shards\": {shards}}}}}{}\n",
            if si == sizes.len() - 1 { "" } else { "," },
        ));
    }
    out.push_str("  ]\n");
}

/// Stage 6 (schema v4): the safe-tuning gate. One simulated day of the
/// fig18 rig — a guarded and an observe-only arm, identical fleets and
/// acquisition, only the safe-region geometry differing — with the
/// safety layer's contract asserted, not just recorded: the guard must
/// hold the SLO floor without giving up the regret advantage it exists
/// to provide.
fn safetune_gate(out: &mut String) {
    const SIM_DAYS: u64 = 1;
    const DBS: usize = 2;
    const SEED: u64 = 42;
    let run = |guarded: bool| {
        let mut sim = safetune::production_arm(guarded, DBS, SEED);
        sim.run_for(SIM_DAYS * 24 * MILLIS_PER_HOUR);
        sim
    };
    let t = Instant::now();
    let guarded = run(true);
    let unguarded = run(false);
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;

    let gs = guarded.safety().expect("guarded governor");
    let us = unguarded.safety().expect("unguarded governor");
    let (g_clamps, g_breaches) = guarded.meter.safety_totals();
    let (u_clamps, u_breaches) = unguarded.meter.safety_totals();
    let regret_ratio = us.cumulative_regret() / gs.cumulative_regret().max(1e-9);
    outln!(
        "safetune {SIM_DAYS} day(s), {DBS} dbs/arm: regret guarded={:.1} unguarded={:.1} \
         ({regret_ratio:.2}x)  breaches {}/{}  clamps {g_clamps}/{u_clamps}  ({wall_ms:.0} ms)",
        gs.cumulative_regret(),
        us.cumulative_regret(),
        gs.total_violations(),
        us.total_violations(),
    );

    assert_eq!(
        g_breaches,
        gs.total_violations(),
        "meter/ledger breach split"
    );
    assert_eq!(
        u_breaches,
        us.total_violations(),
        "meter/ledger breach split"
    );
    assert_eq!(
        gs.total_violations(),
        0,
        "guarded arm must hold the SLO floor for the whole day"
    );
    assert_eq!(u_clamps, 0, "the observe-only arm must never clamp");
    assert!(
        g_clamps > 0,
        "the guarded region never clamped — it did no work"
    );
    assert!(
        gs.cumulative_regret() < us.cumulative_regret(),
        "guarded regret {:.1} must undercut unguarded {:.1}",
        gs.cumulative_regret(),
        us.cumulative_regret()
    );

    out.push_str(&format!(
        "  \"safetune\": {{\n    \"sim_days\": {SIM_DAYS},\n    \"services_per_arm\": {DBS},\n    \
         \"guarded\": {{\"cumulative_regret\": {:.1}, \"slo_breaches\": {}, \"clamps\": {g_clamps}, \
         \"worst_shortfall\": {:.4}}},\n    \
         \"unguarded\": {{\"cumulative_regret\": {:.1}, \"slo_breaches\": {}, \"clamps\": {u_clamps}, \
         \"worst_shortfall\": {:.4}}},\n    \
         \"regret_ratio\": {regret_ratio:.3},\n    \"wall_ms\": {wall_ms:.0}\n  }},\n",
        gs.cumulative_regret(),
        gs.total_violations(),
        gs.worst_shortfall(),
        us.cumulative_regret(),
        us.total_violations(),
        us.worst_shortfall(),
    ));
}

fn main() {
    let rounds: usize = arg_value("rounds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(24);
    let out_path = arg_value("out").unwrap_or_else(|| "BENCH_perf.json".into());

    // v4: added the `safetune` regret/SLO section (v3 the per-backend
    // `backends` one). Consumers pinned to an older schema must fail on
    // the version field, not silently miss it.
    let mut out = String::from("{\n  \"schema_version\": 4,\n");
    gp_fit_sweep(&mut out);
    repeated_recommend(rounds, &mut out);
    fleet_drive(&mut out);
    backend_drive(&mut out);
    safetune_gate(&mut out);
    fleet_scaling(&mut out);
    out.push_str("}\n");

    std::fs::write(&out_path, &out).expect("write baseline file");
    outln!("wrote {out_path}");
}
