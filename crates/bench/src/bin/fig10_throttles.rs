//! Figs. 10 & 11 — "Performance Throttles detected on postgresql / mysql
//! for varied set of workloads".
//!
//! Each workload runs at its §5 parameters on an m4.large instance with
//! *no tuning sessions* ("In order to purely measure the performance
//! throttles, we do not go for a tuning session"); throttles are averaged
//! over ~20 iterations. Expectation: write-heavy workloads (TPCC) raise
//! mostly background-writer throttles; read-heavy/mix workloads
//! (Wikipedia, Twitter, YCSB) raise memory and async/planner throttles;
//! the production workload shows a blend.
//!
//! `--db pg` (default, Fig. 10) or `--db mysql` (Fig. 11).

use autodbaas_bench::{arg_value, header, seed_offline, Rig};
use autodbaas_core::{Tde, TdeConfig};
use autodbaas_simdb::{DbFlavor, InstanceType, KnobClass};
use autodbaas_telemetry::outln;
use autodbaas_telemetry::MILLIS_PER_MIN;
use autodbaas_tuner::WorkloadRepository;
use autodbaas_workload::{production, MixWorkload};

const ITERATIONS: usize = 20;

fn census(flavor: DbFlavor, wl: &MixWorkload, rate: u64, repo: &WorkloadRepository) -> [f64; 3] {
    let mut rig = Rig::new(flavor, InstanceType::M4Large, wl.catalog().clone(), 13);
    // PaaS provisioning sizes the buffer pool at 25% of RAM, as a DBA
    // would; the census measures throttles beyond that baseline config.
    let p = rig.db.profile().clone();
    let roles = rig.db.planner().roles().clone();
    rig.db
        .set_knob_direct(roles.buffer_pool, InstanceType::M4Large.mem_bytes() * 0.25);
    let _ = p;
    // Warm the buffer pool for ten windows before the census so cold-start
    // misses don't masquerade as memory pressure; the TDE is installed
    // (like the paper's plugin) when the census starts.
    for _ in 0..10 {
        rig.drive(wl, rate, 60, 24);
    }
    let mut tde = Tde::new(&rig.db.profile().clone(), TdeConfig::default(), 23);
    let before = tde.throttle_counts();
    for _ in 0..ITERATIONS {
        // One observation window per iteration (5 minutes of §5 monitoring
        // cadence, compressed to 60 s of sim time per iteration).
        rig.drive(wl, rate, 60, 24);
        let _ = tde.run(&mut rig.db, Some(repo));
    }
    let after = tde.throttle_counts();
    let mut out = [0.0; 3];
    for k in 0..3 {
        out[k] = (after[k] - before[k]) as f64 / ITERATIONS as f64;
    }
    out
}

fn main() {
    let flavor = match arg_value("--db").as_deref() {
        Some("mysql") => DbFlavor::MySql,
        _ => DbFlavor::Postgres,
    };
    let fig = if flavor == DbFlavor::Postgres {
        "Fig. 10"
    } else {
        "Fig. 11"
    };
    header(
        fig,
        &format!("performance throttles per knob class on {flavor} (no tuning sessions)"),
        "write-heavy (TPCC) -> background-writer class dominates; \
         read/mix (Wikipedia, Twitter, YCSB) -> memory + async/planner; \
         production -> a blend",
    );

    // A baseline repository so the bgwriter detector has experience to map
    // against (the paper trains tuners before measuring).
    let mut repo = WorkloadRepository::new();
    seed_offline(&mut repo, &autodbaas_workload::tpcc(2.0), flavor, 10, 31);

    // §5 parameters: tpcc 3300 rps / 26 GB; wikipedia 1000 rps / 12 GB;
    // twitter 10000 rps / 22 GB; ycsb 5000 rps / 20 GB.
    let runs: Vec<(&str, MixWorkload, u64)> = vec![
        ("tpcc (write-heavy)", autodbaas_workload::tpcc(26.0), 3_300),
        (
            "wikipedia (read)",
            autodbaas_workload::wikipedia(12.0),
            1_000,
        ),
        (
            "twitter (read/mix)",
            autodbaas_workload::twitter(22.0),
            10_000,
        ),
        ("ycsb (mix)", autodbaas_workload::ycsb(20.0), 5_000),
    ];

    outln!(
        "\n{:<22} {:>10} {:>14} {:>14}",
        "workload",
        "memory",
        "bgwriter",
        "async/planner"
    );
    let mut rows = Vec::new();
    for (name, wl, rate) in runs {
        let counts = census(flavor, &wl, rate, &repo);
        outln!(
            "{:<22} {:>10.2} {:>14.2} {:>14.2}",
            name,
            counts[0],
            counts[1],
            counts[2]
        );
        rows.push((name, counts));
    }

    // Production workload: "captured from live systems directly" — one
    // diurnal day's worth, measured at different timestamps.
    let prod = production();
    let mut rig = Rig::new(flavor, InstanceType::M4Large, prod.catalog().clone(), 29);
    let roles = rig.db.planner().roles().clone();
    rig.db
        .set_knob_direct(roles.buffer_pool, InstanceType::M4Large.mem_bytes() * 0.25);
    for _ in 0..10 {
        rig.drive(&prod, 400, 60, 24);
    }
    let mut tde = Tde::new(&rig.db.profile().clone(), TdeConfig::default(), 41);
    let mut counts = [0.0; 3];
    let windows = 20;
    for w in 0..windows {
        // Sample different times of day.
        let rate = prod.default_arrival().rate_at(w * 70 * MILLIS_PER_MIN) as u64 / 4;
        let before = tde.throttle_counts();
        rig.drive(&prod, rate.max(10), 60, 24);
        let _ = tde.run(&mut rig.db, Some(&repo));
        let after = tde.throttle_counts();
        for k in 0..3 {
            counts[k] += (after[k] - before[k]) as f64;
        }
    }
    for c in &mut counts {
        *c /= windows as f64;
    }
    outln!(
        "{:<22} {:>10.2} {:>14.2} {:>14.2}",
        "production (live)",
        counts[0],
        counts[1],
        counts[2]
    );
    rows.push(("production", counts));

    // Shape checks.
    let tpcc_counts = rows[0].1;
    assert!(
        tpcc_counts[KnobClass::BackgroundWriter.index()]
            >= tpcc_counts[KnobClass::AsyncPlanner.index()],
        "write-heavy must throttle the bgwriter class at least as much as async"
    );
    let read_mix_mem: f64 = rows[1..4].iter().map(|r| r.1[0] + r.1[2]).sum();
    let read_mix_bg: f64 = rows[1..4].iter().map(|r| r.1[1]).sum();
    assert!(
        read_mix_mem >= read_mix_bg,
        "read/mix workloads must lean toward memory+async ({read_mix_mem:.2} vs {read_mix_bg:.2})"
    );
    outln!("\nresult: class distribution per workload type — shape reproduced.");
}
