//! 10k-fleet smoke gate for the sharded tick engine (ROADMAP item 1).
//!
//! Two legs, both fast enough for the verify recipe:
//!
//! 1. **Determinism** — a long-tail 10k-service fleet driven 90 simulated
//!    seconds (covering one TDE round) serially and on the sharded engine
//!    with the shard count pinned wide (8), so the cross-thread barrier and
//!    merge actually run even on a small host. Event-log fingerprints and
//!    per-node counters must be bit-identical, and the sharded engine must
//!    account for every node-tick.
//! 2. **Throughput floor** — the sharded engine (auto shard count) must
//!    sustain ≥1M node-ticks/s over its fastest 15-second chunk, raced
//!    against the serial reference in interleaved chunks. A shared host's
//!    noise stalls can span minutes and tax every chunk, so serial racing
//!    through the same window is the control: the gate fires only when the
//!    sharded engine misses the floor AND loses to serial — an engine
//!    regression fails both, a noisy host neither.
//!
//! Flags: `--nodes 10000 --floor 1000000` (defaults shown).

use autodbaas_bench::{arg_value, longtail_fleet, race_engines};
use autodbaas_simdb::MetricId;
use autodbaas_telemetry::{outln, MILLIS_PER_MIN};
use std::time::Instant;

fn main() {
    let nodes: usize = arg_value("--nodes")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    let floor: f64 = arg_value("--floor")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000.0);

    // Leg 1: determinism at a forced-wide shard count.
    let smoke_ms = 90_000u64;
    let mut serial = longtail_fleet(nodes, false, 0, 0xabcd);
    let mut sharded = longtail_fleet(nodes, true, 8, 0xabcd);
    let t = Instant::now();
    serial.run_for(smoke_ms);
    let serial_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    sharded.run_for(smoke_ms);
    let sharded_s = t.elapsed().as_secs_f64();
    assert_eq!(
        serial.events.fingerprint(),
        sharded.events.fingerprint(),
        "event-log fingerprints diverged between serial and sharded drives"
    );
    let counters = |sim: &autodbaas_cloudsim::FleetSim| -> Vec<(u64, f64)> {
        sim.nodes
            .iter()
            .map(|n| {
                (
                    n.queries_submitted,
                    n.db().metrics().get(MetricId::QueriesExecuted),
                )
            })
            .collect()
    };
    assert_eq!(
        counters(&serial),
        counters(&sharded),
        "per-node counters diverged between serial and sharded drives"
    );
    let expected_ticks = nodes as u64 * (smoke_ms / 1000);
    assert_eq!(
        sharded.drive_stats().node_ticks,
        expected_ticks,
        "sharded engine lost node-ticks"
    );
    outln!(
        "determinism: {nodes} nodes x {}s, serial={serial_s:.2}s sharded({} shards)={sharded_s:.2}s — \
         fingerprints, per-node counters and {expected_ticks} node-ticks all match",
        smoke_ms / 1000,
        sharded.shard_count(),
    );

    // Leg 2: throughput floor on auto shard resolution, raced against the
    // serial reference in interleaved 15-second chunks. The absolute floor
    // is the headline gate, but a shared host's noise stalls can span whole
    // minutes and tax every chunk; the serial engine racing through the
    // same window is the control that tells a slow host apart from a slow
    // engine. The gate fires only when the sharded engine misses the floor
    // AND loses to serial — a genuine engine regression fails both, a noisy
    // host fails neither test of the engine itself.
    let chunk_ms = MILLIS_PER_MIN / 4;
    let mut serial = longtail_fleet(nodes, false, 0, 0xf1ee7);
    let mut sharded = longtail_fleet(nodes, true, 0, 0xf1ee7);
    serial.run_for(chunk_ms); // warm both to the same sim time
    sharded.run_for(chunk_ms);
    let mut serial_ms = f64::MAX;
    let mut sharded_ms = f64::MAX;
    let mut rounds = 0;
    for round in 0..8 {
        let (s, p) = race_engines(&mut serial, &mut sharded, chunk_ms, 2);
        serial_ms = serial_ms.min(s);
        sharded_ms = sharded_ms.min(p);
        rounds = round + 1;
        let tps = (nodes as u64 * chunk_ms) as f64 / sharded_ms;
        if round >= 2 && tps >= floor {
            break; // six clean chunk-pairs are enough
        }
    }
    let chunk_ticks = (nodes as u64 * chunk_ms / 1000) as f64;
    let tps = chunk_ticks * 1e3 / sharded_ms;
    let serial_tps = chunk_ticks * 1e3 / serial_ms;
    outln!(
        "throughput: fastest {}s-chunk over {rounds} interleaved rounds — \
         sharded {tps:.0} node-ticks/s vs serial {serial_tps:.0} \
         ({} shard(s), floor {floor:.0})",
        chunk_ms / 1000,
        sharded.shard_count()
    );
    assert!(
        tps >= floor || tps >= serial_tps,
        "sharded 10k fleet below the throughput floor AND behind the serial \
         reference in the same window: sharded {tps:.0} < floor {floor:.0}, \
         serial {serial_tps:.0} — engine regression, not host noise"
    );
    outln!("fleet10k_smoke: OK");
}
