//! Figs. 3 & 4 — "Entropy variation with 80% / 50% adulteration
//! probability on Production SQL Workload".
//!
//! The TPCC stream is adulterated with index creation/drop, complex joins,
//! temp tables, order-by and aggregate queries at probability p; the
//! per-window normalized entropy of the query-class histogram is plotted.
//! Expectation: plain TPCC concentrates on few classes (low Shannon
//! entropy); adulteration spreads frequency across all classes, and p=0.8
//! spreads it further than p=0.5.
//!
//! `--prob 0.8` (default) regenerates Fig. 3, `--prob 0.5` Fig. 4.

use autodbaas_bench::{arg_value, header, sparkline};
use autodbaas_core::ClassHistogram;
use autodbaas_telemetry::entropy::{normalized_entropy, paper_entropy_score};
use autodbaas_telemetry::outln;
use autodbaas_workload::{tpcc, AdulteratedWorkload, QuerySource};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn entropy_series(
    wl: &dyn QuerySource,
    windows: usize,
    queries_per_window: usize,
    seed: u64,
) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(windows);
    for _ in 0..windows {
        let mut hist = ClassHistogram::new();
        for _ in 0..queries_per_window {
            hist.record(&wl.next_query(&mut rng));
        }
        out.push(normalized_entropy(hist.counts()));
    }
    out
}

fn main() {
    let p: f64 = arg_value("--prob")
        .map(|v| v.parse().expect("--prob takes a float"))
        .unwrap_or(0.8);
    let fig = if (p - 0.8).abs() < 0.01 {
        "Fig. 3"
    } else {
        "Fig. 4"
    };
    header(
        fig,
        &format!("entropy variation, {:.0}% adulteration of TPCC", p * 100.0),
        "adulterated TPCC spreads class frequencies (higher normalized \
         Shannon entropy / lower concentration score) vs. plain TPCC; \
         80% spreads further than 50%",
    );

    let windows = 40;
    let per_window = 2_000;

    let plain = entropy_series(&tpcc(18.0 * 1.17), windows, per_window, 1);
    let adulterated = entropy_series(
        &AdulteratedWorkload::new(tpcc(18.0 * 1.17), p),
        windows,
        per_window,
        1,
    );

    outln!("\nper-window normalized entropy η (40 one-minute windows):");
    sparkline("plain TPCC", &plain);
    sparkline(&format!("adulterated p={p}"), &adulterated);

    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    let m_plain = mean(&plain);
    let m_adult = mean(&adulterated);
    outln!("\nmean η:  plain = {m_plain:.3}   adulterated = {m_adult:.3}");

    // The paper's concentration-oriented score (1 - η).
    let mut hist_p = ClassHistogram::new();
    let mut hist_a = ClassHistogram::new();
    let mut rng = StdRng::seed_from_u64(9);
    let plain_wl = tpcc(21.0);
    let adult_wl = AdulteratedWorkload::new(tpcc(21.0), p);
    for _ in 0..20_000 {
        hist_p.record(&plain_wl.next_query(&mut rng));
        hist_a.record(&adult_wl.next_query(&mut rng));
    }
    outln!(
        "concentration score (paper orientation): plain = {:.3}, adulterated = {:.3}",
        paper_entropy_score(hist_p.counts()),
        paper_entropy_score(hist_a.counts())
    );
    outln!("\nclass counts (20k queries):");
    outln!("  plain:       {:?}", hist_p.counts());
    outln!("  adulterated: {:?}", hist_a.counts());

    assert!(m_adult > m_plain, "adulteration must raise Shannon entropy");
    outln!("\nresult: adulterated entropy > plain entropy — shape reproduced.");
}
