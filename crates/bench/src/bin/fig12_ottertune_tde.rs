//! Figs. 12 & 13 — "Throughput graph for live production database with
//! Ottertune / with CDBTune", with and without TDE sample gating.
//!
//! Protocol (§5): the tuner is bootstrapped offline; batches of production
//! databases are hooked; the throughput of a *later-hooked* database is
//! measured per hour. Without the TDE, the tuner trains on whatever
//! samples the periodic captures produce — mostly idle, low-quality
//! windows — and its model corrupts; with the TDE, only throttle-certified
//! windows reach the model. For the BO tuner (Fig. 12) corruption cascades
//! through workload mapping and hits a freshly hooked database; for the RL
//! tuner (Fig. 13) it corrupts the shared policy "directly from the first
//! hooked database".
//!
//! `--tuner bo` (default, Fig. 12) or `--tuner rl` (Fig. 13);
//! `--db pg` (default) or `--db mysql` for the (a)/(b) panels.

use autodbaas_bench::{arg_value, header, sparkline, NodeSpec};
use autodbaas_cloudsim::{FleetConfig, FleetSim};
use autodbaas_core::{TdeConfig, TuningPolicy};
use autodbaas_ctrlplane::TunerKind;
use autodbaas_simdb::{DbFlavor, InstanceType, MetricId};
use autodbaas_telemetry::outln;
use autodbaas_telemetry::{MILLIS_PER_HOUR, MILLIS_PER_MIN};
use autodbaas_tuner::WorkloadId;
use autodbaas_workload::{tpcc, AdulteratedWorkload, ArrivalProcess, DiurnalProfile};

const BATCH: usize = 6; // earlier-hooked production databases
const HOURS: u64 = 8;

fn run(kind: TunerKind, flavor: DbFlavor, gated: bool, seed: u64) -> Vec<f64> {
    // Vanilla-OtterTune acquisition: no knob-subset hardening
    // (`tune_top_k = all knobs`). The subset focus is *this crate's*
    // robustness addition (see the ablations binary); the paper evaluates
    // OtterTune as deployed, whose full-dimensional search is exactly what
    // corrupted samples mislead.
    let bo = autodbaas_tuner::BoConfig {
        tune_top_k: usize::MAX,
        anchored_candidates: false,
        ..autodbaas_tuner::BoConfig::default()
    };
    let mut sim = FleetSim::new(
        FleetConfig {
            tick_ms: 2_000,
            tde_period_ms: 5 * MILLIS_PER_MIN,
            gate_samples_with_tde: gated,
            tuner: kind,
            bo,
            seed,
            ..FleetConfig::default()
        },
        4,
    );
    // Offline bootstrap, as the paper trains the tuners "as per their
    // standard ways" (the RL tuner "minimally utilizes offline training").
    let offline_samples = if kind == TunerKind::Bo { 16 } else { 4 };
    sim.seed_offline_training(&tpcc(1.0), flavor, offline_samples);

    // The earlier-hooked production batch: low-traffic diurnal services
    // running the *same kind* of workload as the database we will measure,
    // so OtterTune's workload mapping merges their samples into its
    // training set ("Ottertune mapped the workload … to nearly 14
    // different workloads where only 4 of them were offline"). Their
    // ungated captures — idle windows whose throughput reflects the time
    // of day, not the configuration — are exactly the low-quality samples
    // §1 warns about.
    for i in 0..BATCH {
        let wl = AdulteratedWorkload::new(tpcc(2.0), 0.25);
        let catalog = wl.base().catalog().clone();
        let arrival = ArrivalProcess::Diurnal(DiurnalProfile {
            base_rps: 8.0,
            peak_rps: 90.0,
            ..DiurnalProfile::default()
        });
        let node = NodeSpec::new(flavor, InstanceType::M4Large).managed(
            catalog,
            Box::new(wl),
            arrival,
            TuningPolicy::Periodic(10 * MILLIS_PER_MIN),
            WorkloadId(0),
            TdeConfig::default(),
            seed ^ (i as u64).wrapping_mul(0x51ed),
        );
        sim.add_node(node, &format!("prod-{i}"));
    }
    // Let the batch pollute (or not) the repository for the first two
    // night hours.
    sim.run_for(2 * MILLIS_PER_HOUR);

    // Hook the measured database: a demanding workload that genuinely
    // needs tuning, sized so a well-tuned configuration serves the full
    // demand while the default (spilling) configuration saturates the
    // instance — the gap the tuner is supposed to close. The corruption
    // channel is the earlier-hooked diurnal batch: their idle-window
    // captures (throughput reflecting the hour, not the configuration) are
    // §1's low-quality samples, merged into this database's training set
    // through workload mapping.
    let wl = AdulteratedWorkload::new(tpcc(2.0), 0.25);
    let catalog = wl.base().catalog().clone();
    let node = NodeSpec::new(flavor, InstanceType::M4XLarge).managed(
        catalog,
        Box::new(wl),
        ArrivalProcess::Constant(120.0),
        TuningPolicy::Periodic(10 * MILLIS_PER_MIN),
        WorkloadId(0),
        TdeConfig::default(),
        seed ^ 0xdead,
    );
    let idx = sim.add_node(node, "measured");

    // Measure hourly throughput.
    let mut hourly = Vec::new();
    for _ in 0..HOURS {
        let before = sim.nodes[idx].db().metrics_snapshot();
        sim.run_for(MILLIS_PER_HOUR);
        let delta = sim.nodes[idx].db().metrics_snapshot().delta(&before);
        hourly.push(delta[MetricId::QueriesExecuted.index()] / 3_600.0);
    }
    hourly
}

fn main() {
    let kind = match arg_value("--tuner").as_deref() {
        Some("rl") => TunerKind::Rl,
        _ => TunerKind::Bo,
    };
    let flavor = match arg_value("--db").as_deref() {
        Some("mysql") => DbFlavor::MySql,
        _ => DbFlavor::Postgres,
    };
    let (fig, tuner_name) = if kind == TunerKind::Bo {
        ("Fig. 12", "OtterTune-style BO")
    } else {
        ("Fig. 13", "CDBTune-style RL")
    };
    header(
        fig,
        &format!("hourly throughput on {flavor} with {tuner_name}, gated vs ungated samples"),
        "with TDE gating the tuner's model stays clean and throughput holds/ \
         improves; without it, low-quality production samples corrupt the \
         model and throughput degrades",
    );

    // Average over several seeds: a single fleet realisation is noisy
    // (checkpoint phases, Poisson arrivals), the gating effect is not.
    let seeds = [101u64, 202, 303];
    let average = |gated: bool| -> Vec<f64> {
        let mut acc = vec![0.0; HOURS as usize];
        for &seed in &seeds {
            for (a, v) in acc.iter_mut().zip(run(kind, flavor, gated, seed)) {
                *a += v;
            }
        }
        acc.iter().map(|v| v / seeds.len() as f64).collect()
    };
    let ungated = average(false);
    let gated = average(true);

    outln!(
        "\nhourly throughput of the late-hooked database (queries/s, mean of {} seeds):",
        seeds.len()
    );
    sparkline(&format!("{tuner_name} alone"), &ungated);
    sparkline(&format!("{tuner_name} + TDE"), &gated);

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    // Skip hour 0 (both start at defaults).
    let m_ungated = mean(&ungated[1..]);
    let m_gated = mean(&gated[1..]);
    outln!(
        "\nmean throughput (hours 1..{HOURS}): ungated = {m_ungated:.0} qps, gated = {m_gated:.0} qps \
         ({:+.1}%)",
        (m_gated / m_ungated - 1.0) * 100.0
    );
    assert!(
        m_gated >= m_ungated * 0.95,
        "gated mode must not lose materially to ungated (gated {m_gated:.0} vs {m_ungated:.0})"
    );
    outln!("\nresult: TDE gating protects the learning model — shape reproduced.");
}
