//! Fig. 2 — "Queries and Memory statistics observed on PostgreSQL running
//! on AWS VM, type-t3.x_large".
//!
//! The paper's table reports, per benchmark, the working memory allocated
//! vs. the memory/disk actually used by the queries. Headline facts it
//! supports: TPCC's sorts use ~0.5 MB; YCSB and Wikipedia use none;
//! adding the complex aggregations needs ~350 MB which overflows to disk
//! at the 4 MB default `work_mem`.

use autodbaas_bench::{header, Rig};
use autodbaas_simdb::{DbFlavor, InstanceType, MetricId};
use autodbaas_telemetry::outln;
use autodbaas_workload::{by_name, AdulteratedWorkload, QuerySource};

const MIB: f64 = 1024.0 * 1024.0;

fn main() {
    header(
        "Fig. 2",
        "working-memory statistics per benchmark (PostgreSQL, t3.xlarge)",
        "TPCC ~0.5 MB of work_mem; YCSB/Wikipedia none; CH-bench and \
         adulterated TPCC demand 100s of MB and overflow to disk",
    );
    outln!(
        "{:<18} {:>14} {:>16} {:>16} {:>14}",
        "workload",
        "work_mem(MiB)",
        "mem used (MiB)",
        "disk used (MiB)",
        "sorts spilled"
    );

    let names = ["tpcc", "chbench", "ycsb", "wikipedia"];
    for name in names {
        let wl = by_name(name).expect("known workload");
        report_row(name, &wl, wl.catalog().clone());
    }
    // The paper's adulterated TPCC row (complex aggregations ≈ 350 MB).
    let adulterated = AdulteratedWorkload::new(by_name("tpcc").unwrap(), 0.5);
    let catalog = adulterated.base().catalog().clone();
    report_row("tpcc+complex-agg", &adulterated, catalog);
}

fn report_row(name: &str, wl: &dyn QuerySource, catalog: autodbaas_simdb::Catalog) {
    let mut rig = Rig::new(DbFlavor::Postgres, InstanceType::T3XLarge, catalog, 2);
    let allocated = rig
        .db
        .knobs()
        .get_named(&rig.db.profile().clone(), "work_mem");

    // Sample the workload's memory demands directly (the EXPLAIN view).
    let mut max_mem_used = 0u64;
    for _ in 0..4_000 {
        let q = wl.next_query(&mut rig.rng);
        // Memory *used* is capped by the grant; the overflow goes to disk.
        let demand = q.total_memory_demand();
        max_mem_used = max_mem_used.max(demand.min(allocated as u64));
        let _ = rig.db.submit(&q, 1);
        rig.db.tick(50);
    }
    let spilled = rig.db.metrics().get(MetricId::SortSpills)
        + rig.db.metrics().get(MetricId::MaintenanceSpills)
        + rig.db.metrics().get(MetricId::TempTableSpills);
    let disk_used = rig.db.metrics().get(MetricId::TempBytes) / MIB;
    outln!(
        "{:<18} {:>14.1} {:>16.2} {:>16.1} {:>14}",
        name,
        allocated / MIB,
        max_mem_used as f64 / MIB,
        disk_used,
        spilled as u64
    );
}
