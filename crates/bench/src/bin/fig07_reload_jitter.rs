//! Fig. 7 — "IOPS graph for TPCC execution": applying configs via reload
//! signals vs. not applying any, on tuned MySQL.
//!
//! The paper runs TPCC twice on a tuned MySQL: once without any config
//! reloads, once firing a reload signal every 20 seconds. Expectation:
//! "even with this high frequency of reloads, the performance is not
//! compromised" — the IOPS curves are indistinguishable. As an ablation we
//! also show the alternative §4 mechanism, socket activation, which *does*
//! dent the curve.

use autodbaas_bench::{header, sparkline, Rig};
use autodbaas_simdb::{ApplyMode, DbFlavor, InstanceType, MetricId};
use autodbaas_telemetry::outln;
use autodbaas_workload::tpcc;

fn run(mode: Option<ApplyMode>) -> (Vec<f64>, f64, f64) {
    let wl = tpcc(10.0);
    let mut rig = Rig::new(
        DbFlavor::MySql,
        InstanceType::M4XLarge,
        wl.catalog().clone(),
        8,
    );
    let p = rig.db.profile().clone();
    // "Tuned MySQL": sane buffers and calm flushing.
    rig.db
        .set_knob_direct(p.lookup("sort_buffer_size").unwrap(), 8.0 * 1024.0 * 1024.0);
    rig.db
        .set_knob_direct(p.lookup("innodb_io_capacity").unwrap(), 2_000.0);
    rig.db
        .set_knob_direct(p.lookup("innodb_max_dirty_pages_pct").unwrap(), 90.0);
    let reload_knob = p.lookup("join_buffer_size").unwrap();

    // Warm up.
    rig.drive(&wl, 3_300, 60, 24);
    let start = rig.db.now();
    let start_snap = rig.db.metrics_snapshot();
    let secs = 15 * 60;
    for s in 0..secs {
        if let Some(m) = mode {
            // A config signal every 20 seconds ("even with this high
            // frequency of reloads").
            if s % 20 == 0 {
                let v = rig.db.knobs().get(reload_knob);
                let _ = rig.db.apply_config(
                    &[autodbaas_simdb::ConfigChange {
                        knob: reload_knob,
                        value: v,
                    }],
                    m,
                );
            }
        }
        let per = 3_300 / 24;
        for _ in 0..24 {
            let q = wl.next_query(&mut rig.rng);
            let _ = rig.db.submit(&q, per);
        }
        rig.db.tick(1_000);
    }
    let iops = rig
        .db
        .disks()
        .data()
        .iops_series()
        .resample(start, rig.db.now(), 45);
    let qps = rig.qps_since(&start_snap, secs);
    let delta = rig.db.metrics_snapshot().delta(&start_snap);
    let mean_latency =
        delta[MetricId::QueryTimeMs.index()] / delta[MetricId::QueriesExecuted.index()].max(1.0);
    (iops, qps, mean_latency)
}

fn main() {
    header(
        "Fig. 7",
        "IOPS during TPCC on tuned MySQL: no reloads vs reload signal every 20 s",
        "reload signals every 20 s leave the IOPS/throughput curve \
         indistinguishable; (ablation) socket-activation restarts visibly \
         dent it",
    );
    let (iops_none, qps_none, lat_none) = run(None);
    let (iops_reload, qps_reload, lat_reload) = run(Some(ApplyMode::Reload));
    let (iops_socket, qps_socket, lat_socket) = run(Some(ApplyMode::SocketActivation));

    outln!("\nIOPS over 15 minutes (45 bins):");
    sparkline("no reloads", &iops_none);
    sparkline("reload every 20 s", &iops_reload);
    sparkline("socket-activation (ablation)", &iops_socket);

    outln!("\nmean completed qps / mean query latency:");
    outln!("  no reloads         {qps_none:>9.0} qps   {lat_none:>8.3} ms");
    outln!("  reload every 20 s  {qps_reload:>9.0} qps   {lat_reload:>8.3} ms");
    outln!("  socket activation  {qps_socket:>9.0} qps   {lat_socket:>8.3} ms");

    // Degradation shows up as lost throughput (shed load during stalls)
    // and/or inflated latency, depending on how close to capacity the
    // instance runs.
    let reload_cost = (1.0 - qps_reload / qps_none).max(lat_reload / lat_none - 1.0);
    let socket_cost = (1.0 - qps_socket / qps_none).max(lat_socket / lat_none - 1.0);
    outln!(
        "\nperformance cost vs no-reload baseline: reload = {:+.1}%, socket activation = {:+.1}%",
        reload_cost * 100.0,
        socket_cost * 100.0
    );
    assert!(reload_cost.abs() < 0.05, "reload signals must be near-free");
    assert!(
        socket_cost > reload_cost + 0.05,
        "socket activation must cost far more than reload ({socket_cost:.3} vs {reload_cost:.3})"
    );
    outln!("\nresult: reload signals are jitter-free at 20 s frequency — shape reproduced.");
}
