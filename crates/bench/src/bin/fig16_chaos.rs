//! Fig. 16 — chaos run: availability, MTTR and reconciler convergence
//! under the standard fault plan.
//!
//! The paper's control plane claims (§4) are about surviving partial
//! failure: slave-first applies that reject on a slave crash, a reconciler
//! that rejects half-applied recommendations back to the persisted config,
//! and services that keep serving through VM loss. This harness turns
//! those claims into numbers. A fleet (half the services HA with two
//! slaves, half single-node) runs under [`FaultPlan::standard`] — VM
//! crashes, mid-apply crashes, tuner outages, telemetry blackouts, disk
//! stalls, replica-lag spikes, lost responses — and must come out the
//! other side with every service serving, zero drift, and zero wedged
//! control loops. The run is executed twice with the same seed and the
//! telemetry event-log fingerprints must match bit-for-bit: chaos here is
//! deterministic, so every failure it finds is replayable.
//!
//! Flags: `--dbs 6 --minutes 45 --seed 42 --backend pageheap` (defaults
//! shown; `--backend lsm` runs the same fault plan against the LSM
//! adapter — self-healing is a property of the control plane, not of the
//! engine profile underneath it). With `--resume <snapshot>` the first
//! run crosses a save/reload boundary at the halfway mark and must still
//! match the uninterrupted replay bit-for-bit.

use autodbaas_bench::{arg_value, backend_arg, checkpoint_roundtrip, header, resume_arg, NodeSpec};
use autodbaas_cloudsim::{FaultPlan, FleetConfig, FleetSim, RollbackPolicy};
use autodbaas_core::{TdeConfig, TuningPolicy};
use autodbaas_ctrlplane::TunerKind;
use autodbaas_simdb::{DbFlavor, InstanceType};
use autodbaas_telemetry::outln;
use autodbaas_telemetry::MILLIS_PER_MIN;
use autodbaas_tuner::WorkloadId;
use autodbaas_workload::{tpcc, ycsb, ArrivalProcess, QuerySource};

/// What one chaos run produced.
struct ChaosSummary {
    fingerprint: u64,
    availability: f64,
    faults: usize,
    recoveries: usize,
    reconciliations: u64,
    failovers: usize,
    failover_mttr_ms: Option<f64>,
    restart_mttr_ms: Option<f64>,
    reconcile_mttr_ms: Option<f64>,
    timeouts: usize,
    retries: usize,
    stale_dropped: usize,
    rollbacks: usize,
    wedged: Vec<usize>,
    drifted: Vec<usize>,
}

fn run_once(
    n_dbs: usize,
    minutes: u64,
    seed: u64,
    flavor: DbFlavor,
    plan: FaultPlan,
    checkpoint: Option<&std::path::Path>,
) -> ChaosSummary {
    let mut sim = FleetSim::new(
        FleetConfig {
            tick_ms: 1_000,
            tde_period_ms: 5 * MILLIS_PER_MIN,
            gate_samples_with_tde: false,
            tuner: TunerKind::Bo,
            seed,
            rollback: Some(RollbackPolicy::default()),
            // Tight enough that the standard plan's 2-minute tuner outage
            // actually exercises the timeout/retry/stale-drop machinery.
            request_timeout_ms: 90_000,
            retry_base_ms: 15_000,
            ..FleetConfig::default()
        },
        4,
    );
    sim.seed_offline_training(&tpcc(1.0), flavor, 12);
    for i in 0..n_dbs {
        let (workload, arrival): (Box<dyn QuerySource + Send>, _) = if i % 2 == 0 {
            (Box::new(ycsb(1.0)), ArrivalProcess::Constant(250.0))
        } else {
            (Box::new(tpcc(1.0)), ArrivalProcess::Constant(200.0))
        };
        let catalog = if i % 2 == 0 {
            ycsb(1.0).catalog().clone()
        } else {
            tpcc(1.0).catalog().clone()
        };
        let mut node = NodeSpec::new(flavor, InstanceType::M4Large).managed(
            catalog,
            workload,
            arrival,
            TuningPolicy::Periodic(5 * MILLIS_PER_MIN),
            WorkloadId(0),
            TdeConfig::default(),
            seed ^ (i as u64).wrapping_mul(0x45d9),
        );
        if i % 2 == 1 {
            // HA half of the fleet, on odd indices: against the standard
            // rotation this lands mid-apply master crashes and lag spikes
            // on replicated services (where they bite) and VM crashes on
            // both kinds (failover vs. single-node restart).
            node = node.with_slaves(2);
        }
        sim.add_node(node, &format!("db-{i}"));
    }
    sim.enable_chaos(plan);
    // With --resume, cross a serialize/deserialize boundary mid-chaos;
    // the caller's fingerprint comparison against an uninterrupted run
    // then proves the snapshot carried the complete fleet state.
    sim.run_for(minutes / 2 * MILLIS_PER_MIN);
    if let Some(path) = checkpoint {
        sim = checkpoint_roundtrip(sim, path);
    }
    sim.run_for((minutes - minutes / 2) * MILLIS_PER_MIN);
    // Quiet-down: long enough for every in-flight recovery, backoff retry
    // and watcher timeout to resolve — the no-wedge check below is strict.
    sim.run_for(10 * MILLIS_PER_MIN);

    let ev = &sim.events;
    ChaosSummary {
        fingerprint: ev.fingerprint(),
        availability: sim.availability(),
        faults: ev.count_prefix("fault."),
        recoveries: ev.count_prefix("recover."),
        reconciliations: sim.reconciliations(),
        failovers: ev.count("recover.failover"),
        failover_mttr_ms: ev.mean_gap_ms("fault.vm_crash", "recover.failover"),
        restart_mttr_ms: ev.mean_gap_ms("fault.vm_crash", "recover.restarted"),
        reconcile_mttr_ms: ev.mean_gap_ms("apply.master_crashed", "recover.reconciled"),
        timeouts: ev.count("request.timeout"),
        retries: ev.count("request.retry"),
        stale_dropped: ev.count("request.stale_dropped"),
        rollbacks: ev.count("tune.rollback"),
        wedged: sim.wedged_nodes(),
        drifted: sim.drifted_nodes(),
    }
}

fn fmt_mttr(v: Option<f64>) -> String {
    v.map_or_else(|| "-".into(), |ms| format!("{:.1}", ms / 1000.0))
}

fn main() {
    let n_dbs: usize = arg_value("--dbs").map(|v| v.parse().unwrap()).unwrap_or(5);
    let minutes: u64 = arg_value("--minutes")
        .map(|v| v.parse().unwrap())
        .unwrap_or(45);
    let seed: u64 = arg_value("--seed")
        .map(|v| v.parse().unwrap())
        .unwrap_or(42);
    let flavor = backend_arg();
    header(
        "Fig. 16",
        &format!(
            "chaos run, {n_dbs} {flavor} services ({} HA) over {minutes} min + 10 min quiet-down",
            n_dbs / 2
        ),
        "every service serving at the end, zero config drift, zero wedged \
         control loops, and a bit-for-bit reproducible event log",
    );

    let resume = resume_arg();
    if let Some(path) = &resume {
        outln!("checkpointing run A through {}", path.display());
    }
    let standard = FaultPlan::standard(n_dbs, minutes * MILLIS_PER_MIN);
    let a = run_once(
        n_dbs,
        minutes,
        seed,
        flavor,
        standard.clone(),
        resume.as_deref(),
    );
    let b = run_once(n_dbs, minutes, seed, flavor, standard, None);

    outln!("\n{:<34} {:>14}", "metric", "value");
    outln!("{:<34} {:>14.5}", "availability (fleet)", a.availability);
    outln!("{:<34} {:>14}", "faults injected", a.faults);
    outln!("{:<34} {:>14}", "recovery events", a.recoveries);
    outln!("{:<34} {:>14}", "  of which failovers", a.failovers);
    outln!("{:<34} {:>14}", "reconciliations", a.reconciliations);
    outln!(
        "{:<34} {:>14}",
        "failover MTTR (s)",
        fmt_mttr(a.failover_mttr_ms)
    );
    outln!(
        "{:<34} {:>14}",
        "single-node restart MTTR (s)",
        fmt_mttr(a.restart_mttr_ms)
    );
    outln!(
        "{:<34} {:>14}",
        "mid-apply crash -> reconciled (s)",
        fmt_mttr(a.reconcile_mttr_ms)
    );
    outln!("{:<34} {:>14}", "request timeouts", a.timeouts);
    outln!("{:<34} {:>14}", "request retries", a.retries);
    outln!("{:<34} {:>14}", "stale responses dropped", a.stale_dropped);
    outln!("{:<34} {:>14}", "safety rollbacks", a.rollbacks);
    outln!("{:<34} {:>14}", "wedged services at end", a.wedged.len());
    outln!("{:<34} {:>14}", "drifted services at end", a.drifted.len());
    outln!("{:<34} {:>14x}", "event-log fingerprint", a.fingerprint);

    assert!(a.faults > 0, "the plan must actually inject faults");
    assert!(
        a.recoveries > 0,
        "faults without recovery events mean the control plane slept through them"
    );
    assert!(
        a.wedged.is_empty(),
        "wedged services {:?} — the retry/recovery machinery stalled",
        a.wedged
    );
    assert!(
        a.drifted.is_empty(),
        "drifted services {:?} — the reconciler failed to converge",
        a.drifted
    );
    assert!(
        a.availability > 0.95,
        "availability {} too low for this fault plan",
        a.availability
    );
    assert_eq!(
        a.fingerprint, b.fingerprint,
        "same seed + same plan must replay bit-for-bit"
    );
    assert_eq!(a.availability, b.availability);
    let c = run_once(
        n_dbs,
        minutes,
        seed,
        flavor,
        FaultPlan::generate(seed ^ 1, n_dbs, minutes * MILLIS_PER_MIN, 16),
        None,
    );
    assert_ne!(
        a.fingerprint, c.fingerprint,
        "a different fault plan must perturb the event log"
    );
    assert!(
        c.wedged.is_empty() && c.drifted.is_empty(),
        "the seeded random plan must also heal: wedged {:?} drifted {:?}",
        c.wedged,
        c.drifted
    );
    outln!(
        "\nresult: survived the standard fault plan with a replayable event \
         log — self-healing shape reproduced."
    );
}
