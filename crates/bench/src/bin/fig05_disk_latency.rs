//! Fig. 5 — "Disk Latency graph for TPCC execution": default vs. tuned
//! background-writer knobs on PostgreSQL.
//!
//! The paper runs TPCC twice — first with default knob values, then with
//! optimal ones — and plots disk-write latency. Expectation: the default
//! configuration shows pronounced periodic latency peaks (checkpoint
//! bursts) and a higher mean; the tuned configuration spreads writeback
//! and flattens the curve (the paper's tuned average is ~6.5 ms on their
//! hardware; ours differs in absolute value but the ratio holds).

use autodbaas_bench::{header, sparkline, Rig};
use autodbaas_simdb::{DbFlavor, InstanceType};
use autodbaas_telemetry::outln;
use autodbaas_telemetry::PeakDetector;
use autodbaas_workload::tpcc;

fn run(tuned: bool) -> (Vec<f64>, f64, usize) {
    let wl = tpcc(26.0);
    let mut rig = Rig::new(
        DbFlavor::Postgres,
        InstanceType::M4XLarge,
        wl.catalog().clone(),
        5,
    );
    let p = rig.db.profile().clone();
    // A DBA-sized buffer pool either way (25% of RAM) — checkpoint pain
    // scales with the dirty set, not with the knob being tuned.
    rig.db.set_knob_direct(
        p.lookup("shared_buffers").unwrap(),
        4.0 * 1024.0 * 1024.0 * 1024.0,
    );
    if tuned {
        for (name, v) in [
            ("checkpoint_timeout", 1_800_000.0),
            ("checkpoint_completion_target", 0.9),
            ("bgwriter_lru_maxpages", 250.0),
            ("max_wal_size", 16.0 * 1024.0 * 1024.0 * 1024.0),
        ] {
            rig.db.set_knob_direct(p.lookup(name).unwrap(), v);
        }
    } else {
        // Stock 9.6-style defaults: 5-min checkpoints, half-spread flush,
        // timid background writer.
        rig.db
            .set_knob_direct(p.lookup("checkpoint_completion_target").unwrap(), 0.3);
        rig.db
            .set_knob_direct(p.lookup("bgwriter_lru_maxpages").unwrap(), 20.0);
        rig.db
            .set_knob_direct(p.lookup("max_wal_size").unwrap(), 1024.0 * 1024.0 * 1024.0);
    }
    // Warm the cache for 5 minutes, then measure 20 minutes.
    rig.drive(&wl, 3_300, 5 * 60, 64);
    let start = rig.db.now();
    rig.drive(&wl, 3_300, 20 * 60, 64); // 20 min of TPCC at 3300 rps
    let series = rig.db.disks().data().latency_series();
    let resampled = series.resample(start, rig.db.now(), 60);
    let mean = series.mean_since(start);
    let window = series.window(start);
    let peaks = PeakDetector::new(mean * 0.5).peaks(&window).len();
    (resampled, mean, peaks)
}

fn main() {
    header(
        "Fig. 5",
        "disk write latency, TPCC 3300 rps / 26 GB, default vs tuned bgwriter knobs",
        "default knobs show periodic checkpoint latency peaks and a higher \
         mean; tuned knobs flatten the curve (paper: ~6.5 ms tuned average)",
    );
    let (default_series, default_mean, default_peaks) = run(false);
    let (tuned_series, tuned_mean, tuned_peaks) = run(true);

    outln!("\nlatency over 20 minutes (60 bins):");
    sparkline("default knobs", &default_series);
    sparkline("tuned knobs", &tuned_series);
    outln!(
        "\nmean write latency: default = {default_mean:.2} ms, tuned = {tuned_mean:.2} ms \
         (ratio {:.1}x)",
        default_mean / tuned_mean.max(1e-9)
    );
    outln!("latency peaks detected: default = {default_peaks}, tuned = {tuned_peaks}");

    assert!(
        default_mean > tuned_mean,
        "tuned knobs must lower mean latency"
    );
    outln!("\nresult: tuned background-writer knobs cut disk latency — shape reproduced.");
}
