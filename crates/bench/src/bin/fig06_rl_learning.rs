//! Fig. 6 — "Measuring Reinforcement Learning accuracy on production
//! workload": (a) learning progress of the proposed MDP policy and (b)
//! average accuracy of the learning process.
//!
//! The §3.3 MDP runs episodes of 350–400 steps over the async/planner
//! knobs against reservoir-sampled production queries. Expectation: early
//! episodes show little learning (exploration); episodic reward and
//! accuracy then climb as the automata's action probabilities converge.

use autodbaas_bench::{header, sparkline, Rig};
use autodbaas_core::{MdpConfig, MdpEngine};
use autodbaas_simdb::{DbFlavor, InstanceType, QueryProfile};
use autodbaas_telemetry::outln;
use autodbaas_workload::production;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    header(
        "Fig. 6",
        "MDP learning progress and accuracy on the production workload",
        "episodic rewards increase over early episodes (exploration -> \
         exploitation); accuracy (profitable-step fraction) climbs as the \
         action probabilities converge",
    );
    let wl = production();
    let mut rig = Rig::new(
        DbFlavor::Postgres,
        InstanceType::M4XLarge,
        wl.catalog().clone(),
        3,
    );
    // Start the planner knobs far from their workload optimum so there is
    // something to learn (stock defaults already sit in a decent region).
    let p = rig.db.profile().clone();
    rig.db
        .set_knob_direct(p.lookup("random_page_cost").unwrap(), 10.0);
    rig.db.set_knob_direct(
        p.lookup("effective_cache_size").unwrap(),
        8.0 * 1024.0 * 1024.0,
    );
    rig.db
        .set_knob_direct(p.lookup("max_parallel_workers_per_gather").unwrap(), 0.0);

    // Warm the instance with production traffic so cost evaluation sees a
    // realistic hit ratio.
    rig.drive(&wl, 800, 120, 16);

    // Episodes of ~375 steps, as in the paper.
    let cfg = MdpConfig {
        episode_steps: 375,
        ..MdpConfig::default()
    };
    let mut mdp = MdpEngine::new(&p, cfg);
    let mut rng = StdRng::seed_from_u64(17);
    let mut knobs = rig.db.knobs().clone();

    // The RL engine "captures all the queries in a time frame" — sample a
    // pool of production queries (reads matter for planner estimates).
    let mut wl_rng = StdRng::seed_from_u64(4);
    let mut sampled: Vec<QueryProfile> = Vec::new();
    while sampled.len() < 12 {
        let q = wl.next_query(&mut wl_rng);
        if q.rows_examined > 1_000 {
            sampled.push(q);
        }
    }

    let episodes = 12;
    let steps_per_episode = 375;
    let knob_count = mdp.knob_count().max(1);
    let steps_needed = episodes * steps_per_episode / knob_count + 1;
    for _ in 0..steps_needed {
        let outcomes = mdp.step(&rig.db, &mut knobs, &sampled, &mut rng);
        for o in &outcomes {
            if knobs.get(o.knob) != rig.db.knobs().get(o.knob) {
                rig.db.set_knob_direct(o.knob, knobs.get(o.knob));
            }
        }
    }

    let rewards = mdp.episode_rewards();
    let accuracy = mdp.episode_accuracy();
    outln!("\n(a) episodic reward over {} episodes:", rewards.len());
    sparkline("episodic reward", rewards);
    outln!("\n(b) accuracy (non-detrimental-step fraction):");
    sparkline("accuracy", accuracy);

    let early: f64 = rewards.iter().take(3).sum::<f64>() / 3.0;
    let late: f64 = rewards.iter().rev().take(3).sum::<f64>() / 3.0;
    outln!("\nmean episodic reward: first 3 episodes = {early:.3}, last 3 = {late:.3}");
    let cum: Vec<f64> = rewards
        .iter()
        .scan(0.0, |acc, r| {
            *acc += r;
            Some(*acc)
        })
        .collect();
    sparkline("cumulative reward", &cum);
    outln!(
        "\nfinal knob values: random_page_cost = {:.2}, workers = {:.0}",
        rig.db.knobs().get(p.lookup("random_page_cost").unwrap()),
        rig.db
            .knobs()
            .get(p.lookup("max_parallel_workers_per_gather").unwrap()),
    );
    assert!(
        late > early,
        "episodic reward must improve as the automata learn (early {early:.3}, late {late:.3})"
    );
    outln!("result: episodic reward rises as the automata converge — shape reproduced.");
}
