//! Ablations over the design choices DESIGN.md calls out:
//!
//! 1. entropy filtration on/off (unnecessary throttles on cap-limited
//!    instances),
//! 2. TDE observation-period sweep (detection latency vs. overhead),
//! 3. reservoir-size sweep (spill-detection recall),
//! 4. BO knob-subset (`tune_top_k`) sweep (recommendation quality with
//!    few samples),
//! 5. the learned (future-work) detector's agreement with the rule
//!    engine.
//!
//! Each section prints its own table; assertions pin the qualitative
//! outcome each design choice was made for.

use autodbaas_bench::{header, seed_offline, Rig};
use autodbaas_core::{LearnedDetector, Tde, TdeConfig};
use autodbaas_simdb::{DbFlavor, InstanceType, MetricId, SimDatabase};
use autodbaas_telemetry::outln;
use autodbaas_tuner::{
    normalize_config, BoConfig, BoTuner, Sample, SampleQuality, WorkloadRepository,
};
use autodbaas_workload::{tpcc, AdulteratedWorkload, QuerySource};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    header(
        "Ablations",
        "design-choice sweeps (entropy filter, TDE period, reservoir, knob subset, learned TDE)",
        "each choice earns its place: disable it and the metric it protects regresses",
    );
    ablate_entropy_filter();
    ablate_tde_period();
    ablate_reservoir();
    ablate_knob_subset();
    ablate_learned_tde();
    outln!("\nall ablations hold.");
}

/// Ablation 1 — entropy filter: on a cap-limited t2.small, the filter
/// must divert unfixable throttles away from the tuner.
fn ablate_entropy_filter() {
    outln!("\n--- 1. entropy filtration on a cap-limited instance ---");
    outln!(
        "{:<10} {:>16} {:>22}",
        "filter",
        "tuning requests",
        "upgrades+suppressed"
    );
    let mut results = Vec::new();
    for enable in [true, false] {
        let wl = AdulteratedWorkload::new(tpcc(1.0), 0.8);
        let mut rig = Rig::new(
            DbFlavor::Postgres,
            InstanceType::T2Small,
            wl.base().catalog().clone(),
            3,
        );
        let p = rig.db.profile().clone();
        for name in ["work_mem", "maintenance_work_mem", "temp_buffers"] {
            let id = p.lookup(name).unwrap();
            rig.db.set_knob_direct(id, p.spec(id).max);
        }
        let cfg = TdeConfig {
            enable_entropy_filter: enable,
            ..TdeConfig::default()
        };
        let mut tde = Tde::new(&p, cfg, 5);
        for _ in 0..30 {
            rig.drive(&wl, 80, 60, 24);
            let _ = tde.run(&mut rig.db, None);
        }
        let diverted = tde.plan_upgrades() + tde.suppressed();
        outln!(
            "{:<10} {:>16} {:>22}",
            enable,
            tde.tuning_requests(),
            diverted
        );
        results.push((tde.tuning_requests(), diverted));
    }
    assert!(
        results[0].0 < results[1].0,
        "the filter must cut tuning requests"
    );
    assert!(results[0].1 > 0 && results[1].1 == 0);
}

/// Ablation 2 — TDE period: longer windows mean later detection of a
/// real problem.
fn ablate_tde_period() {
    outln!("\n--- 2. TDE observation-period sweep (detection latency) ---");
    outln!("{:<14} {:>22}", "period (s)", "detected after (s)");
    let mut latencies = Vec::new();
    for period_s in [30u64, 60, 300] {
        let wl = AdulteratedWorkload::new(tpcc(1.0), 0.5);
        let mut rig = Rig::new(
            DbFlavor::Postgres,
            InstanceType::M4XLarge,
            wl.base().catalog().clone(),
            7,
        );
        let mut tde = Tde::new(&rig.db.profile().clone(), TdeConfig::default(), 9);
        // The problem starts at t=0; run until the first tuning request.
        let mut detected_at = None;
        for w in 1..=20 {
            rig.drive(&wl, 100, period_s, 24);
            let r = tde.run(&mut rig.db, None);
            if r.tuning_request {
                detected_at = Some(w * period_s);
                break;
            }
        }
        let at = detected_at.expect("spilling workload must be detected");
        outln!("{:<14} {:>22}", period_s, at);
        latencies.push(at);
    }
    assert!(
        latencies[0] <= latencies[2],
        "longer periods cannot detect sooner"
    );
}

/// Ablation 3 — reservoir size: too small a sample misses rare spilling
/// templates.
fn ablate_reservoir() {
    outln!("\n--- 3. reservoir-size sweep (rare-spill recall over 20 windows) ---");
    outln!("{:<14} {:>18}", "capacity", "windows w/ throttle");
    let mut hits = Vec::new();
    for cap in [2usize, 8, 64] {
        // 2% of queries spill — rare enough to stress a tiny reservoir.
        let wl = AdulteratedWorkload::new(tpcc(1.0), 0.02);
        let mut rig = Rig::new(
            DbFlavor::Postgres,
            InstanceType::M4XLarge,
            wl.base().catalog().clone(),
            11,
        );
        let cfg = TdeConfig {
            reservoir_capacity: cap,
            ..TdeConfig::default()
        };
        let mut tde = Tde::new(&rig.db.profile().clone(), cfg, 13);
        let mut windows_with = 0;
        for _ in 0..20 {
            rig.drive(&wl, 100, 60, 24);
            let r = tde.run(&mut rig.db, None);
            if r.throttles
                .iter()
                .any(|t| matches!(t.reason, autodbaas_core::ThrottleReason::MemorySpill(_)))
            {
                windows_with += 1;
            }
        }
        outln!("{:<14} {:>18}", cap, windows_with);
        hits.push(windows_with);
    }
    assert!(
        hits[2] >= hits[0],
        "bigger reservoirs must not reduce recall"
    );
    assert!(hits[2] > 0, "the rare spill must be caught at k=64");
}

/// Ablation 4 — BO knob subset: with few samples, tuning everything at
/// once is worse than tuning the ranked subset.
fn ablate_knob_subset() {
    outln!("\n--- 4. BO tune_top_k sweep (recommendation quality, 30 samples) ---");
    outln!("{:<14} {:>18}", "tune_top_k", "achieved qps");
    let wl = AdulteratedWorkload::new(tpcc(1.0), 0.3);
    let profile = autodbaas_simdb::KnobProfile::postgres();
    let mut repo = WorkloadRepository::new();
    let wid = repo.register("live", false);
    let mut rng = StdRng::seed_from_u64(17);
    for i in 0..30 {
        let mut db = SimDatabase::new(
            DbFlavor::Postgres,
            InstanceType::M4XLarge,
            autodbaas_simdb::DiskKind::Ssd,
            wl.base().catalog().clone(),
            40 + i,
        );
        let unit: Vec<f64> = (0..profile.len()).map(|_| rng.gen()).collect();
        let raw = autodbaas_tuner::denormalize_config(&profile, &unit);
        for (k, (kid, spec)) in profile.iter().enumerate() {
            if !spec.restart_required {
                db.set_knob_direct(kid, raw[k]);
            }
        }
        let before = db.metrics_snapshot();
        drive_db(&mut db, &wl, 30, 200, &mut rng);
        let delta = db.metrics_snapshot().delta(&before);
        repo.add_sample(
            wid,
            Sample {
                config: normalize_config(&profile, db.knobs().as_vec()),
                metrics: delta.clone(),
                objective: delta[MetricId::QueriesExecuted.index()] / 30.0,
                quality: SampleQuality::High,
            },
        );
    }
    let mut achieved = Vec::new();
    for k in [3usize, 6, 15] {
        let cfg = BoConfig {
            tune_top_k: k,
            kappa: 0.1,
            ..BoConfig::default()
        };
        let mut tuner = BoTuner::new(cfg, 23);
        let rec = tuner.recommend(&repo, wid).expect("trained");
        // Evaluate the recommendation.
        let mut db = SimDatabase::new(
            DbFlavor::Postgres,
            InstanceType::M4XLarge,
            autodbaas_simdb::DiskKind::Ssd,
            wl.base().catalog().clone(),
            999,
        );
        let raw = autodbaas_tuner::denormalize_config(&profile, &rec.config);
        for (i, (kid, spec)) in profile.iter().enumerate() {
            if !spec.restart_required {
                db.set_knob_direct(kid, raw[i]);
            }
        }
        let mut eval_rng = StdRng::seed_from_u64(29);
        let before = db.metrics_snapshot();
        drive_db(&mut db, &wl, 60, 200, &mut eval_rng);
        let qps = db.metrics_snapshot().delta(&before)[MetricId::QueriesExecuted.index()] / 60.0;
        outln!("{:<14} {:>18.0}", k, qps);
        achieved.push(qps);
    }
    // Focused tuning must not lose badly to the full-dimensional sweep.
    assert!(
        achieved[1] >= achieved[2] * 0.9,
        "top-6 focus should match or beat all-15 ({:.0} vs {:.0})",
        achieved[1],
        achieved[2]
    );
}

fn drive_db(db: &mut SimDatabase, wl: &dyn QuerySource, secs: u64, rate: u64, rng: &mut StdRng) {
    for _ in 0..secs {
        for _ in 0..8 {
            let q = wl.next_query(rng);
            let _ = db.submit(&q, (rate / 8).max(1));
        }
        db.tick(1_000);
    }
}

/// Ablation 5 — learned TDE (future work): distilled online, its
/// agreement with the rule engine must climb well above chance.
fn ablate_learned_tde() {
    outln!("\n--- 5. learned TDE distillation (agreement with the rule engine) ---");
    let wl = AdulteratedWorkload::new(tpcc(1.0), 0.4);
    let mut rig = Rig::new(
        DbFlavor::Postgres,
        InstanceType::M4XLarge,
        wl.base().catalog().clone(),
        31,
    );
    let profile = rig.db.profile().clone();
    let mut repo = WorkloadRepository::new();
    seed_offline(&mut repo, &tpcc(1.0), DbFlavor::Postgres, 6, 33);
    let mut tde = Tde::new(&profile, TdeConfig::default(), 37);
    let mut learned = LearnedDetector::new(&profile, 41);
    let mut snap = rig.db.metrics_snapshot();
    let mut checkpoints = Vec::new();
    for w in 1..=120 {
        // Alternate busy and quiet windows so both labels occur.
        let rate = if w % 3 == 0 { 5 } else { 150 };
        rig.drive(&wl, rate, 60, 24);
        let now = rig.db.metrics_snapshot();
        let delta = now.delta(&snap);
        snap = now;
        let report = tde.run(&mut rig.db, Some(&repo));
        learned.observe(rig.db.knobs(), &delta, &report);
        if w % 40 == 0 {
            checkpoints.push(learned.recent_agreement());
            outln!(
                "after {w:>3} windows: recent agreement = {:.2} (lifetime {:.2})",
                learned.recent_agreement(),
                learned.agreement()
            );
        }
    }
    assert!(
        *checkpoints.last().unwrap() > 0.6,
        "the distilled detector must agree with the rules most of the time"
    );
}
