//! Fig. 14 + Table 1 — "Throttles captured when tuner is Ottertune":
//! throttles detected upon change of the executing workload.
//!
//! Table 1's six experiments switch between standard workloads loaded on
//! one m4.xlarge PostgreSQL instance (22 GB TPCC, 18.34 GB YCSB, 16 GB
//! Twitter, 20.2 GB Wikipedia) and record which knob classes throttle in
//! the minutes after the switch. Expectations per Table 1:
//! #1 YCSB→TPCC: background-writer (+async); #2 TPCC→YCSB: memory+async;
//! #3 YCSB→Wiki: async; #4 Wiki→YCSB: (none); #5 TPCC→Twitter:
//! memory+async; #6 Twitter→TPCC: background-writer.

use autodbaas_bench::{header, seed_offline, Rig};
use autodbaas_core::{Tde, TdeConfig};
use autodbaas_simdb::{Catalog, DbFlavor, InstanceType, KnobClass};
use autodbaas_telemetry::outln;
use autodbaas_tuner::WorkloadRepository;
use autodbaas_workload::{by_name, MixWorkload};

/// Rate each workload runs at in this experiment (scaled down uniformly so
/// an m4.xlarge isn't saturated by twitter's 10k rps).
fn rate_for(name: &str) -> u64 {
    match name {
        "tpcc" => 1_600,
        "ycsb" => 2_500,
        "twitter" => 4_000,
        "wikipedia" => 500,
        _ => 500,
    }
}

/// Paper sizes for Table 1 (GB).
fn size_for(name: &str) -> f64 {
    match name {
        "tpcc" => 22.0,
        "ycsb" => 18.34,
        "twitter" => 16.0,
        "wikipedia" => 20.2,
        _ => 20.0,
    }
}

struct Outcome {
    throttles_after: u64,
    classes: Vec<&'static str>,
    detected_in_windows: Option<usize>,
}

fn run_switch(from: &str, to: &str, repo: &WorkloadRepository, seed: u64) -> Outcome {
    // Both datasets loaded on one instance; the "to" workload is rebased
    // onto the second half of the catalog.
    let mut wl_from = by_name(from).expect("known workload");
    let mut wl_to = by_name(to).expect("known workload");
    rebuild_at_size(&mut wl_from, size_for(from));
    rebuild_at_size(&mut wl_to, size_for(to));
    let mut catalog = Catalog::new();
    for t in wl_from.catalog().clone().iter() {
        catalog.add_table(format!("{from}_{}", t.name), t.rows, t.row_bytes, t.indexes);
    }
    let offset = catalog.len() as u32;
    for t in wl_to.catalog().clone().iter() {
        catalog.add_table(format!("{to}_{}", t.name), t.rows, t.row_bytes, t.indexes);
    }
    wl_to.rebase_tables(offset);

    let mut rig = Rig::new(DbFlavor::Postgres, InstanceType::M4XLarge, catalog, seed);
    let roles = rig.db.planner().roles().clone();
    rig.db
        .set_knob_direct(roles.buffer_pool, InstanceType::M4XLarge.mem_bytes() * 0.25);
    let mut tde = Tde::new(&rig.db.profile().clone(), TdeConfig::default(), seed ^ 1);

    // Phase A: settle on the "from" workload.
    for _ in 0..12 {
        rig.drive(&wl_from, rate_for(from), 60, 24);
        let _ = tde.run(&mut rig.db, Some(repo));
    }
    // Phase B: the switch (unannounced to the TDE, as in production).
    let before = tde.throttle_counts();
    let mut detected_in = None;
    let mut classes = std::collections::BTreeSet::new();
    // Table 1's windows are 5–7 min; we observe nine 60 s windows so the
    // MDP (2–4 min cadence) gets several probes at the new pattern.
    for w in 0..9 {
        rig.drive(&wl_to, rate_for(to), 60, 24);
        let report = tde.run(&mut rig.db, Some(repo));
        if !report.throttles.is_empty() && detected_in.is_none() {
            detected_in = Some(w + 1);
        }
        for t in &report.throttles {
            classes.insert(match t.class {
                KnobClass::Memory => "memory",
                KnobClass::BackgroundWriter => "bgwriter",
                KnobClass::AsyncPlanner => "async/planner",
            });
        }
    }
    let after = tde.throttle_counts();
    Outcome {
        throttles_after: (0..3).map(|k| after[k] - before[k]).sum(),
        classes: classes.into_iter().collect(),
        detected_in_windows: detected_in,
    }
}

fn rebuild_at_size(wl: &mut MixWorkload, gb: f64) {
    // The by_name sizes differ from Table 1's; rebuild at the table's GB.
    let name = wl.name();
    *wl = match name {
        "tpcc" => autodbaas_workload::tpcc(gb),
        "ycsb" => autodbaas_workload::ycsb(gb),
        "twitter" => autodbaas_workload::twitter(gb),
        "wikipedia" => autodbaas_workload::wikipedia(gb),
        _ => return,
    };
}

fn main() {
    header(
        "Fig. 14 / Table 1",
        "throttles captured on workload switches (PostgreSQL, m4.xlarge)",
        "#1 ycsb->tpcc: bgwriter; #2 tpcc->ycsb: memory+async; #3 ycsb->wiki: \
         async; #4 wiki->ycsb: none/low; #5 tpcc->twitter: memory+async; \
         #6 twitter->tpcc: bgwriter",
    );
    let mut repo = WorkloadRepository::new();
    seed_offline(
        &mut repo,
        &autodbaas_workload::tpcc(2.0),
        DbFlavor::Postgres,
        10,
        7,
    );

    let experiments = [
        ("#1", "ycsb", "tpcc"),
        ("#2", "tpcc", "ycsb"),
        ("#3", "ycsb", "wikipedia"),
        ("#4", "wikipedia", "ycsb"),
        ("#5", "tpcc", "twitter"),
        ("#6", "twitter", "tpcc"),
    ];
    outln!(
        "\n{:<4} {:<22} {:>10} {:>12}  classes",
        "exp",
        "switch",
        "throttles",
        "detected in"
    );
    let mut any_detected = 0;
    for (id, from, to) in experiments {
        let o = run_switch(from, to, &repo, 0x14);
        if o.detected_in_windows.is_some() {
            any_detected += 1;
        }
        let switch = format!("{from} -> {to}");
        let detected = o
            .detected_in_windows
            .map_or_else(|| "-".to_string(), |w| format!("window {w}"));
        let classes = if o.classes.is_empty() {
            "-".to_string()
        } else {
            o.classes.join(", ")
        };
        outln!(
            "{:<4} {:<22} {:>10} {:>12}  {}",
            id,
            switch,
            o.throttles_after,
            detected,
            classes
        );
    }
    assert!(
        any_detected >= 4,
        "most switches must be detected ({any_detected}/6)"
    );
    outln!(
        "\nresult: workload switches surface as throttles within a few \
         observation windows — shape reproduced."
    );
}
