//! Fig. 17 (repo extension) — differential tuning across backend engines.
//!
//! The paper's multiplier claim is that one AutoDBaaS deployment tunes a
//! *heterogeneous* fleet (PostgreSQL 9.6 and MySQL 5.6 behind the same
//! TDE). The backend substrate pushes that further: the page-heap adapter
//! (checkpoint write bursts) and the LSM adapter (compaction write-amp,
//! write stalls, bloom-governed read-amp) expose entirely different
//! physics through the same observable vocabulary, and the same TDE +
//! ConfigDirector must tune both.
//!
//! Three runs:
//!   1. per-backend convergence — the same production workload on each
//!      backend alone, hourly throughput from defaults onward;
//!   2. a mixed fleet — both adapters hosted *simultaneously* under one
//!      ConfigDirector, per-backend curves recorded side by side;
//!   3. the mixed fleet repeated at the same seed — the event-log
//!      fingerprints must match bit-for-bit (heterogeneity does not cost
//!      determinism).
//!
//! Flags: `--hours 6 --seed 42` (defaults shown). With
//! `--resume <snapshot>` the first mixed-fleet run crosses a save/reload
//! boundary at the halfway hour and must still match the uninterrupted
//! replay bit-for-bit.

use autodbaas_bench::{arg_value, checkpoint_roundtrip, header, resume_arg, sparkline, NodeSpec};
use autodbaas_cloudsim::{FleetConfig, FleetSim};
use autodbaas_core::{TdeConfig, TuningPolicy};
use autodbaas_ctrlplane::{ServiceId, TunerKind};
use autodbaas_simdb::{BackendKind, DbFlavor, InstanceType, MetricId};
use autodbaas_telemetry::outln;
use autodbaas_telemetry::{MILLIS_PER_HOUR, MILLIS_PER_MIN};
use autodbaas_workload::{tpcc, AdulteratedWorkload, ArrivalProcess};

/// The two engine profiles under test (the MySQL flavor shares the
/// page-heap adapter, so the interesting contrast is these two).
const BACKENDS: [DbFlavor; 2] = [DbFlavor::Postgres, DbFlavor::Lsm];

fn fleet(seed: u64) -> FleetSim {
    FleetSim::new(
        FleetConfig {
            tick_ms: 2_000,
            tde_period_ms: 5 * MILLIS_PER_MIN,
            gate_samples_with_tde: true,
            tuner: TunerKind::Bo,
            seed,
            ..FleetConfig::default()
        },
        4,
    )
}

/// Add one demanding production service of `flavor`; returns its index.
fn add_service(sim: &mut FleetSim, flavor: DbFlavor, name: &str, seed: u64) -> usize {
    let wl = AdulteratedWorkload::new(tpcc(2.0), 0.25);
    let catalog = wl.base().catalog().clone();
    let id = sim.seed_offline_training(&tpcc(1.0), flavor, 8);
    let node = NodeSpec::new(flavor, InstanceType::M4XLarge).managed(
        catalog,
        Box::new(wl),
        ArrivalProcess::Constant(120.0),
        TuningPolicy::Periodic(10 * MILLIS_PER_MIN),
        id,
        TdeConfig::default(),
        seed ^ 0xdead,
    );
    sim.add_node(node, name)
}

/// Hourly throughput (queries/s) of node `idx` over `hours`.
fn hourly_qps(sim: &mut FleetSim, idx: usize, hours: u64) -> Vec<f64> {
    let mut out = Vec::new();
    for _ in 0..hours {
        let before = sim.nodes[idx].db().metrics_snapshot();
        sim.run_for(MILLIS_PER_HOUR);
        let delta = sim.nodes[idx].db().metrics_snapshot().delta(&before);
        out.push(delta[MetricId::QueriesExecuted.index()] / 3_600.0);
    }
    out
}

/// Per-backend convergence, each backend alone under its own fleet.
fn solo_convergence(flavor: DbFlavor, hours: u64, seed: u64) -> (Vec<f64>, usize) {
    let mut sim = fleet(seed);
    let idx = add_service(&mut sim, flavor, "measured", seed);
    let curve = hourly_qps(&mut sim, idx, hours);
    let recs = sim
        .director
        .recommendation_history(ServiceId(idx as u64))
        .len();
    (curve, recs)
}

struct MixedOutcome {
    curves: Vec<(DbFlavor, Vec<f64>)>,
    recs: Vec<(DbFlavor, usize)>,
    fingerprint: u64,
    availability: f64,
}

/// Both adapters simultaneously under one ConfigDirector. With a
/// `checkpoint` path the fleet round-trips through the snapshot file at
/// the halfway hour — the replay assertion downstream then doubles as a
/// snapshot-identity check.
fn mixed_fleet(hours: u64, seed: u64, checkpoint: Option<&std::path::Path>) -> MixedOutcome {
    let mut sim = fleet(seed);
    let idxs: Vec<(DbFlavor, usize)> = BACKENDS
        .iter()
        .map(|&flavor| {
            let name = format!("mixed-{}", BackendKind::for_flavor(flavor).name());
            (flavor, add_service(&mut sim, flavor, &name, seed))
        })
        .collect();
    let mut curves: Vec<(DbFlavor, Vec<f64>)> =
        idxs.iter().map(|&(f, _)| (f, Vec::new())).collect();
    for hour in 0..hours {
        if hour == hours / 2 {
            if let Some(path) = checkpoint {
                sim = checkpoint_roundtrip(sim, path);
            }
        }
        let before: Vec<_> = idxs
            .iter()
            .map(|&(_, i)| sim.nodes[i].db().metrics_snapshot())
            .collect();
        sim.run_for(MILLIS_PER_HOUR);
        for (k, &(_, i)) in idxs.iter().enumerate() {
            let delta = sim.nodes[i].db().metrics_snapshot().delta(&before[k]);
            curves[k]
                .1
                .push(delta[MetricId::QueriesExecuted.index()] / 3_600.0);
        }
    }
    let recs = idxs
        .iter()
        .map(|&(f, i)| {
            (
                f,
                sim.director
                    .recommendation_history(ServiceId(i as u64))
                    .len(),
            )
        })
        .collect();
    MixedOutcome {
        curves,
        recs,
        fingerprint: sim.events.fingerprint(),
        availability: sim.availability(),
    }
}

fn main() {
    let hours: u64 = arg_value("--hours")
        .map(|v| v.parse().unwrap())
        .unwrap_or(6);
    let seed: u64 = arg_value("--seed")
        .map(|v| v.parse().unwrap())
        .unwrap_or(42);
    header(
        "Fig. 17",
        "one TDE + ConfigDirector tuning heterogeneous backend engines",
        "both the page-heap and LSM adapters converge from defaults under \
         the same control plane; a mixed fleet hosts both at once, \
         deterministically",
    );

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;

    outln!("\nper-backend convergence (hourly queries/s, each backend alone):");
    for &flavor in &BACKENDS {
        let kind = BackendKind::for_flavor(flavor);
        let (curve, recs) = solo_convergence(flavor, hours, seed);
        sparkline(&format!("{} ({})", kind.name(), flavor), &curve);
        let early = curve[0];
        let late = mean(&curve[curve.len().saturating_sub(2)..]);
        outln!(
            "  {:<9} hour0 = {early:.0} qps, final = {late:.0} qps ({:+.1}%), {recs} recommendation(s)",
            kind.name(),
            (late / early.max(1e-9) - 1.0) * 100.0
        );
        assert!(
            recs > 0,
            "the director must issue recommendations for the {} backend",
            kind.name()
        );
        assert!(
            late >= early * 0.9,
            "{} must not regress materially under tuning (hour0 {early:.0} vs final {late:.0})",
            kind.name()
        );
    }

    outln!("\nmixed fleet: both adapters under one ConfigDirector:");
    let resume = resume_arg();
    if let Some(path) = &resume {
        outln!("  (checkpointing through {})", path.display());
    }
    let mixed = mixed_fleet(hours, seed, resume.as_deref());
    for (flavor, curve) in &mixed.curves {
        let kind = BackendKind::for_flavor(*flavor);
        sparkline(&format!("mixed {}", kind.name()), curve);
    }
    for (flavor, recs) in &mixed.recs {
        let kind = BackendKind::for_flavor(*flavor);
        outln!(
            "  {:<9} {recs} recommendation(s) in the shared queue",
            kind.name()
        );
        assert!(
            *recs > 0,
            "mixed fleet: the {} service must receive recommendations",
            kind.name()
        );
    }
    outln!("  availability = {:.4}", mixed.availability);
    assert!(
        mixed.availability > 0.97,
        "mixed fleet availability floor (got {:.4})",
        mixed.availability
    );

    // Replay: heterogeneity (and a --resume checkpoint crossing) must
    // not cost determinism.
    let replay = mixed_fleet(hours, seed, None);
    assert_eq!(
        mixed.fingerprint, replay.fingerprint,
        "mixed-fleet replay must be bit-identical"
    );
    outln!(
        "\nreplay fingerprint {:#018x} matches — mixed fleet is deterministic.",
        mixed.fingerprint
    );
    outln!("\nresult: one control plane tunes both engine profiles — claim extended.");
}
