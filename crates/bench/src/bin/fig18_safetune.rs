//! Fig. 18 (repo extension) — safe online tuning over the 33-day
//! production trace, checkpointed across real process boundaries.
//!
//! OnlineTune's framing (see PAPERS.md): tuning a *live* database is not
//! an offline search — every exploratory config the tuner tries is
//! applied to production traffic, so an optimizer that eventually
//! converges can still be unshippable if the path there tanks the SLO.
//! This harness scores that path. Two identical fleets run the paper's
//! 33-day production trace (132 tables, 59 GB, diurnal Fig. 8 arrival)
//! from a cold tuner start:
//!
//!   * **guarded** — the [`SafetyGovernor`] clamps every BO candidate
//!     into a learned safe region around the booted config, expanding it
//!     on clean windows and shrinking it on SLO-floor breaches;
//!   * **unguarded** — identical accounting (same baseline EWMA, same
//!     SLO floor, same regret ledger) over a region spanning the whole
//!     unit cube, so nothing is ever clamped.
//!
//! Both arms report baseline-relative cumulative regret and SLO-floor
//! breach counts; the guarded arm must come out with *zero* breaches and
//! strictly lower regret. The 33 days never fit one process politely:
//! the run is split into `--segments` real child processes, each of
//! which resumes both fleets from the shared `--resume` snapshot file,
//! advances one segment, and checkpoints back — the snapshot subsystem
//! is load-bearing infrastructure here, not a demo.
//!
//! Flags: `--days 33 --segments 3 --dbs 2 --seed 42` (defaults shown),
//! `--resume <snapshot>` to name the checkpoint file (a temp file
//! otherwise; pointing `--resume` at a half-finished state continues
//! it). `--segment-run` is the internal child-process mode and can also
//! be invoked by hand to drive one segment at a time.

use autodbaas_bench::safetune::production_arm;
use autodbaas_bench::{arg_value, header, load_fleet_pair, resume_arg, save_fleet_pair};
use autodbaas_telemetry::{outln, MILLIS_PER_HOUR};
use autodbaas_workload::TRACE_DAYS;
use std::path::{Path, PathBuf};

const MILLIS_PER_DAY: u64 = 24 * MILLIS_PER_HOUR;

struct Args {
    days: u64,
    segments: u64,
    dbs: usize,
    seed: u64,
}

fn args() -> Args {
    Args {
        days: arg_value("--days")
            .map(|v| v.parse().unwrap())
            .unwrap_or(TRACE_DAYS),
        segments: arg_value("--segments")
            .map(|v| v.parse().unwrap())
            .unwrap_or(3),
        dbs: arg_value("--dbs").map(|v| v.parse().unwrap()).unwrap_or(2),
        seed: arg_value("--seed")
            .map(|v| v.parse().unwrap())
            .unwrap_or(42),
    }
}

fn day(ms: u64) -> f64 {
    ms as f64 / MILLIS_PER_DAY as f64
}

/// Child-process mode: resume both arms from the snapshot (or build them
/// fresh), advance one segment, checkpoint back, exit.
fn run_segment(path: &Path, a: &Args) {
    let total_ms = a.days * MILLIS_PER_DAY;
    let seg_ms = total_ms.div_ceil(a.segments);
    let ((mut guarded, mut unguarded), resumed) = match load_fleet_pair(path) {
        Some(pair) => (pair, true),
        None => (
            (
                production_arm(true, a.dbs, a.seed),
                production_arm(false, a.dbs, a.seed),
            ),
            false,
        ),
    };
    let from = guarded.now();
    assert!(from < total_ms, "trace already complete at {from} ms");
    let until = (from + seg_ms).min(total_ms);
    guarded.run_for(until - from);
    unguarded.run_for(until - unguarded.now());
    save_fleet_pair(path, &guarded, &unguarded);
    let gs = guarded.safety().expect("guarded governor");
    let us = unguarded.safety().expect("unguarded governor");
    outln!(
        "  segment day {:5.2} -> {:5.2} ({}): regret guarded {:>10.1} / unguarded {:>10.1}, breaches {} / {}",
        day(from),
        day(until),
        if resumed { "resumed" } else { "fresh" },
        gs.cumulative_regret(),
        us.cumulative_regret(),
        gs.total_violations(),
        us.total_violations()
    );
    outln!(
        "           worst window shortfall vs baseline: guarded {:.3} / unguarded {:.3}",
        gs.worst_shortfall(),
        us.worst_shortfall()
    );
}

/// Parent mode: spawn one real child process per segment, each resuming
/// from the shared snapshot file, then score the finished arms.
fn main() {
    let a = args();
    if std::env::args().any(|arg| arg == "--segment-run") {
        let path = resume_arg().expect("--segment-run requires --resume <snapshot>");
        run_segment(&path, &a);
        return;
    }

    header(
        "Fig. 18",
        &format!(
            "safe online tuning, {} production services per arm, {} days in {} process segments",
            a.dbs, a.days, a.segments
        ),
        "the guarded tuner finishes the trace with zero SLO-floor breaches \
         and strictly lower cumulative regret than the unguarded tuner",
    );

    let path: PathBuf = resume_arg()
        .unwrap_or_else(|| std::env::temp_dir().join(format!("fig18_safetune_{}.snap", a.seed)));
    // A stale pair from an earlier aborted run would silently shorten this
    // one — only a user-supplied --resume is treated as state to continue.
    if resume_arg().is_none() && path.exists() {
        std::fs::remove_file(&path).expect("clear stale snapshot");
    }

    let total_ms = a.days * MILLIS_PER_DAY;
    let exe = std::env::current_exe().expect("own binary path");
    let mut spawned = 0u64;
    loop {
        let status = std::process::Command::new(&exe)
            .args([
                "--segment-run",
                "--resume",
                path.to_str().expect("utf-8 snapshot path"),
                "--days",
                &a.days.to_string(),
                "--segments",
                &a.segments.to_string(),
                "--dbs",
                &a.dbs.to_string(),
                "--seed",
                &a.seed.to_string(),
            ])
            .status()
            .expect("spawn segment process");
        assert!(status.success(), "segment process failed: {status}");
        spawned += 1;
        let (g, _) = load_fleet_pair(&path).expect("checkpoint after segment");
        if g.now() >= total_ms {
            break;
        }
        assert!(spawned <= a.segments, "segments did not advance the clock");
    }

    let (guarded, unguarded) = load_fleet_pair(&path).expect("final checkpoint");
    std::fs::remove_file(&path).ok();
    assert_eq!(guarded.now(), total_ms);
    assert_eq!(unguarded.now(), total_ms);
    let gs = guarded.safety().expect("guarded governor");
    let us = unguarded.safety().expect("unguarded governor");
    let (g_clamps, g_breaches) = guarded.meter.safety_totals();
    let (u_clamps, u_breaches) = unguarded.meter.safety_totals();
    let (g_ph, g_lsm, g_un) = guarded.meter.backend_totals();

    outln!("\n{:<38} {:>14} {:>14}", "metric", "guarded", "unguarded");
    outln!(
        "{:<38} {:>14.1} {:>14.1}",
        "cumulative regret (objective-s)",
        gs.cumulative_regret(),
        us.cumulative_regret()
    );
    outln!(
        "{:<38} {:>14} {:>14}",
        "SLO-floor breaches",
        gs.total_violations(),
        us.total_violations()
    );
    outln!(
        "{:<38} {:>14} {:>14}",
        "candidates clamped into safe region",
        g_clamps,
        u_clamps
    );
    outln!(
        "{:<38} {:>14.3} {:>14.3}",
        "worst window shortfall vs baseline",
        gs.worst_shortfall(),
        us.worst_shortfall()
    );
    outln!("{:<38} {:>14} {:>14}", "process segments", spawned, spawned);
    outln!(
        "recommendations by backend (guarded): pageheap {g_ph}, lsm {g_lsm}, unattributed {g_un}"
    );

    assert_eq!(
        g_breaches,
        gs.total_violations(),
        "meter/ledger breach split"
    );
    assert_eq!(
        u_breaches,
        us.total_violations(),
        "meter/ledger breach split"
    );
    assert_eq!(u_clamps, 0, "the observe-only arm must never clamp");
    assert!(
        g_clamps > 0,
        "the guarded arm never clamped a candidate — the region did no work"
    );
    assert!(
        spawned >= 3.min(a.segments),
        "too few real process segments"
    );
    assert_eq!(
        gs.total_violations(),
        0,
        "guarded arm must finish the trace with zero SLO-floor breaches"
    );
    assert!(
        gs.cumulative_regret() < us.cumulative_regret(),
        "guarded regret {:.1} must undercut unguarded {:.1}",
        gs.cumulative_regret(),
        us.cumulative_regret()
    );
    outln!(
        "\nresult: the safe region held the SLO for {} days of live tuning \
         while the unguarded tuner paid {:.1}x the regret.",
        a.days,
        us.cumulative_regret() / gs.cumulative_regret().max(1e-9)
    );
}
