//! Fig. 9 — "Requests per minute graph for 80 live connected databases".
//!
//! The same fleet is run under three tuning-request policies: TDE
//! event-driven, periodic 5-minute, and periodic 10-minute. Expectation:
//! the TDE curve sits well below both periodic curves and peaks when the
//! workload pattern shifts (the 8–11 AM microservice surge); the periodic
//! curves are flat at `fleet / period`. Fewer requests × the ~100–200 s
//! GPR service time is precisely what multiplies how many databases one
//! tuner deployment can serve.
//!
//! After the figure itself, a fleet-size sweep (48 → 10,000 services on
//! the sharded tick engine) reports drive throughput and tuning-request
//! load per size — how far past the paper's 80 databases one control
//! plane stretches.
//!
//! Flags: `--dbs 80 --hours 12 --tick 5` (defaults shown).

use autodbaas_bench::arg_value;
use autodbaas_bench::header;
use autodbaas_bench::longtail_fleet;
use autodbaas_bench::sparkline;
use autodbaas_bench::NodeSpec;
use autodbaas_cloudsim::{FleetConfig, FleetSim};
use autodbaas_core::{TdeConfig, TuningPolicy};
use autodbaas_ctrlplane::TunerKind;
use autodbaas_simdb::{DbFlavor, InstanceType};
use autodbaas_telemetry::outln;
use autodbaas_telemetry::{MILLIS_PER_HOUR, MILLIS_PER_MIN};
use autodbaas_tuner::WorkloadId;
use autodbaas_workload::{
    production, tpcc, twitter, wikipedia, ycsb, AdulteratedWorkload, ArrivalProcess,
    DiurnalProfile, QuerySource,
};

fn build_fleet(policy: TuningPolicy, n_dbs: usize, tick_ms: u64, seed: u64) -> FleetSim {
    let mut sim = FleetSim::new(
        FleetConfig {
            tick_ms,
            tde_period_ms: 5 * MILLIS_PER_MIN,
            gate_samples_with_tde: true,
            tuner: TunerKind::Bo,
            seed,
            ..FleetConfig::default()
        },
        12, // the paper's 12 tuner instances
    );
    let plans = [
        InstanceType::T2Small,
        InstanceType::T2Medium,
        InstanceType::M4Large,
        InstanceType::T2Large,
        InstanceType::M4XLarge,
    ];
    // Bootstrap like the paper: offline training on the standard mixes.
    sim.seed_offline_training(&tpcc(1.0), DbFlavor::Postgres, 16);
    sim.seed_offline_training(&ycsb(1.0), DbFlavor::Postgres, 12);

    for i in 0..n_dbs {
        // A realistic customer mix: some production-diurnal services, some
        // steady OLTP services, and every fifth one genuinely mis-tuned.
        let (workload, arrival, catalog): (Box<dyn QuerySource + Send>, ArrivalProcess, _) =
            match i % 5 {
                0 => {
                    let wl = AdulteratedWorkload::new(tpcc(1.0), 0.3);
                    let cat = wl.base().catalog().clone();
                    (Box::new(wl), ArrivalProcess::Constant(150.0), cat)
                }
                1 => {
                    // Diurnal production-like service (scaled per tenant).
                    let wl = production();
                    let cat = wl.catalog().clone();
                    let arr = ArrivalProcess::Diurnal(DiurnalProfile {
                        base_rps: 40.0,
                        peak_rps: 420.0,
                        ..DiurnalProfile::default()
                    });
                    (Box::new(wl), arr, cat)
                }
                2 => {
                    let wl = ycsb(1.0);
                    let cat = wl.catalog().clone();
                    (Box::new(wl), ArrivalProcess::Constant(250.0), cat)
                }
                3 => {
                    let wl = wikipedia(1.0);
                    let cat = wl.catalog().clone();
                    (Box::new(wl), ArrivalProcess::Constant(120.0), cat)
                }
                _ => {
                    let wl = twitter(1.0);
                    let cat = wl.catalog().clone();
                    (Box::new(wl), ArrivalProcess::Constant(300.0), cat)
                }
            };
        let node = NodeSpec::new(DbFlavor::Postgres, plans[i % plans.len()]).managed(
            catalog,
            workload,
            arrival,
            policy,
            WorkloadId(0),
            TdeConfig::default(),
            seed ^ (i as u64).wrapping_mul(0x45d9),
        );
        sim.add_node(node, &format!("db-{i}"));
    }
    sim
}

fn main() {
    let n_dbs: usize = arg_value("--dbs").map(|v| v.parse().unwrap()).unwrap_or(80);
    let hours: u64 = arg_value("--hours")
        .map(|v| v.parse().unwrap())
        .unwrap_or(12);
    let tick_s: u64 = arg_value("--tick").map(|v| v.parse().unwrap()).unwrap_or(5);
    header(
        "Fig. 9",
        &format!("tuning requests/min, {n_dbs} live databases over {hours} h"),
        "TDE-driven requests sit well below 5-/10-min periodic polling and \
         peak with the morning workload surge; periodic curves are flat",
    );

    let mut rows = Vec::new();
    for (name, policy) in [
        ("TDE-driven", TuningPolicy::TdeDriven),
        ("periodic 5 min", TuningPolicy::Periodic(5 * MILLIS_PER_MIN)),
        (
            "periodic 10 min",
            TuningPolicy::Periodic(10 * MILLIS_PER_MIN),
        ),
    ] {
        let mut sim = build_fleet(policy, n_dbs, tick_s * 1000, 42);
        sim.run_for(hours * MILLIS_PER_HOUR);
        let series = sim.director.requests_per_minute(0, hours * MILLIS_PER_HOUR);
        // 15-minute bins for readability.
        let binned: Vec<f64> = series
            .chunks(15)
            .map(|c| c.iter().sum::<f64>() / c.len() as f64)
            .collect();
        let total = sim.director.total_requests();
        let backlog = sim.director.backlog_ms(sim.now()) / 1000.0;
        let (_, _, dollars) = sim.meter.totals();
        let instances = sim.meter.instances_needed((hours * MILLIS_PER_HOUR) as f64);
        rows.push((name, binned, total, backlog, dollars, instances));
    }

    outln!("\nrequests/min (15-min bins across the run):");
    for (name, binned, ..) in &rows {
        sparkline(name, binned);
    }
    outln!(
        "\n{:<18} {:>11} {:>13} {:>15} {:>11} {:>9}",
        "policy",
        "total reqs",
        "reqs/min avg",
        "backlog (s)",
        "tuner $",
        "tuners"
    );
    for (name, _, total, backlog, dollars, instances) in &rows {
        outln!(
            "{:<18} {:>11} {:>13.2} {:>15.1} {:>11.2} {:>9}",
            name,
            total,
            *total as f64 / (hours * 60) as f64,
            backlog,
            dollars,
            instances
        );
    }
    let tde_total = rows[0].2;
    let p5_total = rows[1].2;
    assert!(
        tde_total < p5_total,
        "TDE-driven ({tde_total}) must undercut periodic 5-min ({p5_total})"
    );
    outln!("\nresult: the TDE breaks the periodic-polling floor — shape reproduced.");

    fleet_sweep();
}

/// Fleet-size sweep on the sharded tick engine: how far past the paper's
/// 80 connected databases one control plane stretches. A long-tail tenant
/// fleet (one hot tenant in 128) at each size runs ten simulated minutes;
/// the table reports drive throughput next to the tuning-request load the
/// director absorbed — the two axes that bound fleet capacity.
fn fleet_sweep() {
    let sim_min = 10u64;
    outln!("\nfleet-size sweep (sharded engine, {sim_min} sim-minutes each):");
    outln!(
        "{:>7} {:>10} {:>16} {:>7} {:>11} {:>13}",
        "nodes",
        "wall (s)",
        "node-ticks/s",
        "shards",
        "tune reqs",
        "reqs/min"
    );
    for n in [48usize, 512, 2048, 10_000] {
        let mut sim = longtail_fleet(n, true, 0, 42);
        let t = std::time::Instant::now();
        sim.run_for(sim_min * MILLIS_PER_MIN);
        let wall = t.elapsed().as_secs_f64();
        let node_ticks = (n as u64 * sim_min * 60) as f64;
        let reqs = sim.director.total_requests();
        outln!(
            "{n:>7} {wall:>10.2} {:>16.0} {:>7} {reqs:>11} {:>13.2}",
            node_ticks / wall,
            sim.shard_count(),
            reqs as f64 / sim_min as f64
        );
    }
}
