//! Shared plumbing for the figure-regeneration binaries.

use autodbaas_simdb::{Catalog, DbFlavor, DiskKind, InstanceType, MetricId, SimDatabase};
use autodbaas_telemetry::outln;
use autodbaas_tuner::{normalize_config, Sample, SampleQuality, WorkloadId, WorkloadRepository};
use autodbaas_workload::{MixWorkload, QuerySource};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Print a figure header in a consistent style.
pub fn header(id: &str, title: &str, paper_expectation: &str) {
    outln!("==================================================================");
    outln!("{id}: {title}");
    outln!("paper expectation: {paper_expectation}");
    outln!("==================================================================");
}

/// Print an ASCII sparkline for a series (keeps the binaries dependency-
/// free while still showing shape at a glance).
pub fn sparkline(label: &str, series: &[f64]) {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = series.iter().cloned().fold(f64::MIN, f64::max);
    let min = series.iter().cloned().fold(f64::MAX, f64::min);
    let span = (max - min).max(1e-12);
    let line: String = series
        .iter()
        .map(|v| GLYPHS[(((v - min) / span) * 7.0).round() as usize])
        .collect();
    outln!("{label:<28} {line}  [min {min:.1}, max {max:.1}]");
}

/// A standard single-database rig for figure experiments.
pub struct Rig {
    /// The database under test.
    pub db: SimDatabase,
    /// RNG for workload sampling.
    pub rng: StdRng,
}

impl Rig {
    /// Build a rig on the given instance for a workload's catalog.
    pub fn new(flavor: DbFlavor, instance: InstanceType, catalog: Catalog, seed: u64) -> Self {
        Self::new_with_disk(flavor, instance, DiskKind::Ssd, catalog, seed)
    }

    /// Like [`Rig::new`] with an explicit disk technology.
    pub fn new_with_disk(
        flavor: DbFlavor,
        instance: InstanceType,
        disk: DiskKind,
        catalog: Catalog,
        seed: u64,
    ) -> Self {
        Self {
            db: SimDatabase::new(flavor, instance, disk, catalog, seed),
            rng: StdRng::seed_from_u64(seed ^ 0xbead),
        }
    }

    /// Drive `rate` queries/second of `workload` for `secs` seconds with
    /// `shapes` distinct statements per second.
    pub fn drive(&mut self, workload: &dyn QuerySource, rate: u64, secs: u64, shapes: u64) {
        let shapes = shapes.max(1);
        for _ in 0..secs {
            let per = (rate / shapes).max(1);
            for _ in 0..shapes {
                let q = workload.next_query(&mut self.rng);
                let _ = self.db.submit(&q, per);
            }
            self.db.tick(1_000);
        }
    }

    /// Completed-queries-per-second over the last `secs` window given a
    /// snapshot from the start of the window.
    pub fn qps_since(&self, snap: &autodbaas_simdb::MetricsSnapshot, secs: u64) -> f64 {
        let delta = self.db.metrics_snapshot().delta(snap);
        delta[MetricId::QueriesExecuted.index()] / secs.max(1) as f64
    }
}

/// Populate a repository with offline training samples for `workload` —
/// random reloadable configs, short intense runs (the §5 bootstrap).
pub fn seed_offline(
    repo: &mut WorkloadRepository,
    workload: &MixWorkload,
    flavor: DbFlavor,
    n_samples: usize,
    seed: u64,
) -> WorkloadId {
    let id = repo.register(format!("{}-offline", workload.name()), true);
    let profile = autodbaas_simdb::KnobProfile::for_flavor(flavor);
    let mut rng = StdRng::seed_from_u64(seed);
    for s in 0..n_samples {
        let mut db = SimDatabase::new(
            flavor,
            InstanceType::M4XLarge,
            DiskKind::Ssd,
            workload.catalog().clone(),
            seed ^ (s as u64).wrapping_mul(0x9e37),
        );
        let unit: Vec<f64> = (0..profile.len()).map(|_| rng.gen()).collect();
        let raw = autodbaas_tuner::denormalize_config(&profile, &unit);
        for (i, (kid, spec)) in profile.iter().enumerate() {
            if !spec.restart_required {
                db.set_knob_direct(kid, raw[i]);
            }
        }
        // Offline executions push the database hard — "TPCC … continuously
        // … with 3000 requests per second will generate a high quality
        // sample" (§1). Driving at 2x the nominal rate keeps the instance
        // near capacity so every knob class leaves a mark on the objective.
        let rate = 2 * match workload.default_arrival() {
            autodbaas_workload::ArrivalProcess::Constant(r) => *r as u64,
            _ => 1_000,
        };
        // 60 one-second ticks: the sample window matches the TDE's default
        // observation window, so repository baselines convert correctly.
        let before = db.metrics_snapshot();
        for _ in 0..60 {
            for _ in 0..8 {
                let q = workload.next_query(&mut rng);
                let _ = db.submit(&q, (rate / 8).max(1));
            }
            db.tick(1_000);
        }
        let delta = db.metrics_snapshot().delta(&before);
        let objective = delta[MetricId::QueriesExecuted.index()] / 60.0;
        repo.add_sample(
            id,
            Sample {
                config: normalize_config(&profile, db.knobs().as_vec()),
                metrics: delta,
                objective,
                quality: SampleQuality::High,
            },
        );
    }
    id
}

/// Parse a simple `--flag value` style argument.
pub fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}
