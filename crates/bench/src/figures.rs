//! Shared plumbing for the figure-regeneration binaries.

use autodbaas_cloudsim::{FleetConfig, FleetSim};
use autodbaas_core::{TdeConfig, TuningPolicy};
use autodbaas_simdb::{AnyBackend, Catalog, DbFlavor, DiskKind, InstanceType, MetricId};
use autodbaas_telemetry::outln;
use autodbaas_tuner::{normalize_config, Sample, SampleQuality, WorkloadId, WorkloadRepository};
use autodbaas_workload::{tpcc, ArrivalProcess, MixWorkload, QuerySource};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Print a figure header in a consistent style.
pub fn header(id: &str, title: &str, paper_expectation: &str) {
    outln!("==================================================================");
    outln!("{id}: {title}");
    outln!("paper expectation: {paper_expectation}");
    outln!("==================================================================");
}

/// Print an ASCII sparkline for a series (keeps the binaries dependency-
/// free while still showing shape at a glance).
pub fn sparkline(label: &str, series: &[f64]) {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = series.iter().cloned().fold(f64::MIN, f64::max);
    let min = series.iter().cloned().fold(f64::MAX, f64::min);
    let span = (max - min).max(1e-12);
    let line: String = series
        .iter()
        .map(|v| GLYPHS[(((v - min) / span) * 7.0).round() as usize])
        .collect();
    outln!("{label:<28} {line}  [min {min:.1}, max {max:.1}]");
}

/// A standard single-database rig for figure experiments.
pub struct Rig {
    /// The database under test (any backend adapter).
    pub db: AnyBackend,
    /// RNG for workload sampling.
    pub rng: StdRng,
}

impl Rig {
    /// Build a rig on the given instance for a workload's catalog.
    pub fn new(flavor: DbFlavor, instance: InstanceType, catalog: Catalog, seed: u64) -> Self {
        Self::new_with_disk(flavor, instance, DiskKind::Ssd, catalog, seed)
    }

    /// Like [`Rig::new`] with an explicit disk technology.
    pub fn new_with_disk(
        flavor: DbFlavor,
        instance: InstanceType,
        disk: DiskKind,
        catalog: Catalog,
        seed: u64,
    ) -> Self {
        Self {
            db: crate::NodeSpec::new(flavor, instance)
                .with_disk(disk)
                .db(catalog, seed),
            rng: StdRng::seed_from_u64(seed ^ 0xbead),
        }
    }

    /// Drive `rate` queries/second of `workload` for `secs` seconds with
    /// `shapes` distinct statements per second.
    pub fn drive(&mut self, workload: &dyn QuerySource, rate: u64, secs: u64, shapes: u64) {
        let shapes = shapes.max(1);
        for _ in 0..secs {
            let per = (rate / shapes).max(1);
            for _ in 0..shapes {
                let q = workload.next_query(&mut self.rng);
                let _ = self.db.submit(&q, per);
            }
            self.db.tick(1_000);
        }
    }

    /// Completed-queries-per-second over the last `secs` window given a
    /// snapshot from the start of the window.
    pub fn qps_since(&self, snap: &autodbaas_simdb::MetricsSnapshot, secs: u64) -> f64 {
        let delta = self.db.metrics_snapshot().delta(snap);
        delta[MetricId::QueriesExecuted.index()] / secs.max(1) as f64
    }
}

/// Populate a repository with offline training samples for `workload` —
/// random reloadable configs, short intense runs (the §5 bootstrap).
pub fn seed_offline(
    repo: &mut WorkloadRepository,
    workload: &MixWorkload,
    flavor: DbFlavor,
    n_samples: usize,
    seed: u64,
) -> WorkloadId {
    let id = repo.register(format!("{}-offline", workload.name()), true);
    let profile = autodbaas_simdb::KnobProfile::for_flavor(flavor);
    let mut rng = StdRng::seed_from_u64(seed);
    for s in 0..n_samples {
        let mut db = crate::NodeSpec::new(flavor, InstanceType::M4XLarge).db(
            workload.catalog().clone(),
            seed ^ (s as u64).wrapping_mul(0x9e37),
        );
        let unit: Vec<f64> = (0..profile.len()).map(|_| rng.gen()).collect();
        let raw = autodbaas_tuner::denormalize_config(&profile, &unit);
        for (i, (kid, spec)) in profile.iter().enumerate() {
            if !spec.restart_required {
                db.set_knob_direct(kid, raw[i]);
            }
        }
        // Offline executions push the database hard — "TPCC … continuously
        // … with 3000 requests per second will generate a high quality
        // sample" (§1). Driving at 2x the nominal rate keeps the instance
        // near capacity so every knob class leaves a mark on the objective.
        let rate = 2 * match workload.default_arrival() {
            autodbaas_workload::ArrivalProcess::Constant(r) => *r as u64,
            _ => 1_000,
        };
        // 60 one-second ticks: the sample window matches the TDE's default
        // observation window, so repository baselines convert correctly.
        let before = db.metrics_snapshot();
        for _ in 0..60 {
            for _ in 0..8 {
                let q = workload.next_query(&mut rng);
                let _ = db.submit(&q, (rate / 8).max(1));
            }
            db.tick(1_000);
        }
        let delta = db.metrics_snapshot().delta(&before);
        let objective = delta[MetricId::QueriesExecuted.index()] / 60.0;
        repo.add_sample(
            id,
            Sample {
                config: normalize_config(&profile, db.knobs().as_vec()),
                metrics: delta,
                objective,
                quality: SampleQuality::High,
            },
        );
    }
    id
}

/// A long-tail tenant fleet for drive-engine scaling runs: `n` managed
/// Postgres services on one-second ticks, with one tenant in 128 actively
/// serving 2 rps of TPC-C traffic and the rest idle — the shape of a real
/// DBaaS fleet, where a thin head of hot tenants rides on a long idle
/// tail. `shards = 0` leaves the shard count to auto resolution; a
/// positive value pins it (the determinism smokes force it wide).
/// Deterministic for a given `seed` and engine, and bit-identical across
/// engines and shard counts.
pub fn longtail_fleet(n: usize, parallel: bool, shards: usize, seed: u64) -> FleetSim {
    let mut sim = FleetSim::new(
        FleetConfig {
            seed,
            shards,
            ..FleetConfig::default()
        },
        2,
    );
    sim.set_parallel(parallel);
    let proto = tpcc(0.5);
    let catalog = proto.catalog().clone();
    for i in 0..n {
        let arrival = if i % 128 == 0 {
            ArrivalProcess::Constant(2.0)
        } else {
            ArrivalProcess::Constant(0.0)
        };
        let node = crate::NodeSpec::new(DbFlavor::Postgres, InstanceType::M4Large).managed(
            catalog.clone(),
            Box::new(tpcc(0.5)),
            arrival,
            TuningPolicy::TdeDriven,
            WorkloadId(0),
            TdeConfig::default(),
            seed ^ (i as u64).wrapping_mul(0x45d9),
        );
        sim.add_node(node, &format!("db-{i}"));
    }
    sim
}

/// One interleaved serial-vs-sharded comparison over two lockstep sims.
///
/// Both engines are bit-identical, so after every chunk the two sims are in
/// the same simulated state and each chunk measures the same work. Chunks
/// alternate which engine runs first (a shared host's slow phases cannot
/// systematically tax one side) and each side reports its *fastest* chunk —
/// the least-interference estimate of its true cost. Returns
/// `(serial_ms, sharded_ms)` per chunk; panics if the engines diverge.
pub fn race_engines(
    serial: &mut FleetSim,
    sharded: &mut FleetSim,
    chunk_ms: u64,
    reps: usize,
) -> (f64, f64) {
    let mut serial_best = f64::MAX;
    let mut sharded_best = f64::MAX;
    for rep in 0..reps {
        let serial_first = rep % 2 == 0;
        for leg in 0..2 {
            let serial_turn = (leg == 0) == serial_first;
            let sim: &mut FleetSim = if serial_turn { serial } else { sharded };
            let t = std::time::Instant::now();
            sim.run_for(chunk_ms);
            let ms = t.elapsed().as_secs_f64() * 1e3;
            if serial_turn {
                serial_best = serial_best.min(ms);
            } else {
                sharded_best = sharded_best.min(ms);
            }
        }
    }
    assert_eq!(
        serial.events.fingerprint(),
        sharded.events.fingerprint(),
        "sharded drive must be bit-identical to serial"
    );
    let q = |sim: &FleetSim| -> u64 { sim.nodes.iter().map(|n| n.queries_submitted).sum() };
    assert_eq!(
        q(serial),
        q(sharded),
        "engines diverged on accepted queries"
    );
    (serial_best, sharded_best)
}

/// Parse a simple `--flag value` style argument.
pub fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}
