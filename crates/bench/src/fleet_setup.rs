//! Fleet-setup helpers shared by the figure binaries.
//!
//! Every bench bin used to re-import and re-assemble the same
//! `(DbFlavor, InstanceType, DiskKind)` tuple at each construction site.
//! [`NodeSpec`] names that tuple once and stamps out databases — raw
//! [`AnyBackend`] engines or fully [`ManagedDatabase`] fleet nodes — so a
//! binary switches its whole fleet between backends by changing one value
//! (usually from [`backend_arg`]).

use autodbaas_cloudsim::ManagedDatabase;
use autodbaas_core::TdeConfig;
use autodbaas_core::TuningPolicy;
use autodbaas_simdb::{AnyBackend, BackendKind, Catalog, DbFlavor, DiskKind, InstanceType};
use autodbaas_tuner::WorkloadId;
use autodbaas_workload::{ArrivalProcess, QuerySource};

/// The per-node hardware/engine tuple the bench bins kept re-assembling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeSpec {
    /// Engine flavor — selects the backend adapter and knob profile.
    pub flavor: DbFlavor,
    /// VM size.
    pub instance: InstanceType,
    /// Disk technology.
    pub disk: DiskKind,
}

impl NodeSpec {
    /// A spec on SSD (the fleet default every bin was hand-writing).
    pub fn new(flavor: DbFlavor, instance: InstanceType) -> Self {
        Self {
            flavor,
            instance,
            disk: DiskKind::Ssd,
        }
    }

    /// Override the disk technology.
    pub fn with_disk(mut self, disk: DiskKind) -> Self {
        self.disk = disk;
        self
    }

    /// Which backend adapter this spec resolves to.
    pub fn backend_kind(&self) -> BackendKind {
        BackendKind::for_flavor(self.flavor)
    }

    /// A bare engine on this spec.
    pub fn db(&self, catalog: Catalog, seed: u64) -> AnyBackend {
        AnyBackend::new(self.flavor, self.instance, self.disk, catalog, seed)
    }

    /// A managed fleet node on this spec.
    #[allow(clippy::too_many_arguments)]
    pub fn managed(
        &self,
        catalog: Catalog,
        workload: Box<dyn QuerySource + Send>,
        arrival: ArrivalProcess,
        policy: TuningPolicy,
        workload_id: WorkloadId,
        tde: TdeConfig,
        seed: u64,
    ) -> ManagedDatabase {
        ManagedDatabase::new(
            self.flavor,
            self.instance,
            self.disk,
            catalog,
            workload,
            arrival,
            policy,
            workload_id,
            tde,
            seed,
        )
    }
}

/// Parse a backend selector string (`--backend` values): `pageheap` (or
/// `pg`/`postgres`), `mysql` (page-heap adapter, MySQL knob surface), or
/// `lsm`. `None` means the page-heap default.
pub fn backend_from_arg(arg: Option<&str>) -> DbFlavor {
    match arg {
        None | Some("pageheap") | Some("pg") | Some("postgres") => DbFlavor::Postgres,
        Some("mysql") => DbFlavor::MySql,
        Some("lsm") => DbFlavor::Lsm,
        Some(other) => panic!("unknown --backend {other:?} (expected pageheap|mysql|lsm)"),
    }
}

/// Read the `--backend` CLI flag into a flavor (page-heap default).
pub fn backend_arg() -> DbFlavor {
    backend_from_arg(crate::arg_value("--backend").as_deref())
}

use autodbaas_cloudsim::FleetSim;
use std::path::{Path, PathBuf};

/// The shared `--resume <snapshot>` flag (fig16/fig17/fig18): a path the
/// harness checkpoints its fleet through.
pub fn resume_arg() -> Option<PathBuf> {
    crate::arg_value("--resume").map(PathBuf::from)
}

/// Save `sim` to `path`, drop it, and reload the fleet from the written
/// file — the checkpoint crossing every `--resume` harness puts in the
/// middle of its run. State the snapshot subsystem failed to carry
/// surfaces as a fingerprint mismatch in the harness's own determinism
/// assertions, so each figure binary doubles as a snapshot-identity
/// check when `--resume` is passed.
pub fn checkpoint_roundtrip(sim: FleetSim, path: &Path) -> FleetSim {
    sim.save_snapshot(path).expect("write snapshot");
    drop(sim);
    FleetSim::load_snapshot(path).expect("reload snapshot")
}

/// Frame tags for two-arm snapshot files: fig18 checkpoints its guarded
/// and unguarded fleets side by side into one `--resume` file, so a
/// segment boundary never splits the experiment.
pub const FRAME_ARM_A: u16 = 0x0010;
/// See [`FRAME_ARM_A`].
pub const FRAME_ARM_B: u16 = 0x0011;

/// Save two fleets into one snapshot file.
pub fn save_fleet_pair(path: &Path, a: &FleetSim, b: &FleetSim) {
    let mut fw = autodbaas_snapshot::FrameWriter::new();
    fw.frame_snap(FRAME_ARM_A, a);
    fw.frame_snap(FRAME_ARM_B, b);
    autodbaas_snapshot::write_snapshot_file(path, &fw.finish()).expect("write snapshot pair");
}

/// Load a two-arm snapshot written by [`save_fleet_pair`]; `None` when
/// the file does not exist yet (first segment of a checkpointed run).
pub fn load_fleet_pair(path: &Path) -> Option<(FleetSim, FleetSim)> {
    if !path.exists() {
        return None;
    }
    let data = autodbaas_snapshot::read_snapshot_file(path).expect("read snapshot pair");
    let mut reader = autodbaas_snapshot::FrameReader::new(&data).expect("snapshot header");
    let (mut a, mut b) = (None, None);
    while let Some((tag, payload)) = reader.next_frame().expect("snapshot frame") {
        match tag {
            FRAME_ARM_A => a = Some(autodbaas_snapshot::decode_from_slice(payload).expect("arm A")),
            FRAME_ARM_B => b = Some(autodbaas_snapshot::decode_from_slice(payload).expect("arm B")),
            _ => {}
        }
    }
    Some((
        a.expect("missing arm A frame"),
        b.expect("missing arm B frame"),
    ))
}

/// Resume from `path` when a snapshot is already there (a previous
/// process segment wrote it), otherwise build a fresh fleet. Returns the
/// fleet and whether it was resumed — fig18's cross-process segments.
pub fn fleet_or_resume(path: Option<&Path>, build: impl FnOnce() -> FleetSim) -> (FleetSim, bool) {
    match path {
        Some(p) if p.exists() => (FleetSim::load_snapshot(p).expect("resume snapshot"), true),
        _ => (build(), false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selector_maps_all_backends() {
        assert_eq!(backend_from_arg(None), DbFlavor::Postgres);
        assert_eq!(backend_from_arg(Some("pageheap")), DbFlavor::Postgres);
        assert_eq!(backend_from_arg(Some("mysql")), DbFlavor::MySql);
        assert_eq!(backend_from_arg(Some("lsm")), DbFlavor::Lsm);
    }

    #[test]
    #[should_panic(expected = "unknown --backend")]
    fn selector_rejects_typos() {
        backend_from_arg(Some("rocksdb"));
    }

    #[test]
    fn spec_builds_the_selected_adapter() {
        let catalog = Catalog::synthetic(2, 100_000_000, 150, 1);
        let spec = NodeSpec::new(DbFlavor::Lsm, InstanceType::M4Large);
        assert_eq!(spec.backend_kind(), BackendKind::Lsm);
        let db = spec.db(catalog.clone(), 7);
        assert_eq!(db.kind(), BackendKind::Lsm);
        let pg = NodeSpec::new(DbFlavor::Postgres, InstanceType::M4Large).db(catalog, 7);
        assert_eq!(pg.kind(), BackendKind::PageHeap);
    }
}
