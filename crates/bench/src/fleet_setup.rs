//! Fleet-setup helpers shared by the figure binaries.
//!
//! Every bench bin used to re-import and re-assemble the same
//! `(DbFlavor, InstanceType, DiskKind)` tuple at each construction site.
//! [`NodeSpec`] names that tuple once and stamps out databases — raw
//! [`AnyBackend`] engines or fully [`ManagedDatabase`] fleet nodes — so a
//! binary switches its whole fleet between backends by changing one value
//! (usually from [`backend_arg`]).

use autodbaas_cloudsim::ManagedDatabase;
use autodbaas_core::TdeConfig;
use autodbaas_core::TuningPolicy;
use autodbaas_simdb::{AnyBackend, BackendKind, Catalog, DbFlavor, DiskKind, InstanceType};
use autodbaas_tuner::WorkloadId;
use autodbaas_workload::{ArrivalProcess, QuerySource};

/// The per-node hardware/engine tuple the bench bins kept re-assembling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeSpec {
    /// Engine flavor — selects the backend adapter and knob profile.
    pub flavor: DbFlavor,
    /// VM size.
    pub instance: InstanceType,
    /// Disk technology.
    pub disk: DiskKind,
}

impl NodeSpec {
    /// A spec on SSD (the fleet default every bin was hand-writing).
    pub fn new(flavor: DbFlavor, instance: InstanceType) -> Self {
        Self {
            flavor,
            instance,
            disk: DiskKind::Ssd,
        }
    }

    /// Override the disk technology.
    pub fn with_disk(mut self, disk: DiskKind) -> Self {
        self.disk = disk;
        self
    }

    /// Which backend adapter this spec resolves to.
    pub fn backend_kind(&self) -> BackendKind {
        BackendKind::for_flavor(self.flavor)
    }

    /// A bare engine on this spec.
    pub fn db(&self, catalog: Catalog, seed: u64) -> AnyBackend {
        AnyBackend::new(self.flavor, self.instance, self.disk, catalog, seed)
    }

    /// A managed fleet node on this spec.
    #[allow(clippy::too_many_arguments)]
    pub fn managed(
        &self,
        catalog: Catalog,
        workload: Box<dyn QuerySource + Send>,
        arrival: ArrivalProcess,
        policy: TuningPolicy,
        workload_id: WorkloadId,
        tde: TdeConfig,
        seed: u64,
    ) -> ManagedDatabase {
        ManagedDatabase::new(
            self.flavor,
            self.instance,
            self.disk,
            catalog,
            workload,
            arrival,
            policy,
            workload_id,
            tde,
            seed,
        )
    }
}

/// Parse a backend selector string (`--backend` values): `pageheap` (or
/// `pg`/`postgres`), `mysql` (page-heap adapter, MySQL knob surface), or
/// `lsm`. `None` means the page-heap default.
pub fn backend_from_arg(arg: Option<&str>) -> DbFlavor {
    match arg {
        None | Some("pageheap") | Some("pg") | Some("postgres") => DbFlavor::Postgres,
        Some("mysql") => DbFlavor::MySql,
        Some("lsm") => DbFlavor::Lsm,
        Some(other) => panic!("unknown --backend {other:?} (expected pageheap|mysql|lsm)"),
    }
}

/// Read the `--backend` CLI flag into a flavor (page-heap default).
pub fn backend_arg() -> DbFlavor {
    backend_from_arg(crate::arg_value("--backend").as_deref())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selector_maps_all_backends() {
        assert_eq!(backend_from_arg(None), DbFlavor::Postgres);
        assert_eq!(backend_from_arg(Some("pageheap")), DbFlavor::Postgres);
        assert_eq!(backend_from_arg(Some("mysql")), DbFlavor::MySql);
        assert_eq!(backend_from_arg(Some("lsm")), DbFlavor::Lsm);
    }

    #[test]
    #[should_panic(expected = "unknown --backend")]
    fn selector_rejects_typos() {
        backend_from_arg(Some("rocksdb"));
    }

    #[test]
    fn spec_builds_the_selected_adapter() {
        let catalog = Catalog::synthetic(2, 100_000_000, 150, 1);
        let spec = NodeSpec::new(DbFlavor::Lsm, InstanceType::M4Large);
        assert_eq!(spec.backend_kind(), BackendKind::Lsm);
        let db = spec.db(catalog.clone(), 7);
        assert_eq!(db.kind(), BackendKind::Lsm);
        let pg = NodeSpec::new(DbFlavor::Postgres, InstanceType::M4Large).db(catalog, 7);
        assert_eq!(pg.kind(), BackendKind::PageHeap);
    }
}
