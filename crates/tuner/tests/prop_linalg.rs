//! Property tests for the dense linear algebra under the GP tuner.
//!
//! The incremental-training fast path rests on two algebraic identities:
//! the blocked Cholesky must agree with the textbook factorisation, and a
//! rank-1 `cholesky_update_append` followed by the in-place triangular
//! solves must be indistinguishable (to solver tolerance) from factoring
//! the bordered matrix from scratch. These run over randomly generated
//! SPD matrices across a range of jitter levels, not just the seeded
//! fixtures the unit tests use.

use autodbaas_tuner::linalg::Matrix;
use proptest::prelude::*;

/// Kernel-like SPD matrix from random points: `K[i][j] = exp(-‖pᵢ-pⱼ‖²) +
/// jitter·δᵢⱼ`, the exact shape the GP feeds the factorisation.
fn kernel_matrix(points: &[Vec<f64>], jitter: f64) -> Matrix {
    let n = points.len();
    let mut k = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            let d2: f64 = points[i]
                .iter()
                .zip(&points[j])
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            k[(i, j)] = (-d2).exp();
        }
        k[(i, i)] += jitter;
    }
    k
}

fn max_abs_diff(a: &Matrix, b: &Matrix) -> f64 {
    assert_eq!(a.rows(), b.rows());
    assert_eq!(a.cols(), b.cols());
    let mut worst = 0.0f64;
    for i in 0..a.rows() {
        for (x, y) in a.row(i).iter().zip(b.row(i)) {
            worst = worst.max((x - y).abs());
        }
    }
    worst
}

proptest! {
    #[test]
    fn blocked_cholesky_matches_naive(
        flat in prop::collection::vec(0.0f64..1.0, 3 * 40),
        n in 2usize..=40,
        jitter_exp in -6.0f64..-1.0,
    ) {
        let jitter = 10.0f64.powf(jitter_exp);
        let points: Vec<Vec<f64>> = flat.chunks(3).take(n).map(|c| c.to_vec()).collect();
        let k = kernel_matrix(&points, jitter);
        let blocked = k.cholesky().expect("jittered kernel is SPD");
        let naive = k.cholesky_naive().expect("jittered kernel is SPD");
        prop_assert!(
            max_abs_diff(&blocked, &naive) < 1e-10,
            "blocked vs naive diverged: {:e}",
            max_abs_diff(&blocked, &naive)
        );
    }

    #[test]
    fn rank1_append_matches_from_scratch_factorisation(
        flat in prop::collection::vec(0.0f64..1.0, 3 * 24),
        n in 1usize..=23,
        jitter_exp in -6.0f64..-1.0,
    ) {
        let jitter = 10.0f64.powf(jitter_exp);
        let points: Vec<Vec<f64>> = flat.chunks(3).take(n + 1).map(|c| c.to_vec()).collect();
        // Factor of the full (n+1)-point kernel, from scratch.
        let k_full = kernel_matrix(&points, jitter);
        let l_full = k_full.cholesky().expect("jittered kernel is SPD");
        // Factor of the leading n-point kernel, grown by one border row.
        let k_head = kernel_matrix(&points[..n], jitter);
        let mut l_inc = k_head.cholesky().expect("jittered kernel is SPD");
        let border: Vec<f64> = (0..n).map(|i| k_full[(n, i)]).collect();
        prop_assert!(
            l_inc.cholesky_update_append(&border, k_full[(n, n)]),
            "append refused a positive-definite border"
        );
        prop_assert!(
            max_abs_diff(&l_inc, &l_full) < 1e-9,
            "appended factor diverged from scratch refactorisation: {:e}",
            max_abs_diff(&l_inc, &l_full)
        );
    }

    #[test]
    fn in_place_solves_invert_the_factorisation(
        flat in prop::collection::vec(0.0f64..1.0, 3 * 24),
        rhs in prop::collection::vec(-10.0f64..10.0, 24),
        n in 2usize..=24,
        jitter_exp in -5.0f64..-1.0,
    ) {
        let jitter = 10.0f64.powf(jitter_exp);
        let points: Vec<Vec<f64>> = flat.chunks(3).take(n).map(|c| c.to_vec()).collect();
        let k = kernel_matrix(&points, jitter);
        let l = k.cholesky().expect("jittered kernel is SPD");
        // α = K⁻¹y via the two in-place triangular solves the GP uses.
        let mut alpha = rhs[..n].to_vec();
        l.solve_lower_in_place(&mut alpha);
        l.solve_lower_transpose_in_place(&mut alpha);
        // Residual ‖Kα − y‖∞ scaled by the conditioning-driven magnitude.
        let scale = 1.0 + alpha.iter().fold(0.0f64, |m, a| m.max(a.abs()));
        for (i, want) in rhs.iter().enumerate().take(n) {
            let kx: f64 = k.row(i).iter().zip(&alpha).map(|(a, b)| a * b).sum();
            prop_assert!(
                (kx - want).abs() < 1e-7 * scale,
                "row {i}: K·α = {kx}, want {want}, α-scale {scale}"
            );
        }
        // The batched solve agrees with the vector solve column-by-column.
        let mut batch = Matrix::zeros(n, 2);
        for i in 0..n {
            batch[(i, 0)] = rhs[i];
            batch[(i, 1)] = rhs[n - 1 - i];
        }
        l.solve_lower_batch_in_place(&mut batch);
        let mut col0: Vec<f64> = (0..n).map(|i| rhs[i]).collect();
        l.solve_lower_in_place(&mut col0);
        for i in 0..n {
            prop_assert!(
                (batch[(i, 0)] - col0[i]).abs() < 1e-9 * scale,
                "batched vs vector solve diverged at row {i}"
            );
        }
    }
}
