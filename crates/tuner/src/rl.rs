//! The reinforcement-learning tuner (CDBTune-style).
//!
//! An actor–critic agent over the knob space: the actor maps a normalised
//! metric state to a knob vector in `[0,1]^k`; the critic estimates the
//! return of a (state, action) pair and is trained by one-step TD. The
//! actor improves CEM-style — it regresses toward the best of a set of
//! critic-scored perturbations of its own output — which gives DDPG-like
//! behaviour without differentiating through the critic.
//!
//! Matching §2.1's characterisation: recommendations are cheap (one forward
//! pass — "RL style tuners … quickly generate new configurations"), but the
//! agent needs many trial-and-error recommendations to converge, and
//! training on low-quality production samples corrupts the *current* policy
//! directly (Fig. 13) rather than cascading through a repository.

use crate::nn::Mlp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// One experience tuple.
#[derive(Debug, Clone)]
pub struct Transition {
    /// Normalised metric state before applying the action.
    pub state: Vec<f64>,
    /// Knob vector applied, normalised to `[0,1]`.
    pub action: Vec<f64>,
    /// Reward (normalised throughput delta).
    pub reward: f64,
    /// State after the observation window.
    pub next_state: Vec<f64>,
}

/// Hyper-parameters.
#[derive(Debug, Clone)]
pub struct RlConfig {
    /// Hidden width of both networks.
    pub hidden: usize,
    /// Discount factor.
    pub gamma: f64,
    /// Learning rate.
    pub lr: f64,
    /// Stddev of exploration noise added to recommendations.
    pub exploration_noise: f64,
    /// Replay-buffer capacity.
    pub buffer_capacity: usize,
    /// Minibatch size per training step.
    pub batch: usize,
    /// Candidate perturbations per actor-improvement step.
    pub actor_candidates: usize,
}

impl Default for RlConfig {
    fn default() -> Self {
        Self {
            hidden: 32,
            gamma: 0.9,
            lr: 0.05,
            exploration_noise: 0.15,
            buffer_capacity: 4_096,
            batch: 32,
            actor_candidates: 8,
        }
    }
}

/// The RL tuner.
#[derive(Debug)]
pub struct RlTuner {
    cfg: RlConfig,
    actor: Mlp,
    critic: Mlp,
    replay: VecDeque<Transition>,
    rng: StdRng,
    state_dim: usize,
    action_dim: usize,
}

impl RlTuner {
    /// Agent over `state_dim` metrics and `action_dim` knobs.
    pub fn new(state_dim: usize, action_dim: usize, cfg: RlConfig, seed: u64) -> Self {
        let actor = Mlp::new(&[state_dim, cfg.hidden, cfg.hidden, action_dim], seed);
        let critic = Mlp::new(
            &[state_dim + action_dim, cfg.hidden, cfg.hidden, 1],
            seed ^ 0x9e37,
        );
        Self {
            cfg,
            actor,
            critic,
            replay: VecDeque::new(),
            rng: StdRng::seed_from_u64(seed ^ 0xabcd),
            state_dim,
            action_dim,
        }
    }

    /// Knob dimensionality.
    pub fn action_dim(&self) -> usize {
        self.action_dim
    }

    /// Replay-buffer fill level.
    pub fn replay_len(&self) -> usize {
        self.replay.len()
    }

    fn squash(v: f64) -> f64 {
        // Map the linear actor output into [0,1].
        0.5 * (v.tanh() + 1.0)
    }

    /// Deterministic policy output (no exploration) in `[0,1]^k`.
    pub fn exploit(&self, state: &[f64]) -> Vec<f64> {
        assert_eq!(state.len(), self.state_dim);
        self.actor
            .forward(state)
            .into_iter()
            .map(Self::squash)
            .collect()
    }

    /// Recommendation with exploration noise — what a live tuning request
    /// gets while the agent is still learning.
    pub fn recommend(&mut self, state: &[f64]) -> Vec<f64> {
        let noise = self.cfg.exploration_noise;
        self.exploit(state)
            .into_iter()
            .map(|a| (a + self.rng.gen_range(-noise..noise)).clamp(0.0, 1.0))
            .collect()
    }

    /// Record an experience and run one training step.
    pub fn observe(&mut self, t: Transition) {
        assert_eq!(t.state.len(), self.state_dim);
        assert_eq!(t.action.len(), self.action_dim);
        if self.replay.len() == self.cfg.buffer_capacity {
            self.replay.pop_front();
        }
        self.replay.push_back(t);
        self.train_step();
    }

    fn critic_q(&self, state: &[f64], action: &[f64]) -> f64 {
        let mut input = Vec::with_capacity(self.state_dim + self.action_dim);
        input.extend_from_slice(state);
        input.extend_from_slice(action);
        self.critic.forward(&input)[0]
    }

    fn train_step(&mut self) {
        if self.replay.len() < self.cfg.batch {
            return;
        }
        // Sample a minibatch.
        let idxs: Vec<usize> = (0..self.cfg.batch)
            .map(|_| self.rng.gen_range(0..self.replay.len()))
            .collect();

        // --- Critic: TD(0) targets -------------------------------------
        let mut xs = Vec::with_capacity(idxs.len());
        let mut ys = Vec::with_capacity(idxs.len());
        for &i in &idxs {
            let t = self.replay[i].clone();
            let next_a = self.exploit(&t.next_state);
            let target = t.reward + self.cfg.gamma * self.critic_q(&t.next_state, &next_a);
            let mut input = t.state.clone();
            input.extend_from_slice(&t.action);
            xs.push(input);
            ys.push(vec![target.clamp(-50.0, 50.0)]);
        }
        self.critic.train_batch(&xs, &ys, self.cfg.lr);

        // --- Actor: regress toward the critic's best perturbation ------
        let mut axs = Vec::with_capacity(idxs.len());
        let mut ays = Vec::with_capacity(idxs.len());
        for &i in &idxs {
            let state = self.replay[i].state.clone();
            let base = self.exploit(&state);
            let mut best = base.clone();
            let mut best_q = self.critic_q(&state, &base);
            for _ in 0..self.cfg.actor_candidates {
                let cand: Vec<f64> = base
                    .iter()
                    .map(|&a| (a + self.rng.gen_range(-0.2..0.2)).clamp(0.0, 1.0))
                    .collect();
                let q = self.critic_q(&state, &cand);
                if q > best_q {
                    best_q = q;
                    best = cand;
                }
            }
            // Regress pre-squash: target logit = atanh(2a-1), clamped.
            let target: Vec<f64> = best
                .iter()
                .map(|&a| {
                    let c = (2.0 * a - 1.0).clamp(-0.999, 0.999);
                    0.5 * ((1.0 + c) / (1.0 - c)).ln()
                })
                .collect();
            axs.push(state);
            ays.push(target);
        }
        self.actor.train_batch(&axs, &ays, self.cfg.lr * 0.5);
    }
}

use autodbaas_snapshot::snap_struct;

snap_struct!(Transition {
    state,
    action,
    reward,
    next_state
});

snap_struct!(RlConfig {
    hidden,
    gamma,
    lr,
    exploration_noise,
    buffer_capacity,
    batch,
    actor_candidates
});

snap_struct!(RlTuner {
    cfg,
    actor,
    critic,
    replay,
    rng,
    state_dim,
    action_dim
});

#[cfg(test)]
mod tests {
    use super::*;

    /// A one-state bandit with optimum at action (0.8, 0.2): reward falls
    /// off quadratically.
    fn reward(a: &[f64]) -> f64 {
        let dx = a[0] - 0.8;
        let dy = a[1] - 0.2;
        1.0 - 4.0 * (dx * dx + dy * dy)
    }

    #[test]
    fn recommendations_are_in_unit_box() {
        let mut t = RlTuner::new(4, 3, RlConfig::default(), 1);
        let a = t.recommend(&[0.1, 0.2, 0.3, 0.4]);
        assert_eq!(a.len(), 3);
        assert!(a.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn exploit_is_deterministic_recommend_is_noisy() {
        let mut t = RlTuner::new(2, 2, RlConfig::default(), 2);
        let s = [0.5, 0.5];
        assert_eq!(t.exploit(&s), t.exploit(&s));
        let r1 = t.recommend(&s);
        let r2 = t.recommend(&s);
        assert_ne!(r1, r2, "exploration noise must vary");
    }

    #[test]
    fn bandit_policy_improves_with_experience() {
        let cfg = RlConfig {
            exploration_noise: 0.3,
            ..RlConfig::default()
        };
        let mut t = RlTuner::new(2, 2, cfg, 3);
        let state = vec![0.5, 0.5];
        let naive = reward(&t.exploit(&state));
        for _ in 0..600 {
            let a = t.recommend(&state);
            let r = reward(&a);
            t.observe(Transition {
                state: state.clone(),
                action: a,
                reward: r,
                next_state: state.clone(),
            });
        }
        let learned = reward(&t.exploit(&state));
        assert!(
            learned > naive + 0.05 || learned > 0.85,
            "naive {naive} learned {learned}"
        );
    }

    #[test]
    fn noisy_rewards_degrade_the_policy() {
        // Train one agent on the true signal and a twin on pure noise —
        // the corruption mechanism behind Fig. 13.
        let mk = || {
            RlTuner::new(
                2,
                2,
                RlConfig {
                    exploration_noise: 0.3,
                    ..Default::default()
                },
                4,
            )
        };
        let state = vec![0.5, 0.5];
        let mut clean = mk();
        let mut dirty = mk();
        let mut noise_rng = StdRng::seed_from_u64(9);
        for _ in 0..1200 {
            let a = clean.recommend(&state);
            let r = reward(&a);
            clean.observe(Transition {
                state: state.clone(),
                action: a,
                reward: r,
                next_state: state.clone(),
            });
            let a = dirty.recommend(&state);
            let r = noise_rng.gen_range(-1.0..1.0); // junk sample
            dirty.observe(Transition {
                state: state.clone(),
                action: a,
                reward: r,
                next_state: state.clone(),
            });
        }
        let clean_r = reward(&clean.exploit(&state));
        let dirty_r = reward(&dirty.exploit(&state));
        assert!(clean_r > dirty_r, "clean {clean_r} dirty {dirty_r}");
    }

    #[test]
    fn replay_buffer_is_bounded() {
        let cfg = RlConfig {
            buffer_capacity: 10,
            batch: 4,
            ..RlConfig::default()
        };
        let mut t = RlTuner::new(1, 1, cfg, 5);
        for i in 0..50 {
            t.observe(Transition {
                state: vec![0.0],
                action: vec![0.5],
                reward: i as f64,
                next_state: vec![0.0],
            });
        }
        assert_eq!(t.replay_len(), 10);
    }

    #[test]
    #[should_panic]
    fn observe_rejects_dimension_mismatch() {
        let mut t = RlTuner::new(2, 2, RlConfig::default(), 6);
        t.observe(Transition {
            state: vec![0.0],
            action: vec![0.5, 0.5],
            reward: 0.0,
            next_state: vec![0.0, 0.0],
        });
    }
}
