//! Hybrid tuner (§2.1: "The tuner instances … can be any type BO or RL
//! style tuners. Or can even be a hybrid combination.").
//!
//! The trade-off the paper lays out: BO needs a high volume of high-quality
//! samples but then converges in "two to three recommendations"; RL
//! recommends instantly but needs many trials. The hybrid plays both: while
//! the target workload's (mapped) high-quality sample pool is thin, serve
//! recommendations from the RL agent (cheap, exploratory — and its
//! trial-and-error results feed the repository); once the pool crosses a
//! threshold, switch to the GP pipeline and exploit the accumulated
//! experience.

use crate::bo::{BoConfig, BoTuner, Recommendation};
use crate::mapping::map_workload;
use crate::repo::{SampleQuality, WorkloadId, WorkloadRepository};
use crate::rl::{RlConfig, RlTuner, Transition};

/// Which backend produced a recommendation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HybridBackend {
    /// RL served it (sample pool still thin).
    Rl,
    /// BO served it (enough experience accumulated).
    Bo,
}

/// Hybrid tuner configuration.
#[derive(Debug, Clone)]
pub struct HybridConfig {
    /// High-quality samples (target + mapped workload) required before the
    /// BO pipeline takes over.
    pub bo_takeover_samples: usize,
    /// BO settings.
    pub bo: BoConfig,
    /// RL settings.
    pub rl: RlConfig,
}

impl Default for HybridConfig {
    fn default() -> Self {
        Self {
            bo_takeover_samples: 30,
            bo: BoConfig::default(),
            rl: RlConfig::default(),
        }
    }
}

/// The hybrid tuner itself.
#[derive(Debug)]
pub struct HybridTuner {
    cfg: HybridConfig,
    bo: BoTuner,
    rl: RlTuner,
}

impl HybridTuner {
    /// Build over `state_dim` metrics and `action_dim` knobs.
    pub fn new(state_dim: usize, action_dim: usize, cfg: HybridConfig, seed: u64) -> Self {
        Self {
            bo: BoTuner::new(cfg.bo.clone(), seed ^ 0xb0),
            rl: RlTuner::new(state_dim, action_dim, cfg.rl.clone(), seed ^ 0x71),
            cfg,
        }
    }

    /// High-quality samples available to a BO run for `target` (its own
    /// plus the mapped workload's) — the takeover criterion.
    pub fn usable_samples(&self, repo: &WorkloadRepository, target: WorkloadId) -> usize {
        let own = repo
            .workload(target)
            .samples
            .iter()
            .filter(|s| s.quality == SampleQuality::High)
            .count();
        let mapped = repo
            .workload(target)
            .metric_signature()
            .and_then(|sig| map_workload(repo, &sig, Some(target)))
            .map(|m| {
                repo.workload(m.workload)
                    .samples
                    .iter()
                    .filter(|s| s.quality == SampleQuality::High)
                    .count()
            })
            .unwrap_or(0);
        own + mapped
    }

    /// Which backend would serve `target` right now.
    pub fn backend_for(&self, repo: &WorkloadRepository, target: WorkloadId) -> HybridBackend {
        if self.usable_samples(repo, target) >= self.cfg.bo_takeover_samples {
            HybridBackend::Bo
        } else {
            HybridBackend::Rl
        }
    }

    /// Produce a recommendation. `state` is the normalised metric state the
    /// RL path conditions on; `focus_dims` are the TDE-indicted knobs the
    /// BO path concentrates on.
    pub fn recommend(
        &mut self,
        repo: &WorkloadRepository,
        target: WorkloadId,
        state: &[f64],
        focus_dims: &[usize],
    ) -> (Vec<f64>, HybridBackend) {
        match self.backend_for(repo, target) {
            HybridBackend::Bo => match self.bo.recommend_focused(repo, target, focus_dims) {
                Some(Recommendation { config, .. }) => (config, HybridBackend::Bo),
                // GP failed (degenerate data) — RL never fails to answer.
                None => (self.rl.recommend(state), HybridBackend::Rl),
            },
            HybridBackend::Rl => (self.rl.recommend(state), HybridBackend::Rl),
        }
    }

    /// Feed an RL experience (the RL half keeps learning even after BO
    /// takes over — it is the fallback).
    pub fn observe(&mut self, t: Transition) {
        self.rl.observe(t);
    }
}

use autodbaas_snapshot::snap_struct;

snap_struct!(HybridConfig {
    bo_takeover_samples,
    bo,
    rl
});

snap_struct!(HybridTuner { cfg, bo, rl });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repo::Sample;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sample(rng: &mut StdRng, quality: SampleQuality) -> Sample {
        let c = vec![rng.gen::<f64>(), rng.gen::<f64>()];
        Sample {
            config: c.clone(),
            metrics: vec![100.0, 50.0],
            objective: 100.0 * c[0],
            quality,
        }
    }

    #[test]
    fn thin_pool_serves_rl_rich_pool_serves_bo() {
        let mut repo = WorkloadRepository::new();
        let id = repo.register("w", false);
        let cfg = HybridConfig {
            bo_takeover_samples: 10,
            ..HybridConfig::default()
        };
        let mut tuner = HybridTuner::new(2, 2, cfg, 1);
        let mut rng = StdRng::seed_from_u64(2);

        // 3 samples: RL regime.
        for _ in 0..3 {
            repo.add_sample(id, sample(&mut rng, SampleQuality::High));
        }
        assert_eq!(tuner.backend_for(&repo, id), HybridBackend::Rl);
        let (config, backend) = tuner.recommend(&repo, id, &[0.5, 0.5], &[]);
        assert_eq!(backend, HybridBackend::Rl);
        assert_eq!(config.len(), 2);

        // 12 samples: BO takes over.
        for _ in 0..9 {
            repo.add_sample(id, sample(&mut rng, SampleQuality::High));
        }
        assert_eq!(tuner.backend_for(&repo, id), HybridBackend::Bo);
        let (config, backend) = tuner.recommend(&repo, id, &[0.5, 0.5], &[]);
        assert_eq!(backend, HybridBackend::Bo);
        assert!(config.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn low_quality_samples_do_not_trigger_takeover() {
        let mut repo = WorkloadRepository::new();
        let id = repo.register("w", false);
        let cfg = HybridConfig {
            bo_takeover_samples: 5,
            ..HybridConfig::default()
        };
        let tuner = HybridTuner::new(2, 2, cfg, 3);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..20 {
            repo.add_sample(id, sample(&mut rng, SampleQuality::Low));
        }
        assert_eq!(tuner.backend_for(&repo, id), HybridBackend::Rl);
    }

    #[test]
    fn mapped_workload_samples_count_toward_takeover() {
        let mut repo = WorkloadRepository::new();
        let offline = repo.register("offline", true);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            repo.add_sample(offline, sample(&mut rng, SampleQuality::High));
        }
        let target = repo.register("live", false);
        repo.add_sample(target, sample(&mut rng, SampleQuality::High));
        let cfg = HybridConfig {
            bo_takeover_samples: 10,
            ..HybridConfig::default()
        };
        let tuner = HybridTuner::new(2, 2, cfg, 6);
        assert_eq!(
            tuner.backend_for(&repo, target),
            HybridBackend::Bo,
            "experience transfer should satisfy the takeover threshold"
        );
    }

    #[test]
    fn rl_fallback_when_bo_cannot_fit() {
        // Rich pool of *identical dimension-zero* configs makes ranking
        // trivial but the GP fit still succeeds; to force the fallback use
        // an empty target with an unmappable signature: all samples on the
        // target itself are low quality and gating is on.
        let mut repo = WorkloadRepository::new();
        let id = repo.register("w", false);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..40 {
            repo.add_sample(id, sample(&mut rng, SampleQuality::Low));
        }
        let cfg = HybridConfig {
            bo_takeover_samples: 0, // force the BO path
            bo: BoConfig {
                gate_low_quality: true,
                ..BoConfig::default()
            },
            ..HybridConfig::default()
        };
        let mut tuner = HybridTuner::new(2, 2, cfg, 8);
        let (_, backend) = tuner.recommend(&repo, id, &[0.1, 0.2], &[]);
        assert_eq!(backend, HybridBackend::Rl, "BO had nothing to train on");
    }
}
