//! Minimal dense linear algebra for the Gaussian-process tuner.
//!
//! Just what GP regression needs: a row-major matrix, multiplication,
//! Cholesky factorisation and triangular solves. Written for clarity over
//! peak FLOPs — kernel matrices here are a few hundred rows.

/// Row-major dense matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a nested slice (test/doc convenience).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut m = Self::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "ragged rows");
            for (j, &v) in row.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix product `self * other`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch in matmul");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Cholesky factorisation of a symmetric positive-definite matrix:
    /// returns lower-triangular `L` with `L Lᵀ = self`. Returns `None` when
    /// the matrix is not (numerically) positive definite — the GP retries
    /// with more jitter in that case.
    pub fn cholesky(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "cholesky needs a square matrix");
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return None;
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Some(l)
    }

    /// Solve `L y = b` for lower-triangular `L` (forward substitution).
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, self.cols);
        assert_eq!(b.len(), self.rows);
        let n = self.rows;
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self[(i, k)] * y[k];
            }
            y[i] = sum / self[(i, i)];
        }
        y
    }

    /// Solve `Lᵀ x = b` for lower-triangular `L` (backward substitution).
    pub fn solve_lower_transpose(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, self.cols);
        assert_eq!(b.len(), self.rows);
        let n = self.rows;
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = b[i];
            for k in (i + 1)..n {
                sum -= self[(k, i)] * x[k];
            }
            x[i] = sum / self[(i, i)];
        }
        x
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

/// Euclidean distance between equal-length vectors.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "euclidean distance needs equal lengths");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
}

/// Dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn transpose_roundtrips() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn cholesky_reconstructs_spd_matrix() {
        let a = Matrix::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 5.0, 1.5], &[0.6, 1.5, 2.0]]);
        let l = a.cholesky().expect("SPD");
        let recon = l.matmul(&l.transpose());
        for i in 0..3 {
            for j in 0..3 {
                assert!((recon[(i, j)] - a[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(a.cholesky().is_none());
    }

    #[test]
    fn triangular_solves_invert_spd_system() {
        // Solve A x = b via Cholesky; check A x ≈ b.
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let b = [1.0, 2.0];
        let l = a.cholesky().unwrap();
        let y = l.solve_lower(&b);
        let x = l.solve_lower_transpose(&y);
        let ax0 = a[(0, 0)] * x[0] + a[(0, 1)] * x[1];
        let ax1 = a[(1, 0)] * x[0] + a[(1, 1)] * x[1];
        assert!((ax0 - b[0]).abs() < 1e-10);
        assert!((ax1 - b[1]).abs() < 1e-10);
    }

    #[test]
    fn euclidean_distance_basics() {
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(euclidean(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }
}
