//! Minimal dense linear algebra for the Gaussian-process tuner.
//!
//! Just what GP regression needs: a row-major matrix, multiplication,
//! Cholesky factorisation (blocked, plus an O(n²) rank-1 *append* update for
//! incremental GP training) and triangular solves with in-place variants
//! that reuse caller buffers. Kernel matrices here are a few hundred rows,
//! but the tuner refits on every recommendation, so the hot paths are
//! written for cache locality and zero per-call allocation.

/// Block edge for the blocked Cholesky factorisation. 32×32 f64 tiles
/// (8 KiB) keep the three active tiles resident in L1.
const CHOL_BLOCK: usize = 32;

/// Row-major dense matrix.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a nested slice (test/doc convenience).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut m = Self::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "ragged rows");
            m.row_mut(i).copy_from_slice(row);
        }
        m
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix product `self * other`. Straight fused inner loop over
    /// contiguous rows — no zero-skip branch: GP kernel matrices are dense,
    /// so the branch only cost a misprediction per element.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// [`Matrix::matmul`] written into a caller-owned output (previous
    /// contents ignored) — the allocation-free form the batched GP
    /// prediction uses every sweep.
    /// i-k-j loop order: the inner axpy runs over contiguous rows of both
    /// `other` and `out`, unrolled 4-wide over `k` so each `out` row is
    /// touched once per four `other` rows.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.rows, "dimension mismatch in matmul");
        assert_eq!(out.rows, self.rows, "bad output rows");
        assert_eq!(out.cols, other.cols, "bad output cols");
        let m = other.cols;
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * m..(i + 1) * m];
            // Zero the row here, while it is about to be written anyway —
            // callers can hand over stale scratch (`reset_stale`) without a
            // separate cache-evicting zeroing pass over the whole buffer.
            out_row.fill(0.0);
            axpy4(1.0, a_row, &other.data, 0, m, out_row);
        }
    }

    /// Product with the second operand transposed: `self * otherᵀ`, written
    /// into `out` without allocating. Both operands stream row-contiguously
    /// (each output element is a dot of two rows), which is the
    /// cache-friendly orientation for the GP's candidate-batch kernel
    /// cross-covariances.
    pub fn matmul_transpose_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.cols,
            "dimension mismatch in matmul_transpose"
        );
        assert_eq!(out.rows, self.rows, "bad output rows");
        assert_eq!(out.cols, other.rows, "bad output cols");
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * other.rows..(i + 1) * other.rows];
            for (j, o) in out_row.iter_mut().enumerate() {
                *o = dot(a_row, other.row(j));
            }
        }
    }

    /// Allocating convenience wrapper over [`Matrix::matmul_transpose_into`].
    pub fn matmul_transpose(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.rows);
        self.matmul_transpose_into(other, &mut out);
        out
    }

    /// Append one row (amortised O(cols)). An empty matrix adopts the row's
    /// length as its column count.
    pub fn push_row(&mut self, row: &[f64]) {
        if self.rows == 0 {
            self.cols = row.len();
        }
        assert_eq!(row.len(), self.cols, "row length mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Reshape to `rows × cols`, zero-filled, reusing the existing
    /// allocation when it is large enough. Lets scratch matrices survive
    /// across calls without reallocating.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// [`Matrix::reset`] without the zero-fill: contents are unspecified
    /// (stale values from earlier use). Only for buffers the next operation
    /// overwrites in full — e.g. [`Matrix::matmul_into`] output — where the
    /// streaming zero pass would only evict cache.
    pub fn reset_stale(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Cholesky factorisation of a symmetric positive-definite matrix:
    /// returns lower-triangular `L` with `L Lᵀ = self`. Returns `None` when
    /// the matrix is not (numerically) positive definite — the GP retries
    /// with more jitter in that case.
    ///
    /// Blocked right-looking algorithm: the trailing update — where all the
    /// O(n³) work lives — runs as dot products over contiguous row slices
    /// in [`CHOL_BLOCK`]-wide panels, so the active tiles stay in L1.
    pub fn cholesky(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "cholesky needs a square matrix");
        let mut l = self.clone();
        if !l.cholesky_in_place() {
            return None;
        }
        Some(l)
    }

    /// Reference (unblocked) Cholesky. Kept for the blocked/naive criterion
    /// microbench comparison and as a cross-check oracle in property tests.
    pub fn cholesky_naive(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "cholesky needs a square matrix");
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return None;
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Some(l)
    }

    /// In-place blocked Cholesky over `self` (must hold the SPD matrix;
    /// on success holds `L` with the strict upper triangle zeroed).
    /// Returns `false` when the matrix is not numerically positive definite,
    /// leaving `self` in an unspecified state.
    pub fn cholesky_in_place(&mut self) -> bool {
        assert_eq!(self.rows, self.cols, "cholesky needs a square matrix");
        let n = self.rows;
        let c = self.cols;
        let mut k = 0;
        while k < n {
            let kb = (k + CHOL_BLOCK).min(n);
            // 1. Factor the diagonal block A[k..kb, k..kb] unblocked.
            for i in k..kb {
                for j in k..=i {
                    let (li, lj) = row_pair(&self.data, c, i, j);
                    let mut sum = li[j];
                    sum -= dot(&li[k..j], &lj[k..j]);
                    if i == j {
                        if sum <= 0.0 {
                            return false;
                        }
                        self.data[i * c + j] = sum.sqrt();
                    } else {
                        self.data[i * c + j] = sum / lj[j];
                    }
                }
            }
            // 2. Panel solve: rows below the block against the factored
            //    diagonal block (forward substitution per row).
            for i in kb..n {
                for j in k..kb {
                    let (li, lj) = row_pair(&self.data, c, i, j);
                    let sum = li[j] - dot(&li[k..j], &lj[k..j]);
                    self.data[i * c + j] = sum / lj[j];
                }
            }
            // 3. Trailing update: A[i][j] -= L[i][k..kb] · L[j][k..kb] for
            //    the lower triangle of the trailing square. Contiguous row
            //    slices — this is where the cache-friendliness pays.
            for i in kb..n {
                for j in kb..=i {
                    let (li, lj) = row_pair(&self.data, c, i, j);
                    let upd = dot(&li[k..kb], &lj[k..kb]);
                    self.data[i * c + j] -= upd;
                }
            }
            k = kb;
        }
        // Zero the strict upper triangle (the input's upper half is stale).
        for i in 0..n {
            for v in &mut self.data[i * c + i + 1..(i + 1) * c] {
                *v = 0.0;
            }
        }
        true
    }

    /// Grow a Cholesky factor by one row/column in O(n²): given `self = L`
    /// with `L Lᵀ = K`, rebuild it as the factor of the bordered matrix
    /// `[[K, k_new], [k_newᵀ, diag]]`. This is what makes appending one GP
    /// training sample cost O(n²) instead of a fresh O(n³) factorisation.
    ///
    /// Returns `false` (leaving `self` untouched) when the bordered matrix
    /// is not numerically positive definite — the caller falls back to a
    /// full refit with escalated jitter.
    pub fn cholesky_update_append(&mut self, k_new: &[f64], diag: f64) -> bool {
        assert_eq!(self.rows, self.cols, "factor must be square");
        assert_eq!(k_new.len(), self.rows, "border length mismatch");
        let n = self.rows;
        // Solve L b = k_new (forward substitution).
        let mut b = k_new.to_vec();
        self.solve_lower_in_place(&mut b);
        let d2 = diag - b.iter().map(|x| x * x).sum::<f64>();
        if d2 <= 0.0 {
            return false;
        }
        // Re-stride the data into the (n+1)² layout and add the new row.
        let m = n + 1;
        let mut data = vec![0.0; m * m];
        for i in 0..n {
            data[i * m..i * m + n].copy_from_slice(&self.data[i * n..i * n + n]);
        }
        data[n * m..n * m + n].copy_from_slice(&b);
        data[n * m + n] = d2.sqrt();
        self.rows = m;
        self.cols = m;
        self.data = data;
        true
    }

    /// Solve `L y = b` for lower-triangular `L` (forward substitution).
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        let mut y = b.to_vec();
        self.solve_lower_in_place(&mut y);
        y
    }

    /// Forward substitution in place: `x` enters holding `b`, exits holding
    /// the solution of `L x' = b`. No allocation.
    pub fn solve_lower_in_place(&self, x: &mut [f64]) {
        assert_eq!(self.rows, self.cols);
        assert_eq!(x.len(), self.rows);
        let n = self.rows;
        for i in 0..n {
            let row = self.row(i);
            let sum = x[i] - dot(&row[..i], &x[..i]);
            x[i] = sum / row[i];
        }
    }

    /// Solve `Lᵀ x = b` for lower-triangular `L` (backward substitution).
    pub fn solve_lower_transpose(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        self.solve_lower_transpose_in_place(&mut x);
        x
    }

    /// Backward substitution in place against `Lᵀ`: `x` enters holding `b`,
    /// exits holding the solution. No allocation.
    ///
    /// Uses a column-oriented (outer-product) sweep so every inner loop
    /// walks one contiguous row of `L` instead of striding down a column.
    pub fn solve_lower_transpose_in_place(&self, x: &mut [f64]) {
        assert_eq!(self.rows, self.cols);
        assert_eq!(x.len(), self.rows);
        let n = self.rows;
        for i in (0..n).rev() {
            let row = self.row(i);
            let xi = x[i] / row[i];
            x[i] = xi;
            // Eliminate x[i] from all earlier equations: x[k] -= L[i][k]·xi.
            for (k, &lik) in row[..i].iter().enumerate() {
                x[k] -= lik * xi;
            }
        }
    }

    /// Batched forward substitution: solve `L V = B` where `B` is given as
    /// `rhs`, an `n × m` row-major matrix of `m` right-hand sides, solved
    /// in place. The inner loops run along the contiguous `m`-length rows,
    /// so this vectorises where per-candidate solves cannot.
    pub fn solve_lower_batch_in_place(&self, rhs: &mut Matrix) {
        assert_eq!(self.rows, self.cols);
        assert_eq!(rhs.rows, self.rows, "RHS row count mismatch");
        let n = self.rows;
        let m = rhs.cols;
        // Tiled forward substitution. The naive row-at-a-time loop
        // re-streams every already-solved row for every new row (O(n²) row
        // reads — the dominant cost at GP sweep sizes). Two levels of
        // blocking fix that: panels of output rows share each chunk of
        // solved rows, and column tiles keep the chunk + output segments
        // L1-resident. Row-major storage makes a column tile of a row a
        // contiguous segment, so the tiling needs no copies; per-element
        // operation order is untouched (results stay bit-identical).
        const PANEL: usize = 8;
        const COLTILE: usize = 256;
        let mut j0 = 0;
        while j0 < m {
            let jb = COLTILE.min(m - j0);
            let mut i0 = 0;
            while i0 < n {
                let ib = PANEL.min(n - i0);
                let (head, tail) = rhs.data.split_at_mut(i0 * m);
                // GEMM part: panel row di -= Σ_{t<i0} L[i0+di][t] · head
                // row t, eight head-row segments at a time (the segment
                // chunk stays cache-hot across all `ib` panel rows).
                let mut t0 = 0;
                while t0 < i0 {
                    let tb = 8.min(i0 - t0);
                    for di in 0..ib {
                        let l_row = self.row(i0 + di);
                        let out_seg = &mut tail[di * m + j0..di * m + j0 + jb];
                        axpy4(-1.0, &l_row[t0..t0 + tb], head, t0 * m + j0, m, out_seg);
                    }
                    t0 += tb;
                }
                // Triangular part within the panel.
                for di in 0..ib {
                    let l_row = self.row(i0 + di);
                    let (ph, pt) = tail.split_at_mut(di * m);
                    let out_seg = &mut pt[j0..j0 + jb];
                    axpy4(-1.0, &l_row[i0..i0 + di], ph, j0, m, out_seg);
                    let inv = 1.0 / l_row[i0 + di];
                    for o in out_seg.iter_mut() {
                        *o *= inv;
                    }
                }
                i0 += ib;
            }
            j0 += jb;
        }
    }
}

/// Two distinct rows of a row-major buffer, reborrowed immutably. `i` and
/// `j` may alias (returns the same slice twice).
#[inline]
fn row_pair(data: &[f64], cols: usize, i: usize, j: usize) -> (&[f64], &[f64]) {
    (
        &data[i * cols..(i + 1) * cols],
        &data[j * cols..(j + 1) * cols],
    )
}

/// `out[j] += scale · Σₜ coeffs[t] · src[offset + t·stride + j]` — a fused
/// multi-row axpy over row segments of a row-major buffer. Source rows are
/// consumed eight per pass so `out` is re-read once per eight axpys instead
/// of once per row, and the per-element accumulation order is fixed by the
/// source expression (callers rely on results being independent of how
/// they tile the surrounding loops). Shared inner kernel of
/// [`Matrix::matmul_into`] and [`Matrix::solve_lower_batch_in_place`],
/// where source-row re-reads are the dominant memory traffic.
#[inline]
fn axpy4(scale: f64, coeffs: &[f64], src: &[f64], offset: usize, stride: usize, out: &mut [f64]) {
    let w = out.len();
    debug_assert!(coeffs.is_empty() || src.len() >= offset + (coeffs.len() - 1) * stride + w);
    let mut chunks = coeffs.chunks_exact(8);
    let mut t = 0;
    for c in &mut chunks {
        let s = [
            scale * c[0],
            scale * c[1],
            scale * c[2],
            scale * c[3],
            scale * c[4],
            scale * c[5],
            scale * c[6],
            scale * c[7],
        ];
        let base = offset + t * stride;
        let p0 = &src[base..base + w];
        let p1 = &src[base + stride..base + stride + w];
        let p2 = &src[base + 2 * stride..base + 2 * stride + w];
        let p3 = &src[base + 3 * stride..base + 3 * stride + w];
        let p4 = &src[base + 4 * stride..base + 4 * stride + w];
        let p5 = &src[base + 5 * stride..base + 5 * stride + w];
        let p6 = &src[base + 6 * stride..base + 6 * stride + w];
        let p7 = &src[base + 7 * stride..base + 7 * stride + w];
        for (j, o) in out.iter_mut().enumerate() {
            let lo = s[0] * p0[j] + s[1] * p1[j] + s[2] * p2[j] + s[3] * p3[j];
            let hi = s[4] * p4[j] + s[5] * p5[j] + s[6] * p6[j] + s[7] * p7[j];
            *o += lo + hi;
        }
        t += 8;
    }
    let rem = chunks.remainder();
    let mut four = rem.chunks_exact(4);
    for c in &mut four {
        let s = [scale * c[0], scale * c[1], scale * c[2], scale * c[3]];
        let base = offset + t * stride;
        let p0 = &src[base..base + w];
        let p1 = &src[base + stride..base + stride + w];
        let p2 = &src[base + 2 * stride..base + 2 * stride + w];
        let p3 = &src[base + 3 * stride..base + 3 * stride + w];
        for (j, o) in out.iter_mut().enumerate() {
            *o += (s[0] * p0[j] + s[1] * p1[j]) + (s[2] * p2[j] + s[3] * p3[j]);
        }
        t += 4;
    }
    for (dt, &cv) in four.remainder().iter().enumerate() {
        let cv = scale * cv;
        let base = offset + (t + dt) * stride;
        let p = &src[base..base + w];
        for (o, &v) in out.iter_mut().zip(p) {
            *o += cv * v;
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

/// Euclidean distance between equal-length vectors.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    sq_euclidean(a, b).sqrt()
}

/// Squared Euclidean distance (saves the sqrt on the RBF hot path, where
/// only d² is needed).
pub fn sq_euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "euclidean distance needs equal lengths");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>()
}

/// Dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

use autodbaas_snapshot::{Snap, SnapError, SnapReader, SnapWriter};

impl Snap for Matrix {
    fn encode(&self, w: &mut SnapWriter) {
        self.rows.encode(w);
        self.cols.encode(w);
        self.data.encode(w);
    }
    fn decode(r: &mut SnapReader) -> Result<Self, SnapError> {
        let rows = usize::decode(r)?;
        let cols = usize::decode(r)?;
        let data: Vec<f64> = Snap::decode(r)?;
        if data.len() != rows.saturating_mul(cols) {
            return Err(SnapError::Malformed("matrix shape"));
        }
        Ok(Self { rows, cols, data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn matmul_handles_zeros_exactly() {
        // The old zero-skip branch special-cased these; the fused loop must
        // produce identical results.
        let a = Matrix::from_rows(&[&[0.0, 2.0], &[3.0, 0.0]]);
        let b = Matrix::from_rows(&[&[5.0, 0.0], &[0.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c[(0, 0)], 0.0);
        assert_eq!(c[(0, 1)], 16.0);
        assert_eq!(c[(1, 0)], 15.0);
        assert_eq!(c[(1, 1)], 0.0);
    }

    #[test]
    fn matmul_transpose_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut a = Matrix::zeros(7, 5);
        let mut b = Matrix::zeros(9, 5);
        for i in 0..7 {
            for j in 0..5 {
                a[(i, j)] = rng.gen::<f64>() - 0.5;
            }
        }
        for i in 0..9 {
            for j in 0..5 {
                b[(i, j)] = rng.gen::<f64>() - 0.5;
            }
        }
        let fast = a.matmul_transpose(&b);
        let reference = a.matmul(&b.transpose());
        for i in 0..7 {
            for j in 0..9 {
                assert!((fast[(i, j)] - reference[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn transpose_roundtrips() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    /// Random SPD matrix `A Aᵀ + n·I` of size n.
    fn random_spd(n: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = rng.gen::<f64>() - 0.5;
            }
        }
        let mut spd = a.matmul_transpose(&a);
        for i in 0..n {
            spd[(i, i)] += n as f64;
        }
        spd
    }

    #[test]
    fn cholesky_reconstructs_spd_matrix() {
        let a = Matrix::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 5.0, 1.5], &[0.6, 1.5, 2.0]]);
        let l = a.cholesky().expect("SPD");
        let recon = l.matmul_transpose(&l);
        for i in 0..3 {
            for j in 0..3 {
                assert!((recon[(i, j)] - a[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn blocked_cholesky_matches_naive_beyond_block_size() {
        // 83 > 2×CHOL_BLOCK exercises diagonal, panel and trailing paths
        // across multiple blocks, plus a ragged final block.
        for n in [5, 32, 33, 83] {
            let a = random_spd(n, n as u64);
            let blocked = a.cholesky().expect("SPD");
            let naive = a.cholesky_naive().expect("SPD");
            for i in 0..n {
                for j in 0..n {
                    assert!(
                        (blocked[(i, j)] - naive[(i, j)]).abs() < 1e-9,
                        "({i},{j}) at n={n}: {} vs {}",
                        blocked[(i, j)],
                        naive[(i, j)]
                    );
                }
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(a.cholesky().is_none());
        assert!(a.cholesky_naive().is_none());
    }

    #[test]
    fn cholesky_update_append_matches_full_factorisation() {
        let n = 40;
        let full = random_spd(n + 1, 7);
        // Factor the leading n×n block, then append the border.
        let mut lead = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                lead[(i, j)] = full[(i, j)];
            }
        }
        let mut l = lead.cholesky().expect("SPD");
        let border: Vec<f64> = (0..n).map(|i| full[(i, n)]).collect();
        assert!(l.cholesky_update_append(&border, full[(n, n)]));
        let l_full = full.cholesky().expect("SPD");
        for i in 0..=n {
            for j in 0..=n {
                assert!(
                    (l[(i, j)] - l_full[(i, j)]).abs() < 1e-9,
                    "({i},{j}): {} vs {}",
                    l[(i, j)],
                    l_full[(i, j)]
                );
            }
        }
    }

    #[test]
    fn cholesky_update_append_rejects_indefinite_border_untouched() {
        let a = random_spd(6, 3);
        let mut l = a.cholesky().unwrap();
        let before = l.clone();
        // A border with a huge cross-covariance and tiny diagonal cannot be
        // part of any SPD matrix.
        let border = vec![100.0; 6];
        assert!(!l.cholesky_update_append(&border, 1e-6));
        assert_eq!(l, before, "failed append must leave the factor untouched");
    }

    #[test]
    fn triangular_solves_invert_spd_system() {
        // Solve A x = b via Cholesky; check A x ≈ b.
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let b = [1.0, 2.0];
        let l = a.cholesky().unwrap();
        let y = l.solve_lower(&b);
        let x = l.solve_lower_transpose(&y);
        let ax0 = a[(0, 0)] * x[0] + a[(0, 1)] * x[1];
        let ax1 = a[(1, 0)] * x[0] + a[(1, 1)] * x[1];
        assert!((ax0 - b[0]).abs() < 1e-10);
        assert!((ax1 - b[1]).abs() < 1e-10);
    }

    #[test]
    fn in_place_solves_match_allocating_solves() {
        let a = random_spd(20, 5);
        let l = a.cholesky().unwrap();
        let b: Vec<f64> = (0..20).map(|i| (i as f64).sin()).collect();
        let y = l.solve_lower(&b);
        let x = l.solve_lower_transpose(&y);
        let mut buf = b.clone();
        l.solve_lower_in_place(&mut buf);
        for (a, b) in buf.iter().zip(&y) {
            assert!((a - b).abs() < 1e-12);
        }
        l.solve_lower_transpose_in_place(&mut buf);
        for (a, b) in buf.iter().zip(&x) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn batched_solve_matches_per_column_solves() {
        let n = 24;
        let m = 7;
        let a = random_spd(n, 9);
        let l = a.cholesky().unwrap();
        let mut rng = StdRng::seed_from_u64(10);
        let mut rhs = Matrix::zeros(n, m);
        for i in 0..n {
            for j in 0..m {
                rhs[(i, j)] = rng.gen::<f64>() - 0.5;
            }
        }
        let mut batched = rhs.clone();
        l.solve_lower_batch_in_place(&mut batched);
        for j in 0..m {
            let col: Vec<f64> = (0..n).map(|i| rhs[(i, j)]).collect();
            let solved = l.solve_lower(&col);
            for i in 0..n {
                assert!(
                    (batched[(i, j)] - solved[i]).abs() < 1e-12,
                    "col {j} row {i}"
                );
            }
        }
    }

    #[test]
    fn euclidean_distance_basics() {
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(euclidean(&[1.0], &[1.0]), 0.0);
        assert_eq!(sq_euclidean(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }
}
